# Empty dependencies file for common_matrix_test.
# This may be replaced when dependencies are built.
