file(REMOVE_RECURSE
  "CMakeFiles/common_matrix_test.dir/common_matrix_test.cc.o"
  "CMakeFiles/common_matrix_test.dir/common_matrix_test.cc.o.d"
  "common_matrix_test"
  "common_matrix_test.pdb"
  "common_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
