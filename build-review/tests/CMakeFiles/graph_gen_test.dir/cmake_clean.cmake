file(REMOVE_RECURSE
  "CMakeFiles/graph_gen_test.dir/graph_gen_test.cc.o"
  "CMakeFiles/graph_gen_test.dir/graph_gen_test.cc.o.d"
  "graph_gen_test"
  "graph_gen_test.pdb"
  "graph_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
