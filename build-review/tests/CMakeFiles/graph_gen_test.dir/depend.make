# Empty dependencies file for graph_gen_test.
# This may be replaced when dependencies are built.
