file(REMOVE_RECURSE
  "CMakeFiles/clustering_property_test.dir/clustering_property_test.cc.o"
  "CMakeFiles/clustering_property_test.dir/clustering_property_test.cc.o.d"
  "clustering_property_test"
  "clustering_property_test.pdb"
  "clustering_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
