file(REMOVE_RECURSE
  "CMakeFiles/hyperplane_test.dir/hyperplane_test.cc.o"
  "CMakeFiles/hyperplane_test.dir/hyperplane_test.cc.o.d"
  "hyperplane_test"
  "hyperplane_test.pdb"
  "hyperplane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperplane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
