# Empty compiler generated dependencies file for hyperplane_test.
# This may be replaced when dependencies are built.
