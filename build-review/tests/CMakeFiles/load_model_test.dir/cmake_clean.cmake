file(REMOVE_RECURSE
  "CMakeFiles/load_model_test.dir/load_model_test.cc.o"
  "CMakeFiles/load_model_test.dir/load_model_test.cc.o.d"
  "load_model_test"
  "load_model_test.pdb"
  "load_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
