# Empty dependencies file for load_model_test.
# This may be replaced when dependencies are built.
