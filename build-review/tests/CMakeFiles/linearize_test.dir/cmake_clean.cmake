file(REMOVE_RECURSE
  "CMakeFiles/linearize_test.dir/linearize_test.cc.o"
  "CMakeFiles/linearize_test.dir/linearize_test.cc.o.d"
  "linearize_test"
  "linearize_test.pdb"
  "linearize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
