# Empty dependencies file for hurst_test.
# This may be replaced when dependencies are built.
