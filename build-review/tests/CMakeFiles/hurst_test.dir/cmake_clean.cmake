file(REMOVE_RECURSE
  "CMakeFiles/hurst_test.dir/hurst_test.cc.o"
  "CMakeFiles/hurst_test.dir/hurst_test.cc.o.d"
  "hurst_test"
  "hurst_test.pdb"
  "hurst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hurst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
