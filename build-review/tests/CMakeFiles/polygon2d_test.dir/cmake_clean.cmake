file(REMOVE_RECURSE
  "CMakeFiles/polygon2d_test.dir/polygon2d_test.cc.o"
  "CMakeFiles/polygon2d_test.dir/polygon2d_test.cc.o.d"
  "polygon2d_test"
  "polygon2d_test.pdb"
  "polygon2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polygon2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
