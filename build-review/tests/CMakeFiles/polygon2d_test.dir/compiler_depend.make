# Empty compiler generated dependencies file for polygon2d_test.
# This may be replaced when dependencies are built.
