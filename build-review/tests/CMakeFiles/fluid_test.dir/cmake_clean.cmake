file(REMOVE_RECURSE
  "CMakeFiles/fluid_test.dir/fluid_test.cc.o"
  "CMakeFiles/fluid_test.dir/fluid_test.cc.o.d"
  "fluid_test"
  "fluid_test.pdb"
  "fluid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
