# Empty dependencies file for fluid_test.
# This may be replaced when dependencies are built.
