file(REMOVE_RECURSE
  "CMakeFiles/feasible_set_test.dir/feasible_set_test.cc.o"
  "CMakeFiles/feasible_set_test.dir/feasible_set_test.cc.o.d"
  "feasible_set_test"
  "feasible_set_test.pdb"
  "feasible_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasible_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
