# Empty dependencies file for feasible_set_test.
# This may be replaced when dependencies are built.
