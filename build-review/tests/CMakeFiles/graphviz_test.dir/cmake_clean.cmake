file(REMOVE_RECURSE
  "CMakeFiles/graphviz_test.dir/graphviz_test.cc.o"
  "CMakeFiles/graphviz_test.dir/graphviz_test.cc.o.d"
  "graphviz_test"
  "graphviz_test.pdb"
  "graphviz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphviz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
