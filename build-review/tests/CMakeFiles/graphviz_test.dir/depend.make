# Empty dependencies file for graphviz_test.
# This may be replaced when dependencies are built.
