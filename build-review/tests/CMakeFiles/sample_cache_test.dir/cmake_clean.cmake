file(REMOVE_RECURSE
  "CMakeFiles/sample_cache_test.dir/sample_cache_test.cc.o"
  "CMakeFiles/sample_cache_test.dir/sample_cache_test.cc.o.d"
  "sample_cache_test"
  "sample_cache_test.pdb"
  "sample_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
