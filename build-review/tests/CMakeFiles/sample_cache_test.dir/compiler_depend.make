# Empty compiler generated dependencies file for sample_cache_test.
# This may be replaced when dependencies are built.
