# Empty dependencies file for qmc_test.
# This may be replaced when dependencies are built.
