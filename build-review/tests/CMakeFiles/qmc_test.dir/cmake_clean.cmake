file(REMOVE_RECURSE
  "CMakeFiles/qmc_test.dir/qmc_test.cc.o"
  "CMakeFiles/qmc_test.dir/qmc_test.cc.o.d"
  "qmc_test"
  "qmc_test.pdb"
  "qmc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
