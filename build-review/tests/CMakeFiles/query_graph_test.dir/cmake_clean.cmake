file(REMOVE_RECURSE
  "CMakeFiles/query_graph_test.dir/query_graph_test.cc.o"
  "CMakeFiles/query_graph_test.dir/query_graph_test.cc.o.d"
  "query_graph_test"
  "query_graph_test.pdb"
  "query_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
