file(REMOVE_RECURSE
  "CMakeFiles/rod_algorithm_test.dir/rod_algorithm_test.cc.o"
  "CMakeFiles/rod_algorithm_test.dir/rod_algorithm_test.cc.o.d"
  "rod_algorithm_test"
  "rod_algorithm_test.pdb"
  "rod_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
