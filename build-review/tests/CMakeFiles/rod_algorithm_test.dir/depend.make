# Empty dependencies file for rod_algorithm_test.
# This may be replaced when dependencies are built.
