# Empty dependencies file for fluid_property_test.
# This may be replaced when dependencies are built.
