file(REMOVE_RECURSE
  "CMakeFiles/fluid_property_test.dir/fluid_property_test.cc.o"
  "CMakeFiles/fluid_property_test.dir/fluid_property_test.cc.o.d"
  "fluid_property_test"
  "fluid_property_test.pdb"
  "fluid_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
