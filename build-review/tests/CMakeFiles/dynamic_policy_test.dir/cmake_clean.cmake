file(REMOVE_RECURSE
  "CMakeFiles/dynamic_policy_test.dir/dynamic_policy_test.cc.o"
  "CMakeFiles/dynamic_policy_test.dir/dynamic_policy_test.cc.o.d"
  "dynamic_policy_test"
  "dynamic_policy_test.pdb"
  "dynamic_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
