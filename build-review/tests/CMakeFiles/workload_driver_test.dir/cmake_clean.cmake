file(REMOVE_RECURSE
  "CMakeFiles/workload_driver_test.dir/workload_driver_test.cc.o"
  "CMakeFiles/workload_driver_test.dir/workload_driver_test.cc.o.d"
  "workload_driver_test"
  "workload_driver_test.pdb"
  "workload_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
