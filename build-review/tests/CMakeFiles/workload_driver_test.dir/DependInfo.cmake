
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_driver_test.cc" "tests/CMakeFiles/workload_driver_test.dir/workload_driver_test.cc.o" "gcc" "tests/CMakeFiles/workload_driver_test.dir/workload_driver_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/rod_dynamic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_placement.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_geometry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
