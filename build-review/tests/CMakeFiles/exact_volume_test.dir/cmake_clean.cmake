file(REMOVE_RECURSE
  "CMakeFiles/exact_volume_test.dir/exact_volume_test.cc.o"
  "CMakeFiles/exact_volume_test.dir/exact_volume_test.cc.o.d"
  "exact_volume_test"
  "exact_volume_test.pdb"
  "exact_volume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_volume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
