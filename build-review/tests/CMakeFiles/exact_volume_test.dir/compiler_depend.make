# Empty compiler generated dependencies file for exact_volume_test.
# This may be replaced when dependencies are built.
