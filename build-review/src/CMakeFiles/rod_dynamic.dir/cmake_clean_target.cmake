file(REMOVE_RECURSE
  "librod_dynamic.a"
)
