file(REMOVE_RECURSE
  "CMakeFiles/rod_dynamic.dir/placement/correlation_policy.cc.o"
  "CMakeFiles/rod_dynamic.dir/placement/correlation_policy.cc.o.d"
  "CMakeFiles/rod_dynamic.dir/placement/dynamic.cc.o"
  "CMakeFiles/rod_dynamic.dir/placement/dynamic.cc.o.d"
  "librod_dynamic.a"
  "librod_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
