# Empty dependencies file for rod_dynamic.
# This may be replaced when dependencies are built.
