
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bmodel.cc" "src/CMakeFiles/rod_trace.dir/trace/bmodel.cc.o" "gcc" "src/CMakeFiles/rod_trace.dir/trace/bmodel.cc.o.d"
  "/root/repo/src/trace/hurst.cc" "src/CMakeFiles/rod_trace.dir/trace/hurst.cc.o" "gcc" "src/CMakeFiles/rod_trace.dir/trace/hurst.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/CMakeFiles/rod_trace.dir/trace/io.cc.o" "gcc" "src/CMakeFiles/rod_trace.dir/trace/io.cc.o.d"
  "/root/repo/src/trace/onoff.cc" "src/CMakeFiles/rod_trace.dir/trace/onoff.cc.o" "gcc" "src/CMakeFiles/rod_trace.dir/trace/onoff.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/rod_trace.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/rod_trace.dir/trace/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/rod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
