# Empty dependencies file for rod_trace.
# This may be replaced when dependencies are built.
