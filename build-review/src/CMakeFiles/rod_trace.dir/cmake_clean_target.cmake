file(REMOVE_RECURSE
  "librod_trace.a"
)
