file(REMOVE_RECURSE
  "CMakeFiles/rod_trace.dir/trace/bmodel.cc.o"
  "CMakeFiles/rod_trace.dir/trace/bmodel.cc.o.d"
  "CMakeFiles/rod_trace.dir/trace/hurst.cc.o"
  "CMakeFiles/rod_trace.dir/trace/hurst.cc.o.d"
  "CMakeFiles/rod_trace.dir/trace/io.cc.o"
  "CMakeFiles/rod_trace.dir/trace/io.cc.o.d"
  "CMakeFiles/rod_trace.dir/trace/onoff.cc.o"
  "CMakeFiles/rod_trace.dir/trace/onoff.cc.o.d"
  "CMakeFiles/rod_trace.dir/trace/trace.cc.o"
  "CMakeFiles/rod_trace.dir/trace/trace.cc.o.d"
  "librod_trace.a"
  "librod_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
