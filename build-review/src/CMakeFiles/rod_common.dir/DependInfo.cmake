
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/matrix.cc" "src/CMakeFiles/rod_common.dir/common/matrix.cc.o" "gcc" "src/CMakeFiles/rod_common.dir/common/matrix.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/rod_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/rod_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/rod_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/rod_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/rod_common.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/rod_common.dir/common/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
