# Empty dependencies file for rod_common.
# This may be replaced when dependencies are built.
