file(REMOVE_RECURSE
  "librod_common.a"
)
