file(REMOVE_RECURSE
  "CMakeFiles/rod_common.dir/common/matrix.cc.o"
  "CMakeFiles/rod_common.dir/common/matrix.cc.o.d"
  "CMakeFiles/rod_common.dir/common/stats.cc.o"
  "CMakeFiles/rod_common.dir/common/stats.cc.o.d"
  "CMakeFiles/rod_common.dir/common/status.cc.o"
  "CMakeFiles/rod_common.dir/common/status.cc.o.d"
  "CMakeFiles/rod_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/rod_common.dir/common/thread_pool.cc.o.d"
  "librod_common.a"
  "librod_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
