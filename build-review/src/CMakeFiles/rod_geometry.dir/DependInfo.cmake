
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/ascii_plot.cc" "src/CMakeFiles/rod_geometry.dir/geometry/ascii_plot.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/ascii_plot.cc.o.d"
  "/root/repo/src/geometry/boundary.cc" "src/CMakeFiles/rod_geometry.dir/geometry/boundary.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/boundary.cc.o.d"
  "/root/repo/src/geometry/exact_volume.cc" "src/CMakeFiles/rod_geometry.dir/geometry/exact_volume.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/exact_volume.cc.o.d"
  "/root/repo/src/geometry/feasible_set.cc" "src/CMakeFiles/rod_geometry.dir/geometry/feasible_set.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/feasible_set.cc.o.d"
  "/root/repo/src/geometry/hyperplane.cc" "src/CMakeFiles/rod_geometry.dir/geometry/hyperplane.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/hyperplane.cc.o.d"
  "/root/repo/src/geometry/polygon2d.cc" "src/CMakeFiles/rod_geometry.dir/geometry/polygon2d.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/polygon2d.cc.o.d"
  "/root/repo/src/geometry/qmc.cc" "src/CMakeFiles/rod_geometry.dir/geometry/qmc.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/qmc.cc.o.d"
  "/root/repo/src/geometry/sample_cache.cc" "src/CMakeFiles/rod_geometry.dir/geometry/sample_cache.cc.o" "gcc" "src/CMakeFiles/rod_geometry.dir/geometry/sample_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/rod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
