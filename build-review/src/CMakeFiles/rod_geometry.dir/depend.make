# Empty dependencies file for rod_geometry.
# This may be replaced when dependencies are built.
