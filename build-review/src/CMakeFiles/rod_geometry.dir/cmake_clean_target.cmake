file(REMOVE_RECURSE
  "librod_geometry.a"
)
