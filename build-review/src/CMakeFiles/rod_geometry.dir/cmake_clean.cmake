file(REMOVE_RECURSE
  "CMakeFiles/rod_geometry.dir/geometry/ascii_plot.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/ascii_plot.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/boundary.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/boundary.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/exact_volume.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/exact_volume.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/feasible_set.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/feasible_set.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/hyperplane.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/hyperplane.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/polygon2d.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/polygon2d.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/qmc.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/qmc.cc.o.d"
  "CMakeFiles/rod_geometry.dir/geometry/sample_cache.cc.o"
  "CMakeFiles/rod_geometry.dir/geometry/sample_cache.cc.o.d"
  "librod_geometry.a"
  "librod_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
