file(REMOVE_RECURSE
  "librod_query.a"
)
