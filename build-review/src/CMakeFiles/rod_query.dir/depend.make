# Empty dependencies file for rod_query.
# This may be replaced when dependencies are built.
