
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/graph_gen.cc" "src/CMakeFiles/rod_query.dir/query/graph_gen.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/graph_gen.cc.o.d"
  "/root/repo/src/query/graphviz.cc" "src/CMakeFiles/rod_query.dir/query/graphviz.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/graphviz.cc.o.d"
  "/root/repo/src/query/linearize.cc" "src/CMakeFiles/rod_query.dir/query/linearize.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/linearize.cc.o.d"
  "/root/repo/src/query/load_model.cc" "src/CMakeFiles/rod_query.dir/query/load_model.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/load_model.cc.o.d"
  "/root/repo/src/query/operator.cc" "src/CMakeFiles/rod_query.dir/query/operator.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/operator.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/rod_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/query_graph.cc" "src/CMakeFiles/rod_query.dir/query/query_graph.cc.o" "gcc" "src/CMakeFiles/rod_query.dir/query/query_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/rod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
