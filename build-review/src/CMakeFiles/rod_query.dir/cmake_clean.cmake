file(REMOVE_RECURSE
  "CMakeFiles/rod_query.dir/query/graph_gen.cc.o"
  "CMakeFiles/rod_query.dir/query/graph_gen.cc.o.d"
  "CMakeFiles/rod_query.dir/query/graphviz.cc.o"
  "CMakeFiles/rod_query.dir/query/graphviz.cc.o.d"
  "CMakeFiles/rod_query.dir/query/linearize.cc.o"
  "CMakeFiles/rod_query.dir/query/linearize.cc.o.d"
  "CMakeFiles/rod_query.dir/query/load_model.cc.o"
  "CMakeFiles/rod_query.dir/query/load_model.cc.o.d"
  "CMakeFiles/rod_query.dir/query/operator.cc.o"
  "CMakeFiles/rod_query.dir/query/operator.cc.o.d"
  "CMakeFiles/rod_query.dir/query/parser.cc.o"
  "CMakeFiles/rod_query.dir/query/parser.cc.o.d"
  "CMakeFiles/rod_query.dir/query/query_graph.cc.o"
  "CMakeFiles/rod_query.dir/query/query_graph.cc.o.d"
  "librod_query.a"
  "librod_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
