
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/baselines.cc" "src/CMakeFiles/rod_placement.dir/placement/baselines.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/baselines.cc.o.d"
  "/root/repo/src/placement/clustering.cc" "src/CMakeFiles/rod_placement.dir/placement/clustering.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/clustering.cc.o.d"
  "/root/repo/src/placement/evaluator.cc" "src/CMakeFiles/rod_placement.dir/placement/evaluator.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/evaluator.cc.o.d"
  "/root/repo/src/placement/optimal.cc" "src/CMakeFiles/rod_placement.dir/placement/optimal.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/optimal.cc.o.d"
  "/root/repo/src/placement/plan.cc" "src/CMakeFiles/rod_placement.dir/placement/plan.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/plan.cc.o.d"
  "/root/repo/src/placement/repair.cc" "src/CMakeFiles/rod_placement.dir/placement/repair.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/repair.cc.o.d"
  "/root/repo/src/placement/rod.cc" "src/CMakeFiles/rod_placement.dir/placement/rod.cc.o" "gcc" "src/CMakeFiles/rod_placement.dir/placement/rod.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/rod_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_geometry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
