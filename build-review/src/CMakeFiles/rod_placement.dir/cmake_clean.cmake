file(REMOVE_RECURSE
  "CMakeFiles/rod_placement.dir/placement/baselines.cc.o"
  "CMakeFiles/rod_placement.dir/placement/baselines.cc.o.d"
  "CMakeFiles/rod_placement.dir/placement/clustering.cc.o"
  "CMakeFiles/rod_placement.dir/placement/clustering.cc.o.d"
  "CMakeFiles/rod_placement.dir/placement/evaluator.cc.o"
  "CMakeFiles/rod_placement.dir/placement/evaluator.cc.o.d"
  "CMakeFiles/rod_placement.dir/placement/optimal.cc.o"
  "CMakeFiles/rod_placement.dir/placement/optimal.cc.o.d"
  "CMakeFiles/rod_placement.dir/placement/plan.cc.o"
  "CMakeFiles/rod_placement.dir/placement/plan.cc.o.d"
  "CMakeFiles/rod_placement.dir/placement/repair.cc.o"
  "CMakeFiles/rod_placement.dir/placement/repair.cc.o.d"
  "CMakeFiles/rod_placement.dir/placement/rod.cc.o"
  "CMakeFiles/rod_placement.dir/placement/rod.cc.o.d"
  "librod_placement.a"
  "librod_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
