file(REMOVE_RECURSE
  "librod_placement.a"
)
