# Empty dependencies file for rod_placement.
# This may be replaced when dependencies are built.
