file(REMOVE_RECURSE
  "librod_runtime.a"
)
