# Empty dependencies file for rod_runtime.
# This may be replaced when dependencies are built.
