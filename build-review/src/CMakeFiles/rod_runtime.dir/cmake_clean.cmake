file(REMOVE_RECURSE
  "CMakeFiles/rod_runtime.dir/runtime/calibrate.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/calibrate.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/chaos.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/chaos.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/deployment.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/deployment.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/engine.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/engine.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/event_queue.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/event_queue.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/fluid.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/fluid.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/metrics.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/metrics.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/node.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/node.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/supervisor.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/supervisor.cc.o.d"
  "CMakeFiles/rod_runtime.dir/runtime/workload_driver.cc.o"
  "CMakeFiles/rod_runtime.dir/runtime/workload_driver.cc.o.d"
  "librod_runtime.a"
  "librod_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rod_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
