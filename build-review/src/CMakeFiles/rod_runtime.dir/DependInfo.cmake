
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/calibrate.cc" "src/CMakeFiles/rod_runtime.dir/runtime/calibrate.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/calibrate.cc.o.d"
  "/root/repo/src/runtime/chaos.cc" "src/CMakeFiles/rod_runtime.dir/runtime/chaos.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/chaos.cc.o.d"
  "/root/repo/src/runtime/deployment.cc" "src/CMakeFiles/rod_runtime.dir/runtime/deployment.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/deployment.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/rod_runtime.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/event_queue.cc" "src/CMakeFiles/rod_runtime.dir/runtime/event_queue.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/event_queue.cc.o.d"
  "/root/repo/src/runtime/fluid.cc" "src/CMakeFiles/rod_runtime.dir/runtime/fluid.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/fluid.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/CMakeFiles/rod_runtime.dir/runtime/metrics.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/metrics.cc.o.d"
  "/root/repo/src/runtime/node.cc" "src/CMakeFiles/rod_runtime.dir/runtime/node.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/node.cc.o.d"
  "/root/repo/src/runtime/supervisor.cc" "src/CMakeFiles/rod_runtime.dir/runtime/supervisor.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/supervisor.cc.o.d"
  "/root/repo/src/runtime/workload_driver.cc" "src/CMakeFiles/rod_runtime.dir/runtime/workload_driver.cc.o" "gcc" "src/CMakeFiles/rod_runtime.dir/runtime/workload_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/rod_query.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_placement.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_geometry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/rod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
