# Empty dependencies file for join_linearization.
# This may be replaced when dependencies are built.
