file(REMOVE_RECURSE
  "CMakeFiles/join_linearization.dir/join_linearization.cc.o"
  "CMakeFiles/join_linearization.dir/join_linearization.cc.o.d"
  "join_linearization"
  "join_linearization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
