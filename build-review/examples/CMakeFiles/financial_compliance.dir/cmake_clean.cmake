file(REMOVE_RECURSE
  "CMakeFiles/financial_compliance.dir/financial_compliance.cc.o"
  "CMakeFiles/financial_compliance.dir/financial_compliance.cc.o.d"
  "financial_compliance"
  "financial_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
