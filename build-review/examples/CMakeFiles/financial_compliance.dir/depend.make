# Empty dependencies file for financial_compliance.
# This may be replaced when dependencies are built.
