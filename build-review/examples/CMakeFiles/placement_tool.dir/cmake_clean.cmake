file(REMOVE_RECURSE
  "CMakeFiles/placement_tool.dir/placement_tool.cc.o"
  "CMakeFiles/placement_tool.dir/placement_tool.cc.o.d"
  "placement_tool"
  "placement_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
