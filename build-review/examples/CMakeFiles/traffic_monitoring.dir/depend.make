# Empty dependencies file for traffic_monitoring.
# This may be replaced when dependencies are built.
