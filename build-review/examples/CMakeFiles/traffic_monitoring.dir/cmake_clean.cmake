file(REMOVE_RECURSE
  "CMakeFiles/traffic_monitoring.dir/traffic_monitoring.cc.o"
  "CMakeFiles/traffic_monitoring.dir/traffic_monitoring.cc.o.d"
  "traffic_monitoring"
  "traffic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
