file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_resiliency.dir/bench_fig14_resiliency.cc.o"
  "CMakeFiles/bench_fig14_resiliency.dir/bench_fig14_resiliency.cc.o.d"
  "bench_fig14_resiliency"
  "bench_fig14_resiliency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_resiliency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
