# Empty dependencies file for bench_nonlinear_join.
# This may be replaced when dependencies are built.
