file(REMOVE_RECURSE
  "CMakeFiles/bench_nonlinear_join.dir/bench_nonlinear_join.cc.o"
  "CMakeFiles/bench_nonlinear_join.dir/bench_nonlinear_join.cc.o.d"
  "bench_nonlinear_join"
  "bench_nonlinear_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nonlinear_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
