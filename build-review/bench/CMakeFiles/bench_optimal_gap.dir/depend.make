# Empty dependencies file for bench_optimal_gap.
# This may be replaced when dependencies are built.
