file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_gap.dir/bench_optimal_gap.cc.o"
  "CMakeFiles/bench_optimal_gap.dir/bench_optimal_gap.cc.o.d"
  "bench_optimal_gap"
  "bench_optimal_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
