file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_burst.dir/bench_latency_burst.cc.o"
  "CMakeFiles/bench_latency_burst.dir/bench_latency_burst.cc.o.d"
  "bench_latency_burst"
  "bench_latency_burst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
