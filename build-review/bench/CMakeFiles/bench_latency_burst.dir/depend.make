# Empty dependencies file for bench_latency_burst.
# This may be replaced when dependencies are built.
