# Empty compiler generated dependencies file for bench_micro_qmc.
# This may be replaced when dependencies are built.
