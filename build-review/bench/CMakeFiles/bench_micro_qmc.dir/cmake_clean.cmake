file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_qmc.dir/bench_micro_qmc.cc.o"
  "CMakeFiles/bench_micro_qmc.dir/bench_micro_qmc.cc.o.d"
  "bench_micro_qmc"
  "bench_micro_qmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
