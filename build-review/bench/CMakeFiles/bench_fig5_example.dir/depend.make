# Empty dependencies file for bench_fig5_example.
# This may be replaced when dependencies are built.
