file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dimensions.dir/bench_fig15_dimensions.cc.o"
  "CMakeFiles/bench_fig15_dimensions.dir/bench_fig15_dimensions.cc.o.d"
  "bench_fig15_dimensions"
  "bench_fig15_dimensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
