# Empty dependencies file for bench_fig15_dimensions.
# This may be replaced when dependencies are built.
