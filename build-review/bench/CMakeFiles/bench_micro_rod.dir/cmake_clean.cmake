file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_rod.dir/bench_micro_rod.cc.o"
  "CMakeFiles/bench_micro_rod.dir/bench_micro_rod.cc.o.d"
  "bench_micro_rod"
  "bench_micro_rod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_rod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
