# Empty compiler generated dependencies file for bench_micro_rod.
# This may be replaced when dependencies are built.
