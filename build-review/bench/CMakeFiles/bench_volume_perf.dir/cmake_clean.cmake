file(REMOVE_RECURSE
  "CMakeFiles/bench_volume_perf.dir/bench_volume_perf.cc.o"
  "CMakeFiles/bench_volume_perf.dir/bench_volume_perf.cc.o.d"
  "bench_volume_perf"
  "bench_volume_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_volume_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
