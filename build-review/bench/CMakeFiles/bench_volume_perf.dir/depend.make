# Empty dependencies file for bench_volume_perf.
# This may be replaced when dependencies are built.
