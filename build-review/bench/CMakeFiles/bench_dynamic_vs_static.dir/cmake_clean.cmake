file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_vs_static.dir/bench_dynamic_vs_static.cc.o"
  "CMakeFiles/bench_dynamic_vs_static.dir/bench_dynamic_vs_static.cc.o.d"
  "bench_dynamic_vs_static"
  "bench_dynamic_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
