# Empty dependencies file for bench_dynamic_vs_static.
# This may be replaced when dependencies are built.
