# Empty compiler generated dependencies file for bench_fig9_plane_distance.
# This may be replaced when dependencies are built.
