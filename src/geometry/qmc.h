// Copyright (c) the ROD reproduction authors.
//
// Quasi-Monte-Carlo machinery for feasible-set volume integration (paper
// §7.1 computes feasible set sizes "using Quasi Monte Carlo integration").
// A Halton low-discrepancy sequence drives sampling; a measure-preserving
// spacings transform maps the unit cube onto the solid probability simplex
// (the normalized ideal feasible set), so the feasible ratio is estimated
// with O((log N)^d / N) error instead of plain MC's O(N^{-1/2}).

#ifndef ROD_GEOMETRY_QMC_H_
#define ROD_GEOMETRY_QMC_H_

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace rod::geom {

/// The first `count` prime numbers (Halton bases).
std::vector<uint32_t> FirstPrimes(size_t count);

/// Van der Corput radical inverse of `index` in base `base`, in [0, 1).
double RadicalInverse(uint64_t index, uint32_t base);

/// Halton low-discrepancy sequence in [0,1)^dims.
///
/// Deterministic: the i-th point is the same for every instance with the
/// same `dims` and `start_index`. The default start index skips the early
/// highly correlated prefix.
class HaltonSequence {
 public:
  /// Sequence over `dims` dimensions (dims >= 1). Dimensions beyond ~12
  /// suffer the classic Halton correlation artifacts; the volume estimator
  /// falls back to pseudo-random sampling there.
  explicit HaltonSequence(size_t dims, uint64_t start_index = 32);

  /// Next point of the sequence.
  Vector Next();

  size_t dims() const { return bases_.size(); }

 private:
  std::vector<uint32_t> bases_;
  uint64_t index_;
};

/// Maps a point of the unit cube [0,1]^d onto the solid simplex
/// `{x >= 0, sum x <= 1}` uniformly in measure (sorted-spacings transform:
/// sort the coordinates and take consecutive differences). Sorting is done
/// in place on the argument.
Vector MapUnitCubeToSimplex(Vector cube_point);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_QMC_H_
