#include "geometry/polygon2d.h"

#include <cmath>

namespace rod::geom {

double PolygonArea(const Polygon2& poly) {
  if (poly.size() < 3) return 0.0;
  double twice = 0.0;
  for (size_t i = 0; i < poly.size(); ++i) {
    const Point2& p = poly[i];
    const Point2& q = poly[(i + 1) % poly.size()];
    twice += p.x * q.y - q.x * p.y;
  }
  return std::fabs(twice) / 2.0;
}

Polygon2 ClipHalfPlane(const Polygon2& poly, double a, double b, double c) {
  Polygon2 out;
  if (poly.empty()) return out;
  auto inside = [&](const Point2& p) { return a * p.x + b * p.y <= c + 1e-12; };
  auto intersect = [&](const Point2& p, const Point2& q) {
    // Segment p->q crosses a*x + b*y = c; solve for the parameter t.
    const double fp = a * p.x + b * p.y - c;
    const double fq = a * q.x + b * q.y - c;
    const double t = fp / (fp - fq);
    return Point2{p.x + t * (q.x - p.x), p.y + t * (q.y - p.y)};
  };
  for (size_t i = 0; i < poly.size(); ++i) {
    const Point2& cur = poly[i];
    const Point2& nxt = poly[(i + 1) % poly.size()];
    const bool cur_in = inside(cur);
    const bool nxt_in = inside(nxt);
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) out.push_back(intersect(cur, nxt));
  }
  return out;
}

Result<Polygon2> FeasiblePolygon(const Matrix& weights) {
  if (weights.cols() != 2) {
    return Status::InvalidArgument(
        "exact polygon area requires exactly 2 rate variables");
  }
  // Start from the ideal triangle (the superset of every feasible set).
  Polygon2 poly = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  for (size_t i = 0; i < weights.rows() && !poly.empty(); ++i) {
    poly = ClipHalfPlane(poly, weights(i, 0), weights(i, 1), 1.0);
  }
  // Drop (near-)duplicate consecutive vertices produced when a clipping
  // plane passes exactly through an existing vertex.
  Polygon2 dedup;
  for (const Point2& p : poly) {
    if (dedup.empty() || std::fabs(p.x - dedup.back().x) > 1e-12 ||
        std::fabs(p.y - dedup.back().y) > 1e-12) {
      dedup.push_back(p);
    }
  }
  if (dedup.size() > 1 && std::fabs(dedup.front().x - dedup.back().x) < 1e-12 &&
      std::fabs(dedup.front().y - dedup.back().y) < 1e-12) {
    dedup.pop_back();
  }
  return dedup;
}

Result<double> ExactRatioToIdeal2D(const Matrix& weights) {
  auto poly = FeasiblePolygon(weights);
  if (!poly.ok()) return poly.status();
  return PolygonArea(*poly) / 0.5;
}

}  // namespace rod::geom
