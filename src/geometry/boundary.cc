#include "geometry/boundary.h"

#include <limits>

namespace rod::geom {

namespace {

Status CheckDirection(const Matrix& weights, std::span<const double> dir) {
  if (dir.size() != weights.cols()) {
    return Status::InvalidArgument("direction dimension mismatch");
  }
  bool any_positive = false;
  for (double v : dir) {
    if (v < 0.0) {
      return Status::InvalidArgument("direction must be non-negative");
    }
    any_positive |= v > 0.0;
  }
  if (!any_positive) {
    return Status::InvalidArgument("direction must be non-zero");
  }
  return Status::OK();
}

}  // namespace

Result<double> BoundaryScale(const Matrix& weights,
                             std::span<const double> direction) {
  ROD_RETURN_IF_ERROR(CheckDirection(weights, direction));
  double worst = 0.0;
  for (size_t i = 0; i < weights.rows(); ++i) {
    worst = std::max(worst, Dot(weights.Row(i), direction));
  }
  if (worst <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / worst;
}

Result<size_t> BottleneckNode(const Matrix& weights,
                              std::span<const double> direction) {
  ROD_RETURN_IF_ERROR(CheckDirection(weights, direction));
  size_t best = weights.rows();
  double worst = 0.0;
  for (size_t i = 0; i < weights.rows(); ++i) {
    const double load = Dot(weights.Row(i), direction);
    if (load > worst) {
      worst = load;
      best = i;
    }
  }
  if (best == weights.rows()) {
    return Status::FailedPrecondition(
        "no node loads on this direction; boundary at infinity");
  }
  return best;
}

Result<Vector> CriticalDirection(const Matrix& weights) {
  size_t best = weights.rows();
  double best_norm = 0.0;
  double min_distance = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < weights.rows(); ++i) {
    const double norm = Norm2(weights.Row(i));
    if (norm <= 0.0) continue;
    const double distance = 1.0 / norm;
    if (distance < min_distance) {
      min_distance = distance;
      best = i;
      best_norm = norm;
    }
  }
  if (best == weights.rows()) {
    return Status::FailedPrecondition("all node weight rows are zero");
  }
  Vector dir(weights.cols());
  for (size_t k = 0; k < dir.size(); ++k) {
    dir[k] = weights(best, k) / best_norm;
  }
  return dir;
}

Result<double> Headroom(const Matrix& weights, std::span<const double> x) {
  return BoundaryScale(weights, x);
}

}  // namespace rod::geom
