// Copyright (c) the ROD reproduction authors.
//
// A shared, thread-safe cache of simplex sample matrices. Every volume
// estimate in a bench sweep integrates over the *same* ideal simplex; only
// the weight matrices differ between placements. Generating the Halton /
// pseudo-random points and mapping them through MapUnitCubeToSimplex once
// per (dims, samples, generator, seed, shift) key — then sharing the S x d
// row-major matrix read-only across all placements — turns RatioToIdeal
// from generate+sort+test per call into a pure membership kernel.

#ifndef ROD_GEOMETRY_SAMPLE_CACHE_H_
#define ROD_GEOMETRY_SAMPLE_CACHE_H_

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

#include "common/matrix.h"

namespace rod::geom {

/// Minimal aligned allocator for the SIMD lane storage (C++17 aligned new).
template <typename T, size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}
  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }
  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

/// 32-byte-aligned double buffer (one AVX2 vector per alignment unit).
using AlignedLaneBuffer = std::vector<double, AlignedAllocator<double, 32>>;

/// Identifies one deterministic simplex sample set.
struct SimplexSampleKey {
  size_t dims = 0;
  size_t num_samples = 0;

  /// Plain pseudo-random (xoshiro) points instead of the Halton sequence.
  bool pseudo_random = false;

  /// Rng seed; meaningful (and expected non-zero-canonical) only when
  /// `pseudo_random` — Halton ignores seeds, so Halton keys leave it 0 and
  /// every seed shares one cached sample set.
  uint64_t seed = 0;

  /// Cranley–Patterson rotation (Halton only): replication
  /// `shift_index - 1` of the shift stream seeded with `shift_seed`;
  /// 0 means unshifted.
  uint64_t shift_index = 0;
  uint64_t shift_seed = 0;

  bool operator==(const SimplexSampleKey&) const = default;
};

/// Generates the S x d sample matrix for `key` (row s = one point of the
/// solid simplex `{x >= 0, sum x <= 1}`). Pure and deterministic: the same
/// key yields the same matrix bit for bit, and the points are identical to
/// what the pre-cache sequential estimator drew for the same options.
Matrix GenerateSimplexSamples(const SimplexSampleKey& key);

/// One cached sample set in both layouts the membership kernel consumes:
/// the historical S x d row-major matrix (scalar path, Row(s) spans) and a
/// transposed d x lane_stride lane buffer (SIMD path) where
/// `lanes[k * lane_stride + s] == samples(s, k)`. The stride is the sample
/// count padded up to a multiple of kSimdGroup so every lane row starts
/// 32-byte aligned and a 4-wide load never reads past the buffer; pad
/// columns are zero and never counted (the SIMD kernel only processes full
/// groups of real samples, the scalar tail covers the rest).
struct SimplexSampleSet {
  Matrix samples;
  size_t lane_stride = 0;
  AlignedLaneBuffer lanes;

  const double* Lane(size_t k) const {
    return lanes.data() + k * lane_stride;
  }
};

/// Builds the dual-layout sample set for `key` (generation + transpose).
SimplexSampleSet GenerateSimplexSampleSet(const SimplexSampleKey& key);

/// The cache. `Get` is safe to call from ParallelFor workers; generation
/// runs outside the lock, so concurrent misses on different keys generate
/// in parallel (a lost race on the same key discards the duplicate and
/// returns the first-inserted matrix — both are bit-identical anyway).
class SimplexSampleCache {
 public:
  /// Keeps at most `max_entries` sample sets, evicting the oldest insert
  /// first. Outstanding shared_ptrs keep evicted matrices alive.
  explicit SimplexSampleCache(size_t max_entries = 64);

  /// The sample set for `key`: cached buffer on hit, generated and
  /// inserted on miss.
  std::shared_ptr<const SimplexSampleSet> Get(const SimplexSampleKey& key);

  size_t hits() const;
  size_t misses() const;
  size_t size() const;

  /// Drops every entry and zeroes the hit/miss counters.
  void Clear();

  /// Process-wide instance used by FeasibleSet.
  static SimplexSampleCache& Global();

 private:
  struct KeyHash {
    size_t operator()(const SimplexSampleKey& key) const;
  };

  mutable std::mutex mu_;
  size_t max_entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  std::unordered_map<SimplexSampleKey, std::shared_ptr<const SimplexSampleSet>,
                     KeyHash>
      entries_;
  std::deque<SimplexSampleKey> insertion_order_;
};

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_SAMPLE_CACHE_H_
