// AVX2 variant of the membership kernel. This translation unit is the only
// one compiled with -mavx2 (see src/CMakeLists.txt); callers must gate on
// SimdKernelAvailable() before entering. Bit-exactness contract: each lane
// accumulates w(i,0)*x0 + w(i,1)*x1 + ... with explicit mul-then-add in
// ascending k, exactly the scalar Dot recurrence, and the affine map uses
// the same lb[k] + scale * x[k] mul-then-add shape — no FMA contraction.

#include "geometry/simd_kernel.h"

#ifdef ROD_HAVE_AVX2_KERNEL

#include <immintrin.h>

namespace rod::geom {

size_t CountContainedAvx2(const double* weights, size_t rows, size_t dims,
                          const double* lanes, size_t lane_stride,
                          size_t begin, size_t end, const double* lower_bound,
                          double scale, double tol, double* map_scratch,
                          size_t* tail_begin) {
  const size_t num_groups = (end - begin) / kSimdGroup;
  *tail_begin = begin + num_groups * kSimdGroup;
  const __m256d limit = _mm256_set1_pd(1.0 + tol);
  const __m256d vscale = _mm256_set1_pd(scale);
  size_t feasible = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t s = begin + g * kSimdGroup;
    if (lower_bound != nullptr) {
      // mapped[k] = lower_bound[k] + scale * x[k], materialized once per
      // group so the row loop below is a pure dot kernel.
      for (size_t k = 0; k < dims; ++k) {
        const __m256d xk = _mm256_loadu_pd(lanes + k * lane_stride + s);
        const __m256d m = _mm256_add_pd(_mm256_set1_pd(lower_bound[k]),
                                        _mm256_mul_pd(vscale, xk));
        _mm256_storeu_pd(map_scratch + k * kSimdGroup, m);
      }
    }
    // violated accumulates comparison masks; a lane counts as feasible iff
    // no row ever pushed its dot product above 1 + tol.
    __m256d violated = _mm256_setzero_pd();
    for (size_t i = 0; i < rows; ++i) {
      const double* w = weights + i * dims;
      __m256d acc = _mm256_setzero_pd();
      if (lower_bound != nullptr) {
        for (size_t k = 0; k < dims; ++k) {
          const __m256d xk = _mm256_loadu_pd(map_scratch + k * kSimdGroup);
          acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(w[k]), xk));
        }
      } else {
        for (size_t k = 0; k < dims; ++k) {
          const __m256d xk = _mm256_loadu_pd(lanes + k * lane_stride + s);
          acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(w[k]), xk));
        }
      }
      violated =
          _mm256_or_pd(violated, _mm256_cmp_pd(acc, limit, _CMP_GT_OQ));
      if (_mm256_movemask_pd(violated) == 0xF) break;  // all lanes out
    }
    feasible += kSimdGroup -
                static_cast<size_t>(
                    __builtin_popcount(_mm256_movemask_pd(violated)));
  }
  return feasible;
}

}  // namespace rod::geom

#endif  // ROD_HAVE_AVX2_KERNEL
