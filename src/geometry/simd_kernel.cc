#include "geometry/simd_kernel.h"

#include <atomic>
#include <cstdlib>

namespace rod::geom {

namespace {

bool CpuHasAvx2() {
#if defined(ROD_HAVE_AVX2_KERNEL) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool DisabledByEnv() {
  const char* v = std::getenv("ROD_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0';
}

std::atomic<bool>& EnabledFlag() {
  // Initialized once from the environment; SetSimdKernelEnabled overrides.
  static std::atomic<bool> enabled{!DisabledByEnv()};
  return enabled;
}

}  // namespace

bool SimdKernelAvailable() {
  static const bool available = CpuHasAvx2();
  return available;
}

bool SimdKernelEnabled() {
  return SimdKernelAvailable() && EnabledFlag().load(std::memory_order_relaxed);
}

void SetSimdKernelEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

const char* ActiveSimdIsa() { return SimdKernelEnabled() ? "avx2" : "scalar"; }

#ifndef ROD_HAVE_AVX2_KERNEL
// Link stub for builds without the AVX2 translation unit; never reached
// because SimdKernelAvailable() is false on such builds.
size_t CountContainedAvx2(const double*, size_t, size_t, const double*,
                          size_t, size_t begin, size_t, const double*, double,
                          double, double*, size_t* tail_begin) {
  *tail_begin = begin;
  return 0;
}
#endif

}  // namespace rod::geom
