#include "geometry/hyperplane.h"

#include <cmath>
#include <limits>
#include <string>

namespace rod::geom {

Result<Matrix> ComputeWeightMatrix(const Matrix& node_coeffs,
                                   std::span<const double> total_coeffs,
                                   std::span<const double> capacities) {
  const size_t n = node_coeffs.rows();
  const size_t dims = node_coeffs.cols();
  if (total_coeffs.size() != dims) {
    return Status::InvalidArgument("total_coeffs size mismatch");
  }
  if (capacities.size() != n) {
    return Status::InvalidArgument("capacities size mismatch");
  }
  double total_capacity = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (capacities[i] <= 0.0) {
      return Status::InvalidArgument("node " + std::to_string(i) +
                                     " has non-positive capacity");
    }
    total_capacity += capacities[i];
  }
  for (size_t k = 0; k < dims; ++k) {
    if (total_coeffs[k] <= 0.0) {
      return Status::InvalidArgument(
          "rate variable " + std::to_string(k) +
          " has non-positive total load coefficient");
    }
  }
  Matrix weights(n, dims);
  for (size_t i = 0; i < n; ++i) {
    const double cap_share = capacities[i] / total_capacity;
    for (size_t k = 0; k < dims; ++k) {
      weights(i, k) = (node_coeffs(i, k) / total_coeffs[k]) / cap_share;
    }
  }
  return weights;
}

Result<double> IdealFeasibleVolume(std::span<const double> total_coeffs,
                                   double total_capacity) {
  if (total_capacity <= 0.0) {
    return Status::InvalidArgument("non-positive total capacity");
  }
  const size_t d = total_coeffs.size();
  if (d == 0) return Status::InvalidArgument("zero-dimensional rate space");
  // C_T^d / (d! * prod l_k), computed in log space to avoid overflow for
  // large d or extreme coefficient scales.
  double log_vol = static_cast<double>(d) * std::log(total_capacity);
  for (size_t k = 1; k <= d; ++k) log_vol -= std::log(static_cast<double>(k));
  for (double lk : total_coeffs) {
    if (lk <= 0.0) {
      return Status::InvalidArgument("non-positive total load coefficient");
    }
    log_vol -= std::log(lk);
  }
  return std::exp(log_vol);
}

double PlaneDistance(std::span<const double> w_row) {
  const double norm = Norm2(w_row);
  if (norm == 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / norm;
}

double MinPlaneDistance(const Matrix& weights) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < weights.rows(); ++i) {
    best = std::min(best, PlaneDistance(weights.Row(i)));
  }
  return best;
}

double PlaneDistanceFrom(std::span<const double> w_row,
                         std::span<const double> b) {
  const double norm = Norm2(w_row);
  if (norm == 0.0) return std::numeric_limits<double>::infinity();
  return (1.0 - Dot(w_row, b)) / norm;
}

double MinPlaneDistanceFrom(const Matrix& weights, std::span<const double> b) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < weights.rows(); ++i) {
    best = std::min(best, PlaneDistanceFrom(weights.Row(i), b));
  }
  return best;
}

double AxisDistance(const Matrix& weights, size_t i, size_t k) {
  const double w = weights(i, k);
  if (w <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / w;
}

Vector MinAxisDistances(const Matrix& weights) {
  Vector out(weights.cols(), std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < weights.rows(); ++i) {
    for (size_t k = 0; k < weights.cols(); ++k) {
      out[k] = std::min(out[k], AxisDistance(weights, i, k));
    }
  }
  return out;
}

double AxisDistanceVolumeLowerBound(const Matrix& weights) {
  double bound = 1.0;
  const Vector mins = MinAxisDistances(weights);
  for (double a : mins) bound *= std::min(1.0, a);
  return bound;
}

Vector NormalizePoint(std::span<const double> rates,
                      std::span<const double> total_coeffs,
                      double total_capacity) {
  assert(rates.size() == total_coeffs.size());
  assert(total_capacity > 0.0);
  Vector x(rates.size());
  for (size_t k = 0; k < rates.size(); ++k) {
    x[k] = total_coeffs[k] * rates[k] / total_capacity;
  }
  return x;
}

double IdealPlaneDistance(size_t dims) {
  assert(dims > 0);
  return 1.0 / std::sqrt(static_cast<double>(dims));
}

}  // namespace rod::geom
