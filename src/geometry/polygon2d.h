// Copyright (c) the ROD reproduction authors.
//
// Exact 2-D feasible-set area via half-plane clipping. For two input
// streams the feasible set is a convex polygon obtained by clipping the
// ideal triangle with each node hyperplane; its shoelace area cross-checks
// the QMC estimator and renders the paper's Figures 5–6 exactly.

#ifndef ROD_GEOMETRY_POLYGON2D_H_
#define ROD_GEOMETRY_POLYGON2D_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace rod::geom {

/// A 2-D point.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// A convex polygon as a counter-clockwise vertex list.
using Polygon2 = std::vector<Point2>;

/// Shoelace area of a simple polygon (absolute value).
double PolygonArea(const Polygon2& poly);

/// Clips convex polygon `poly` by the half-plane `a*x + b*y <= c`
/// (Sutherland–Hodgman step). Returns the (possibly empty) result.
Polygon2 ClipHalfPlane(const Polygon2& poly, double a, double b, double c);

/// Exact feasible polygon of a 2-column weight matrix in normalized space:
/// the ideal triangle {(0,0),(1,0),(0,1)} clipped by every node constraint
/// `W_i . x <= 1`. Fails unless `weights` has exactly 2 columns.
Result<Polygon2> FeasiblePolygon(const Matrix& weights);

/// Exact `V(F)/V(F*)` for d = 2: `PolygonArea(FeasiblePolygon(W)) / (1/2)`.
Result<double> ExactRatioToIdeal2D(const Matrix& weights);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_POLYGON2D_H_
