#include "geometry/feasible_set.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "geometry/sample_cache.h"
#include "geometry/simd_kernel.h"

namespace rod::geom {

namespace {

/// Samples per ParallelFor chunk in the membership kernel: large enough to
/// amortize dispatch, small enough to load-balance a 2^15-sample estimate
/// across 8 threads.
constexpr size_t kKernelGrain = 1024;

/// The sample-set key RatioToIdeal / RatioToIdealAbove integrate over.
SimplexSampleKey BaseKey(size_t dims, const VolumeOptions& options) {
  return VolumeSampleKey(dims, options);
}

/// The sample set of Cranley–Patterson replication `r` — or, past the
/// Halton cutoff, of the independently reseeded pseudo-random replication.
SimplexSampleKey ReplicationKey(size_t dims, const VolumeOptions& options,
                                size_t r) {
  SimplexSampleKey key = BaseKey(dims, options);
  if (key.pseudo_random) {
    key.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (r + 1));
  } else {
    key.shift_index = r + 1;
    key.shift_seed = options.seed ^ 0xc9a471e5ULL;
  }
  return key;
}

/// Scalar membership loop over samples `[begin, end)` of the row-major
/// matrix: the bit-exact reference the SIMD path must reproduce.
size_t CountContainedScalarRange(const Matrix& weights, const Matrix& samples,
                                 size_t begin, size_t end,
                                 std::span<const double> lower_bound,
                                 double scale, double tol, Vector& mapped) {
  const size_t d = samples.cols();
  size_t feasible = 0;
  for (size_t s = begin; s < end; ++s) {
    std::span<const double> x = samples.Row(s);
    if (!lower_bound.empty()) {
      for (size_t k = 0; k < d; ++k) {
        mapped[k] = lower_bound[k] + scale * x[k];
      }
      x = mapped;
    }
    bool inside = true;
    for (size_t i = 0; i < weights.rows(); ++i) {
      if (Dot(weights.Row(i), x) > 1.0 + tol) {
        inside = false;
        break;
      }
    }
    if (inside) ++feasible;
  }
  return feasible;
}

/// Blocked membership kernel: counts rows `x` of `samples` — optionally
/// affinely mapped to `lower_bound + scale * x` first — that satisfy
/// `W x <= 1 + tol`, with per-sample early exit over the node rows.
/// Chunk boundaries are fixed by kKernelGrain and partial counts are
/// integers reduced in chunk order, so the result is bit-identical for
/// every `num_threads`.
size_t CountContainedImpl(const Matrix& weights, const Matrix& samples,
                          size_t num_threads,
                          std::span<const double> lower_bound, double scale,
                          double tol) {
  const size_t num_samples = samples.rows();
  const size_t d = samples.cols();
  assert(weights.cols() == d);
  (void)d;
  const size_t num_chunks = (num_samples + kKernelGrain - 1) / kKernelGrain;
  std::vector<size_t> counts(num_chunks, 0);
  ParallelFor(num_threads, num_samples, kKernelGrain,
              [&](size_t chunk, size_t begin, size_t end) {
                Vector mapped(lower_bound.empty() ? 0 : samples.cols());
                counts[chunk] = CountContainedScalarRange(
                    weights, samples, begin, end, lower_bound, scale, tol,
                    mapped);
              });
  size_t total = 0;
  for (size_t c : counts) total += c;
  return total;
}

/// Dual-layout kernel over a cached SimplexSampleSet: full lane groups go
/// through the AVX2 kernel when it is enabled, the remainder (and the whole
/// range when SIMD is off) through the scalar reference loop. Group
/// boundaries fall inside chunks (kKernelGrain is a multiple of kSimdGroup),
/// and the per-sample verdicts are bit-identical between the two paths, so
/// the count matches the scalar kernel for every thread count and ISA.
size_t CountContainedImpl(const Matrix& weights, const SimplexSampleSet& set,
                          size_t num_threads,
                          std::span<const double> lower_bound, double scale,
                          double tol) {
  static_assert(kKernelGrain % kSimdGroup == 0);
  const Matrix& samples = set.samples;
  if (!SimdKernelEnabled() || set.lanes.empty()) {
    return CountContainedImpl(weights, samples, num_threads, lower_bound,
                              scale, tol);
  }
  const size_t num_samples = samples.rows();
  const size_t d = samples.cols();
  assert(weights.cols() == d);
  // Feasibility is the AND over all constraint rows, so any row order
  // yields the same per-sample verdict. Scanning the heaviest rows first
  // (largest row sum ~ largest expected dot against a simplex point) lets
  // the vector kernel's all-lanes-violated early exit fire after a row or
  // two on clearly infeasible samples instead of marching through the
  // light rows. stable_sort keeps ties in original order, so the permuted
  // matrix — and therefore the scan cost, not just the count — is
  // deterministic.
  Matrix ordered(weights.rows(), d);
  {
    std::vector<size_t> order(weights.rows());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      double sa = 0.0, sb = 0.0;
      for (size_t k = 0; k < d; ++k) {
        sa += weights(a, k);
        sb += weights(b, k);
      }
      return sa > sb;
    });
    for (size_t i = 0; i < order.size(); ++i) {
      std::span<const double> src = weights.Row(order[i]);
      std::copy(src.begin(), src.end(), ordered.Row(i).begin());
    }
  }
  const size_t num_chunks = (num_samples + kKernelGrain - 1) / kKernelGrain;
  std::vector<size_t> counts(num_chunks, 0);
  ParallelFor(
      num_threads, num_samples, kKernelGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        Vector mapped(lower_bound.empty() ? 0 : d);
        Vector map_scratch(lower_bound.empty() ? 0 : d * kSimdGroup);
        size_t tail = begin;
        size_t feasible = CountContainedAvx2(
            ordered.Row(0).data(), ordered.rows(), d, set.lanes.data(),
            set.lane_stride, begin, end,
            lower_bound.empty() ? nullptr : lower_bound.data(), scale, tol,
            map_scratch.empty() ? nullptr : map_scratch.data(), &tail);
        feasible += CountContainedScalarRange(weights, samples, tail, end,
                                              lower_bound, scale, tol, mapped);
        counts[chunk] = feasible;
      });
  size_t total = 0;
  for (size_t c : counts) total += c;
  return total;
}

}  // namespace

SimplexSampleKey VolumeSampleKey(size_t dims, const VolumeOptions& options) {
  SimplexSampleKey key;
  key.dims = dims;
  key.num_samples = options.num_samples;
  if (options.use_pseudo_random || dims > options.max_halton_dims) {
    key.pseudo_random = true;
    key.seed = options.seed;
  }
  return key;
}

FeasibleSet::FeasibleSet(Matrix weights) : weights_(std::move(weights)) {
  assert(weights_.rows() > 0 && weights_.cols() > 0);
}

bool FeasibleSet::Contains(std::span<const double> x, double tol) const {
  assert(x.size() == weights_.cols());
  for (size_t i = 0; i < weights_.rows(); ++i) {
    if (Dot(weights_.Row(i), x) > 1.0 + tol) return false;
  }
  return true;
}

size_t FeasibleSet::CountContained(const Matrix& samples, size_t num_threads,
                                   double tol) const {
  return CountContainedImpl(weights_, samples, num_threads, {}, 1.0, tol);
}

double FeasibleSet::RatioToIdeal(const VolumeOptions& options) const {
  assert(options.num_samples > 0);
  const auto samples = SimplexSampleCache::Global().Get(BaseKey(dims(), options));
  const size_t feasible = CountContainedImpl(
      weights_, *samples, options.num_threads, {}, 1.0, kMembershipTol);
  return static_cast<double>(feasible) /
         static_cast<double>(options.num_samples);
}

double FeasibleSet::NormalizedVolume(const VolumeOptions& options) const {
  double log_simplex = 0.0;
  for (size_t k = 1; k <= dims(); ++k) {
    log_simplex -= std::log(static_cast<double>(k));
  }
  return RatioToIdeal(options) * std::exp(log_simplex);
}

FeasibleSet::RatioEstimate FeasibleSet::RatioToIdealWithError(
    size_t replications, const VolumeOptions& options) const {
  assert(replications >= 2);
  const size_t d = dims();
  // One lane per replication: each fetches (or generates) its own rotated
  // sample set and runs the kernel single-threaded. Estimates land in
  // replication-indexed slots and are merged in replication order, so the
  // result is bit-identical for every thread count.
  std::vector<double> estimates(replications, 0.0);
  ParallelFor(options.num_threads, replications, 1,
              [&](size_t, size_t begin, size_t end) {
                for (size_t r = begin; r < end; ++r) {
                  const auto samples = SimplexSampleCache::Global().Get(
                      ReplicationKey(d, options, r));
                  const size_t feasible = CountContainedImpl(
                      weights_, *samples, 1, {}, 1.0, kMembershipTol);
                  estimates[r] = static_cast<double>(feasible) /
                                 static_cast<double>(options.num_samples);
                }
              });
  double sum = 0.0, sum2 = 0.0;
  for (double estimate : estimates) {
    sum += estimate;
    sum2 += estimate * estimate;
  }
  RatioEstimate out;
  out.replications = replications;
  out.mean = sum / static_cast<double>(replications);
  const double var =
      std::max(0.0, (sum2 / static_cast<double>(replications) -
                     out.mean * out.mean) *
                        static_cast<double>(replications) /
                        static_cast<double>(replications - 1));
  out.std_error = std::sqrt(var / static_cast<double>(replications));
  return out;
}

Result<double> FeasibleSet::RatioToIdealAbove(
    std::span<const double> lower_bound, const VolumeOptions& options) const {
  const size_t d = dims();
  if (lower_bound.size() != d) {
    return Status::InvalidArgument("lower bound dimension mismatch");
  }
  for (double b : lower_bound) {
    if (b < 0.0) {
      return Status::InvalidArgument("lower bound must be non-negative");
    }
  }
  // {x >= b, sum x <= 1} is the simplex scaled by s = 1 - sum(b) and
  // translated to b; the kernel maps the cached simplex samples through
  // that affine map before testing membership.
  const double scale = 1.0 - Sum(lower_bound);
  if (scale <= 0.0) return 0.0;

  const auto samples = SimplexSampleCache::Global().Get(BaseKey(d, options));
  const size_t feasible =
      CountContainedImpl(weights_, *samples, options.num_threads, lower_bound,
                         scale, kMembershipTol);
  return static_cast<double>(feasible) /
         static_cast<double>(options.num_samples);
}

}  // namespace rod::geom
