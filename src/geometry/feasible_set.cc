#include "geometry/feasible_set.h"

#include <cmath>

#include "geometry/qmc.h"

namespace rod::geom {

FeasibleSet::FeasibleSet(Matrix weights) : weights_(std::move(weights)) {
  assert(weights_.rows() > 0 && weights_.cols() > 0);
}

bool FeasibleSet::Contains(std::span<const double> x, double tol) const {
  assert(x.size() == weights_.cols());
  for (size_t i = 0; i < weights_.rows(); ++i) {
    if (Dot(weights_.Row(i), x) > 1.0 + tol) return false;
  }
  return true;
}

template <typename PointGen>
double FeasibleSet::SampleRatio(size_t num_samples, PointGen&& gen) const {
  size_t feasible = 0;
  for (size_t s = 0; s < num_samples; ++s) {
    if (Contains(gen())) ++feasible;
  }
  return static_cast<double>(feasible) / static_cast<double>(num_samples);
}

double FeasibleSet::RatioToIdeal(const VolumeOptions& options) const {
  assert(options.num_samples > 0);
  const size_t d = dims();
  if (options.use_pseudo_random || d > options.max_halton_dims) {
    Rng rng(options.seed);
    return SampleRatio(options.num_samples, [&] {
      Vector cube(d);
      for (double& v : cube) v = rng.NextDouble();
      return MapUnitCubeToSimplex(std::move(cube));
    });
  }
  HaltonSequence halton(d);
  return SampleRatio(options.num_samples, [&] {
    return MapUnitCubeToSimplex(halton.Next());
  });
}

double FeasibleSet::NormalizedVolume(const VolumeOptions& options) const {
  double log_simplex = 0.0;
  for (size_t k = 1; k <= dims(); ++k) {
    log_simplex -= std::log(static_cast<double>(k));
  }
  return RatioToIdeal(options) * std::exp(log_simplex);
}

FeasibleSet::RatioEstimate FeasibleSet::RatioToIdealWithError(
    size_t replications, const VolumeOptions& options) const {
  assert(replications >= 2);
  const size_t d = dims();
  Rng shift_rng(options.seed ^ 0xc9a471e5ULL);
  double sum = 0.0, sum2 = 0.0;
  for (size_t r = 0; r < replications; ++r) {
    // Cranley–Patterson rotation: shift every Halton point by a common
    // uniform offset modulo 1. Each rotation is an unbiased estimator.
    Vector shift(d);
    for (double& v : shift) v = shift_rng.NextDouble();
    HaltonSequence halton(d);
    const double estimate = SampleRatio(options.num_samples, [&] {
      Vector p = halton.Next();
      for (size_t k = 0; k < d; ++k) {
        p[k] += shift[k];
        if (p[k] >= 1.0) p[k] -= 1.0;
      }
      return MapUnitCubeToSimplex(std::move(p));
    });
    sum += estimate;
    sum2 += estimate * estimate;
  }
  RatioEstimate out;
  out.replications = replications;
  out.mean = sum / static_cast<double>(replications);
  const double var =
      std::max(0.0, (sum2 / static_cast<double>(replications) -
                     out.mean * out.mean) *
                        static_cast<double>(replications) /
                        static_cast<double>(replications - 1));
  out.std_error = std::sqrt(var / static_cast<double>(replications));
  return out;
}

Result<double> FeasibleSet::RatioToIdealAbove(
    std::span<const double> lower_bound, const VolumeOptions& options) const {
  const size_t d = dims();
  if (lower_bound.size() != d) {
    return Status::InvalidArgument("lower bound dimension mismatch");
  }
  for (double b : lower_bound) {
    if (b < 0.0) {
      return Status::InvalidArgument("lower bound must be non-negative");
    }
  }
  // {x >= b, sum x <= 1} is the simplex scaled by s = 1 - sum(b) and
  // translated to b; sample it by affinely mapping simplex samples.
  const double scale = 1.0 - Sum(lower_bound);
  if (scale <= 0.0) return 0.0;

  auto shift = [&](Vector x) {
    for (size_t k = 0; k < d; ++k) x[k] = lower_bound[k] + scale * x[k];
    return x;
  };
  if (options.use_pseudo_random || d > options.max_halton_dims) {
    Rng rng(options.seed);
    return SampleRatio(options.num_samples, [&] {
      Vector cube(d);
      for (double& v : cube) v = rng.NextDouble();
      return shift(MapUnitCubeToSimplex(std::move(cube)));
    });
  }
  HaltonSequence halton(d);
  return SampleRatio(options.num_samples, [&] {
    return shift(MapUnitCubeToSimplex(halton.Next()));
  });
}

}  // namespace rod::geom
