#include "geometry/ascii_plot.h"

#include <cmath>

#include "geometry/feasible_set.h"

namespace rod::geom {

Result<std::string> RenderFeasibleSet2D(const Matrix& weights,
                                        const AsciiPlotOptions& options,
                                        const Vector* lower_bound) {
  if (weights.cols() != 2) {
    return Status::InvalidArgument("ASCII plot requires exactly 2 columns");
  }
  if (options.width < 4 || options.height < 4) {
    return Status::InvalidArgument("plot area too small");
  }
  if (lower_bound != nullptr && lower_bound->size() != 2) {
    return Status::InvalidArgument("lower bound must be 2-D");
  }
  const FeasibleSet fs(weights);

  std::string out;
  out.reserve((options.width + 8) * (options.height + 2));
  // Rows top (y = y_max) to bottom (y = 0); the y axis is drawn at x = 0.
  for (size_t row = 0; row < options.height; ++row) {
    const double y = options.y_max *
                     (static_cast<double>(options.height - row) - 0.5) /
                     static_cast<double>(options.height);
    out += (row == 0 ? "x2 ^" : "   |");
    for (size_t col = 0; col < options.width; ++col) {
      const double x = options.x_max * (static_cast<double>(col) + 0.5) /
                       static_cast<double>(options.width);
      char c;
      if (lower_bound != nullptr &&
          std::fabs(x - (*lower_bound)[0]) <=
              0.5 * options.x_max / static_cast<double>(options.width) &&
          std::fabs(y - (*lower_bound)[1]) <=
              0.5 * options.y_max / static_cast<double>(options.height)) {
        c = options.lower_bound_mark;
      } else if (fs.Contains(Vector{x, y})) {
        c = options.feasible;
      } else if (x + y <= 1.0) {
        c = options.infeasible_ideal;
      } else {
        c = options.outside;
      }
      out += c;
    }
    out += '\n';
  }
  out += "   +";
  out.append(options.width, '-');
  out += "> x1\n    '#' feasible, '.' below ideal hyperplane but overloaded\n";
  return out;
}

}  // namespace rod::geom
