// Copyright (c) the ROD reproduction authors.
//
// Terminal rendering of 2-D normalized feasible sets — the paper's
// Figures 3, 5, 6 and 12 as character grids. Used by the example binaries
// and the Figure-5 benchmark so the geometry is visible without a plotting
// stack.

#ifndef ROD_GEOMETRY_ASCII_PLOT_H_
#define ROD_GEOMETRY_ASCII_PLOT_H_

#include <string>

#include "common/matrix.h"
#include "common/status.h"

namespace rod::geom {

/// Rendering options.
struct AsciiPlotOptions {
  size_t width = 46;   ///< Character columns for x in [0, x_max].
  size_t height = 23;  ///< Character rows for y in [0, y_max].
  double x_max = 1.05; ///< Plotted range (normalized units).
  double y_max = 1.05;

  char feasible = '#';       ///< Inside the feasible set.
  char infeasible_ideal = '.';  ///< Inside the ideal simplex but overloaded.
  char outside = ' ';        ///< Above the ideal hyperplane.
  char lower_bound_mark = 'B';  ///< The §6.1 floor point, if any.
};

/// Renders the feasible set of a 2-column weight matrix in normalized
/// space, with the ideal hyperplane x + y = 1 as the boundary between
/// '.' and ' '. Optionally marks a lower-bound point. Fails unless
/// `weights` has exactly 2 columns.
Result<std::string> RenderFeasibleSet2D(const Matrix& weights,
                                        const AsciiPlotOptions& options = {},
                                        const Vector* lower_bound = nullptr);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_ASCII_PLOT_H_
