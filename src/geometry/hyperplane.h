// Copyright (c) the ROD reproduction authors.
//
// The normalized feasible-set geometry of paper §3. After the coordinate
// change x_k = l_k r_k / C_T, node i's hyperplane is
// `w_i1 x_1 + ... + w_id x_d = 1` with weights
// `w_ik = (l^n_ik / l_k) / (C_i / C_T)`, and the ideal hyperplane is
// `x_1 + ... + x_d = 1`. All the distances ROD optimizes (MMAD axis
// distances, MMPD plane distances, the §6.1 distance-from-lower-bound) are
// computed here.

#ifndef ROD_GEOMETRY_HYPERPLANE_H_
#define ROD_GEOMETRY_HYPERPLANE_H_

#include <span>

#include "common/matrix.h"
#include "common/status.h"

namespace rod::geom {

/// Computes the weight matrix W (n x D) from the node load-coefficient
/// matrix L^n (n x D), the per-variable total coefficients l (the column
/// sums of L^o), and the node capacity vector C.
///
/// Fails if any l_k <= 0 (a rate variable no operator spends CPU on has no
/// normalized direction; such variables should be dropped upstream) or any
/// C_i <= 0.
Result<Matrix> ComputeWeightMatrix(const Matrix& node_coeffs,
                                   std::span<const double> total_coeffs,
                                   std::span<const double> capacities);

/// Volume of the ideal feasible set in the *original* rate space
/// (Theorem 1): `C_T^d / (d! * prod_k l_k)`.
Result<double> IdealFeasibleVolume(std::span<const double> total_coeffs,
                                   double total_capacity);

/// Distance from the origin to the hyperplane `w . x = 1`: `1 / ||w||_2`.
/// Returns +infinity for an all-zero row (an empty node's hyperplane lies
/// at infinity).
double PlaneDistance(std::span<const double> w_row);

/// `min_i PlaneDistance(W_i)` — the paper's `r`, the radius of the largest
/// origin-centered hypersphere (intersected with the nonnegative orthant)
/// inside the feasible set.
double MinPlaneDistance(const Matrix& weights);

/// Distance from point `b` to the hyperplane `w . x = 1`:
/// `(1 - w . b) / ||w||_2` (signed; negative when `b` is already above the
/// hyperplane, i.e. node overloaded at the lower bound). Used by the §6.1
/// lower-bound extension.
double PlaneDistanceFrom(std::span<const double> w_row,
                         std::span<const double> b);

/// `min_i PlaneDistanceFrom(W_i, b)`.
double MinPlaneDistanceFrom(const Matrix& weights, std::span<const double> b);

/// Axis distance of node i's hyperplane on axis k: `1 / w_ik`
/// (+infinity when w_ik = 0). The ideal hyperplane has axis distance 1 on
/// every axis.
double AxisDistance(const Matrix& weights, size_t i, size_t k);

/// Per-axis minimum axis distance over all nodes — the quantities MMAD
/// maximizes. Size D.
Vector MinAxisDistances(const Matrix& weights);

/// The MMAD lower bound on V(F)/V(F*): `prod_k min(1, min_i 1/w_ik)`
/// (§4.1: the feasible set always contains the sub-simplex scaled by the
/// clamped minimum axis distances).
double AxisDistanceVolumeLowerBound(const Matrix& weights);

/// Maps a physical rate point R into the normalized space:
/// `x_k = l_k r_k / C_T`.
Vector NormalizePoint(std::span<const double> rates,
                      std::span<const double> total_coeffs,
                      double total_capacity);

/// Distance from the origin to the ideal hyperplane, `1/sqrt(d)` — the
/// paper's `r*`.
double IdealPlaneDistance(size_t dims);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_HYPERPLANE_H_
