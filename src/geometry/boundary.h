// Copyright (c) the ROD reproduction authors.
//
// Feasibility-boundary analysis in the normalized space: how far a system
// can be pushed along a given rate direction before some node saturates,
// and which direction is the most fragile. Operators of capacity planning:
// "at today's traffic mix, how much headroom is left, and what mix kills
// us first?"

#ifndef ROD_GEOMETRY_BOUNDARY_H_
#define ROD_GEOMETRY_BOUNDARY_H_

#include <span>

#include "common/matrix.h"
#include "common/status.h"

namespace rod::geom {

/// Exact boundary scale along `direction` (componentwise >= 0, not all
/// zero): the largest s such that `s * direction` is feasible for the
/// weight matrix, i.e. `1 / max_i (W_i . direction)`. Returns +infinity
/// when no node loads on the direction. Fails on a negative or all-zero
/// direction.
Result<double> BoundaryScale(const Matrix& weights,
                             std::span<const double> direction);

/// The index of the node whose hyperplane is hit first along `direction`
/// (the saturating bottleneck). Fails like BoundaryScale; also fails when
/// no node loads on the direction (no finite boundary).
Result<size_t> BottleneckNode(const Matrix& weights,
                              std::span<const double> direction);

/// The most fragile direction: the unit vector pointing at the closest
/// boundary point of the feasible set — the normal of the minimum-plane-
/// distance row (weights are nonnegative, so the normal lies in the
/// feasible orthant). Fails if every row is zero.
Result<Vector> CriticalDirection(const Matrix& weights);

/// Headroom of an operating point `x` (normalized): the factor by which
/// `x` can still be scaled up before infeasibility; < 1 means the point is
/// already infeasible. Equivalent to BoundaryScale(W, x).
Result<double> Headroom(const Matrix& weights, std::span<const double> x);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_BOUNDARY_H_
