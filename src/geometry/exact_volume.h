// Copyright (c) the ROD reproduction authors.
//
// Exact volume of low-dimensional convex polytopes via Lasserre's
// recursive formula,
//     vol_d(P) = (1/d) * sum_i (b_i / ||a_i||) * vol_{d-1}(P ∩ {a_i x = b_i}),
// with each facet measured inside its own (d-1)-dimensional affine
// subspace (an orthonormal parameterization keeps measures correct). The
// cost is exponential in d, so this is a *verification* tool for the QMC
// estimator on paper-scale dimensions (d <= 5), not a production path —
// precisely the intractability argument of the paper's §2.4.

#ifndef ROD_GEOMETRY_EXACT_VOLUME_H_
#define ROD_GEOMETRY_EXACT_VOLUME_H_

#include <span>

#include "common/matrix.h"
#include "common/status.h"

namespace rod::geom {

/// Exact volume of `{x in R^d : constraints.Row(i) . x <= bounds[i]}`.
/// The polytope must be bounded (unbounded inputs give meaningless
/// results; callers bound feasible sets with the ideal hyperplane).
/// Duplicate constraints are coalesced; redundant ones contribute zero.
/// Fails for d > max_dims (cost guard) or shape mismatches.
Result<double> PolytopeVolume(const Matrix& constraints,
                              std::span<const double> bounds,
                              size_t max_dims = 6);

/// Exact `V(F)/V(F*)` of a normalized weight matrix in any (small)
/// dimension: the feasible polytope `{x >= 0, W x <= 1}` is intersected
/// with the (implied) ideal half-space `sum x <= 1` for boundedness and
/// its volume divided by the simplex volume 1/d!.
Result<double> ExactRatioToIdealND(const Matrix& weights,
                                   size_t max_dims = 6);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_EXACT_VOLUME_H_
