// Copyright (c) the ROD reproduction authors.
//
// Feasible-set representation and volume estimation. A placement's feasible
// set in the normalized space is `{x >= 0 : W x <= 1 row-wise}`; since it is
// always contained in the ideal simplex `{x >= 0 : sum x <= 1}` (Theorem 1),
// volume ratios are estimated by sampling the simplex and counting the
// feasible fraction.

#ifndef ROD_GEOMETRY_FEASIBLE_SET_H_
#define ROD_GEOMETRY_FEASIBLE_SET_H_

#include <cstdint>
#include <span>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "geometry/sample_cache.h"

namespace rod::geom {

/// Tolerance of the membership predicate `W x <= 1 + kMembershipTol` used
/// by every volume estimator (and by callers that must reproduce its
/// verdicts bit for bit, e.g. the delta placement evaluation).
inline constexpr double kMembershipTol = 1e-12;

/// Knobs for Monte-Carlo volume estimation.
struct VolumeOptions {
  /// Number of sample points. The paper-scale experiments (d = 5) converge
  /// to ~1% relative error around 2^15 Halton samples.
  size_t num_samples = 32768;

  /// Force plain pseudo-random sampling instead of the Halton sequence.
  /// Also engaged automatically above `max_halton_dims`.
  bool use_pseudo_random = false;

  /// Dimension cutoff beyond which Halton degrades and pseudo-random
  /// sampling is used regardless of `use_pseudo_random`.
  size_t max_halton_dims = 12;

  /// Seed for pseudo-random sampling (ignored by Halton).
  uint64_t seed = 0x5eedf00dULL;

  /// Parallelism of the estimate: > 1 runs the membership kernel (and the
  /// Cranley–Patterson replications of RatioToIdealWithError) on the
  /// shared thread pool. Results are bit-identical for every value —
  /// chunking is fixed and partial counts are reduced in chunk order.
  size_t num_threads = 1;
};

/// The normalized feasible set of one placement: rows of `weights` are the
/// node weight vectors W_i.
class FeasibleSet {
 public:
  /// Wraps a weight matrix (n rows = node hyperplanes, D cols = rate vars).
  explicit FeasibleSet(Matrix weights);

  const Matrix& weights() const { return weights_; }
  size_t dims() const { return weights_.cols(); }
  size_t num_nodes() const { return weights_.rows(); }

  /// True iff `x` (in normalized coordinates) overloads no node:
  /// `W_i . x <= 1 + tol` for every i.
  bool Contains(std::span<const double> x, double tol = 1e-12) const;

  /// Estimates `V(F) / V(F*)` — the fraction of the ideal simplex that is
  /// feasible. This is the ratio reported throughout the paper's §7.
  double RatioToIdeal(const VolumeOptions& options = {}) const;

  /// Volume of the feasible set in normalized coordinates
  /// (`RatioToIdeal * 1/d!`, computed in log space for the factorial).
  double NormalizedVolume(const VolumeOptions& options = {}) const;

  /// Uncertainty-quantified estimate from randomized QMC.
  struct RatioEstimate {
    double mean = 0.0;
    double std_error = 0.0;  ///< Standard error across replications.
    size_t replications = 0;
  };

  /// Randomized-QMC estimate of V(F)/V(F*) with a standard error:
  /// `replications` independent Cranley–Patterson rotations of the Halton
  /// set (each a random modulo-1 shift of every point) give independent
  /// unbiased estimates whose spread quantifies the integration error.
  /// Each replication uses `options.num_samples` points. Honors
  /// `use_pseudo_random` / `max_halton_dims` like the other estimators:
  /// past the Halton cutoff each replication is an independently reseeded
  /// pseudo-random estimate instead of a rotation.
  RatioEstimate RatioToIdealWithError(size_t replications = 8,
                                      const VolumeOptions& options = {}) const;

  /// §6.1 lower-bound variant: estimates
  /// `V(F ∩ {x >= b}) / V(F* ∩ {x >= b})`, the feasible fraction of the
  /// ideal region above the normalized lower-bound point `b`. Returns 0 if
  /// `b` lies on or above the ideal hyperplane (empty region).
  Result<double> RatioToIdealAbove(std::span<const double> lower_bound,
                                   const VolumeOptions& options = {}) const;

  /// Membership kernel: the number of rows `x` of `samples` (an S x d
  /// matrix of points) with `W x <= 1 + tol`, testing node rows with
  /// per-sample early exit. Chunked over the shared pool when
  /// `num_threads > 1`; the count is identical for every thread count.
  size_t CountContained(const Matrix& samples, size_t num_threads = 1,
                        double tol = 1e-12) const;

 private:
  Matrix weights_;
};

/// The cached sample set RatioToIdeal / RatioToIdealAbove integrate over
/// for a `dims`-dimensional estimate with `options`: Halton below the
/// cutoff, seeded pseudo-random above it (or when forced). Exposed so
/// other scorers (the delta placement evaluation) can integrate over the
/// exact same points.
SimplexSampleKey VolumeSampleKey(size_t dims, const VolumeOptions& options);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_FEASIBLE_SET_H_
