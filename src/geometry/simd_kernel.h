// Copyright (c) the ROD reproduction authors.
//
// Runtime-dispatched SIMD membership kernel for the feasible-set volume
// estimate. The AVX2 variant tests four samples per lane group against the
// W·x <= 1 + tol predicate, accumulating each lane's dot product in the
// same k-order mul-then-add sequence as the scalar `Dot`, so the verdict
// per sample — and therefore every count — is bit-identical to the scalar
// reference path. The build keeps `-ffp-contract=off` globally and the
// kernel uses explicit mul/add intrinsics (never fused multiply-add), so
// neither path silently contracts to FMA even when the whole tree is
// compiled with `-mavx2 -mfma`.

#ifndef ROD_GEOMETRY_SIMD_KERNEL_H_
#define ROD_GEOMETRY_SIMD_KERNEL_H_

#include <cstddef>

namespace rod::geom {

/// Number of samples per SIMD lane group. The sample-cache lane stride is
/// padded to a multiple of this, and the kernel grain in feasible_set.cc
/// is a multiple of it, so full groups never straddle a chunk boundary.
inline constexpr size_t kSimdGroup = 4;

/// True iff an AVX2 kernel was compiled into this binary (x86-64 GCC/Clang
/// builds) AND the running CPU reports AVX2 support.
bool SimdKernelAvailable();

/// True iff the AVX2 kernel is available and enabled: `SimdKernelAvailable`
/// minus the `ROD_DISABLE_SIMD` environment variable (any non-empty value,
/// read once at first query) and minus `SetSimdKernelEnabled(false)`.
bool SimdKernelEnabled();

/// Process-wide override for tests and benches: force the scalar reference
/// path (`false`) or re-allow the vector path (`true`; still gated on
/// `SimdKernelAvailable` and `ROD_DISABLE_SIMD`).
void SetSimdKernelEnabled(bool enabled);

/// Name of the membership-kernel ISA that `SimdKernelEnabled` currently
/// selects: "avx2" or "scalar".
const char* ActiveSimdIsa();

/// AVX2 membership kernel over transposed lane storage (see
/// SimplexSampleSet): `lanes[k * lane_stride + s]` holds coordinate k of
/// sample s. Counts samples `s` in `[begin, begin + 4*floor((end-begin)/4))`
/// whose point x(s) — affinely mapped to `lower_bound + scale * x(s)` first
/// when `lower_bound != nullptr` — satisfies `W x <= 1 + tol` for every row
/// of the `rows x dims` row-major `weights`. Returns the feasible count and
/// stores the first unprocessed sample index (the scalar tail start) into
/// `*tail_begin`. `map_scratch` must hold `4 * dims` doubles when
/// `lower_bound != nullptr` (may be null otherwise). Must only be called
/// when `SimdKernelAvailable()` is true.
size_t CountContainedAvx2(const double* weights, size_t rows, size_t dims,
                          const double* lanes, size_t lane_stride,
                          size_t begin, size_t end, const double* lower_bound,
                          double scale, double tol, double* map_scratch,
                          size_t* tail_begin);

}  // namespace rod::geom

#endif  // ROD_GEOMETRY_SIMD_KERNEL_H_
