#include "geometry/qmc.h"

#include <algorithm>
#include <cassert>

namespace rod::geom {

std::vector<uint32_t> FirstPrimes(size_t count) {
  std::vector<uint32_t> primes;
  primes.reserve(count);
  uint32_t candidate = 2;
  while (primes.size() < count) {
    bool is_prime = true;
    for (uint32_t p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

double RadicalInverse(uint64_t index, uint32_t base) {
  assert(base >= 2);
  double result = 0.0;
  double inv_base = 1.0 / static_cast<double>(base);
  double frac = inv_base;
  while (index > 0) {
    result += static_cast<double>(index % base) * frac;
    index /= base;
    frac *= inv_base;
  }
  return result;
}

HaltonSequence::HaltonSequence(size_t dims, uint64_t start_index)
    : bases_(FirstPrimes(dims)), index_(start_index) {
  assert(dims >= 1);
}

Vector HaltonSequence::Next() {
  Vector point(bases_.size());
  for (size_t k = 0; k < bases_.size(); ++k) {
    point[k] = RadicalInverse(index_, bases_[k]);
  }
  ++index_;
  return point;
}

Vector MapUnitCubeToSimplex(Vector cube_point) {
  // Sorted uniforms u_(1) <= ... <= u_(d) have spacings
  // (u_(1)-0, u_(2)-u_(1), ..., u_(d)-u_(d-1)) distributed uniformly over
  // the solid simplex {x >= 0, sum x = u_(d) <= 1}: the sort has density d!
  // on the ordered region and the difference map is unimodular.
  std::sort(cube_point.begin(), cube_point.end());
  double prev = 0.0;
  for (double& v : cube_point) {
    const double cur = v;
    v = cur - prev;
    prev = cur;
  }
  return cube_point;
}

}  // namespace rod::geom
