#include "geometry/exact_volume.h"

#include <cmath>
#include <limits>

namespace rod::geom {

namespace {

constexpr double kTol = 1e-10;

/// Constraint system a x <= b.
struct System {
  Matrix a;
  Vector b;
};

/// Coalesces duplicate facets (identical normalized row + offset): the
/// Lasserre sum counts each *geometric* facet exactly once. Vacuous rows
/// (zero normal, nonnegative bound) are dropped; an infeasible zero row
/// marks the whole system empty.
struct DedupResult {
  System system;
  bool empty = false;
};

DedupResult Dedup(const Matrix& a, const Vector& b) {
  const size_t d = a.cols();
  DedupResult out;
  std::vector<Vector> kept;  // normalized (row, offset) signatures
  std::vector<Vector> rows;
  Vector bounds;
  for (size_t i = 0; i < a.rows(); ++i) {
    const double norm = Norm2(a.Row(i));
    if (norm <= kTol) {
      if (b[i] < -kTol) {
        out.empty = true;
        return out;
      }
      continue;  // 0 . x <= nonnegative: vacuous
    }
    Vector sig(d + 1);
    for (size_t k = 0; k < d; ++k) sig[k] = a(i, k) / norm;
    sig[d] = b[i] / norm;
    bool duplicate = false;
    for (const Vector& s : kept) {
      if (AlmostEqual(s, sig, 1e-9)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    kept.push_back(sig);
    Vector row(d);
    for (size_t k = 0; k < d; ++k) row[k] = a(i, k);
    rows.push_back(std::move(row));
    bounds.push_back(b[i]);
  }
  out.system.a = Matrix::FromRows(rows);
  out.system.b = std::move(bounds);
  return out;
}

/// Exact length of the 1-D polytope {x : a_i x <= b_i}.
Result<double> IntervalLength(const Matrix& a, const Vector& b) {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < a.rows(); ++i) {
    const double coeff = a(i, 0);
    if (std::fabs(coeff) <= kTol) {
      if (b[i] < -kTol) return 0.0;
      continue;
    }
    if (coeff > 0) {
      hi = std::min(hi, b[i] / coeff);
    } else {
      lo = std::max(lo, b[i] / coeff);
    }
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    return Status::InvalidArgument("polytope is unbounded");
  }
  return std::max(0.0, hi - lo);
}

/// Lasserre recursion body; dedupes its own inputs.
Result<double> VolumeRec(const Matrix& raw_a, const Vector& raw_b) {
  DedupResult ded = Dedup(raw_a, raw_b);
  if (ded.empty) return 0.0;
  const Matrix& a = ded.system.a;
  const Vector& b = ded.system.b;
  if (a.rows() == 0) {
    return Status::InvalidArgument("polytope is unbounded");
  }
  const size_t d = a.cols();
  if (d == 1) return IntervalLength(a, b);

  double volume = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    const double norm = Norm2(a.Row(i));  // > kTol after dedup
    // Orthonormal basis of the hyperplane a_i . x = b_i via the
    // Householder reflection swapping e_1 and u = a_i/||a_i||: columns
    // 2..d of H = I - 2 v v^T (v = normalize(u - e_1)) span u-perp.
    Vector u(d);
    for (size_t k = 0; k < d; ++k) u[k] = a(i, k) / norm;
    Vector v = u;
    v[0] -= 1.0;
    const double vnorm = Norm2(v);
    Matrix basis(d, d - 1);  // columns = H e_2 .. H e_d
    if (vnorm <= kTol) {
      for (size_t c = 0; c + 1 < d; ++c) basis(c + 1, c) = 1.0;
    } else {
      for (double& x : v) x /= vnorm;
      for (size_t c = 0; c + 1 < d; ++c) {
        const size_t j = c + 1;  // column = H e_{j}
        for (size_t r = 0; r < d; ++r) {
          basis(r, c) = (r == j ? 1.0 : 0.0) - 2.0 * v[r] * v[j];
        }
      }
    }
    // Foot of the perpendicular from the origin: x0 = u * (b_i/||a_i||).
    const double offset = b[i] / norm;

    // Remaining constraints in face coordinates:
    // a'_j = B^T a_j,  b'_j = b_j - a_j . x0.
    Matrix sub_a(a.rows() - 1, d - 1);
    Vector sub_b(a.rows() - 1, 0.0);
    size_t row = 0;
    for (size_t j = 0; j < a.rows(); ++j) {
      if (j == i) continue;
      double dot_x0 = 0.0;
      for (size_t k = 0; k < d; ++k) dot_x0 += a(j, k) * u[k] * offset;
      for (size_t c = 0; c + 1 < d; ++c) {
        double acc = 0.0;
        for (size_t k = 0; k < d; ++k) acc += a(j, k) * basis(k, c);
        sub_a(row, c) = acc;
      }
      sub_b[row] = b[j] - dot_x0;
      ++row;
    }
    auto face = VolumeRec(sub_a, sub_b);
    if (!face.ok()) return face.status();
    volume += offset * *face;
  }
  return volume / static_cast<double>(d);
}

}  // namespace

Result<double> PolytopeVolume(const Matrix& constraints,
                              std::span<const double> bounds,
                              size_t max_dims) {
  const size_t d = constraints.cols();
  if (d == 0 || constraints.rows() == 0) {
    return Status::InvalidArgument("empty constraint system");
  }
  if (bounds.size() != constraints.rows()) {
    return Status::InvalidArgument("bounds size mismatch");
  }
  if (d > max_dims) {
    return Status::InvalidArgument(
        "dimension exceeds the exact-volume cost guard");
  }
  Vector b(bounds.begin(), bounds.end());
  return VolumeRec(constraints, b);
}

Result<double> ExactRatioToIdealND(const Matrix& weights, size_t max_dims) {
  const size_t d = weights.cols();
  const size_t n = weights.rows();
  if (d == 0 || n == 0) {
    return Status::InvalidArgument("empty weight matrix");
  }
  // {W x <= 1, -x <= 0, sum x <= 1}; the last constraint is implied by
  // Theorem 1 but keeps the system explicitly bounded.
  Matrix a(n + d + 1, d);
  Vector b(n + d + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < d; ++k) a(i, k) = weights(i, k);
    b[i] = 1.0;
  }
  for (size_t k = 0; k < d; ++k) {
    a(n + k, k) = -1.0;
    b[n + k] = 0.0;
  }
  for (size_t k = 0; k < d; ++k) a(n + d, k) = 1.0;
  b[n + d] = 1.0;

  auto volume = PolytopeVolume(a, b, max_dims);
  if (!volume.ok()) return volume.status();
  double log_simplex = 0.0;
  for (size_t k = 1; k <= d; ++k) {
    log_simplex -= std::log(static_cast<double>(k));
  }
  return *volume / std::exp(log_simplex);
}

}  // namespace rod::geom
