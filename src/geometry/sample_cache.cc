#include "geometry/sample_cache.h"

#include <cassert>
#include <utility>

#include "common/random.h"
#include "geometry/qmc.h"
#include "geometry/simd_kernel.h"

namespace rod::geom {

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  // Boost-style combine over 64-bit lanes.
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace

Matrix GenerateSimplexSamples(const SimplexSampleKey& key) {
  assert(key.dims > 0 && key.num_samples > 0);
  const size_t d = key.dims;
  Matrix samples(key.num_samples, d);
  auto store = [&](size_t s, const Vector& point) {
    auto row = samples.Row(s);
    for (size_t k = 0; k < d; ++k) row[k] = point[k];
  };

  if (key.pseudo_random) {
    Rng rng(key.seed);
    for (size_t s = 0; s < key.num_samples; ++s) {
      Vector cube(d);
      for (double& v : cube) v = rng.NextDouble();
      store(s, MapUnitCubeToSimplex(std::move(cube)));
    }
    return samples;
  }

  HaltonSequence halton(d);
  if (key.shift_index == 0) {
    for (size_t s = 0; s < key.num_samples; ++s) {
      store(s, MapUnitCubeToSimplex(halton.Next()));
    }
    return samples;
  }

  // Cranley–Patterson rotation. Replication r consumes draws
  // [r*d, (r+1)*d) of the shift stream, exactly as the sequential
  // estimator drew them when it ran replications 0..r in order — so the
  // shift for a given (shift_seed, shift_index) never depends on which
  // replications were generated before it.
  Rng shift_rng(key.shift_seed);
  Vector shift(d);
  for (uint64_t rep = 0; rep < key.shift_index; ++rep) {
    for (double& v : shift) v = shift_rng.NextDouble();
  }
  for (size_t s = 0; s < key.num_samples; ++s) {
    Vector p = halton.Next();
    for (size_t k = 0; k < d; ++k) {
      p[k] += shift[k];
      if (p[k] >= 1.0) p[k] -= 1.0;
    }
    store(s, MapUnitCubeToSimplex(std::move(p)));
  }
  return samples;
}

SimplexSampleSet GenerateSimplexSampleSet(const SimplexSampleKey& key) {
  SimplexSampleSet set;
  set.samples = GenerateSimplexSamples(key);
  const size_t S = set.samples.rows();
  const size_t d = set.samples.cols();
  set.lane_stride = (S + kSimdGroup - 1) / kSimdGroup * kSimdGroup;
  set.lanes.assign(set.lane_stride * d, 0.0);
  for (size_t s = 0; s < S; ++s) {
    const auto row = set.samples.Row(s);
    for (size_t k = 0; k < d; ++k) set.lanes[k * set.lane_stride + s] = row[k];
  }
  return set;
}

size_t SimplexSampleCache::KeyHash::operator()(
    const SimplexSampleKey& key) const {
  uint64_t h = 0x243f6a8885a308d3ULL;
  h = MixHash(h, key.dims);
  h = MixHash(h, key.num_samples);
  h = MixHash(h, key.pseudo_random ? 1 : 0);
  h = MixHash(h, key.seed);
  h = MixHash(h, key.shift_index);
  h = MixHash(h, key.shift_seed);
  return static_cast<size_t>(h);
}

SimplexSampleCache::SimplexSampleCache(size_t max_entries)
    : max_entries_(std::max<size_t>(max_entries, 1)) {}

std::shared_ptr<const SimplexSampleSet> SimplexSampleCache::Get(
    const SimplexSampleKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  auto matrix =
      std::make_shared<const SimplexSampleSet>(GenerateSimplexSampleSet(key));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, matrix);
  if (!inserted) return it->second;  // lost a generation race; use winner
  insertion_order_.push_back(key);
  while (entries_.size() > max_entries_) {
    entries_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
  return matrix;
}

size_t SimplexSampleCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t SimplexSampleCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t SimplexSampleCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SimplexSampleCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
  hits_ = 0;
  misses_ = 0;
}

SimplexSampleCache& SimplexSampleCache::Global() {
  static SimplexSampleCache cache;
  return cache;
}

}  // namespace rod::geom
