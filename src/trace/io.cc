#include "trace/io.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

namespace rod::trace {

namespace {

/// Locale-independent full-string double parse (std::from_chars): the
/// whole of `text` must be consumed, with no leading whitespace.
bool ParseDouble(std::string_view text, double* out) {
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last && !text.empty();
}

/// Parses the "window_sec,<value>" header line into `trace`.
Status ParseCsvHeader(std::string_view header, RateTrace* trace) {
  constexpr std::string_view kPrefix = "window_sec,";
  if (header.substr(0, kPrefix.size()) != kPrefix) {
    return Status::InvalidArgument("trace CSV missing window_sec header");
  }
  if (!ParseDouble(header.substr(kPrefix.size()), &trace->window_sec)) {
    return Status::InvalidArgument("malformed window_sec value");
  }
  if (!(trace->window_sec > 0.0) || !std::isfinite(trace->window_sec)) {
    return Status::InvalidArgument("window_sec must be positive and finite");
  }
  return Status::OK();
}

/// Parses one rate row (empty lines are skipped by the callers).
Status ParseCsvRate(std::string_view line, size_t line_no, RateTrace* trace) {
  double value = 0.0;
  if (!ParseDouble(line, &value)) {
    return Status::InvalidArgument("malformed rate on line " +
                                   std::to_string(line_no));
  }
  if (value < 0.0 || !std::isfinite(value)) {
    return Status::InvalidArgument("negative or non-finite rate on line " +
                                   std::to_string(line_no));
  }
  trace->rates.push_back(value);
  return Status::OK();
}

}  // namespace

std::string ToCsvString(const RateTrace& trace) {
  std::ostringstream os;
  os.precision(17);
  os << "window_sec," << trace.window_sec << "\n";
  for (double r : trace.rates) os << r << "\n";
  return os.str();
}

Result<RateTrace> FromCsvString(const std::string& csv) {
  // Walk the string line by line in place — no stream, no copies.
  std::string_view rest(csv);
  auto next_line = [&rest](std::string_view* line) {
    if (rest.empty()) return false;
    const size_t eol = rest.find('\n');
    *line = rest.substr(0, eol);
    rest.remove_prefix(eol == std::string_view::npos ? rest.size() : eol + 1);
    return true;
  };

  std::string_view line;
  if (!next_line(&line)) {
    return Status::InvalidArgument("empty trace CSV");
  }
  RateTrace trace;
  ROD_RETURN_IF_ERROR(ParseCsvHeader(line, &trace));
  size_t line_no = 1;
  while (next_line(&line)) {
    ++line_no;
    if (line.empty()) continue;
    ROD_RETURN_IF_ERROR(ParseCsvRate(line, line_no, &trace));
  }
  if (trace.rates.empty()) {
    return Status::InvalidArgument("trace CSV has no rate rows");
  }
  return trace;
}

Status SaveCsv(const RateTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << ToCsvString(trace);
  out.flush();
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<RateTrace> LoadCsv(const std::string& path) {
  // Stream line by line: one resident line, not two whole-file copies
  // (the old rdbuf-into-stringstream form held the file twice before a
  // single row was parsed).
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty trace CSV");
  }
  RateTrace trace;
  ROD_RETURN_IF_ERROR(ParseCsvHeader(line, &trace));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    ROD_RETURN_IF_ERROR(ParseCsvRate(line, line_no, &trace));
  }
  if (in.bad()) {
    return Status::Internal("read from '" + path + "' failed");
  }
  if (trace.rates.empty()) {
    return Status::InvalidArgument("trace CSV has no rate rows");
  }
  return trace;
}

Result<std::vector<double>> LoadTimestampLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::vector<double> timestamps;
  std::string line;
  size_t line_no = 0;
  double prev = 0.0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view text(line);
    if (text.empty() || text.front() == '#') continue;
    double t = 0.0;
    if (!ParseDouble(text, &t)) {
      return Status::InvalidArgument("malformed timestamp on line " +
                                     std::to_string(line_no));
    }
    if (t < 0.0 || !std::isfinite(t)) {
      return Status::InvalidArgument(
          "negative or non-finite timestamp on line " +
          std::to_string(line_no));
    }
    if (t < prev) {
      return Status::InvalidArgument("timestamps out of order on line " +
                                     std::to_string(line_no));
    }
    prev = t;
    timestamps.push_back(t);
  }
  if (in.bad()) {
    return Status::Internal("read from '" + path + "' failed");
  }
  if (timestamps.empty()) {
    return Status::InvalidArgument("timestamp log has no entries");
  }
  return timestamps;
}

Result<RateTrace> RatesFromTimestamps(const std::vector<double>& timestamps,
                                      double window_sec) {
  if (window_sec <= 0.0) {
    return Status::InvalidArgument("window_sec must be positive");
  }
  if (timestamps.empty()) {
    return Status::InvalidArgument("no timestamps");
  }
  double prev = 0.0;
  for (double t : timestamps) {
    if (t < 0.0) {
      return Status::InvalidArgument("negative timestamp");
    }
    if (t < prev) {
      return Status::InvalidArgument("timestamps must be sorted");
    }
    prev = t;
  }
  RateTrace trace;
  trace.window_sec = window_sec;
  const size_t windows =
      static_cast<size_t>(std::floor(timestamps.back() / window_sec)) + 1;
  trace.rates.assign(windows, 0.0);
  for (double t : timestamps) {
    size_t w = static_cast<size_t>(t / window_sec);
    w = std::min(w, windows - 1);  // t == back lands in the final window
    trace.rates[w] += 1.0;
  }
  for (double& r : trace.rates) r /= window_sec;
  return trace;
}

}  // namespace rod::trace
