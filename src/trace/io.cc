#include "trace/io.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace rod::trace {

std::string ToCsvString(const RateTrace& trace) {
  std::ostringstream os;
  os.precision(17);
  os << "window_sec," << trace.window_sec << "\n";
  for (double r : trace.rates) os << r << "\n";
  return os.str();
}

Result<RateTrace> FromCsvString(const std::string& csv) {
  std::istringstream is(csv);
  std::string header;
  if (!std::getline(is, header)) {
    return Status::InvalidArgument("empty trace CSV");
  }
  const std::string prefix = "window_sec,";
  if (header.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("trace CSV missing window_sec header");
  }
  RateTrace trace;
  try {
    trace.window_sec = std::stod(header.substr(prefix.size()));
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed window_sec value");
  }
  if (!(trace.window_sec > 0.0) || !std::isfinite(trace.window_sec)) {
    return Status::InvalidArgument("window_sec must be positive and finite");
  }
  std::string line;
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    double value = 0.0;
    try {
      size_t consumed = 0;
      value = std::stod(line, &consumed);
      if (consumed != line.size()) {
        return Status::InvalidArgument("trailing characters on line " +
                                       std::to_string(line_no));
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("malformed rate on line " +
                                     std::to_string(line_no));
    }
    if (value < 0.0 || !std::isfinite(value)) {
      return Status::InvalidArgument("negative or non-finite rate on line " +
                                     std::to_string(line_no));
    }
    trace.rates.push_back(value);
  }
  if (trace.rates.empty()) {
    return Status::InvalidArgument("trace CSV has no rate rows");
  }
  return trace;
}

Status SaveCsv(const RateTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << ToCsvString(trace);
  out.flush();
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<RateTrace> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromCsvString(buffer.str());
}

Result<RateTrace> RatesFromTimestamps(const std::vector<double>& timestamps,
                                      double window_sec) {
  if (window_sec <= 0.0) {
    return Status::InvalidArgument("window_sec must be positive");
  }
  if (timestamps.empty()) {
    return Status::InvalidArgument("no timestamps");
  }
  double prev = 0.0;
  for (double t : timestamps) {
    if (t < 0.0) {
      return Status::InvalidArgument("negative timestamp");
    }
    if (t < prev) {
      return Status::InvalidArgument("timestamps must be sorted");
    }
    prev = t;
  }
  RateTrace trace;
  trace.window_sec = window_sec;
  const size_t windows =
      static_cast<size_t>(std::floor(timestamps.back() / window_sec)) + 1;
  trace.rates.assign(windows, 0.0);
  for (double t : timestamps) {
    size_t w = static_cast<size_t>(t / window_sec);
    w = std::min(w, windows - 1);  // t == back lands in the final window
    trace.rates[w] += 1.0;
  }
  for (double& r : trace.rates) r /= window_sec;
  return trace;
}

}  // namespace rod::trace
