// Copyright (c) the ROD reproduction authors.
//
// Rate traces: piecewise-constant input-rate time series. The paper drives
// its experiments with three real Internet Traffic Archive traces (PKT,
// TCP, HTTP; Figure 2). Those are not redistributable, so this module
// provides statistically equivalent synthetic stand-ins — self-similar,
// bursty at every time-scale — via the b-model cascade (bmodel.h) and
// Pareto ON/OFF superposition (onoff.h), plus the named presets used by
// the benchmarks.

#ifndef ROD_TRACE_TRACE_H_
#define ROD_TRACE_TRACE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace rod::trace {

/// A rate time series: `rates[w]` is the average arrival rate
/// (tuples/second) during window `w` of width `window_sec`.
struct RateTrace {
  double window_sec = 1.0;
  std::vector<double> rates;

  size_t num_windows() const { return rates.size(); }
  double duration() const {
    return window_sec * static_cast<double>(rates.size());
  }

  /// Mean rate over the whole trace.
  double MeanRate() const;

  /// Population standard deviation of the per-window rates.
  double StdDevRate() const;

  /// Coefficient of variation (stddev / mean; 0 for a zero-mean trace) —
  /// the "std" annotated on the paper's Figure 2 after normalization.
  double CoefficientOfVariation() const;

  /// Rate in effect at absolute time `t` (clamps beyond the end).
  double RateAt(double t) const;

  /// Copy rescaled so the mean rate equals `target_mean` (shape, and hence
  /// burstiness, preserved). A zero-mean trace is returned unchanged.
  RateTrace ScaledToMean(double target_mean) const;

  /// Copy with mean 1 (the normalization of Figure 2).
  RateTrace Normalized() const { return ScaledToMean(1.0); }
};

/// The named trace presets standing in for the paper's Figure 2 workloads.
/// All are normalized to mean rate 1; scale with `ScaledToMean`. The
/// burstiness ordering matches the figure: TCP (connection arrivals) is the
/// most variable, PKT (packet arrivals) the least.
enum class TracePreset {
  kPkt,   ///< Wide-area packet trace: mild burstiness (cv ~ 0.2).
  kTcp,   ///< Wide-area TCP connection trace: strong burstiness (cv ~ 0.5).
  kHttp,  ///< HTTP request trace: intermediate burstiness (cv ~ 0.35).
};

/// Returns the canonical name of a preset ("PKT", "TCP", "HTTP").
const char* TracePresetName(TracePreset preset);

/// Generates a normalized synthetic trace for `preset` with `num_windows`
/// windows of `window_sec` seconds (num_windows is rounded up to the next
/// power of two internally and truncated back). Deterministic given `rng`.
RateTrace GeneratePreset(TracePreset preset, size_t num_windows,
                         double window_sec, Rng& rng);

/// Deterministic sinusoidal rate series — the paper's medium/long-term
/// variations ("closing of a stock market at the end of a business day,
/// temperature dropping during night time"): rate(t) = mean * (1 +
/// relative_amplitude * sin(2 pi t / period + phase)), clamped at 0.
struct SinusoidOptions {
  size_t num_windows = 600;
  double window_sec = 1.0;
  double mean = 1.0;
  double relative_amplitude = 0.5;  ///< Fraction of mean; may exceed 1.
  double period = 300.0;            ///< Seconds per cycle.
  double phase = 0.0;               ///< Radians.
};

/// Generates the sinusoid described by `options`.
RateTrace GenerateSinusoid(const SinusoidOptions& options);

}  // namespace rod::trace

#endif  // ROD_TRACE_TRACE_H_
