// Copyright (c) the ROD reproduction authors.
//
// Superposed Pareto ON/OFF sources: the classical construction of
// self-similar network traffic (Willinger et al., "Self-Similarity Through
// High-Variability"). Aggregating many sources whose ON/OFF period lengths
// are heavy-tailed (Pareto shape 1 < alpha < 2) yields long-range-dependent
// arrival series with Hurst parameter H = (3 - alpha) / 2.

#ifndef ROD_TRACE_ONOFF_H_
#define ROD_TRACE_ONOFF_H_

#include "common/random.h"
#include "trace/trace.h"

namespace rod::trace {

/// ON/OFF superposition parameters.
struct OnOffOptions {
  size_t num_sources = 32;   ///< Independent sources aggregated.
  size_t num_windows = 4096; ///< Output series length.
  double window_sec = 1.0;   ///< Output window width.

  /// Pareto shape of the ON / OFF period lengths; 1 < alpha < 2 gives
  /// self-similarity (H = (3 - alpha)/2, so alpha = 1.4 -> H = 0.8).
  double alpha_on = 1.4;
  double alpha_off = 1.4;

  /// Mean ON / OFF period lengths (seconds).
  double mean_on = 2.0;
  double mean_off = 6.0;

  /// Emission rate of one source while ON (tuples/second).
  double peak_rate = 1.0;
};

/// Generates the aggregate rate series of `options.num_sources` Pareto
/// ON/OFF sources. Deterministic given `rng`'s state.
RateTrace GenerateOnOff(const OnOffOptions& options, Rng& rng);

}  // namespace rod::trace

#endif  // ROD_TRACE_ONOFF_H_
