// Copyright (c) the ROD reproduction authors.
//
// Hurst parameter estimation by rescaled-range (R/S) analysis — used to
// verify that the synthetic traces are self-similar like the paper's
// Figure 2 workloads ("similar behaviour is observed at other time-scales
// due to the self-similar nature of these workloads"). H = 0.5 is
// memoryless; 0.5 < H < 1 indicates long-range dependence.

#ifndef ROD_TRACE_HURST_H_
#define ROD_TRACE_HURST_H_

#include <vector>

#include "common/status.h"

namespace rod::trace {

/// Estimates the Hurst exponent of `series` by R/S analysis: the series is
/// split into blocks at geometrically spaced sizes, the average rescaled
/// range R/S per size is computed, and H is the least-squares slope of
/// log(R/S) against log(size). Requires at least 32 observations.
Result<double> EstimateHurstRS(const std::vector<double>& series);

/// Variance-time alternative: the slope beta of log Var(aggregated series)
/// vs log(aggregation level) gives H = 1 - beta/2 for the *mean*-aggregated
/// series. Requires at least 64 observations. Cross-checks EstimateHurstRS.
Result<double> EstimateHurstVarianceTime(const std::vector<double>& series);

}  // namespace rod::trace

#endif  // ROD_TRACE_HURST_H_
