#include "trace/onoff.h"

#include <algorithm>
#include <cassert>

namespace rod::trace {

RateTrace GenerateOnOff(const OnOffOptions& options, Rng& rng) {
  assert(options.num_sources > 0 && options.num_windows > 0);
  assert(options.window_sec > 0 && options.peak_rate >= 0);
  assert(options.alpha_on > 1.0 && options.alpha_off > 1.0);
  assert(options.mean_on > 0 && options.mean_off > 0);

  // Pareto(xm, alpha) has mean xm * alpha / (alpha - 1).
  const double xm_on =
      options.mean_on * (options.alpha_on - 1.0) / options.alpha_on;
  const double xm_off =
      options.mean_off * (options.alpha_off - 1.0) / options.alpha_off;
  const double horizon =
      options.window_sec * static_cast<double>(options.num_windows);

  RateTrace trace;
  trace.window_sec = options.window_sec;
  trace.rates.assign(options.num_windows, 0.0);

  for (size_t s = 0; s < options.num_sources; ++s) {
    // Start each source at a random phase of its cycle so the aggregate is
    // stationary from the first window.
    double t = -rng.NextDouble() * (options.mean_on + options.mean_off);
    bool on = rng.Bernoulli(options.mean_on /
                            (options.mean_on + options.mean_off));
    while (t < horizon) {
      const double duration = on ? rng.Pareto(xm_on, options.alpha_on)
                                 : rng.Pareto(xm_off, options.alpha_off);
      if (on) {
        // Spread `peak_rate * overlap` tuples across the touched windows.
        const double begin = std::max(t, 0.0);
        const double end = std::min(t + duration, horizon);
        if (end > begin) {
          size_t w = static_cast<size_t>(begin / options.window_sec);
          double cursor = begin;
          while (cursor < end && w < trace.rates.size()) {
            const double w_end =
                static_cast<double>(w + 1) * options.window_sec;
            const double overlap = std::min(end, w_end) - cursor;
            trace.rates[w] += options.peak_rate * overlap / options.window_sec;
            cursor = w_end;
            ++w;
          }
        }
      }
      t += duration;
      on = !on;
    }
  }
  return trace;
}

}  // namespace rod::trace
