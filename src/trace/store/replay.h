// Copyright (c) the ROD reproduction authors.
//
// Zero-copy batch replay over a segment store, and the arrival-feed
// abstraction the simulation engine consumes. A BatchCursor walks a
// store file segment by segment, yielding contiguous spans of
// ArrivalRecords straight out of the buffer manager's mappings — no
// per-tuple allocation, no copy, at most `resident_segments` segments
// in memory however large the file is. ReplaySet bundles one ordered
// arrival feed per input stream (store-backed or in-memory) and plugs
// into SimulationOptions::replay as the alternative to the synthetic
// ArrivalGenerator; replay is deterministic by construction, so a run
// driven from a store is bit-identical to one driven from the same
// arrivals held in memory (asserted in tests and the ingest bench).

#ifndef ROD_TRACE_STORE_REPLAY_H_
#define ROD_TRACE_STORE_REPLAY_H_

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/store/format.h"
#include "trace/store/reader.h"

namespace rod::trace::store {

/// Sequential zero-copy iteration over one store file. Holds at most one
/// segment pinned at a time; the spans it returns borrow the reader's
/// mapping and are invalidated by the next NextSpan/Rewind call.
class BatchCursor {
 public:
  /// `reader` is borrowed and must outlive the cursor.
  explicit BatchCursor(SegmentReader* reader);
  ~BatchCursor();
  BatchCursor(BatchCursor&& other) noexcept;
  BatchCursor& operator=(BatchCursor&& other) noexcept;
  BatchCursor(const BatchCursor&) = delete;
  BatchCursor& operator=(const BatchCursor&) = delete;

  /// The unconsumed remainder of the current segment (pinning the next
  /// segment when the current one is exhausted). Empty span at
  /// end-of-store. Call Advance to consume records from it.
  Result<std::span<const ArrivalRecord>> NextSpan();

  /// Consumes `n` records of the span NextSpan last returned.
  void Advance(size_t n);

  /// Global index of the next unconsumed record.
  uint64_t position() const { return position_; }

  /// True once every record has been consumed.
  bool done() const { return position_ >= reader_->info().total_records; }

  /// Rewinds to the first record (drops the current pin).
  void Rewind();

 private:
  void DropPin();

  SegmentReader* reader_;
  uint64_t segment_ = 0;
  size_t in_segment_ = 0;    ///< Consumed records of the pinned segment.
  bool pinned_ = false;
  std::span<const ArrivalRecord> records_;  ///< The pinned segment's records.
  uint64_t position_ = 0;
};

/// One input stream's ordered arrival feed — the engine-facing contract.
/// NextArrival returns arrival instants in file order (non-decreasing),
/// +infinity once exhausted. Errors while faulting segments in surface
/// through status(): the feed then reports end-of-stream and the engine
/// propagates the status after the run.
class ArrivalReplay {
 public:
  virtual ~ArrivalReplay() = default;
  virtual double NextArrival() = 0;
  virtual Status status() const { return Status::OK(); }
  virtual void Rewind() = 0;
};

/// In-memory feed: replays an arrival-instant vector. This is the
/// reference the store-backed feed must match bit-for-bit.
class VectorReplay final : public ArrivalReplay {
 public:
  explicit VectorReplay(std::vector<double> arrivals)
      : arrivals_(std::move(arrivals)) {}

  double NextArrival() override {
    return next_ < arrivals_.size()
               ? arrivals_[next_++]
               : std::numeric_limits<double>::infinity();
  }
  void Rewind() override { next_ = 0; }

 private:
  std::vector<double> arrivals_;
  size_t next_ = 0;
};

/// Store-backed feed: a BatchCursor walked record by record. The hot
/// path is a bounds check and a load from the pinned mapping.
class StoreReplay final : public ArrivalReplay {
 public:
  explicit StoreReplay(SegmentReader* reader) : cursor_(reader) {}

  double NextArrival() override {
    if (span_pos_ < span_.size()) return span_[span_pos_++].time;
    return Refill();
  }
  Status status() const override { return status_; }
  void Rewind() override;

 private:
  double Refill();

  BatchCursor cursor_;
  std::span<const ArrivalRecord> span_;
  size_t span_pos_ = 0;
  Status status_;
};

/// One arrival feed per input stream, ready to plug into
/// SimulationOptions::replay. Owns its readers and feeds.
class ReplaySet {
 public:
  /// Opens one store file per input stream, in stream order.
  static Result<ReplaySet> OpenStores(const std::vector<std::string>& paths,
                                      const ReaderOptions& options = {});

  /// Wraps in-memory arrival vectors (one per stream) — the in-memory
  /// driver of the replay bit-exactness gate.
  static ReplaySet FromVectors(std::vector<std::vector<double>> arrivals);

  ReplaySet(ReplaySet&&) noexcept = default;
  ReplaySet& operator=(ReplaySet&&) noexcept = default;

  size_t num_streams() const { return feeds_.size(); }
  ArrivalReplay& feed(size_t k) { return *feeds_[k]; }

  /// First error any feed hit mid-replay (OK when clean).
  Status status() const;

  /// Rewinds every feed so the set can drive another run.
  void Rewind();

 private:
  ReplaySet() = default;

  std::vector<std::unique_ptr<SegmentReader>> readers_;
  std::vector<std::unique_ptr<ArrivalReplay>> feeds_;
};

}  // namespace rod::trace::store

#endif  // ROD_TRACE_STORE_REPLAY_H_
