#include "trace/store/writer.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace rod::trace::store {

Result<SegmentWriter> SegmentWriter::Open(const std::string& path,
                                          const WriterOptions& options) {
  if (options.records_per_segment == 0) {
    return Status::InvalidArgument("records_per_segment must be positive");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  SegmentWriter w;
  w.file_ = file;
  w.path_ = path;
  w.records_per_segment_ = options.records_per_segment;
  w.pending_.reserve(options.records_per_segment);
  StoreInfo info;
  info.records_per_segment = options.records_per_segment;
  w.io_buffer_.resize(info.segment_bytes());
  // Reserve the manifest slot with zeros: until Finish() rewrites it the
  // magic/CRC cannot validate, so readers reject the unfinished file.
  std::byte zeros[kFileHeaderBytes] = {};
  if (std::fwrite(zeros, 1, sizeof(zeros), file) != sizeof(zeros)) {
    std::fclose(file);
    return Status::Internal("write to '" + path + "' failed");
  }
  return w;
}

SegmentWriter::SegmentWriter(SegmentWriter&& other) noexcept {
  *this = std::move(other);
}

SegmentWriter& SegmentWriter::operator=(SegmentWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    records_per_segment_ = other.records_per_segment_;
    pending_ = std::move(other.pending_);
    io_buffer_ = std::move(other.io_buffer_);
    total_records_ = other.total_records_;
    segments_flushed_ = other.segments_flushed_;
    max_stream_ = other.max_stream_;
    time_lo_ = other.time_lo_;
    time_hi_ = other.time_hi_;
    finished_ = other.finished_;
  }
  return *this;
}

SegmentWriter::~SegmentWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SegmentWriter::Append(const ArrivalRecord& record) {
  return Append(std::span<const ArrivalRecord>(&record, 1));
}

Status SegmentWriter::Append(std::span<const ArrivalRecord> records) {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("writer is closed");
  }
  for (const ArrivalRecord& r : records) {
    if (!std::isfinite(r.time) || r.time < 0.0) {
      return Status::InvalidArgument(
          "arrival time must be finite and non-negative");
    }
    if (total_records_ > 0 && r.time < time_hi_) {
      return Status::InvalidArgument(
          "arrival times must be non-decreasing (got " +
          std::to_string(r.time) + " after " + std::to_string(time_hi_) + ")");
    }
    if (total_records_ == 0) time_lo_ = r.time;
    time_hi_ = r.time;
    if (r.stream >= max_stream_) max_stream_ = r.stream + 1;
    pending_.push_back(r);
    ++total_records_;
    if (pending_.size() == records_per_segment_) {
      ROD_RETURN_IF_ERROR(FlushSegment());
    }
  }
  return Status::OK();
}

Status SegmentWriter::FlushSegment() {
  // Serialize header + live payload + zero padding into the staging
  // buffer, then write the fixed-size segment in one fwrite.
  SegmentInfo seg;
  seg.record_count = static_cast<uint32_t>(pending_.size());
  seg.first_record = total_records_ - pending_.size();
  const size_t payload_bytes = pending_.size() * sizeof(ArrivalRecord);
  std::memcpy(io_buffer_.data() + kSegmentHeaderBytes, pending_.data(),
              payload_bytes);
  seg.payload_crc = Crc32(std::span<const std::byte>(
      io_buffer_.data() + kSegmentHeaderBytes, payload_bytes));
  EncodeSegmentHeader(
      seg, std::span<std::byte, kSegmentHeaderBytes>(io_buffer_.data(),
                                                     kSegmentHeaderBytes));
  std::memset(io_buffer_.data() + kSegmentHeaderBytes + payload_bytes, 0,
              io_buffer_.size() - kSegmentHeaderBytes - payload_bytes);
  if (std::fwrite(io_buffer_.data(), 1, io_buffer_.size(), file_) !=
      io_buffer_.size()) {
    return Status::Internal("write to '" + path_ + "' failed");
  }
  ++segments_flushed_;
  pending_.clear();
  return Status::OK();
}

Status SegmentWriter::Finish() {
  if (finished_) return Status::OK();
  if (file_ == nullptr) {
    return Status::FailedPrecondition("writer is closed");
  }
  if (!pending_.empty()) {
    ROD_RETURN_IF_ERROR(FlushSegment());
  }
  StoreInfo info;
  info.records_per_segment = records_per_segment_;
  info.num_streams = max_stream_;
  info.num_segments = segments_flushed_;
  info.total_records = total_records_;
  info.time_lo = time_lo_;
  info.time_hi = time_hi_;
  std::byte header[kFileHeaderBytes];
  EncodeFileHeader(info, std::span<std::byte, kFileHeaderBytes>(header));
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fflush(file_) != 0) {
    return Status::Internal("finalizing '" + path_ + "' failed");
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::Internal("closing '" + path_ + "' failed");
  }
  file_ = nullptr;
  finished_ = true;
  return Status::OK();
}

Status WriteTimestamps(std::span<const double> timestamps, uint32_t stream,
                       const std::string& path, const WriterOptions& options) {
  auto writer = SegmentWriter::Open(path, options);
  ROD_RETURN_IF_ERROR(writer.status());
  for (double t : timestamps) {
    ArrivalRecord r;
    r.time = t;
    r.stream = stream;
    ROD_RETURN_IF_ERROR(writer->Append(r));
  }
  return writer->Finish();
}

}  // namespace rod::trace::store
