#include "trace/store/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>
#include <utility>

namespace rod::trace::store {

namespace {

/// Full read at offset, retrying short reads/EINTR (pread never writes
/// the file; used for the header probe and the fallback load path).
Status PreadExact(int fd, void* dst, size_t len, uint64_t offset,
                  const char* what) {
  std::byte* out = static_cast<std::byte*>(dst);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, out + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pread failed reading ") + what +
                              ": " + std::strerror(errno));
    }
    if (n == 0) {
      return Status::DataLoss(std::string("unexpected EOF reading ") + what);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

size_t PageSize() {
  const long page = ::sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096;
}

}  // namespace

Result<SegmentReader> SegmentReader::Open(const std::string& path,
                                          const ReaderOptions& options) {
  if (options.resident_segments == 0) {
    return Status::InvalidArgument("resident_segments must be positive");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat('" + path + "') failed");
  }
  std::byte header[kFileHeaderBytes];
  if (static_cast<uint64_t>(st.st_size) < kFileHeaderBytes) {
    ::close(fd);
    return Status::DataLoss("'" + path + "' is smaller than a store header");
  }
  {
    const Status read = PreadExact(fd, header, sizeof(header), 0, "manifest");
    if (!read.ok()) {
      ::close(fd);
      return read;
    }
  }
  auto info = DecodeFileHeader(std::span<const std::byte>(header));
  if (!info.ok()) {
    ::close(fd);
    return info.status();
  }
  if (static_cast<uint64_t>(st.st_size) != info->file_bytes()) {
    ::close(fd);
    return Status::DataLoss(
        "'" + path + "' is " + std::to_string(st.st_size) +
        " bytes; manifest requires " + std::to_string(info->file_bytes()) +
        " (truncated or trailing garbage)");
  }
  SegmentReader reader;
  reader.fd_ = fd;
  reader.info_ = *info;
  reader.use_mmap_ = options.use_mmap;
  reader.readahead_ = options.readahead;
  reader.verify_checksums_ = options.verify_checksums;
  reader.frames_.resize(options.resident_segments);
  return reader;
}

SegmentReader::SegmentReader(SegmentReader&& other) noexcept {
  *this = std::move(other);
}

SegmentReader& SegmentReader::operator=(SegmentReader&& other) noexcept {
  if (this != &other) {
    for (Frame& f : frames_) Release(f);
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    info_ = other.info_;
    use_mmap_ = other.use_mmap_;
    readahead_ = other.readahead_;
    verify_checksums_ = other.verify_checksums_;
    frames_ = std::move(other.frames_);
    other.frames_.clear();
    use_clock_ = other.use_clock_;
    stats_ = other.stats_;
  }
  return *this;
}

SegmentReader::~SegmentReader() {
  for (Frame& f : frames_) Release(f);
  if (fd_ >= 0) ::close(fd_);
}

void SegmentReader::Release(Frame& frame) {
  if (frame.map_base != nullptr) {
    ::munmap(frame.map_base, frame.map_len);
    frame.map_base = nullptr;
    frame.map_len = 0;
  }
  frame.records = {};
  frame.seg = Frame::kEmpty;
  frame.pin_count = 0;
}

Status SegmentReader::LoadInto(Frame& frame, uint64_t seg) {
  const uint64_t offset = info_.segment_offset(seg);
  const size_t seg_bytes = info_.segment_bytes();
  const std::byte* base = nullptr;

  if (use_mmap_) {
    // mmap requires a page-aligned file offset; map from the enclosing
    // page boundary and step back in.
    const size_t page = PageSize();
    const uint64_t map_off = offset & ~static_cast<uint64_t>(page - 1);
    const size_t delta = static_cast<size_t>(offset - map_off);
    const size_t map_len = seg_bytes + delta;
    void* map = ::mmap(nullptr, map_len, PROT_READ, MAP_PRIVATE, fd_,
                       static_cast<off_t>(map_off));
    if (map == MAP_FAILED) {
      // Fall back to pread for the rest of this reader's life (e.g.
      // filesystems without mmap support).
      use_mmap_ = false;
    } else {
#ifdef MADV_SEQUENTIAL
      ::madvise(map, map_len, MADV_SEQUENTIAL);
#endif
      frame.map_base = map;
      frame.map_len = map_len;
      base = static_cast<const std::byte*>(map) + delta;
    }
  }
  if (base == nullptr) {
    frame.buffer.resize(seg_bytes);
    ROD_RETURN_IF_ERROR(
        PreadExact(fd_, frame.buffer.data(), seg_bytes, offset, "segment"));
    base = frame.buffer.data();
  }

  auto seg_header = DecodeSegmentHeader(
      std::span<const std::byte>(base, kSegmentHeaderBytes));
  if (!seg_header.ok()) {
    Release(frame);
    return seg_header.status();
  }
  const bool is_last = seg + 1 == info_.num_segments;
  const uint64_t expected_first = seg * info_.records_per_segment;
  const uint64_t expected_count =
      is_last ? info_.total_records - expected_first
              : info_.records_per_segment;
  if (seg_header->first_record != expected_first ||
      seg_header->record_count != expected_count) {
    Release(frame);
    return Status::DataLoss(
        "segment " + std::to_string(seg) + " header inconsistent: claims " +
        std::to_string(seg_header->record_count) + " records from #" +
        std::to_string(seg_header->first_record) + ", manifest expects " +
        std::to_string(expected_count) + " from #" +
        std::to_string(expected_first));
  }
  const size_t payload_bytes =
      static_cast<size_t>(seg_header->record_count) * sizeof(ArrivalRecord);
  if (verify_checksums_) {
    const uint32_t crc = Crc32(std::span<const std::byte>(
        base + kSegmentHeaderBytes, payload_bytes));
    if (crc != seg_header->payload_crc) {
      Release(frame);
      return Status::DataLoss("segment " + std::to_string(seg) +
                              " payload CRC mismatch (corrupt store)");
    }
  }
  frame.seg = seg;
  frame.pin_count = 0;
  // The 16-byte record layout keeps every payload 8-aligned within the
  // page-aligned mapping (header 64 + N*segment_bytes + 16 are all
  // multiples of 16), so the reinterpret below is well-formed.
  assert(reinterpret_cast<uintptr_t>(base + kSegmentHeaderBytes) % 8 == 0);
  frame.records = std::span<const ArrivalRecord>(
      reinterpret_cast<const ArrivalRecord*>(base + kSegmentHeaderBytes),
      seg_header->record_count);
  ++stats_.segment_loads;

  if (readahead_ && seg + 1 < info_.num_segments) {
#ifdef POSIX_FADV_WILLNEED
    ::posix_fadvise(fd_, static_cast<off_t>(info_.segment_offset(seg + 1)),
                    static_cast<off_t>(seg_bytes), POSIX_FADV_WILLNEED);
#endif
  }
  return Status::OK();
}

Result<std::span<const ArrivalRecord>> SegmentReader::Pin(uint64_t seg) {
  if (fd_ < 0) return Status::FailedPrecondition("reader is closed");
  if (seg >= info_.num_segments) {
    return Status::OutOfRange("segment " + std::to_string(seg) +
                              " >= " + std::to_string(info_.num_segments));
  }
  ++stats_.pins;
  Frame* free_frame = nullptr;
  Frame* victim = nullptr;
  for (Frame& f : frames_) {
    if (f.seg == seg) {
      ++f.pin_count;
      f.last_use = ++use_clock_;
      ++stats_.cache_hits;
      return f.records;
    }
    if (f.seg == Frame::kEmpty) {
      if (free_frame == nullptr) free_frame = &f;
    } else if (f.pin_count == 0) {
      if (victim == nullptr || f.last_use < victim->last_use) victim = &f;
    }
  }
  Frame* frame = free_frame;
  if (frame == nullptr) {
    if (victim == nullptr) {
      return Status::FailedPrecondition(
          "resident-segment budget exhausted: all " +
          std::to_string(frames_.size()) + " frames are pinned");
    }
    Release(*victim);
    ++stats_.evictions;
    frame = victim;
  }
  ROD_RETURN_IF_ERROR(LoadInto(*frame, seg));
  frame->pin_count = 1;
  frame->last_use = ++use_clock_;
  return frame->records;
}

void SegmentReader::Unpin(uint64_t seg) {
  for (Frame& f : frames_) {
    if (f.seg == seg) {
      assert(f.pin_count > 0 && "Unpin without matching Pin");
      if (f.pin_count > 0) --f.pin_count;
      return;
    }
  }
  assert(false && "Unpin of a non-resident segment");
}

size_t SegmentReader::resident_segments() const {
  size_t n = 0;
  for (const Frame& f : frames_) n += f.seg != Frame::kEmpty ? 1 : 0;
  return n;
}

Status SegmentReader::VerifyAll() {
  uint64_t records = 0;
  double prev = -1.0;
  for (uint64_t seg = 0; seg < info_.num_segments; ++seg) {
    auto span = Pin(seg);
    ROD_RETURN_IF_ERROR(span.status());
    for (const ArrivalRecord& r : *span) {
      if (r.time < prev) {
        Unpin(seg);
        return Status::DataLoss("record #" + std::to_string(records) +
                                " breaks time monotonicity");
      }
      if (r.stream >= info_.num_streams) {
        Unpin(seg);
        return Status::DataLoss("record #" + std::to_string(records) +
                                " names stream " + std::to_string(r.stream) +
                                " beyond the manifest's " +
                                std::to_string(info_.num_streams));
      }
      prev = r.time;
      ++records;
    }
    Unpin(seg);
  }
  if (records != info_.total_records) {
    return Status::DataLoss("store serves " + std::to_string(records) +
                            " records; manifest claims " +
                            std::to_string(info_.total_records));
  }
  return Status::OK();
}

}  // namespace rod::trace::store
