// Copyright (c) the ROD reproduction authors.
//
// Segment-store reader: a small buffer manager over one store file.
// Segments are faulted in on demand — mmap'ed read-only by default,
// pread into an owned buffer where mmap is unavailable or disabled —
// and at most `resident_segments` of them are resident at once, so a
// sequential scan of a file many times that budget runs in constant
// memory. Pin/unpin contract (the rdf3x buffer-manager idiom):
//
//   * Pin(seg) makes the segment resident, verifies it (CRC, header
//     consistency) on load, bumps its pin count, and returns a span over
//     the mapped records. The span stays valid exactly until the
//     matching Unpin — never across it.
//   * Unpin(seg) releases one pin. Unpinned segments stay cached until
//     the frame is needed (LRU), so re-pinning a warm segment is free.
//   * When every frame is pinned and a new segment is requested, Pin
//     fails (kFailedPrecondition) rather than silently growing the
//     budget — the caller is holding too many spans.
//
// Reads never mutate the file; any number of readers may share it.

#ifndef ROD_TRACE_STORE_READER_H_
#define ROD_TRACE_STORE_READER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/store/format.h"

namespace rod::trace::store {

struct ReaderOptions {
  /// Resident-segment budget (frames in the buffer manager). At least 1;
  /// sequential replay needs no more than 2 (current + readahead target).
  size_t resident_segments = 4;

  /// Map segments with mmap (madvise'd for sequential access). When
  /// false — or when mmap fails at runtime — segments are pread into
  /// owned buffers instead; results are identical.
  bool use_mmap = true;

  /// Hint the kernel to prefetch the next segment whenever one is
  /// faulted in (posix_fadvise WILLNEED; applies to both read paths).
  bool readahead = true;

  /// Verify each segment's CRC and header when it is loaded. Costs one
  /// pass over the payload per load; disable only for trusted files in
  /// throughput benchmarks.
  bool verify_checksums = true;
};

/// Observability counters (monotonic over the reader's lifetime).
struct ReaderStats {
  uint64_t pins = 0;           ///< Pin calls.
  uint64_t cache_hits = 0;     ///< Pins satisfied by a resident frame.
  uint64_t segment_loads = 0;  ///< Segments faulted in from disk.
  uint64_t evictions = 0;      ///< Resident segments displaced.
};

class SegmentReader {
 public:
  /// Opens and validates `path`: manifest magic/CRC/version, and the
  /// file size must match the manifest exactly (a truncated store is
  /// rejected here, before any segment is served).
  static Result<SegmentReader> Open(const std::string& path,
                                    const ReaderOptions& options = {});

  SegmentReader(SegmentReader&& other) noexcept;
  SegmentReader& operator=(SegmentReader&& other) noexcept;
  SegmentReader(const SegmentReader&) = delete;
  SegmentReader& operator=(const SegmentReader&) = delete;
  ~SegmentReader();

  const StoreInfo& info() const { return info_; }
  const ReaderStats& stats() const { return stats_; }

  /// True when the mmap path is active (false: pread fallback).
  bool using_mmap() const { return use_mmap_; }

  /// Pins segment `seg` and returns its live records (zero-copy into the
  /// mapping / load buffer). See the pin/unpin contract above.
  Result<std::span<const ArrivalRecord>> Pin(uint64_t seg);

  /// Releases one pin on `seg`. Unpinning a segment that is not pinned
  /// is a programming error (asserted in debug builds, ignored in
  /// release).
  void Unpin(uint64_t seg);

  /// Currently resident segments (pinned or cached).
  size_t resident_segments() const;

  /// Full-file integrity scan: every segment's CRC and header, global
  /// record count, and time monotonicity across the whole store. Streams
  /// through the normal Pin path, so it runs in bounded memory.
  Status VerifyAll();

 private:
  SegmentReader() = default;

  struct Frame {
    static constexpr uint64_t kEmpty = UINT64_MAX;
    uint64_t seg = kEmpty;
    uint32_t pin_count = 0;
    uint64_t last_use = 0;
    std::span<const ArrivalRecord> records;
    // mmap path: the page-aligned mapping holding this segment.
    void* map_base = nullptr;
    size_t map_len = 0;
    // pread path: the owned load buffer (reused across loads).
    std::vector<std::byte> buffer;
  };

  Status LoadInto(Frame& frame, uint64_t seg);
  void Release(Frame& frame);

  int fd_ = -1;
  StoreInfo info_;
  bool use_mmap_ = true;
  bool readahead_ = true;
  bool verify_checksums_ = true;
  std::vector<Frame> frames_;
  uint64_t use_clock_ = 0;
  ReaderStats stats_;
};

}  // namespace rod::trace::store

#endif  // ROD_TRACE_STORE_READER_H_
