// Copyright (c) the ROD reproduction authors.
//
// On-disk layout of the segmented binary trace store — the line-rate
// ingest front end's persistent form of an arrival-timestamp stream
// (ITA-style traces, paper §7, at sizes far beyond memory).
//
// A store file is:
//
//   [ FileHeader, 64 bytes ]            the file-level manifest
//   [ segment 0 ][ segment 1 ] ...      kNumSegments fixed-size segments
//
// and each segment is:
//
//   [ SegmentHeader, 16 bytes ]
//   [ record 0 ][ record 1 ] ... [ record record_count-1 ]
//   [ zero padding up to records_per_segment records ]
//
// Every segment occupies exactly SegmentBytes() bytes on disk, so the
// byte offset of segment `i` is a multiplication — no per-segment index
// is needed and a reader can seek anywhere in O(1). Only the final
// segment may be partially filled (record_count < records_per_segment);
// a store never ends with an *empty* segment unless it is empty overall.
//
// All integers and doubles are little-endian (IEEE-754 for the times).
// The header carries a CRC-32 of its own preceding bytes, and each
// segment header carries a CRC-32 of the segment's live payload, so
// truncation and bit-rot are detected before a single record is served.

#ifndef ROD_TRACE_STORE_FORMAT_H_
#define ROD_TRACE_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/status.h"

namespace rod::trace::store {

/// One arrival: the instant (virtual seconds, non-decreasing through the
/// file) plus the input stream it belongs to. 16 bytes, trivially
/// copyable, so an mmap'ed segment payload is directly usable as a
/// `span<const ArrivalRecord>` with no decode step (zero-copy replay).
struct ArrivalRecord {
  double time = 0.0;     ///< Arrival instant, seconds.
  uint32_t stream = 0;   ///< Input stream id.
  uint32_t flags = 0;    ///< Reserved; written as 0.

  friend bool operator==(const ArrivalRecord& a, const ArrivalRecord& b) {
    return a.time == b.time && a.stream == b.stream && a.flags == b.flags;
  }
};
static_assert(sizeof(ArrivalRecord) == 16, "on-disk record is 16 bytes");
static_assert(alignof(ArrivalRecord) == 8, "payload must start 8-aligned");

/// File magic: "RODTRC01" (8 bytes, also encodes the major layout).
inline constexpr char kMagic[8] = {'R', 'O', 'D', 'T', 'R', 'C', '0', '1'};

/// Bumped when the layout changes incompatibly.
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr size_t kFileHeaderBytes = 64;
inline constexpr size_t kSegmentHeaderBytes = 16;

/// Decoded file-level manifest (the fixed-size FileHeader).
struct StoreInfo {
  uint32_t records_per_segment = 0;  ///< Segment capacity (> 0).
  uint32_t num_streams = 0;          ///< Max stream id + 1 over all records.
  uint64_t num_segments = 0;
  uint64_t total_records = 0;
  double time_lo = 0.0;  ///< First record's time (0 when empty).
  double time_hi = 0.0;  ///< Last record's time (0 when empty).

  /// On-disk bytes of one segment (header + full payload).
  size_t segment_bytes() const {
    return kSegmentHeaderBytes +
           static_cast<size_t>(records_per_segment) * sizeof(ArrivalRecord);
  }
  /// Byte offset of segment `i`'s header.
  uint64_t segment_offset(uint64_t i) const {
    return kFileHeaderBytes + i * segment_bytes();
  }
  /// Total file size implied by the manifest.
  uint64_t file_bytes() const { return segment_offset(num_segments); }
};

/// Decoded per-segment header.
struct SegmentInfo {
  uint32_t record_count = 0;  ///< Live records in this segment.
  uint32_t payload_crc = 0;   ///< CRC-32 of the live payload bytes.
  uint64_t first_record = 0;  ///< Global index of the segment's first record.
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib convention) over
/// `bytes`. Chainable: pass a previous result as `seed` to extend.
uint32_t Crc32(std::span<const std::byte> bytes, uint32_t seed = 0);

/// Serializes `info` into exactly kFileHeaderBytes bytes (magic, version,
/// manifest fields, trailing header CRC).
void EncodeFileHeader(const StoreInfo& info,
                      std::span<std::byte, kFileHeaderBytes> out);

/// Parses and validates a file header: magic, version, header CRC, and
/// basic manifest sanity (positive segment capacity, record/segment
/// count consistency).
Result<StoreInfo> DecodeFileHeader(std::span<const std::byte> bytes);

/// Serializes `seg` into exactly kSegmentHeaderBytes bytes.
void EncodeSegmentHeader(const SegmentInfo& seg,
                         std::span<std::byte, kSegmentHeaderBytes> out);

/// Parses a segment header (no payload verification — the reader checks
/// the payload CRC against bytes it actually loaded).
Result<SegmentInfo> DecodeSegmentHeader(std::span<const std::byte> bytes);

}  // namespace rod::trace::store

#endif  // ROD_TRACE_STORE_FORMAT_H_
