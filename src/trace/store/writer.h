// Copyright (c) the ROD reproduction authors.
//
// Segment-store writer: turns an ordered arrival stream into the on-disk
// segmented form (format.h). Appends buffer one segment in memory and
// flush it whole, so writing a larger-than-memory trace needs one
// segment's worth of RAM. The file-level manifest is finalized by
// Finish(): until then the file carries a zeroed header whose CRC cannot
// validate, so a crashed or abandoned conversion is rejected by every
// reader instead of silently serving a prefix.

#ifndef ROD_TRACE_STORE_WRITER_H_
#define ROD_TRACE_STORE_WRITER_H_

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/store/format.h"

namespace rod::trace::store {

struct WriterOptions {
  /// Records per segment. The default (64Ki records = 1 MiB payload)
  /// keeps segments large enough to amortize header+CRC overhead and
  /// small enough that a reader budget of a few segments stays modest.
  uint32_t records_per_segment = 64 * 1024;
};

/// Streaming writer for one store file. Move-only; the destructor
/// abandons an unfinished file (leaving it unreadable by design) —
/// call Finish() to produce a valid store.
class SegmentWriter {
 public:
  /// Creates/truncates `path` and reserves the manifest slot.
  static Result<SegmentWriter> Open(const std::string& path,
                                    const WriterOptions& options = {});

  SegmentWriter(SegmentWriter&& other) noexcept;
  SegmentWriter& operator=(SegmentWriter&& other) noexcept;
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;
  ~SegmentWriter();

  /// Appends one record. Times must be finite, non-negative, and
  /// non-decreasing across the whole file (the replay path relies on it).
  Status Append(const ArrivalRecord& record);

  /// Appends a batch (same validation, one call).
  Status Append(std::span<const ArrivalRecord> records);

  /// Flushes the partial segment, writes the validated manifest, and
  /// closes the file. Idempotent once successful; Append after Finish
  /// fails. An empty store (zero records, zero segments) is valid.
  Status Finish();

  uint64_t records_written() const { return total_records_; }
  uint64_t segments_written() const { return segments_flushed_; }

 private:
  SegmentWriter() = default;

  Status FlushSegment();

  std::FILE* file_ = nullptr;
  std::string path_;
  uint32_t records_per_segment_ = 0;
  std::vector<ArrivalRecord> pending_;  ///< The open segment's records.
  std::vector<std::byte> io_buffer_;    ///< Serialized-segment staging.
  uint64_t total_records_ = 0;
  uint64_t segments_flushed_ = 0;
  uint32_t max_stream_ = 0;
  double time_lo_ = 0.0;
  double time_hi_ = 0.0;
  bool finished_ = false;
};

/// Convenience converter: writes a full store from sorted timestamps of a
/// single stream `stream`. Validation as Append.
Status WriteTimestamps(std::span<const double> timestamps, uint32_t stream,
                       const std::string& path,
                       const WriterOptions& options = {});

}  // namespace rod::trace::store

#endif  // ROD_TRACE_STORE_WRITER_H_
