#include "trace/store/format.h"

#include <array>
#include <bit>
#include <cstring>
#include <string>

namespace rod::trace::store {

namespace {

/// Byte-order audit: the store is defined little-endian, and the
/// zero-copy read path reinterprets mapped payload bytes as
/// ArrivalRecord directly. Every production target of this repo is
/// little-endian; a big-endian port would need a decode-on-load path.
static_assert(std::endian::native == std::endian::little,
              "trace store assumes a little-endian host");

void StoreU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
void StoreU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }
void StoreF64(std::byte* p, double v) { std::memcpy(p, &v, 8); }

uint32_t LoadU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t LoadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
double LoadF64(const std::byte* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

/// CRC-32 lookup table, generated once (thread-safe since C++11 statics).
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const std::byte> bytes, uint32_t seed) {
  const auto& table = CrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : bytes) {
    c = table[(c ^ static_cast<uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// FileHeader layout (64 bytes):
//   [0..8)   magic "RODTRC01"
//   [8..12)  version
//   [12..16) record_size (sizeof(ArrivalRecord), layout audit)
//   [16..20) records_per_segment
//   [20..24) num_streams
//   [24..32) num_segments
//   [32..40) total_records
//   [40..48) time_lo
//   [48..56) time_hi
//   [56..60) reserved (0)
//   [60..64) CRC-32 of bytes [0..60)

void EncodeFileHeader(const StoreInfo& info,
                      std::span<std::byte, kFileHeaderBytes> out) {
  std::memset(out.data(), 0, out.size());
  std::memcpy(out.data(), kMagic, sizeof(kMagic));
  StoreU32(out.data() + 8, kFormatVersion);
  StoreU32(out.data() + 12, static_cast<uint32_t>(sizeof(ArrivalRecord)));
  StoreU32(out.data() + 16, info.records_per_segment);
  StoreU32(out.data() + 20, info.num_streams);
  StoreU64(out.data() + 24, info.num_segments);
  StoreU64(out.data() + 32, info.total_records);
  StoreF64(out.data() + 40, info.time_lo);
  StoreF64(out.data() + 48, info.time_hi);
  StoreU32(out.data() + 60, Crc32(out.first(60)));
}

Result<StoreInfo> DecodeFileHeader(std::span<const std::byte> bytes) {
  if (bytes.size() < kFileHeaderBytes) {
    return Status::DataLoss("trace store header truncated: " +
                            std::to_string(bytes.size()) + " bytes, want " +
                            std::to_string(kFileHeaderBytes));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a trace store file (bad magic)");
  }
  const uint32_t stored_crc = LoadU32(bytes.data() + 60);
  const uint32_t actual_crc = Crc32(bytes.first(60));
  if (stored_crc != actual_crc) {
    return Status::DataLoss(
        "trace store header CRC mismatch (file truncated mid-write or "
        "corrupted)");
  }
  const uint32_t version = LoadU32(bytes.data() + 8);
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported trace store version " +
                                   std::to_string(version));
  }
  const uint32_t record_size = LoadU32(bytes.data() + 12);
  if (record_size != sizeof(ArrivalRecord)) {
    return Status::InvalidArgument("trace store record size " +
                                   std::to_string(record_size) +
                                   " does not match this build");
  }
  StoreInfo info;
  info.records_per_segment = LoadU32(bytes.data() + 16);
  info.num_streams = LoadU32(bytes.data() + 20);
  info.num_segments = LoadU64(bytes.data() + 24);
  info.total_records = LoadU64(bytes.data() + 32);
  info.time_lo = LoadF64(bytes.data() + 40);
  info.time_hi = LoadF64(bytes.data() + 48);
  if (info.records_per_segment == 0) {
    return Status::DataLoss("trace store manifest: zero segment capacity");
  }
  // A store holds exactly the segments its records need: no empty
  // trailing segment, no record beyond the last segment's capacity.
  const uint64_t cap = info.records_per_segment;
  const uint64_t min_records =
      info.num_segments == 0 ? 0 : (info.num_segments - 1) * cap + 1;
  const uint64_t max_records = info.num_segments * cap;
  if (info.total_records < min_records || info.total_records > max_records) {
    return Status::DataLoss(
        "trace store manifest: " + std::to_string(info.total_records) +
        " records do not fit " + std::to_string(info.num_segments) +
        " segments of " + std::to_string(cap));
  }
  return info;
}

// SegmentHeader layout (16 bytes):
//   [0..4)   record_count
//   [4..8)   payload CRC-32
//   [8..16)  first_record (global index; redundancy check against the
//            segment's position, catches segment-swap corruption)

void EncodeSegmentHeader(const SegmentInfo& seg,
                         std::span<std::byte, kSegmentHeaderBytes> out) {
  StoreU32(out.data(), seg.record_count);
  StoreU32(out.data() + 4, seg.payload_crc);
  StoreU64(out.data() + 8, seg.first_record);
}

Result<SegmentInfo> DecodeSegmentHeader(std::span<const std::byte> bytes) {
  if (bytes.size() < kSegmentHeaderBytes) {
    return Status::DataLoss("trace segment header truncated");
  }
  SegmentInfo seg;
  seg.record_count = LoadU32(bytes.data());
  seg.payload_crc = LoadU32(bytes.data() + 4);
  seg.first_record = LoadU64(bytes.data() + 8);
  return seg;
}

}  // namespace rod::trace::store
