#include "trace/store/replay.h"

#include <cassert>
#include <utility>

namespace rod::trace::store {

BatchCursor::BatchCursor(SegmentReader* reader) : reader_(reader) {
  assert(reader_ != nullptr);
}

BatchCursor::~BatchCursor() { DropPin(); }

BatchCursor::BatchCursor(BatchCursor&& other) noexcept
    : reader_(other.reader_),
      segment_(other.segment_),
      in_segment_(other.in_segment_),
      pinned_(std::exchange(other.pinned_, false)),
      records_(other.records_),
      position_(other.position_) {}

BatchCursor& BatchCursor::operator=(BatchCursor&& other) noexcept {
  if (this != &other) {
    DropPin();
    reader_ = other.reader_;
    segment_ = other.segment_;
    in_segment_ = other.in_segment_;
    pinned_ = std::exchange(other.pinned_, false);
    records_ = other.records_;
    position_ = other.position_;
  }
  return *this;
}

void BatchCursor::DropPin() {
  if (pinned_) {
    reader_->Unpin(segment_);
    pinned_ = false;
    records_ = {};
  }
}

Result<std::span<const ArrivalRecord>> BatchCursor::NextSpan() {
  for (;;) {
    if (pinned_ && in_segment_ < records_.size()) {
      return records_.subspan(in_segment_);
    }
    if (pinned_) {
      // Current segment fully consumed: release it before moving on so
      // the buffer manager can recycle the frame.
      DropPin();
      ++segment_;
      in_segment_ = 0;
    }
    if (segment_ >= reader_->info().num_segments) {
      return std::span<const ArrivalRecord>();
    }
    auto span = reader_->Pin(segment_);
    ROD_RETURN_IF_ERROR(span.status());
    pinned_ = true;
    records_ = *span;
    // A non-final segment is never empty (writer invariant), but loop
    // anyway so a zero-record final segment terminates cleanly.
  }
}

void BatchCursor::Advance(size_t n) {
  assert(pinned_ && in_segment_ + n <= records_.size());
  in_segment_ += n;
  position_ += n;
}

void BatchCursor::Rewind() {
  DropPin();
  segment_ = 0;
  in_segment_ = 0;
  position_ = 0;
}

double StoreReplay::Refill() {
  // The previous span is exhausted; consume it in the cursor and pull
  // the next one. Errors latch into status_ and end the feed.
  if (!status_.ok()) return std::numeric_limits<double>::infinity();
  if (span_pos_ > 0) {
    cursor_.Advance(span_pos_);
    span_ = {};
    span_pos_ = 0;
  }
  auto next = cursor_.NextSpan();
  if (!next.ok()) {
    status_ = next.status();
    span_ = {};
    return std::numeric_limits<double>::infinity();
  }
  span_ = *next;
  if (span_.empty()) return std::numeric_limits<double>::infinity();
  span_pos_ = 1;
  return span_[0].time;
}

void StoreReplay::Rewind() {
  cursor_.Rewind();
  span_ = {};
  span_pos_ = 0;
  status_ = Status::OK();
}

Result<ReplaySet> ReplaySet::OpenStores(const std::vector<std::string>& paths,
                                        const ReaderOptions& options) {
  ReplaySet set;
  for (const std::string& path : paths) {
    auto reader = SegmentReader::Open(path, options);
    ROD_RETURN_IF_ERROR(reader.status());
    set.readers_.push_back(
        std::make_unique<SegmentReader>(std::move(*reader)));
    set.feeds_.push_back(
        std::make_unique<StoreReplay>(set.readers_.back().get()));
  }
  return set;
}

ReplaySet ReplaySet::FromVectors(std::vector<std::vector<double>> arrivals) {
  ReplaySet set;
  for (auto& stream : arrivals) {
    set.feeds_.push_back(std::make_unique<VectorReplay>(std::move(stream)));
  }
  return set;
}

Status ReplaySet::status() const {
  for (const auto& feed : feeds_) {
    ROD_RETURN_IF_ERROR(feed->status());
  }
  return Status::OK();
}

void ReplaySet::Rewind() {
  for (auto& feed : feeds_) feed->Rewind();
}

}  // namespace rod::trace::store
