// Copyright (c) the ROD reproduction authors.
//
// Trace persistence and conversion. Real traces (e.g. the Internet Traffic
// Archive sets the paper uses) arrive either as per-window rate series or
// as raw arrival-timestamp logs; this module loads both, and saves rate
// traces in a plain CSV format so experiments can pin exact inputs.

#ifndef ROD_TRACE_IO_H_
#define ROD_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace rod::trace {

/// Writes `trace` as CSV: a header line "window_sec,<value>" followed by
/// one rate per line. Overwrites `path`.
Status SaveCsv(const RateTrace& trace, const std::string& path);

/// Reads a trace written by SaveCsv, streaming line by line (constant
/// memory beyond the parsed rates). Fails on malformed content.
Result<RateTrace> LoadCsv(const std::string& path);

/// Reads an ITA-style arrival-timestamp log: one ascending timestamp
/// (seconds) per line; blank lines and '#' comments are skipped. Fails on
/// malformed, negative, non-finite, or out-of-order entries.
Result<std::vector<double>> LoadTimestampLog(const std::string& path);

/// Converts a sorted list of raw arrival timestamps (seconds) into a rate
/// trace with windows of `window_sec`, covering [0, max timestamp]. This
/// is how timestamp-log traces (ITA-style) become rate series. Fails on
/// unsorted or negative timestamps, or non-positive window.
Result<RateTrace> RatesFromTimestamps(const std::vector<double>& timestamps,
                                      double window_sec);

/// Serializes a trace to the CSV string form used by SaveCsv (exposed for
/// tests and in-memory round-trips).
std::string ToCsvString(const RateTrace& trace);

/// Parses the CSV string form. Fails on malformed content.
Result<RateTrace> FromCsvString(const std::string& csv);

}  // namespace rod::trace

#endif  // ROD_TRACE_IO_H_
