#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"
#include "trace/bmodel.h"

namespace rod::trace {

double RateTrace::MeanRate() const { return Mean(rates); }

double RateTrace::StdDevRate() const { return StdDev(rates); }

double RateTrace::CoefficientOfVariation() const {
  const double mean = MeanRate();
  return mean > 0.0 ? StdDevRate() / mean : 0.0;
}

double RateTrace::RateAt(double t) const {
  if (rates.empty()) return 0.0;
  if (t <= 0.0) return rates.front();
  size_t w = static_cast<size_t>(t / window_sec);
  w = std::min(w, rates.size() - 1);
  return rates[w];
}

RateTrace RateTrace::ScaledToMean(double target_mean) const {
  assert(target_mean >= 0.0);
  RateTrace out = *this;
  const double mean = MeanRate();
  if (mean <= 0.0) return out;
  const double factor = target_mean / mean;
  for (double& r : out.rates) r *= factor;
  return out;
}

const char* TracePresetName(TracePreset preset) {
  switch (preset) {
    case TracePreset::kPkt:
      return "PKT";
    case TracePreset::kTcp:
      return "TCP";
    case TracePreset::kHttp:
      return "HTTP";
  }
  return "unknown";
}

RateTrace GeneratePreset(TracePreset preset, size_t num_windows,
                         double window_sec, Rng& rng) {
  assert(num_windows > 0);
  // Target coefficients of variation calibrated to the character of the
  // paper's Figure 2 traces (TCP most bursty, PKT least).
  double target_cv = 0.2;
  switch (preset) {
    case TracePreset::kPkt:
      target_cv = 0.2;
      break;
    case TracePreset::kTcp:
      target_cv = 0.5;
      break;
    case TracePreset::kHttp:
      target_cv = 0.35;
      break;
  }
  // Round the window count up to the next power of two for the cascade,
  // then truncate back.
  size_t levels = 1;
  while ((size_t{1} << levels) < num_windows) ++levels;
  BModelOptions options;
  options.levels = levels;
  options.bias = BModelBiasForCv(target_cv, levels);
  options.mean_rate = 1.0;
  options.window_sec = window_sec;
  RateTrace trace = GenerateBModel(options, rng);
  trace.rates.resize(num_windows);
  return trace.Normalized();  // re-center the truncated series at mean 1
}

RateTrace GenerateSinusoid(const SinusoidOptions& options) {
  assert(options.num_windows > 0 && options.window_sec > 0.0);
  assert(options.mean >= 0.0 && options.period > 0.0);
  RateTrace trace;
  trace.window_sec = options.window_sec;
  trace.rates.reserve(options.num_windows);
  for (size_t w = 0; w < options.num_windows; ++w) {
    const double t = (static_cast<double>(w) + 0.5) * options.window_sec;
    const double value =
        options.mean *
        (1.0 + options.relative_amplitude *
                   std::sin(2.0 * M_PI * t / options.period + options.phase));
    trace.rates.push_back(std::max(0.0, value));
  }
  return trace;
}

}  // namespace rod::trace
