#include "trace/bmodel.h"

#include <cassert>
#include <cmath>

namespace rod::trace {

RateTrace GenerateBModel(const BModelOptions& options, Rng& rng) {
  assert(options.levels >= 1 && options.levels <= 24);
  assert(options.bias >= 0.5 && options.bias < 1.0);
  assert(options.mean_rate >= 0.0 && options.window_sec > 0.0);

  const size_t n = size_t{1} << options.levels;
  // Cascade: start from the total tuple volume and recursively split each
  // segment, sending fraction `bias` to a uniformly random half.
  std::vector<double> cur = {options.mean_rate * static_cast<double>(n) *
                             options.window_sec};
  for (size_t level = 0; level < options.levels; ++level) {
    std::vector<double> next;
    next.reserve(cur.size() * 2);
    for (double total : cur) {
      const double heavy = total * options.bias;
      const double light = total - heavy;
      if (rng.Bernoulli(0.5)) {
        next.push_back(heavy);
        next.push_back(light);
      } else {
        next.push_back(light);
        next.push_back(heavy);
      }
    }
    cur = std::move(next);
  }

  RateTrace trace;
  trace.window_sec = options.window_sec;
  trace.rates = std::move(cur);
  for (double& tuples : trace.rates) tuples /= options.window_sec;
  return trace;
}

double BModelTheoreticalCv(double bias, size_t levels) {
  assert(bias >= 0.5 && bias < 1.0);
  const double factor = 4.0 * bias * bias - 4.0 * bias + 2.0;
  return std::sqrt(std::pow(factor, static_cast<double>(levels)) - 1.0);
}

double BModelBiasForCv(double target_cv, size_t levels) {
  assert(target_cv >= 0.0 && levels >= 1);
  // cv^2 + 1 = (4b^2 - 4b + 2)^levels, solved for b in [0.5, 1).
  const double factor = std::pow(target_cv * target_cv + 1.0,
                                 1.0 / static_cast<double>(levels));
  return 0.5 * (1.0 + std::sqrt(factor - 1.0));
}

}  // namespace rod::trace
