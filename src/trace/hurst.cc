#include "trace/hurst.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace rod::trace {

namespace {

/// Least-squares slope of y against x.
double Slope(const std::vector<double>& x, const std::vector<double>& y) {
  const double mx = Mean(x);
  const double my = Mean(y);
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den > 0.0 ? num / den : 0.0;
}

/// Rescaled range of one block: range of the mean-adjusted cumulative sum
/// divided by the block's standard deviation. Returns 0 for degenerate
/// (constant) blocks.
double RescaledRange(const double* block, size_t len) {
  double mean = 0.0;
  for (size_t i = 0; i < len; ++i) mean += block[i];
  mean /= static_cast<double>(len);
  double cum = 0.0, lo = 0.0, hi = 0.0, var = 0.0;
  for (size_t i = 0; i < len; ++i) {
    cum += block[i] - mean;
    lo = std::min(lo, cum);
    hi = std::max(hi, cum);
    var += (block[i] - mean) * (block[i] - mean);
  }
  const double sd = std::sqrt(var / static_cast<double>(len));
  return sd > 0.0 ? (hi - lo) / sd : 0.0;
}

}  // namespace

Result<double> EstimateHurstRS(const std::vector<double>& series) {
  if (series.size() < 32) {
    return Status::InvalidArgument("R/S analysis needs >= 32 observations");
  }
  std::vector<double> log_size, log_rs;
  // Geometric block sizes from 8 to n/2.
  for (size_t size = 8; size * 2 <= series.size(); size *= 2) {
    const size_t blocks = series.size() / size;
    double sum_rs = 0.0;
    size_t used = 0;
    for (size_t b = 0; b < blocks; ++b) {
      const double rs = RescaledRange(series.data() + b * size, size);
      if (rs > 0.0) {
        sum_rs += rs;
        ++used;
      }
    }
    if (used == 0) continue;
    log_size.push_back(std::log(static_cast<double>(size)));
    log_rs.push_back(std::log(sum_rs / static_cast<double>(used)));
  }
  if (log_size.size() < 2) {
    return Status::FailedPrecondition(
        "series too degenerate for R/S analysis");
  }
  return Slope(log_size, log_rs);
}

Result<double> EstimateHurstVarianceTime(const std::vector<double>& series) {
  if (series.size() < 64) {
    return Status::InvalidArgument(
        "variance-time analysis needs >= 64 observations");
  }
  std::vector<double> log_m, log_var;
  for (size_t level = 1; series.size() / level >= 8; level *= 2) {
    // Mean-aggregate: average consecutive groups of `level` samples.
    std::vector<double> agg = AggregateSeries(series, level);
    for (double& v : agg) v /= static_cast<double>(level);
    const double sd = StdDev(agg);
    if (sd <= 0.0) continue;
    log_m.push_back(std::log(static_cast<double>(level)));
    log_var.push_back(std::log(sd * sd));
  }
  if (log_m.size() < 2) {
    return Status::FailedPrecondition(
        "series too degenerate for variance-time analysis");
  }
  const double beta = -Slope(log_m, log_var);
  return 1.0 - beta / 2.0;
}

}  // namespace rod::trace
