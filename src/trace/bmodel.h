// Copyright (c) the ROD reproduction authors.
//
// The b-model: a binomial multiplicative cascade that generates
// self-similar, bursty traffic series (Wang et al., "Data Mining Meets
// Performance Evaluation: Fast Algorithms for Modeling Bursty Traffic").
// A bias b = 0.5 yields a flat series; b -> 1 concentrates volume in ever
// fewer windows, raising burstiness at *every* aggregation level — the
// property the paper's Figure 2 highlights ("similar behaviour is observed
// at other time-scales due to the self-similar nature of these
// workloads").

#ifndef ROD_TRACE_BMODEL_H_
#define ROD_TRACE_BMODEL_H_

#include "common/random.h"
#include "trace/trace.h"

namespace rod::trace {

/// b-model cascade parameters.
struct BModelOptions {
  /// Cascade depth; the series has 2^levels windows.
  size_t levels = 12;

  /// Split bias in [0.5, 1): at each level one random half of the interval
  /// receives fraction `bias` of the volume, the other `1 - bias`.
  double bias = 0.65;

  /// Mean rate of the generated series (tuples/second).
  double mean_rate = 1.0;

  /// Window width in seconds.
  double window_sec = 1.0;
};

/// Generates one b-model series. Deterministic given `rng`'s state.
RateTrace GenerateBModel(const BModelOptions& options, Rng& rng);

/// Theoretical burstiness handle: the cascade's coefficient of variation
/// after `levels` splits, `sqrt((4b^2 - 4b + 2)^levels - 1)`. Useful to
/// pick a bias for a target cv.
double BModelTheoreticalCv(double bias, size_t levels);

/// Inverse of BModelTheoreticalCv: the bias whose cascade attains the
/// target coefficient of variation at the given depth (closed form).
double BModelBiasForCv(double target_cv, size_t levels);

}  // namespace rod::trace

#endif  // ROD_TRACE_BMODEL_H_
