// Copyright (c) the ROD reproduction authors.
//
// Merging per-process Chrome trace dumps onto one timeline. Every
// cluster process exports trace events on its own telemetry clock
// (microseconds since that process started), so three workers' dumps
// loaded together would overlap nonsensically. Each dump carries its
// coordinator-estimated clock offset in the top-level "rod" metadata
// object (written by Telemetry::WriteChromeTrace with a
// ChromeTraceProcess); this library rebases every event timestamp onto
// the coordinator clock (ts + offset), gives each input a distinct pid
// with a named process row, and emits one time-sorted merged trace —
// the file tools/rod_trace_merge writes and CI uploads, in which a
// kill-9 incident reads as a single aligned timeline.
//
// Layering: uses Status and the JSON reader, so it compiles into
// rod_common (above rod_telemetry).

#ifndef ROD_TELEMETRY_TRACE_MERGE_H_
#define ROD_TELEMETRY_TRACE_MERGE_H_

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "telemetry/json_reader.h"

namespace rod::telemetry {

/// One parsed per-process trace dump.
struct TraceDump {
  /// Process row label: the dump's process_name metadata event if
  /// present, else the fallback passed to ParseChromeTraceDump.
  std::string process_name;
  /// Microseconds to add to every timestamp to land on the coordinator
  /// clock (from "rod".clock_offset_us; 0 when absent — e.g. the
  /// coordinator's own dump).
  double clock_offset_us = 0.0;
  /// "rod".worker_id when present, else -1 (the coordinator).
  double worker_id = -1.0;
  /// The parsed traceEvents array, untouched.
  JsonValue events;
};

/// Parses one Chrome trace dump as written by WriteChromeTrace (object
/// form with a "traceEvents" array; the bare-array form is accepted
/// too). `fallback_name` labels the process when the dump carries no
/// process_name metadata.
Result<TraceDump> ParseChromeTraceDump(std::string_view json,
                                       std::string_view fallback_name);

/// Merges `dumps` into one Chrome trace on `out`: input i becomes pid
/// i+1 with a process_name metadata row, every timed event's ts is
/// rebased by its dump's clock_offset_us, and timed events are emitted
/// in globally non-decreasing ts order. The output's "rod" object
/// records the merge ("schema": "rod.trace_merge.v1", process count).
Status MergeChromeTraces(const std::vector<TraceDump>& dumps,
                         std::ostream& out);

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_TRACE_MERGE_H_
