// Copyright (c) the ROD reproduction authors.
//
// Process-wide, thread-safe telemetry: a metric registry (counters,
// gauges, mergeable log-bucketed histograms) plus span-based trace
// events, with exporters for a flat metrics-snapshot JSON and the Chrome
// `trace_event` format (loadable in chrome://tracing / Perfetto).
//
// The paper's evaluation (§7.1) rests on continuously observing per-node
// utilization and latency on a running cluster; this is the repo's
// version of that monitoring layer, shared by the engine event loop, the
// supervisor, the sweep runner, and the thread pool.
//
// Concurrency model (the ThreadPool determinism idiom applied to
// measurement): every recording thread owns a private shard — counter
// slots, histogram buckets, and a fixed-size trace-event ring — and only
// the owning thread writes it, through relaxed atomics, so the fast path
// takes no lock and induces no data race. `Snapshot()` and the exporters
// merge the shards; integer counters and bucket counts merge by
// addition, which is associative and commutative, so a snapshot is
// independent of how work was partitioned across threads. Histogram
// `sum` is a double and merges in shard order (exact whenever the
// recorded values are exactly representable). Registering a metric or a
// new thread's shard takes a mutex once; the per-record path never does.
//
// Trace rings are bounded: once a thread's ring holds `ring_capacity`
// events, further events on that thread are dropped (newest-dropped
// policy) and counted, so drop accounting is deterministic for a given
// per-thread event sequence. Export while recorders are still running is
// not supported — quiesce first (ParallelFor/SimulateSweep block until
// every chunk finished, so exporting after they return is safe).
//
// Everything is nullable by convention: the runtime layers carry a
// `Telemetry*` that defaults to nullptr, and every helper (TraceSpan,
// ROD_TRACE_SPAN) degrades to a no-op on a null sink, so the
// instrumented hot paths pay one branch when telemetry is off.

#ifndef ROD_TELEMETRY_TELEMETRY_H_
#define ROD_TELEMETRY_TELEMETRY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rod::telemetry {

class JsonWriter;
class Telemetry;

struct TelemetryOptions {
  /// Trace events retained per recording thread; the ring drops (and
  /// counts) the newest events beyond this.
  size_t ring_capacity = 8192;

  /// Record spans/instants at all. Counters/gauges/histograms are
  /// unaffected; turning this off makes TraceSpan free.
  bool capture_traces = true;

  /// Testing hook: when true, the trace clock only advances via
  /// AdvanceClock(), so exported timestamps are reproducible.
  bool manual_clock = false;
};

/// Handle to a registered counter. Value-semantic and cheap to copy; a
/// default-constructed handle ignores Add(). Handles must not outlive
/// their Telemetry.
class Counter {
 public:
  Counter() = default;
  inline void Add(uint64_t n = 1);
  bool valid() const { return telemetry_ != nullptr; }

 private:
  friend class Telemetry;
  Counter(Telemetry* t, uint32_t id) : telemetry_(t), id_(id) {}
  Telemetry* telemetry_ = nullptr;
  uint32_t id_ = 0;
};

/// Handle to a registered gauge (last-written value wins).
class Gauge {
 public:
  Gauge() = default;
  inline void Set(double v);
  /// Raises the gauge to `v` if above its current value (atomic max) —
  /// the high-water idiom. An external reset (Telemetry::SetGauge from
  /// e.g. the Aggregator) re-arms it.
  inline void Max(double v);
  bool valid() const { return telemetry_ != nullptr; }

 private:
  friend class Telemetry;
  Gauge(Telemetry* t, uint32_t id) : telemetry_(t), id_(id) {}
  Telemetry* telemetry_ = nullptr;
  uint32_t id_ = 0;
};

/// Handle to a registered log-bucketed histogram.
class Histogram {
 public:
  Histogram() = default;
  inline void Record(double v);
  bool valid() const { return telemetry_ != nullptr; }

 private:
  friend class Telemetry;
  Histogram(Telemetry* t, uint32_t id) : telemetry_(t), id_(id) {}
  Telemetry* telemetry_ = nullptr;
  uint32_t id_ = 0;
};

/// Merged view of one histogram: non-empty log buckets (half-open,
/// `value <= upper_bound`, two buckets per octave; bucket bound 0 holds
/// values <= 0) plus exact count/min/max and shard-order-merged sum.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// (bucket upper bound, count) for every non-empty bucket, ascending.
  std::vector<std::pair<double, uint64_t>> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Quantile estimate: the upper bound of the bucket containing the
  /// q-th sample, clamped to [min, max]. Exact to within one bucket
  /// (a factor of sqrt(2) in value).
  double Quantile(double q) const;
};

/// Point-in-time merge of every shard, with deterministic (name-sorted)
/// iteration order.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  uint64_t trace_events_recorded = 0;  ///< Retained in rings.
  uint64_t trace_events_dropped = 0;   ///< Lost to full rings.
  /// Registrations refused because a capacity cap (counters, gauges, or
  /// histograms) was already full — each refused `counter()`-style call
  /// counts once, so cap overflow is observable instead of silent.
  uint64_t dropped_registrations = 0;
};

/// Merges `src` into `dst` bucket-by-bucket (counts add, min/max widen,
/// sum adds). Both must come from the same log-bucket layout, which every
/// HistogramSnapshot in this codebase does; used to aggregate one metric
/// across processes (the coordinator merging worker-reported histograms).
void MergeHistogramInto(HistogramSnapshot& dst, const HistogramSnapshot& src);

/// Identity of the process row a Chrome-trace export describes. The
/// default (pid 1, no name, no extras) reproduces the single-process
/// export byte-for-byte; cluster processes set a distinct pid and a
/// human-readable name so merged traces read as one labeled timeline,
/// and record their clock offset so tools/rod_trace_merge can rebase
/// the dump onto the coordinator clock.
struct ChromeTraceProcess {
  uint64_t pid = 1;
  std::string name;  ///< Emitted as a process_name metadata event if set.
  /// Extra numeric facts exported under a top-level "rod" object (e.g.
  /// worker_id, clock_offset_us). Emitted only when non-empty.
  std::map<std::string, double> metadata;
};

/// One trace event copied out of a thread's ring by SnapshotTrace().
/// `category`/`name` point at the recorder's string literals.
struct TraceEventView {
  uint32_t tid = 0;
  const char* category = nullptr;
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;  ///< 0 for instants.
  uint64_t arg = 0;
  bool has_arg = false;
  bool instant = false;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  const TelemetryOptions& options() const { return options_; }

  // --- metric registry -------------------------------------------------
  // Registration is idempotent: the same name always returns a handle to
  // the same instrument. Names are dotted paths ("engine.events"); the
  // full inventory lives in docs/TELEMETRY.md.

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// One-shot conveniences for cold paths (registry lookup per call).
  void Count(std::string_view name, uint64_t n = 1) { counter(name).Add(n); }
  void SetGauge(std::string_view name, double v) { gauge(name).Set(v); }
  void Observe(std::string_view name, double v) { histogram(name).Record(v); }

  // --- trace events ----------------------------------------------------

  bool tracing() const { return options_.capture_traces; }

  /// Microseconds since construction (or the manual clock's position).
  double NowMicros() const;

  /// Advances the manual clock (TelemetryOptions::manual_clock only).
  void AdvanceClock(double micros);

  /// Records a completed span. `category` and `name` must outlive the
  /// Telemetry (string literals in practice). `arg` is exported as
  /// args.v when `has_arg`.
  void RecordSpan(const char* category, const char* name, double begin_us,
                  double end_us, uint64_t arg = 0, bool has_arg = false);

  /// Records an instant event at the current time.
  void RecordInstant(const char* category, const char* name, uint64_t arg = 0,
                     bool has_arg = false);

  // --- export ----------------------------------------------------------

  /// Merges every shard into a deterministic snapshot. Safe to call while
  /// recorders are still running (counters/buckets are atomics; the trace
  /// rings are only counted, not read), at the price of reading a value
  /// mid-update: concurrent snapshots are approximate, quiescent ones
  /// exact.
  MetricsSnapshot Snapshot() const;

  /// Copies every thread's trace ring, in shard (tid) order then ring
  /// order. Unlike WriteChromeTrace this is safe while recorders are
  /// still running: each ring's readable prefix is bounded by its
  /// release-published `recorded` count, so a concurrent caller (the
  /// flight recorder freezing state at a fault instant) sees only fully
  /// written events — it may simply miss the newest ones.
  std::vector<TraceEventView> SnapshotTrace() const;

  /// Flat metrics-snapshot JSON (schema in docs/TELEMETRY.md).
  void WriteMetricsJson(std::ostream& out) const;

  /// Chrome trace_event JSON ("X" complete spans, "i" instants, one tid
  /// per recording thread), loadable in chrome://tracing / Perfetto.
  void WriteChromeTrace(std::ostream& out) const;

  /// Same, but stamped with `process`'s pid/name/metadata so multiple
  /// processes' dumps can be merged onto one timeline.
  void WriteChromeTrace(std::ostream& out,
                        const ChromeTraceProcess& process) const;

  // Fast-path entry points used by the handles (shard-local, lock-free).
  void CounterAdd(uint32_t id, uint64_t n);
  void GaugeSet(uint32_t id, double v);
  void GaugeMax(uint32_t id, double v);
  void HistogramRecord(uint32_t id, double v);

 private:
  struct Impl;
  TelemetryOptions options_;
  std::unique_ptr<Impl> impl_;
};

inline void Counter::Add(uint64_t n) {
  if (telemetry_ != nullptr) telemetry_->CounterAdd(id_, n);
}
inline void Gauge::Set(double v) {
  if (telemetry_ != nullptr) telemetry_->GaugeSet(id_, v);
}
inline void Gauge::Max(double v) {
  if (telemetry_ != nullptr) telemetry_->GaugeMax(id_, v);
}
inline void Histogram::Record(double v) {
  if (telemetry_ != nullptr) telemetry_->HistogramRecord(id_, v);
}

/// Writes `snap` as the metrics-snapshot object into an in-progress
/// JsonWriter (after Key() or as an array element) — lets callers embed a
/// snapshot inside a larger document; Telemetry::WriteMetricsJson is this
/// over a fresh writer.
void WriteSnapshotJson(const MetricsSnapshot& snap, JsonWriter& w);

/// RAII trace span: records [construction, End() or destruction) into
/// `telemetry`, or does nothing when `telemetry` is null / tracing off.
class TraceSpan {
 public:
  TraceSpan(Telemetry* telemetry, const char* category, const char* name)
      : TraceSpan(telemetry, category, name, 0, false) {}
  TraceSpan(Telemetry* telemetry, const char* category, const char* name,
            uint64_t arg)
      : TraceSpan(telemetry, category, name, arg, true) {}
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void End();

 private:
  TraceSpan(Telemetry* telemetry, const char* category, const char* name,
            uint64_t arg, bool has_arg);

  Telemetry* telemetry_ = nullptr;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  double begin_us_ = 0.0;
  uint64_t arg_ = 0;
  bool has_arg_ = false;
};

// Scoped span helper: ROD_TRACE_SPAN(tel, "engine", "run") opens a span
// for the rest of the enclosing scope. `tel` may be null.
#define ROD_TELEMETRY_CONCAT_INNER(a, b) a##b
#define ROD_TELEMETRY_CONCAT(a, b) ROD_TELEMETRY_CONCAT_INNER(a, b)
#define ROD_TRACE_SPAN(tel, category, name)                             \
  ::rod::telemetry::TraceSpan ROD_TELEMETRY_CONCAT(rod_trace_span_,     \
                                                   __LINE__) {          \
    (tel), (category), (name)                                           \
  }

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_TELEMETRY_H_
