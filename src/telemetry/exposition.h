// Copyright (c) the ROD reproduction authors.
//
// Prometheus text exposition (format version 0.0.4) for a
// MetricsSnapshot — the scrape side of the live observability plane.
// Dotted registry names ("engine.events_processed") sanitize to
// Prometheus-legal ones ("engine_events_processed"); log-bucketed
// histograms render as the conventional cumulative `_bucket`/`_sum`/
// `_count` triple with `le` bounds taken from the registry's bucket
// upper bounds plus the mandatory `+Inf` bucket. Output is sorted by
// name (the snapshot maps are ordered), so a deterministic program
// produces byte-identical exposition — pinned by
// tests/golden/prometheus_metrics.txt.

#ifndef ROD_TELEMETRY_EXPOSITION_H_
#define ROD_TELEMETRY_EXPOSITION_H_

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.h"

namespace rod::telemetry {

struct PrometheusOptions {
  /// Labels attached to every exposed series (typically job/instance
  /// style identity). Names are sanitized like metric names; values are
  /// escaped per the exposition format (backslash, quote, newline).
  std::map<std::string, std::string> labels;
};

/// Maps an arbitrary registry name onto [a-zA-Z_:][a-zA-Z0-9_:]* by
/// replacing every illegal character (dots included) with '_'; a leading
/// digit gains a '_' prefix. Empty input becomes "_".
std::string SanitizePrometheusName(std::string_view name);

/// Escapes a label value for use inside double quotes: backslash, double
/// quote, and newline per the text exposition format.
std::string EscapePrometheusLabelValue(std::string_view value);

/// Renders the snapshot in Prometheus text exposition format 0.0.4:
/// every counter (TYPE counter), gauge (TYPE gauge), and histogram
/// (TYPE histogram, cumulative `le` buckets + `_sum` + `_count`), plus
/// the registry's own health series (`telemetry_trace_events_recorded`,
/// `telemetry_trace_events_dropped`, `telemetry_dropped_registrations`).
void WritePrometheusText(const MetricsSnapshot& snap, std::ostream& out,
                         const PrometheusOptions& options = {});

/// One process's snapshot inside a federated exposition, identified by
/// its label set (e.g. {worker="0", name="worker-a"}). The coordinator's
/// own snapshot conventionally carries an empty label set.
struct FederatedInstance {
  std::map<std::string, std::string> labels;
  MetricsSnapshot snapshot;
};

/// Renders several processes' snapshots as one valid exposition: series
/// of the same family (same sanitized name) are grouped under a single
/// `# TYPE` line — the format forbids repeating it — with each
/// instance's labels distinguishing the series. Families are emitted
/// name-sorted per metric class (counters, gauges, histograms, then the
/// per-instance telemetry health series); within a family, instances
/// appear in input order. A name registered as e.g. a counter in one
/// instance and a gauge in another would emit under both classes; the
/// registries share one naming scheme, so this does not arise.
void WriteFederatedPrometheusText(
    const std::vector<FederatedInstance>& instances, std::ostream& out);

/// The scrape Content-Type for this format.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_EXPOSITION_H_
