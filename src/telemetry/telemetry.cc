#include "telemetry/telemetry.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "telemetry/json_writer.h"

namespace rod::telemetry {

namespace {

// Registry capacities. Fixed so a shard's slot arrays never reallocate
// (the snapshot thread reads them while recorders write); registration
// past the cap yields an inert handle.
constexpr size_t kMaxCounters = 256;
constexpr size_t kMaxGauges = 256;
constexpr size_t kMaxHistograms = 64;

// Log-bucketed histogram geometry: two buckets per octave. Bucket 0
// holds v <= 0; bucket b in [1, 127] holds
// 2^((b-1-kBucketBias)/2) < v <= 2^((b-kBucketBias)/2), covering
// ~2^-32 .. 2^31 with the extremes clamped into the end buckets.
constexpr int kNumBuckets = 128;
constexpr int kBucketBias = 65;

int BucketOf(double v) {
  if (!(v > 0.0)) return 0;  // also catches NaN
  const double raw = std::ceil(std::log2(v) * 2.0);
  if (raw < static_cast<double>(1 - kBucketBias)) return 1;
  if (raw > static_cast<double>(kNumBuckets - 1 - kBucketBias)) {
    return kNumBuckets - 1;
  }
  return static_cast<int>(raw) + kBucketBias;
}

double BucketUpperBound(int b) {
  if (b <= 0) return 0.0;
  return std::exp2(static_cast<double>(b - kBucketBias) / 2.0);
}

/// Per-(shard, histogram) state, allocated on first record.
struct HistShard {
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  std::atomic<uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint64_t arg = 0;
  bool has_arg = false;
  bool instant = false;
};

/// One recording thread's private slice of a Telemetry instance. Only
/// the owning thread writes; the snapshot/export side reads counters and
/// drop totals through the atomics and the ring only at quiescence.
struct ThreadShard {
  ThreadShard(uint32_t tid_in, size_t ring_capacity)
      : tid(tid_in), capacity(std::max<size_t>(1, ring_capacity)) {
    ring.reserve(capacity);
  }
  ~ThreadShard() {
    for (auto& h : hists) delete h.load(std::memory_order_acquire);
  }

  const uint32_t tid;
  const size_t capacity;
  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<HistShard*>, kMaxHistograms> hists{};
  std::vector<TraceEvent> ring;
  std::atomic<uint64_t> recorded{0};  ///< == ring.size(), readable anytime.
  std::atomic<uint64_t> dropped{0};
};

std::atomic<uint64_t> g_next_instance{1};

/// Thread-local shard directory: (instance id -> shard) for every
/// Telemetry this thread has recorded into. Instance ids are never
/// reused, so entries for destroyed instances are inert.
struct TlsRef {
  uint64_t instance = 0;
  ThreadShard* shard = nullptr;
};
thread_local std::vector<TlsRef> t_shard_refs;

}  // namespace

struct Telemetry::Impl {
  explicit Impl(const TelemetryOptions& opts)
      : instance_id(g_next_instance.fetch_add(1, std::memory_order_relaxed)),
        options(opts),
        t0(std::chrono::steady_clock::now()) {}

  ThreadShard& LocalShard() {
    for (const TlsRef& ref : t_shard_refs) {
      if (ref.instance == instance_id) return *ref.shard;
    }
    std::lock_guard<std::mutex> lock(mu);
    shards.push_back(std::make_unique<ThreadShard>(
        static_cast<uint32_t>(shards.size()), options.ring_capacity));
    ThreadShard* shard = shards.back().get();
    t_shard_refs.push_back(TlsRef{instance_id, shard});
    return *shard;
  }

  const uint64_t instance_id;
  const TelemetryOptions options;
  mutable std::mutex mu;
  std::vector<std::unique_ptr<ThreadShard>> shards;
  std::unordered_map<std::string, uint32_t> counter_ids;
  std::unordered_map<std::string, uint32_t> gauge_ids;
  std::unordered_map<std::string, uint32_t> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;
  uint64_t dropped_registrations = 0;  ///< Guarded by mu.
  // Fixed-size so Set() needs no lock: id-indexed, last write wins.
  std::array<std::atomic<double>, kMaxGauges> gauge_values{};
  const std::chrono::steady_clock::time_point t0;
  std::atomic<double> manual_now{0.0};
};

Telemetry::Telemetry(TelemetryOptions options)
    : options_(options), impl_(std::make_unique<Impl>(options)) {}

Telemetry::~Telemetry() = default;

Counter Telemetry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counter_ids.find(std::string(name));
  if (it != impl_->counter_ids.end()) return Counter(this, it->second);
  if (impl_->counter_names.size() >= kMaxCounters) {
    ++impl_->dropped_registrations;
    return Counter();
  }
  const uint32_t id = static_cast<uint32_t>(impl_->counter_names.size());
  impl_->counter_names.emplace_back(name);
  impl_->counter_ids.emplace(std::string(name), id);
  return Counter(this, id);
}

Gauge Telemetry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauge_ids.find(std::string(name));
  if (it != impl_->gauge_ids.end()) return Gauge(this, it->second);
  if (impl_->gauge_names.size() >= kMaxGauges) {
    ++impl_->dropped_registrations;
    return Gauge();
  }
  const uint32_t id = static_cast<uint32_t>(impl_->gauge_names.size());
  impl_->gauge_names.emplace_back(name);
  impl_->gauge_ids.emplace(std::string(name), id);
  return Gauge(this, id);
}

Histogram Telemetry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->hist_ids.find(std::string(name));
  if (it != impl_->hist_ids.end()) return Histogram(this, it->second);
  if (impl_->hist_names.size() >= kMaxHistograms) {
    ++impl_->dropped_registrations;
    return Histogram();
  }
  const uint32_t id = static_cast<uint32_t>(impl_->hist_names.size());
  impl_->hist_names.emplace_back(name);
  impl_->hist_ids.emplace(std::string(name), id);
  return Histogram(this, id);
}

void Telemetry::CounterAdd(uint32_t id, uint64_t n) {
  if (id >= kMaxCounters) return;
  auto& slot = impl_->LocalShard().counters[id];
  // Owner-thread-only write: plain load/store through the atomic keeps
  // the snapshot reader race-free without an RMW.
  slot.store(slot.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

void Telemetry::GaugeSet(uint32_t id, double v) {
  if (id >= kMaxGauges) return;
  impl_->gauge_values[id].store(v, std::memory_order_relaxed);
}

void Telemetry::GaugeMax(uint32_t id, double v) {
  if (id >= kMaxGauges) return;
  auto& slot = impl_->gauge_values[id];
  double cur = slot.load(std::memory_order_relaxed);
  // CAS-max: typically one load (v below the high water) — cheap enough
  // for per-push hot paths like the event queue.
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Telemetry::HistogramRecord(uint32_t id, double v) {
  if (id >= kMaxHistograms) return;
  ThreadShard& shard = impl_->LocalShard();
  HistShard* h = shard.hists[id].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = new HistShard();
    shard.hists[id].store(h, std::memory_order_release);
  }
  auto& bucket = h->buckets[static_cast<size_t>(BucketOf(v))];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  h->count.store(h->count.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  h->sum.store(h->sum.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
  if (v < h->min.load(std::memory_order_relaxed)) {
    h->min.store(v, std::memory_order_relaxed);
  }
  if (v > h->max.load(std::memory_order_relaxed)) {
    h->max.store(v, std::memory_order_relaxed);
  }
}

double Telemetry::NowMicros() const {
  if (options_.manual_clock) {
    return impl_->manual_now.load(std::memory_order_relaxed);
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - impl_->t0)
      .count();
}

void Telemetry::AdvanceClock(double micros) {
  assert(options_.manual_clock && "AdvanceClock needs manual_clock");
  impl_->manual_now.store(
      impl_->manual_now.load(std::memory_order_relaxed) + micros,
      std::memory_order_relaxed);
}

void Telemetry::RecordSpan(const char* category, const char* name,
                           double begin_us, double end_us, uint64_t arg,
                           bool has_arg) {
  if (!options_.capture_traces) return;
  ThreadShard& shard = impl_->LocalShard();
  if (shard.ring.size() >= shard.capacity) {
    shard.dropped.store(shard.dropped.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
    return;
  }
  shard.ring.push_back(TraceEvent{category, name, begin_us,
                                  std::max(0.0, end_us - begin_us), arg,
                                  has_arg, /*instant=*/false});
  // Release-publish: SnapshotTrace may read the ring from another thread
  // mid-run, bounded by an acquire load of `recorded` (the ring's storage
  // never reallocates — capacity is reserved up front).
  shard.recorded.store(shard.ring.size(), std::memory_order_release);
}

void Telemetry::RecordInstant(const char* category, const char* name,
                              uint64_t arg, bool has_arg) {
  if (!options_.capture_traces) return;
  ThreadShard& shard = impl_->LocalShard();
  if (shard.ring.size() >= shard.capacity) {
    shard.dropped.store(shard.dropped.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
    return;
  }
  shard.ring.push_back(TraceEvent{category, name, NowMicros(), 0.0, arg,
                                  has_arg, /*instant=*/true});
  shard.recorded.store(shard.ring.size(), std::memory_order_release);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(clamped_q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (const auto& [upper, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) return std::clamp(upper, min, max);
  }
  return max;
}

MetricsSnapshot Telemetry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (size_t id = 0; id < impl_->counter_names.size(); ++id) {
    uint64_t total = 0;
    for (const auto& shard : impl_->shards) {
      total += shard->counters[id].load(std::memory_order_relaxed);
    }
    snap.counters[impl_->counter_names[id]] = total;
  }
  for (size_t id = 0; id < impl_->gauge_names.size(); ++id) {
    snap.gauges[impl_->gauge_names[id]] =
        impl_->gauge_values[id].load(std::memory_order_relaxed);
  }
  for (size_t id = 0; id < impl_->hist_names.size(); ++id) {
    HistogramSnapshot h;
    h.min = std::numeric_limits<double>::infinity();
    h.max = -std::numeric_limits<double>::infinity();
    std::array<uint64_t, kNumBuckets> merged{};
    for (const auto& shard : impl_->shards) {
      const HistShard* hs = shard->hists[id].load(std::memory_order_acquire);
      if (hs == nullptr) continue;
      h.count += hs->count.load(std::memory_order_relaxed);
      h.sum += hs->sum.load(std::memory_order_relaxed);
      h.min = std::min(h.min, hs->min.load(std::memory_order_relaxed));
      h.max = std::max(h.max, hs->max.load(std::memory_order_relaxed));
      for (int b = 0; b < kNumBuckets; ++b) {
        merged[static_cast<size_t>(b)] +=
            hs->buckets[static_cast<size_t>(b)].load(
                std::memory_order_relaxed);
      }
    }
    if (h.count == 0) {
      h.min = 0.0;
      h.max = 0.0;
    }
    for (int b = 0; b < kNumBuckets; ++b) {
      if (merged[static_cast<size_t>(b)] > 0) {
        h.buckets.emplace_back(BucketUpperBound(b),
                               merged[static_cast<size_t>(b)]);
      }
    }
    snap.histograms[impl_->hist_names[id]] = std::move(h);
  }
  for (const auto& shard : impl_->shards) {
    snap.trace_events_recorded +=
        shard->recorded.load(std::memory_order_relaxed);
    snap.trace_events_dropped += shard->dropped.load(std::memory_order_relaxed);
  }
  snap.dropped_registrations = impl_->dropped_registrations;
  return snap;
}

std::vector<TraceEventView> Telemetry::SnapshotTrace() const {
  std::vector<TraceEventView> events;
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& shard : impl_->shards) {
    // Acquire pairs with the recorder's release store: events at indices
    // < `published` are fully written even while the owner keeps
    // recording. Read through the data pointer (stable: capacity is
    // reserved up front, push_back never reallocates) rather than
    // vector::size(), which the owner mutates.
    const size_t published = static_cast<size_t>(
        shard->recorded.load(std::memory_order_acquire));
    const size_t n = std::min(published, shard->capacity);
    const TraceEvent* ring = shard->ring.data();
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& e = ring[i];
      events.push_back(TraceEventView{shard->tid, e.category, e.name, e.ts_us,
                                      e.dur_us, e.arg, e.has_arg, e.instant});
    }
  }
  return events;
}

void WriteSnapshotJson(const MetricsSnapshot& snap, JsonWriter& w) {
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).Uint(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) w.Key(name).Double(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.Key(name).BeginObjectInline();
    w.Key("count").Uint(h.count);
    w.Key("sum").Double(h.sum);
    w.Key("min").Double(h.min);
    w.Key("max").Double(h.max);
    w.Key("mean").Double(h.mean());
    w.Key("p50").Double(h.Quantile(0.50));
    w.Key("p95").Double(h.Quantile(0.95));
    w.Key("p99").Double(h.Quantile(0.99));
    w.Key("buckets").BeginArrayInline();
    for (const auto& [upper, n] : h.buckets) {
      w.BeginArrayInline().Double(upper).Uint(n).EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.Key("trace").BeginObjectInline();
  w.Key("recorded").Uint(snap.trace_events_recorded);
  w.Key("dropped").Uint(snap.trace_events_dropped);
  w.EndObject();
  w.Key("registry").BeginObjectInline();
  w.Key("dropped_registrations").Uint(snap.dropped_registrations);
  w.EndObject();
  w.EndObject();
}

void Telemetry::WriteMetricsJson(std::ostream& out) const {
  JsonWriter w(out);
  WriteSnapshotJson(Snapshot(), w);
  out << "\n";
}

void Telemetry::WriteChromeTrace(std::ostream& out) const {
  WriteChromeTrace(out, ChromeTraceProcess{});
}

void Telemetry::WriteChromeTrace(std::ostream& out,
                                 const ChromeTraceProcess& process) const {
  JsonWriter w(out);
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!process.name.empty()) {
    w.BeginObjectInline();
    w.Key("ph").String("M");
    w.Key("pid").Uint(process.pid);
    w.Key("tid").Uint(0);
    w.Key("name").String("process_name");
    w.Key("args").BeginObjectInline();
    w.Key("name").String(process.name);
    w.EndObject();
    w.EndObject();
  }
  for (const auto& shard : impl_->shards) {
    w.BeginObjectInline();
    w.Key("ph").String("M");
    w.Key("pid").Uint(process.pid);
    w.Key("tid").Uint(shard->tid);
    w.Key("name").String("thread_name");
    w.Key("args").BeginObjectInline();
    w.Key("name").String("rod-" + std::to_string(shard->tid));
    w.EndObject();
    w.EndObject();
  }
  for (const auto& shard : impl_->shards) {
    for (const TraceEvent& e : shard->ring) {
      w.BeginObjectInline();
      w.Key("ph").String(e.instant ? "i" : "X");
      w.Key("pid").Uint(process.pid);
      w.Key("tid").Uint(shard->tid);
      w.Key("cat").String(e.category);
      w.Key("name").String(e.name);
      w.Key("ts").Double(e.ts_us);
      if (e.instant) {
        w.Key("s").String("t");
      } else {
        w.Key("dur").Double(e.dur_us);
      }
      if (e.has_arg) {
        w.Key("args").BeginObjectInline();
        w.Key("v").Uint(e.arg);
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndArray();
  if (!process.name.empty() || !process.metadata.empty()) {
    w.Key("rod").BeginObjectInline();
    for (const auto& [key, value] : process.metadata) {
      w.Key(key).Double(value);
    }
    w.EndObject();
  }
  w.EndObject();
  out << "\n";
}

void MergeHistogramInto(HistogramSnapshot& dst, const HistogramSnapshot& src) {
  if (src.count == 0) return;
  if (dst.count == 0) {
    dst = src;
    return;
  }
  dst.sum += src.sum;
  dst.min = std::min(dst.min, src.min);
  dst.max = std::max(dst.max, src.max);
  dst.count += src.count;
  // Two-pointer merge on bucket upper bounds; both sides come from the
  // same log-bucket layout, so equal buckets have bit-identical bounds.
  std::vector<std::pair<double, uint64_t>> merged;
  merged.reserve(dst.buckets.size() + src.buckets.size());
  size_t i = 0;
  size_t j = 0;
  while (i < dst.buckets.size() || j < src.buckets.size()) {
    if (j >= src.buckets.size() ||
        (i < dst.buckets.size() &&
         dst.buckets[i].first < src.buckets[j].first)) {
      merged.push_back(dst.buckets[i++]);
    } else if (i >= dst.buckets.size() ||
               src.buckets[j].first < dst.buckets[i].first) {
      merged.push_back(src.buckets[j++]);
    } else {
      merged.emplace_back(dst.buckets[i].first,
                          dst.buckets[i].second + src.buckets[j].second);
      ++i;
      ++j;
    }
  }
  dst.buckets = std::move(merged);
}

TraceSpan::TraceSpan(Telemetry* telemetry, const char* category,
                     const char* name, uint64_t arg, bool has_arg)
    : telemetry_(telemetry != nullptr && telemetry->tracing() ? telemetry
                                                              : nullptr),
      category_(category),
      name_(name),
      arg_(arg),
      has_arg_(has_arg) {
  if (telemetry_ != nullptr) begin_us_ = telemetry_->NowMicros();
}

void TraceSpan::End() {
  if (telemetry_ == nullptr) return;
  telemetry_->RecordSpan(category_, name_, begin_us_, telemetry_->NowMicros(),
                         arg_, has_arg_);
  telemetry_ = nullptr;
}

}  // namespace rod::telemetry
