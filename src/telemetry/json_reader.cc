#include "telemetry/json_reader.h"

#include <cctype>
#include <charconv>
#include <cstdint>

#include "telemetry/json_writer.h"

namespace rod::telemetry {

namespace {

/// Nesting cap: far deeper than any document this repo writes, shallow
/// enough that recursion cannot exhaust the stack on hostile input.
constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue v;
    ROD_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        ROD_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue::Bool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue::Bool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue::Null();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      ROD_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      JsonValue value;
      ROD_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      JsonValue value;
      ROD_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items().push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          ROD_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pair: a high surrogate must be followed by
          // \uDC00..\uDFFF; combine into one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              uint32_t low = 0;
              ROD_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double v = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || ptr != last) {
      return Error("malformed number");
    }
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value()
                                        : std::string(fallback);
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

void WriteJsonValue(const JsonValue& value, JsonWriter& w) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      w.Null();
      break;
    case JsonValue::Kind::kBool:
      w.Bool(value.boolean());
      break;
    case JsonValue::Kind::kNumber:
      w.Double(value.number());
      break;
    case JsonValue::Kind::kString:
      w.String(value.string_value());
      break;
    case JsonValue::Kind::kArray:
      w.BeginArrayInline();
      for (const JsonValue& item : value.items()) WriteJsonValue(item, w);
      w.EndArray();
      break;
    case JsonValue::Kind::kObject:
      w.BeginObjectInline();
      for (const auto& [key, member] : value.members()) {
        w.Key(key);
        WriteJsonValue(member, w);
      }
      w.EndObject();
      break;
  }
}

}  // namespace rod::telemetry
