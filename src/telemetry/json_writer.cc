#include "telemetry/json_writer.h"

#include <cassert>
#include <cstdio>

namespace rod::telemetry {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out, int precision) : out_(out) {
  out_.precision(precision);
}

void JsonWriter::Indent(size_t depth) {
  for (size_t i = 0; i < depth; ++i) out_ << "  ";
}

void JsonWriter::BeforeElement() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": <value> — separator already emitted by Key().
  }
  if (stack_.empty()) {
    assert(!wrote_root_ && "JSON document already complete");
    return;
  }
  Frame& top = stack_.back();
  assert(!top.is_object && "object members need a Key() first");
  if (top.count > 0) out_ << (top.inline_mode ? ", " : ",");
  if (!top.inline_mode) {
    out_ << "\n";
    Indent(stack_.size());
  }
  ++top.count;
}

void JsonWriter::BeforeContainer(bool inline_mode) {
  const bool inherited =
      inline_mode || (!stack_.empty() && stack_.back().inline_mode);
  const bool was_key = pending_key_;
  BeforeElement();
  (void)was_key;
  stack_.push_back(Frame{false, inherited, 0});
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeContainer(false);
  stack_.back().is_object = true;
  out_ << "{";
  return *this;
}

JsonWriter& JsonWriter::BeginObjectInline() {
  BeforeContainer(true);
  stack_.back().is_object = true;
  out_ << "{";
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back().is_object);
  const Frame top = stack_.back();
  stack_.pop_back();
  if (!top.inline_mode && top.count > 0) {
    out_ << "\n";
    Indent(stack_.size());
  }
  out_ << "}";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeContainer(false);
  out_ << "[";
  return *this;
}

JsonWriter& JsonWriter::BeginArrayInline() {
  BeforeContainer(true);
  out_ << "[";
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  assert(!stack_.empty() && !stack_.back().is_object);
  const Frame top = stack_.back();
  stack_.pop_back();
  if (!top.inline_mode && top.count > 0) {
    out_ << "\n";
    Indent(stack_.size());
  }
  out_ << "]";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  assert(!stack_.empty() && stack_.back().is_object && !pending_key_);
  Frame& top = stack_.back();
  if (top.count > 0) out_ << (top.inline_mode ? ", " : ",");
  if (!top.inline_mode) {
    out_ << "\n";
    Indent(stack_.size());
  }
  ++top.count;
  out_ << '"' << JsonEscape(key) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeElement();
  out_ << '"' << JsonEscape(v) << '"';
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeElement();
  out_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  BeforeElement();
  out_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeElement();
  out_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeElement();
  out_ << v;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeElement();
  out_ << "null";
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeElement();
  out_ << json;
  if (stack_.empty()) wrote_root_ = true;
  return *this;
}

}  // namespace rod::telemetry
