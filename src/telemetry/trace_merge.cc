#include "telemetry/trace_merge.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "telemetry/json_writer.h"

namespace rod::telemetry {

namespace {

/// Overwrites (or adds) one member of a JSON object.
void SetMember(JsonValue& obj, std::string_view key, JsonValue value) {
  for (auto& [name, member] : obj.members()) {
    if (name == key) {
      member = std::move(value);
      return;
    }
  }
  obj.members().emplace_back(std::string(key), std::move(value));
}

bool IsMetadataEvent(const JsonValue& event) {
  return event.is_object() && event.StringOr("ph", "") == "M";
}

/// The merged trace's one process_name row per input dump.
void WriteProcessNameEvent(JsonWriter& w, uint64_t pid,
                           const std::string& name) {
  w.BeginObjectInline();
  w.Key("ph").String("M");
  w.Key("pid").Uint(pid);
  w.Key("tid").Uint(0);
  w.Key("name").String("process_name");
  w.Key("args").BeginObjectInline();
  w.Key("name").String(name);
  w.EndObject();
  w.EndObject();
}

}  // namespace

Result<TraceDump> ParseChromeTraceDump(std::string_view json,
                                       std::string_view fallback_name) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();

  TraceDump dump;
  dump.process_name = std::string(fallback_name);
  if (parsed->is_array()) {
    dump.events = std::move(parsed.value());
  } else if (parsed->is_object()) {
    const JsonValue* events = parsed->Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      return Status::InvalidArgument(
          "trace dump: no traceEvents array");
    }
    if (const JsonValue* rod = parsed->Find("rod");
        rod != nullptr && rod->is_object()) {
      dump.clock_offset_us = rod->NumberOr("clock_offset_us", 0.0);
      dump.worker_id = rod->NumberOr("worker_id", -1.0);
    }
    // Steal the array out of the document (JsonValue moves are cheap).
    for (auto& [key, value] : parsed->members()) {
      if (key == "traceEvents") {
        dump.events = std::move(value);
        break;
      }
    }
  } else {
    return Status::InvalidArgument(
        "trace dump: expected an object or an array");
  }

  for (const JsonValue& event : dump.events.items()) {
    if (!IsMetadataEvent(event)) continue;
    if (event.StringOr("name", "") != "process_name") continue;
    if (const JsonValue* args = event.Find("args");
        args != nullptr && args->is_object()) {
      const std::string name = args->StringOr("name", "");
      if (!name.empty()) dump.process_name = name;
    }
  }
  return dump;
}

Status MergeChromeTraces(const std::vector<TraceDump>& dumps,
                         std::ostream& out) {
  if (dumps.empty()) {
    return Status::InvalidArgument("trace merge: no input dumps");
  }

  struct TimedEvent {
    double ts = 0.0;
    size_t dump = 0;
    const JsonValue* event = nullptr;
  };
  std::vector<TimedEvent> timed;
  for (size_t i = 0; i < dumps.size(); ++i) {
    for (const JsonValue& event : dumps[i].events.items()) {
      if (!event.is_object()) {
        return Status::InvalidArgument("trace merge: non-object event");
      }
      if (IsMetadataEvent(event)) continue;
      timed.push_back(TimedEvent{
          event.NumberOr("ts", 0.0) + dumps[i].clock_offset_us, i, &event});
    }
  }
  std::stable_sort(timed.begin(), timed.end(),
                   [](const TimedEvent& a, const TimedEvent& b) {
                     return a.ts < b.ts;
                   });

  JsonWriter w(out);
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (size_t i = 0; i < dumps.size(); ++i) {
    const uint64_t pid = static_cast<uint64_t>(i) + 1;
    WriteProcessNameEvent(w, pid, dumps[i].process_name);
    // Pass the dump's own metadata rows (thread names) through under
    // its new pid; its original process_name rows are superseded.
    for (const JsonValue& event : dumps[i].events.items()) {
      if (!IsMetadataEvent(event)) continue;
      if (event.StringOr("name", "") == "process_name") continue;
      JsonValue copy = event;
      SetMember(copy, "pid", JsonValue::Number(static_cast<double>(pid)));
      WriteJsonValue(copy, w);
    }
  }
  for (const TimedEvent& te : timed) {
    JsonValue copy = *te.event;
    SetMember(copy, "pid",
              JsonValue::Number(static_cast<double>(te.dump) + 1.0));
    SetMember(copy, "ts", JsonValue::Number(te.ts));
    WriteJsonValue(copy, w);
  }
  w.EndArray();
  w.Key("rod").BeginObjectInline();
  w.Key("schema").String("rod.trace_merge.v1");
  w.Key("processes").Uint(dumps.size());
  w.EndObject();
  w.EndObject();
  out << "\n";
  return Status::OK();
}

}  // namespace rod::telemetry
