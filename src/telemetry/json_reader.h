// Copyright (c) the ROD reproduction authors.
//
// A small dependency-free JSON parser: the read side of the telemetry
// exporters' write side (json_writer.h). Grown for tools/rod_trace_merge
// — which must re-read the Chrome trace dumps this repo writes — and for
// tests that assert on exported JSON structurally instead of by string
// matching. It parses standard JSON (RFC 8259): objects, arrays,
// strings with escapes (\uXXXX included, encoded back to UTF-8),
// numbers as double, booleans, null. Duplicate object keys are kept in
// order; Find returns the first. Depth is capped so a hostile input
// cannot overflow the parse stack.
//
// Layering: uses Status, so it compiles into rod_common (above
// rod_telemetry), not into the telemetry library itself.

#ifndef ROD_TELEMETRY_JSON_READER_H_
#define ROD_TELEMETRY_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rod::telemetry {

class JsonWriter;

/// One parsed JSON value; a tree of these represents a document.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the kind must match (checked by assert-free
  /// convention: wrong-kind reads return the type's zero value).
  bool boolean() const { return kind_ == Kind::kBool && bool_; }
  double number() const { return kind_ == Kind::kNumber ? number_ : 0.0; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  std::vector<JsonValue>& items() { return items_; }
  std::vector<std::pair<std::string, JsonValue>>& members() {
    return members_;
  }

  /// First member with `key` in an object; nullptr when absent or not an
  /// object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience: Find(key)->number() with a fallback for absent keys or
  /// non-numbers.
  double NumberOr(std::string_view key, double fallback) const;

  /// Convenience: Find(key)->string_value() with a fallback.
  std::string StringOr(std::string_view key, std::string_view fallback) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (rejecting trailing non-whitespace). Returns
/// kInvalidArgument with the byte offset on malformed input.
Result<JsonValue> ParseJson(std::string_view text);

/// Re-serializes `value` into an in-progress JsonWriter (after Key() or
/// as an array element) — the round-trip used by rod_trace_merge to
/// re-emit events it did not invent. Numbers print via JsonWriter's
/// shortest-round-trip double format.
void WriteJsonValue(const JsonValue& value, JsonWriter& w);

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_JSON_READER_H_
