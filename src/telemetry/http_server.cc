#include "telemetry/http_server.h"

#include <cerrno>
#include <poll.h>
#include <unistd.h>

#include <utility>

#include "common/net.h"

namespace rod::telemetry {

namespace {

/// Hard cap on one request's bytes (request line + headers). A scraper's
/// GET is a few hundred bytes; anything larger is rejected with 431
/// instead of being read (or half-read and half-parsed) without bound.
constexpr size_t kMaxRequestBytes = 16384;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::Start(uint16_t port, std::string* error) {
  if (serving()) {
    if (error != nullptr) *error = "already serving";
    return false;
  }
  if (!wake_pipe_.Open(error)) return false;

  listen_fd_ = net::ListenLoopback(port, error);
  if (listen_fd_ < 0) {
    Stop();
    return false;
  }
  port_ = net::BoundPort(listen_fd_);
  if (port_ == 0) {
    net::FillErrno(error, "getsockname");
    Stop();
    return false;
  }

  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  // Wakes poll(); the loop sees the pipe readable and exits.
  wake_pipe_.Notify();
  if (thread_.joinable()) thread_.join();
  net::CloseFd(&listen_fd_);
  wake_pipe_.Close();
  port_ = 0;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_.read_fd(), POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() wrote the wake byte.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = net::AcceptConnection(listen_fd_);
    if (client < 0) continue;
    // A stalled client must not wedge the scrape endpoint forever.
    net::SetSocketTimeouts(client, /*seconds=*/2.0);
    ServeConnection(client);
    ::close(client);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  // Read until the end of the request headers, bounded: a request that
  // exceeds the cap without completing its header block is rejected
  // outright (431) rather than parsed from a truncated prefix.
  std::string request;
  bool headers_complete = false;
  char buf[2048];
  while (request.size() < kMaxRequestBytes) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos) {
      headers_complete = true;
      break;
    }
  }

  Response response;
  const size_t line_end = request.find("\r\n");
  const std::string_view line =
      std::string_view(request).substr(0, line_end == std::string::npos
                                              ? request.size()
                                              : line_end);
  const size_t method_end = line.find(' ');
  const size_t target_end =
      method_end == std::string_view::npos ? std::string_view::npos
                                           : line.find(' ', method_end + 1);
  if (!headers_complete && request.size() >= kMaxRequestBytes) {
    response = Response{431, "text/plain; charset=utf-8",
                        "request header fields too large\n"};
  } else if (method_end == std::string_view::npos ||
             target_end == std::string_view::npos) {
    response = Response{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, method_end) != "GET") {
    response =
        Response{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    std::string_view path =
        line.substr(method_end + 1, target_end - method_end - 1);
    const size_t query = path.find('?');
    if (query != std::string_view::npos) path = path.substr(0, query);
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response = Response{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      response = it->second(path);
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  net::WriteAll(client_fd, head.data(), head.size());
  net::WriteAll(client_fd, response.body.data(), response.body.size());
}

}  // namespace rod::telemetry
