#include "telemetry/http_server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <utility>

namespace rod::telemetry {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// Writes the whole buffer, retrying short writes; best-effort (a gone
/// client is the client's problem).
void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

bool FillError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
  return false;
}

}  // namespace

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::Start(uint16_t port, std::string* error) {
  if (serving()) {
    if (error != nullptr) *error = "already serving";
    return false;
  }
  if (::pipe(wake_pipe_) != 0) return FillError(error, "pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    FillError(error, "socket");
    Stop();
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    FillError(error, "bind");
    Stop();
    return false;
  }
  if (::listen(listen_fd_, /*backlog=*/16) != 0) {
    FillError(error, "listen");
    Stop();
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    FillError(error, "getsockname");
    Stop();
    return false;
  }
  port_ = ntohs(addr.sin_port);

  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    // Wakes poll(); the loop sees the pipe readable and exits.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  port_ = 0;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, /*timeout_ms=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() wrote the wake byte.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // A stalled client must not wedge the scrape endpoint forever.
    timeval timeout{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ServeConnection(client);
    ::close(client);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  // Read until the end of the request headers (or the buffer cap — the
  // request line is all we use, so oversized headers are fine to cut).
  std::string request;
  char buf[2048];
  while (request.size() < 16384 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }

  Response response;
  const size_t line_end = request.find("\r\n");
  const std::string_view line =
      std::string_view(request).substr(0, line_end == std::string::npos
                                              ? request.size()
                                              : line_end);
  const size_t method_end = line.find(' ');
  const size_t target_end =
      method_end == std::string_view::npos ? std::string_view::npos
                                           : line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    response = Response{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, method_end) != "GET") {
    response =
        Response{405, "text/plain; charset=utf-8", "method not allowed\n"};
  } else {
    std::string_view path =
        line.substr(method_end + 1, target_end - method_end - 1);
    const size_t query = path.find('?');
    if (query != std::string_view::npos) path = path.substr(0, query);
    const auto it = handlers_.find(path);
    if (it == handlers_.end()) {
      response = Response{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      response = it->second(path);
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  WriteAll(client_fd, head.data(), head.size());
  WriteAll(client_fd, response.body.data(), response.body.size());
}

}  // namespace rod::telemetry
