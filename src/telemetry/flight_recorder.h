// Copyright (c) the ROD reproduction authors.
//
// Incident flight recorder: when something goes wrong mid-run (a fault
// fires, the supervisor detects a failure), the state worth debugging is
// the state *just before* the incident — and by the time a human looks,
// the trace rings have wrapped and the gauges have moved on. The
// recorder freezes that state at the incident instant:
//
//   BeginIncident(kind, detail)   — at the fault/detection instant:
//                                   captures the metrics snapshot, every
//                                   thread's trace ring, and the
//                                   Aggregator's sample window, as they
//                                   stand right now.
//   Note(text)                    — timestamped breadcrumbs while the
//                                   incident unfolds (detection,
//                                   recovery start, …).
//   CompleteIncident(report)      — closes the incident; `report` (a
//                                   JsonWriter callback) embeds a
//                                   caller-defined report object — e.g.
//                                   the runtime's IncidentReport — so
//                                   this layer needs no knowledge of
//                                   upper-layer types.
//
// Incidents are keyed by the calling thread (parallel sweeps can have
// several in flight); completed incidents land in a bounded ring,
// oldest dropped first. The artifact schema (one self-contained JSON
// object per incident) is documented in docs/OBSERVABILITY.md and
// pinned by tests/golden/flight_recorder_incident.json under a manual
// clock.
//
// Like the rest of the plane this is observation-only: freezing reads
// registry snapshots and release-published ring prefixes; it never
// blocks or perturbs recording threads.

#ifndef ROD_TELEMETRY_FLIGHT_RECORDER_H_
#define ROD_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/aggregator.h"
#include "telemetry/telemetry.h"

namespace rod::telemetry {

class JsonWriter;

struct FlightRecorderOptions {
  /// Completed incidents retained (oldest dropped first, counted).
  size_t max_incidents = 16;
};

class FlightRecorder {
 public:
  /// `telemetry` must outlive the recorder and must not be null;
  /// `aggregator` is optional (null omits the window from incidents).
  explicit FlightRecorder(Telemetry* telemetry,
                          Aggregator* aggregator = nullptr,
                          FlightRecorderOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Opens an incident on the calling thread and freezes pre-incident
  /// state now. A second Begin on the same thread before Complete
  /// replaces the pending incident (the first is abandoned, counted in
  /// `telemetry.flightrecorder.abandoned`).
  void BeginIncident(std::string kind, std::string detail = "");

  /// Appends a timestamped note to this thread's pending incident;
  /// no-op when none is pending.
  void Note(std::string text);

  /// Closes this thread's pending incident and stores the finished
  /// artifact. `report_writer`, when given, is invoked once with a
  /// JsonWriter positioned to write exactly one JSON value (rendered
  /// inline) — the incident's "report" member; omitted -> null. No-op
  /// when no incident is pending on this thread.
  void CompleteIncident(
      const std::function<void(JsonWriter&)>& report_writer = nullptr);

  /// Completed incidents currently retained.
  size_t incident_count() const;

  /// The retained incidents as self-contained inline JSON object
  /// strings, oldest first — the per-worker payload of the cluster's
  /// kFrozenReport (the coordinator splices them into its cluster-wide
  /// incident report via JsonWriter::Raw).
  std::vector<std::string> IncidentJsons() const;

  /// True if the calling thread has an open incident.
  bool pending() const;

  /// Writes the full artifact into an in-progress writer: {"schema":
  /// "rod.flight_recorder.v1", "dropped_incidents": n, "incidents":
  /// [...]} — schema detailed in docs/OBSERVABILITY.md.
  void WriteJson(JsonWriter& w) const;

  /// WriteJson over a fresh writer rooted at `out`.
  void WriteJson(std::ostream& out) const;

 private:
  struct Pending {
    std::string kind;
    std::string detail;
    double begin_us = 0.0;
    MetricsSnapshot metrics;
    std::vector<TraceEventView> trace;
    std::vector<Aggregator::Sample> window;
    bool has_window = false;
    std::vector<std::pair<double, std::string>> notes;  ///< (ts_us, text).
  };

  /// Renders one finished incident as a self-contained inline JSON
  /// object string (spliced into the artifact via JsonWriter::Raw).
  std::string RenderIncident(const Pending& p, double end_us,
                             const std::string& report_json) const;

  Telemetry* const telemetry_;
  Aggregator* const aggregator_;
  const FlightRecorderOptions options_;

  mutable std::mutex mu_;
  std::map<std::thread::id, Pending> pending_;  ///< Guarded by mu_.
  std::deque<std::string> incidents_;           ///< Guarded by mu_.
  size_t dropped_incidents_ = 0;                ///< Guarded by mu_.
};

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_FLIGHT_RECORDER_H_
