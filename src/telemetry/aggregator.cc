#include "telemetry/aggregator.h"

#include <chrono>
#include <utility>

#include "telemetry/json_writer.h"

namespace rod::telemetry {

Aggregator::Aggregator(Telemetry* telemetry, AggregatorOptions options)
    : telemetry_(telemetry), options_(std::move(options)) {
  last_snapshot_ = telemetry_->Snapshot();
  last_wall_us_ = telemetry_->NowMicros();
}

Aggregator::~Aggregator() { Stop(); }

void Aggregator::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Run(); });
}

void Aggregator::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  to_join.join();
}

bool Aggregator::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_.joinable();
}

void Aggregator::Run() {
  const auto period = std::chrono::duration<double>(options_.period_sec);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // wait_for rather than wait_until: a long Snapshot() just delays the
    // next sample — dt_sec carries the true spacing, so rates stay right.
    if (cv_.wait_for(lock, period, [this] { return stop_; })) return;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

Aggregator::Sample Aggregator::SampleNow() {
  Sample s;
  s.snapshot = telemetry_->Snapshot();
  s.wall_us = telemetry_->NowMicros();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.dt_sec = (s.wall_us - last_wall_us_) / 1e6;
    if (s.dt_sec < 0.0) s.dt_sec = 0.0;
    for (const auto& [name, total] : s.snapshot.counters) {
      const auto prev = last_snapshot_.counters.find(name);
      const uint64_t before =
          prev == last_snapshot_.counters.end() ? 0 : prev->second;
      // Counters are monotone per thread but a mid-update concurrent
      // snapshot can read a shard both times at different merge points;
      // clamp so a sample never reports a negative delta.
      const uint64_t delta = total >= before ? total - before : 0;
      s.counter_deltas[name] = delta;
      s.counter_rates[name] =
          s.dt_sec > 0.0 ? static_cast<double>(delta) / s.dt_sec : 0.0;
    }
    last_snapshot_ = s.snapshot;
    last_wall_us_ = s.wall_us;
    samples_.push_back(s);
    while (samples_.size() > options_.window) samples_.pop_front();
  }
  // Re-arm the high-water gauges outside mu_ (SetGauge takes the
  // registry mutex; no need to hold both). Only names the registry
  // already knows — the reset list must not mint instruments.
  for (const auto& name : options_.reset_gauges) {
    if (s.snapshot.gauges.count(name) != 0) telemetry_->SetGauge(name, 0.0);
  }
  return s;
}

std::vector<Aggregator::Sample> Aggregator::Window() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Sample>(samples_.begin(), samples_.end());
}

void Aggregator::WriteWindowJson(JsonWriter& w) const {
  const std::vector<Sample> window = Window();
  w.BeginObject();
  w.Key("period_sec").Double(options_.period_sec);
  w.Key("window").Uint(options_.window);
  w.Key("samples").BeginArray();
  for (const Sample& s : window) WriteSampleJson(s, w);
  w.EndArray();
  w.EndObject();
}

void Aggregator::WriteSampleJson(const Sample& s, JsonWriter& w) {
  w.BeginObject();
  w.Key("wall_us").Double(s.wall_us);
  w.Key("dt_sec").Double(s.dt_sec);
  w.Key("counters").BeginObject();
  for (const auto& [name, delta] : s.counter_deltas) {
    const auto total = s.snapshot.counters.find(name);
    w.Key(name).BeginObjectInline();
    w.Key("total").Uint(total == s.snapshot.counters.end() ? 0
                                                           : total->second);
    w.Key("delta").Uint(delta);
    w.Key("rate").Double(s.counter_rates.at(name));
    w.EndObject();
  }
  w.EndObject();
  w.Key("gauges").BeginObjectInline();
  for (const auto& [name, value] : s.snapshot.gauges) {
    w.Key(name).Double(value);
  }
  w.EndObject();
  w.EndObject();
}

void Aggregator::WriteWindowJson(std::ostream& out) const {
  JsonWriter w(out);
  WriteWindowJson(w);
  out << "\n";
}

}  // namespace rod::telemetry
