// Copyright (c) the ROD reproduction authors.
//
// A small streaming JSON writer with correct string escaping and
// comma/indent bookkeeping — the single JSON-emission path for the
// telemetry exporters and the bench baselines (which used to hand-roll
// their JSON with `<<` chains and no escaping).
//
// Layout model: containers opened with BeginObject/BeginArray are
// pretty-printed (one element per line, two-space indent) unless opened
// with the *Inline variants, which render the whole container on one
// line ("{"k": 1, "v": 2}") — the shape the committed BENCH_*.json
// baselines use for their per-entry rows. Doubles are written with the
// stream's default format at precision 15, matching the pre-telemetry
// emitters byte for byte.

#ifndef ROD_TELEMETRY_JSON_WRITER_H_
#define ROD_TELEMETRY_JSON_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rod::telemetry {

/// Escapes `s` for use inside a JSON string literal (quotes, backslash,
/// control characters; non-ASCII bytes pass through untouched, so UTF-8
/// input stays UTF-8).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  /// Writes into `out`; sets the stream's precision to `precision` for
  /// the writer's lifetime (doubles use the default float format).
  explicit JsonWriter(std::ostream& out, int precision = 15);

  // Containers. The *Inline variants suppress newlines/indentation for
  // the container and everything nested inside it.
  JsonWriter& BeginObject();
  JsonWriter& BeginObjectInline();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& BeginArrayInline();
  JsonWriter& EndArray();

  /// Object member key; must be followed by a value or container.
  JsonWriter& Key(std::string_view key);

  // Scalar values (as array elements, or after Key()).
  JsonWriter& String(std::string_view v);
  JsonWriter& Bool(bool v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Null();

  /// Splices `json` — a complete, already-serialized JSON value — as the
  /// next element (or key's value). The writer trusts the caller that it
  /// is valid JSON; pass inline-rendered values (no newlines) so nesting
  /// indentation stays coherent. Lets the flight recorder embed incident
  /// payloads rendered earlier by a different writer.
  JsonWriter& Raw(std::string_view json);

  /// True once every opened container has been closed.
  bool done() const { return stack_.empty() && wrote_root_; }

 private:
  struct Frame {
    bool is_object = false;
    bool inline_mode = false;
    size_t count = 0;
  };

  /// Emits the separator/indent due before the next element (or before
  /// a value completing a key).
  void BeforeElement();
  void BeforeContainer(bool inline_mode);
  void Indent(size_t depth);

  std::ostream& out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;  ///< Key() written, value expected.
  bool wrote_root_ = false;
};

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_JSON_WRITER_H_
