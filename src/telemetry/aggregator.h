// Copyright (c) the ROD reproduction authors.
//
// Background sampler for the live observability plane: snapshots a
// Telemetry registry on a fixed period into a bounded ring of
// timestamped samples, each carrying per-counter deltas and rates
// against the previous sample — the `rate()`-style windowed view a
// scraper wants, computed without touching the recording path (the
// registry's Snapshot() is already safe against running recorders).
//
// The sampler also owns the reset half of the high-water-gauge contract:
// gauges written with Gauge::Max() ratchet upward monotonically; after
// every sample the Aggregator sets each name listed in
// AggregatorOptions::reset_gauges back to zero, so a sample's value is
// "peak since the previous sample" rather than "peak since process
// start". Only gauges that already exist are reset — the list never
// creates instruments.
//
// Timestamps come from Telemetry::NowMicros(), so under a manual clock
// the whole sample stream is deterministic; SampleNow() exposes the
// sampling step directly for such tests (and for callers who want a
// sample at a specific instant, e.g. the flight recorder at a fault).

#ifndef ROD_TELEMETRY_AGGREGATOR_H_
#define ROD_TELEMETRY_AGGREGATOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace rod::telemetry {

class JsonWriter;

struct AggregatorOptions {
  /// Seconds between background samples (Start()/Stop() thread only;
  /// SampleNow() ignores it).
  double period_sec = 1.0;

  /// Samples retained, oldest dropped first. At the default period this
  /// is two minutes of history.
  size_t window = 120;

  /// High-water gauge names (written via Gauge::Max) reset to zero after
  /// each sample. Names not present in the registry are skipped.
  std::vector<std::string> reset_gauges;
};

class Aggregator {
 public:
  /// One periodic observation of the registry.
  struct Sample {
    double wall_us = 0.0;  ///< Telemetry::NowMicros() at sample time.
    double dt_sec = 0.0;   ///< Seconds since the previous sample (0 first).
    MetricsSnapshot snapshot;
    /// Counter increase since the previous sample (first sample: since
    /// the Aggregator's construction baseline).
    std::map<std::string, uint64_t> counter_deltas;
    /// counter_deltas / dt_sec, per second; 0 when dt_sec == 0.
    std::map<std::string, double> counter_rates;
  };

  /// Captures the construction-time snapshot as the delta baseline.
  /// `telemetry` must outlive the Aggregator and must not be null.
  Aggregator(Telemetry* telemetry, AggregatorOptions options = {});
  ~Aggregator();

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  const AggregatorOptions& options() const { return options_; }

  /// Starts the background sampling thread (no-op if running).
  void Start();

  /// Stops and joins the background thread (no-op if not running;
  /// called by the destructor). Retained samples survive Stop().
  void Stop();

  bool running() const;

  /// Takes one sample immediately (thread-safe; the background thread
  /// uses this too) and returns a copy of it.
  Sample SampleNow();

  /// Copies the retained window, oldest first.
  std::vector<Sample> Window() const;

  /// Writes the window as one JSON object into an in-progress writer
  /// (after Key() or as an array element): {"period_sec":…, "window":…,
  /// "samples":[{"wall_us":…, "dt_sec":…, "counters":{name:
  /// {"total":…, "delta":…, "rate":…}}, "gauges":{name: value}}]}.
  /// Histograms are cumulative, not windowed — they live in the full
  /// metrics snapshot, so the window omits them.
  void WriteWindowJson(JsonWriter& w) const;

  /// WriteWindowJson over a fresh writer rooted at `out`.
  void WriteWindowJson(std::ostream& out) const;

  /// Writes one sample as the per-sample object used inside the window
  /// ("samples" element). Exposed so the flight recorder can render a
  /// window it froze earlier.
  static void WriteSampleJson(const Sample& s, JsonWriter& w);

 private:
  void Run();

  Telemetry* const telemetry_;
  const AggregatorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< Wakes Run() on Stop().
  bool stop_ = false;                 ///< Guarded by mu_.
  std::thread thread_;                ///< Guarded by mu_ (start/stop).
  std::deque<Sample> samples_;        ///< Guarded by mu_; oldest first.
  MetricsSnapshot last_snapshot_;     ///< Guarded by mu_; delta baseline.
  double last_wall_us_ = 0.0;         ///< Guarded by mu_.
};

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_AGGREGATOR_H_
