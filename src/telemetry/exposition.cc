#include "telemetry/exposition.h"

#include <cctype>
#include <sstream>

namespace rod::telemetry {

namespace {

bool LegalFirst(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool LegalRest(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

/// Serializes a constant label set once ('{a="b",c="d"}' or ""); the
/// histogram path splices its `le` label in before the closing brace.
std::string RenderLabelMap(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizePrometheusName(name);
    out += "=\"";
    out += EscapePrometheusLabelValue(value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string RenderLabels(const PrometheusOptions& options) {
  return RenderLabelMap(options.labels);
}

/// Labels with one extra `le` pair appended (histogram buckets).
std::string RenderBucketLabels(const std::string& base,
                               const std::string& le) {
  std::string out;
  if (base.empty()) {
    out = "{le=\"" + le + "\"}";
  } else {
    out = base.substr(0, base.size() - 1) + ",le=\"" + le + "\"}";
  }
  return out;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

void WriteType(std::ostream& out, const std::string& name,
               const char* type) {
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string SanitizePrometheusName(std::string_view name) {
  if (name.empty()) return "_";
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (i == 0) {
      if (LegalFirst(c)) {
        out += c;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        out += '_';
        out += c;
      } else {
        out += '_';
      }
    } else {
      out += LegalRest(c) ? c : '_';
    }
  }
  return out;
}

std::string EscapePrometheusLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void WritePrometheusText(const MetricsSnapshot& snap, std::ostream& out,
                         const PrometheusOptions& options) {
  const std::string labels = RenderLabels(options);

  for (const auto& [name, value] : snap.counters) {
    const std::string p = SanitizePrometheusName(name);
    WriteType(out, p, "counter");
    out << p << labels << " " << value << "\n";
  }

  for (const auto& [name, value] : snap.gauges) {
    const std::string p = SanitizePrometheusName(name);
    WriteType(out, p, "gauge");
    out << p << labels << " " << FormatDouble(value) << "\n";
  }

  for (const auto& [name, h] : snap.histograms) {
    const std::string p = SanitizePrometheusName(name);
    WriteType(out, p, "histogram");
    // The registry stores per-bucket (non-cumulative) counts over
    // half-open log buckets; Prometheus wants cumulative counts at each
    // upper bound. An empty histogram still exposes the +Inf bucket.
    uint64_t cumulative = 0;
    for (const auto& [upper, count] : h.buckets) {
      cumulative += count;
      out << p << "_bucket"
          << RenderBucketLabels(labels, FormatDouble(upper)) << " "
          << cumulative << "\n";
    }
    out << p << "_bucket" << RenderBucketLabels(labels, "+Inf") << " "
        << h.count << "\n";
    out << p << "_sum" << labels << " " << FormatDouble(h.sum) << "\n";
    out << p << "_count" << labels << " " << h.count << "\n";
  }

  // Registry self-observation: ring retention and cap overflow are the
  // two ways recorded data can silently go missing — scrape them.
  WriteType(out, "telemetry_trace_events_recorded", "counter");
  out << "telemetry_trace_events_recorded" << labels << " "
      << snap.trace_events_recorded << "\n";
  WriteType(out, "telemetry_trace_events_dropped", "counter");
  out << "telemetry_trace_events_dropped" << labels << " "
      << snap.trace_events_dropped << "\n";
  WriteType(out, "telemetry_dropped_registrations", "counter");
  out << "telemetry_dropped_registrations" << labels << " "
      << snap.dropped_registrations << "\n";
}

void WriteFederatedPrometheusText(
    const std::vector<FederatedInstance>& instances, std::ostream& out) {
  std::vector<std::string> labels;
  labels.reserve(instances.size());
  for (const FederatedInstance& inst : instances) {
    labels.push_back(RenderLabelMap(inst.labels));
  }

  // Group each metric class by sanitized family name so one TYPE line
  // heads all instances' series of that family.
  std::map<std::string, std::vector<std::pair<size_t, uint64_t>>> counters;
  std::map<std::string, std::vector<std::pair<size_t, double>>> gauges;
  std::map<std::string,
           std::vector<std::pair<size_t, const HistogramSnapshot*>>>
      histograms;
  for (size_t i = 0; i < instances.size(); ++i) {
    const MetricsSnapshot& snap = instances[i].snapshot;
    for (const auto& [name, value] : snap.counters) {
      counters[SanitizePrometheusName(name)].emplace_back(i, value);
    }
    for (const auto& [name, value] : snap.gauges) {
      gauges[SanitizePrometheusName(name)].emplace_back(i, value);
    }
    for (const auto& [name, h] : snap.histograms) {
      histograms[SanitizePrometheusName(name)].emplace_back(i, &h);
    }
  }

  for (const auto& [name, series] : counters) {
    WriteType(out, name, "counter");
    for (const auto& [i, value] : series) {
      out << name << labels[i] << " " << value << "\n";
    }
  }
  for (const auto& [name, series] : gauges) {
    WriteType(out, name, "gauge");
    for (const auto& [i, value] : series) {
      out << name << labels[i] << " " << FormatDouble(value) << "\n";
    }
  }
  for (const auto& [name, series] : histograms) {
    WriteType(out, name, "histogram");
    for (const auto& [i, h] : series) {
      uint64_t cumulative = 0;
      for (const auto& [upper, count] : h->buckets) {
        cumulative += count;
        out << name << "_bucket"
            << RenderBucketLabels(labels[i], FormatDouble(upper)) << " "
            << cumulative << "\n";
      }
      out << name << "_bucket" << RenderBucketLabels(labels[i], "+Inf") << " "
          << h->count << "\n";
      out << name << "_sum" << labels[i] << " " << FormatDouble(h->sum)
          << "\n";
      out << name << "_count" << labels[i] << " " << h->count << "\n";
    }
  }

  const char* health[] = {"telemetry_trace_events_recorded",
                          "telemetry_trace_events_dropped",
                          "telemetry_dropped_registrations"};
  for (const char* name : health) {
    WriteType(out, name, "counter");
    for (size_t i = 0; i < instances.size(); ++i) {
      const MetricsSnapshot& snap = instances[i].snapshot;
      uint64_t value = snap.trace_events_recorded;
      if (name == health[1]) value = snap.trace_events_dropped;
      if (name == health[2]) value = snap.dropped_registrations;
      out << name << labels[i] << " " << value << "\n";
    }
  }
}

}  // namespace rod::telemetry
