#include "telemetry/flight_recorder.h"

#include <sstream>
#include <utility>

#include "telemetry/json_writer.h"

namespace rod::telemetry {

FlightRecorder::FlightRecorder(Telemetry* telemetry, Aggregator* aggregator,
                               FlightRecorderOptions options)
    : telemetry_(telemetry), aggregator_(aggregator), options_(options) {}

void FlightRecorder::BeginIncident(std::string kind, std::string detail) {
  // Freeze first, lock second: the captures only read the registry and
  // are the expensive part — keep them outside mu_ so concurrent
  // incidents on other threads don't serialize on each other.
  Pending p;
  p.kind = std::move(kind);
  p.detail = std::move(detail);
  p.begin_us = telemetry_->NowMicros();
  p.metrics = telemetry_->Snapshot();
  p.trace = telemetry_->SnapshotTrace();
  if (aggregator_ != nullptr) {
    p.window = aggregator_->Window();
    p.has_window = true;
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      pending_.insert_or_assign(std::this_thread::get_id(), std::move(p));
  (void)it;
  if (!inserted) telemetry_->Count("telemetry.flightrecorder.abandoned");
}

void FlightRecorder::Note(std::string text) {
  const double now_us = telemetry_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = pending_.find(std::this_thread::get_id());
  if (it == pending_.end()) return;
  it->second.notes.emplace_back(now_us, std::move(text));
}

void FlightRecorder::CompleteIncident(
    const std::function<void(JsonWriter&)>& report_writer) {
  const double end_us = telemetry_->NowMicros();

  Pending p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = pending_.find(std::this_thread::get_id());
    if (it == pending_.end()) return;
    p = std::move(it->second);
    pending_.erase(it);
  }

  // The report renders outside mu_ too — the callback is caller code.
  std::string report_json;
  if (report_writer) {
    std::ostringstream report;
    JsonWriter w(report);
    report_writer(w);
    report_json = report.str();
  }

  std::string rendered = RenderIncident(p, end_us, report_json);

  std::lock_guard<std::mutex> lock(mu_);
  incidents_.push_back(std::move(rendered));
  while (incidents_.size() > options_.max_incidents) {
    incidents_.pop_front();
    ++dropped_incidents_;
  }
}

std::string FlightRecorder::RenderIncident(
    const Pending& p, double end_us, const std::string& report_json) const {
  // Inline-rendered so the artifact writer can splice it with Raw()
  // regardless of its own indentation depth.
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObjectInline();
  w.Key("kind").String(p.kind);
  w.Key("detail").String(p.detail);
  w.Key("begin_us").Double(p.begin_us);
  w.Key("end_us").Double(end_us);
  w.Key("notes").BeginArray();
  for (const auto& [ts_us, text] : p.notes) {
    w.BeginObject();
    w.Key("ts_us").Double(ts_us);
    w.Key("text").String(text);
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  WriteSnapshotJson(p.metrics, w);
  w.Key("trace").BeginArray();
  for (const TraceEventView& e : p.trace) {
    w.BeginObject();
    w.Key("tid").Uint(e.tid);
    w.Key("cat").String(e.category);
    w.Key("name").String(e.name);
    w.Key("ts").Double(e.ts_us);
    w.Key("ph").String(e.instant ? "i" : "X");
    if (!e.instant) w.Key("dur").Double(e.dur_us);
    if (e.has_arg) w.Key("arg").Uint(e.arg);
    w.EndObject();
  }
  w.EndArray();
  if (p.has_window) {
    w.Key("aggregator").BeginObject();
    w.Key("samples").BeginArray();
    for (const Aggregator::Sample& s : p.window) {
      Aggregator::WriteSampleJson(s, w);
    }
    w.EndArray();
    w.EndObject();
  } else {
    w.Key("aggregator").Null();
  }
  if (report_json.empty()) {
    w.Key("report").Null();
  } else {
    w.Key("report").Raw(report_json);
  }
  w.EndObject();
  return out.str();
}

size_t FlightRecorder::incident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_.size();
}

std::vector<std::string> FlightRecorder::IncidentJsons() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {incidents_.begin(), incidents_.end()};
}

bool FlightRecorder::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.count(std::this_thread::get_id()) != 0;
}

void FlightRecorder::WriteJson(JsonWriter& w) const {
  // Copy out under the lock, render outside it.
  std::vector<std::string> incidents;
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    incidents.assign(incidents_.begin(), incidents_.end());
    dropped = dropped_incidents_;
  }
  w.BeginObject();
  w.Key("schema").String("rod.flight_recorder.v1");
  w.Key("dropped_incidents").Uint(dropped);
  w.Key("incidents").BeginArray();
  for (const std::string& incident : incidents) w.Raw(incident);
  w.EndArray();
  w.EndObject();
}

void FlightRecorder::WriteJson(std::ostream& out) const {
  JsonWriter w(out);
  WriteJson(w);
  out << "\n";
}

}  // namespace rod::telemetry
