// Copyright (c) the ROD reproduction authors.
//
// A minimal, dependency-free blocking HTTP/1.1 server for the live
// observability plane: one accept thread, plain POSIX sockets, one
// request per connection (Connection: close — no keep-alive, pipelining,
// or TLS), GET only. Built for low-rate scrapers (Prometheus, curl, a
// readiness probe), not for traffic; requests are served serially on the
// accept thread, so a handler's cost bounds scrape latency, never
// correctness.
//
// Handlers are registered before Start() and looked up by exact path
// (the query string is stripped). They run on the server thread, so they
// must be thread-safe against the process's recording threads —
// Telemetry::Snapshot() and the Aggregator/FlightRecorder accessors are.

#ifndef ROD_TELEMETRY_HTTP_SERVER_H_
#define ROD_TELEMETRY_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "common/net.h"

namespace rod::telemetry {

class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Handler for one exact path; receives the path (query string already
  /// stripped) and returns the full response.
  using Handler = std::function<Response(std::string_view path)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for GET `path` (exact match). Must be called
  /// before Start().
  void Handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()),
  /// then starts the accept thread. Loopback only: the plane observes a
  /// local process; fronting it for remote scrapers is a proxy's job.
  /// Returns false on failure and fills `*error` when given (this layer
  /// sits below rod_common, so no Status here).
  bool Start(uint16_t port, std::string* error = nullptr);

  /// The bound port; 0 until Start() succeeded.
  uint16_t port() const { return port_; }

  bool serving() const { return listen_fd_ >= 0; }

  /// Shuts the listener down and joins the accept thread. Idempotent;
  /// called by the destructor.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);

  std::map<std::string, Handler, std::less<>> handlers_;
  int listen_fd_ = -1;
  net::SelfPipe wake_pipe_;  ///< Unblocks poll() in Stop().
  uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace rod::telemetry

#endif  // ROD_TELEMETRY_HTTP_SERVER_H_
