#include "placement/clustering.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "geometry/hyperplane.h"
#include "placement/evaluator.h"

namespace rod::place {

namespace {

/// Union-find with path compression (no ranks; the forests are tiny).
struct UnionFind {
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent[Find(a)] = Find(b); }
  std::vector<size_t> parent;
};

/// An operator->operator arc eligible for contraction.
struct CandidateArc {
  size_t from = 0;
  size_t to = 0;
  double ratio = 0.0;  ///< comm_cost / min(end-operator cost)
};

/// Weight vector (per-stream load fraction) of the set rooted at `root`.
double MergedWeight(const Matrix& op_coeffs,
                    std::span<const double> total_coeffs, UnionFind& uf,
                    size_t root_a, size_t root_b,
                    std::vector<Vector>& weight_of_root) {
  double w = 0.0;
  for (size_t k = 0; k < total_coeffs.size(); ++k) {
    const double combined =
        weight_of_root[root_a][k] +
        (root_a == root_b ? 0.0 : weight_of_root[root_b][k]);
    w = std::max(w, combined);
  }
  (void)op_coeffs;
  (void)uf;
  return w;
}

}  // namespace

double Clustering::ClusterWeight(size_t c,
                                 std::span<const double> total_coeffs) const {
  assert(c < clusters.size());
  double w = 0.0;
  for (size_t k = 0; k < cluster_coeffs.cols(); ++k) {
    assert(total_coeffs[k] > 0.0);
    w = std::max(w, cluster_coeffs(c, k) / total_coeffs[k]);
  }
  return w;
}

Placement Clustering::ExpandPlacement(const Placement& cluster_placement) const {
  assert(cluster_placement.num_operators() == clusters.size());
  std::vector<size_t> assignment(cluster_of.size(), 0);
  for (size_t j = 0; j < cluster_of.size(); ++j) {
    assignment[j] = cluster_placement.node_of(cluster_of[j]);
  }
  return Placement(cluster_placement.num_nodes(), std::move(assignment));
}

Clustering SingletonClustering(const query::LoadModel& model) {
  Clustering c;
  const size_t m = model.num_operators();
  c.cluster_of.resize(m);
  c.clusters.resize(m);
  for (size_t j = 0; j < m; ++j) {
    c.cluster_of[j] = j;
    c.clusters[j] = {j};
  }
  c.cluster_coeffs = model.op_coeffs();
  return c;
}

Result<Clustering> ClusterOperators(const query::LoadModel& model,
                                    const query::QueryGraph& graph,
                                    const SystemSpec& system,
                                    const ClusteringOptions& options) {
  ROD_RETURN_IF_ERROR(system.Validate());
  if (graph.num_operators() != model.num_operators()) {
    return Status::InvalidArgument("graph/model operator count mismatch");
  }
  if (options.ratio_threshold <= 0.0) {
    return Status::InvalidArgument("ratio_threshold must be positive");
  }
  const size_t m = model.num_operators();
  const size_t dims = model.num_vars();

  double weight_cap = options.max_cluster_weight;
  if (weight_cap <= 0.0) {
    weight_cap = *std::max_element(system.capacities.begin(),
                                   system.capacities.end()) /
                 system.TotalCapacity();
  }

  // Collect contractible arcs with their (static) clustering ratios.
  std::vector<CandidateArc> arcs;
  for (query::OperatorId j = 0; j < m; ++j) {
    for (const query::Arc& arc : graph.inputs_of(j)) {
      if (arc.from.kind != query::StreamRef::Kind::kOperator) continue;
      if (arc.comm_cost <= 0.0) continue;
      const double min_proc = std::min(graph.spec(arc.from.index).cost,
                                       graph.spec(j).cost);
      // A zero-cost endpoint makes any transfer overhead dominant.
      const double ratio = min_proc > 0.0
                               ? arc.comm_cost / min_proc
                               : std::numeric_limits<double>::infinity();
      arcs.push_back(CandidateArc{arc.from.index, j, ratio});
    }
  }

  UnionFind uf(m);
  // Per-root normalized weight vectors (fractions of each stream's total).
  std::vector<Vector> weight_of_root(m, Vector(dims, 0.0));
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < dims; ++k) {
      assert(model.total_coeffs()[k] > 0.0);
      weight_of_root[j][k] =
          model.op_coeffs()(j, k) / model.total_coeffs()[k];
    }
  }

  auto try_contract = [&](const CandidateArc& arc) -> bool {
    const size_t ra = uf.Find(arc.from);
    const size_t rb = uf.Find(arc.to);
    if (ra == rb) return false;  // already clustered together
    const double merged = MergedWeight(model.op_coeffs(), model.total_coeffs(),
                                       uf, ra, rb, weight_of_root);
    if (merged > weight_cap + 1e-12) return false;  // respect the cap
    uf.Union(ra, rb);
    const size_t root = uf.Find(ra);
    const size_t other = root == ra ? rb : ra;
    for (size_t k = 0; k < dims; ++k) {
      weight_of_root[root][k] += weight_of_root[other][k];
    }
    return true;
  };

  if (options.scheme == ClusteringOptions::Scheme::kClusteringRatio) {
    // Contract in descending ratio order until everything left is below
    // the threshold (the ratio of an arc is a static property of its
    // endpoints, so one sorted pass implements the repeat-loop).
    std::stable_sort(arcs.begin(), arcs.end(),
                     [](const CandidateArc& a, const CandidateArc& b) {
                       return a.ratio > b.ratio;
                     });
    for (const CandidateArc& arc : arcs) {
      if (arc.ratio < options.ratio_threshold) break;
      try_contract(arc);
    }
  } else {
    // kMinWeight: repeatedly contract, among above-threshold arcs, the pair
    // of clusters with the minimum combined weight. Recomputed each round
    // because weights grow as clusters merge.
    for (;;) {
      const CandidateArc* best = nullptr;
      double best_weight = std::numeric_limits<double>::infinity();
      for (const CandidateArc& arc : arcs) {
        if (arc.ratio < options.ratio_threshold) continue;
        const size_t ra = uf.Find(arc.from);
        const size_t rb = uf.Find(arc.to);
        if (ra == rb) continue;
        const double merged = MergedWeight(
            model.op_coeffs(), model.total_coeffs(), uf, ra, rb,
            weight_of_root);
        if (merged > weight_cap + 1e-12) continue;
        if (merged < best_weight) {
          best_weight = merged;
          best = &arc;
        }
      }
      if (best == nullptr) break;
      [[maybe_unused]] const bool contracted = try_contract(*best);
      assert(contracted);
    }
  }

  // Materialize clusters in first-member order for deterministic ids.
  Clustering out;
  out.cluster_of.assign(m, SIZE_MAX);
  std::vector<size_t> cluster_of_root(m, SIZE_MAX);
  for (size_t j = 0; j < m; ++j) {
    const size_t root = uf.Find(j);
    if (cluster_of_root[root] == SIZE_MAX) {
      cluster_of_root[root] = out.clusters.size();
      out.clusters.emplace_back();
    }
    const size_t c = cluster_of_root[root];
    out.cluster_of[j] = c;
    out.clusters[c].push_back(j);
  }
  out.cluster_coeffs = Matrix(out.clusters.size(), dims);
  for (size_t j = 0; j < m; ++j) {
    auto row = model.op_coeffs().Row(j);
    auto dst = out.cluster_coeffs.Row(out.cluster_of[j]);
    for (size_t k = 0; k < dims; ++k) dst[k] += row[k];
  }
  return out;
}

Result<ClusterSweepResult> ClusteredRodPlace(const query::LoadModel& model,
                                             const query::QueryGraph& graph,
                                             const SystemSpec& system,
                                             const ClusterSweepOptions& options) {
  ROD_RETURN_IF_ERROR(system.Validate());

  // Scores a clustering: ROD on its cluster-level matrix, expand, then the
  // §6.3 selection metric — minimum plane distance with communication cost
  // folded into the node coefficients (still normalized by the
  // communication-free l_k, so extra crossings strictly lower the score).
  auto evaluate = [&](Clustering clustering,
                      ClusterSweepResult& best) -> Status {
    auto cluster_plan =
        RodPlaceMatrix(clustering.cluster_coeffs, model.total_coeffs(), system,
                       options.rod);
    ROD_RETURN_IF_ERROR(cluster_plan.status());
    Placement plan = clustering.ExpandPlacement(*cluster_plan);
    const Matrix node_coeffs = NodeCoeffsWithComm(plan, model, graph);
    auto weights = geom::ComputeWeightMatrix(
        node_coeffs, model.total_coeffs(), system.capacities);
    ROD_RETURN_IF_ERROR(weights.status());
    const double distance = geom::MinPlaneDistance(*weights);
    ++best.plans_evaluated;
    if (distance > best.plane_distance) {
      best.plane_distance = distance;
      best.placement = std::move(plan);
      best.clustering = std::move(clustering);
    }
    return Status::OK();
  };

  ClusterSweepResult best{Placement(system.num_nodes(),
                                    std::vector<size_t>(model.num_operators(), 0)),
                          SingletonClustering(model),
                          -std::numeric_limits<double>::infinity(), 0};

  if (options.include_unclustered) {
    ROD_RETURN_IF_ERROR(evaluate(SingletonClustering(model), best));
  }
  const std::vector<double> caps =
      options.weight_caps.empty() ? std::vector<double>{0.0}
                                  : options.weight_caps;
  for (const auto scheme : {ClusteringOptions::Scheme::kClusteringRatio,
                            ClusteringOptions::Scheme::kMinWeight}) {
    for (double threshold : options.thresholds) {
      for (double cap : caps) {
        ClusteringOptions copts;
        copts.scheme = scheme;
        copts.ratio_threshold = threshold;
        copts.max_cluster_weight = cap;
        auto clustering = ClusterOperators(model, graph, system, copts);
        ROD_RETURN_IF_ERROR(clustering.status());
        ROD_RETURN_IF_ERROR(evaluate(std::move(*clustering), best));
      }
    }
  }
  if (best.plans_evaluated == 0) {
    return Status::InvalidArgument("cluster sweep evaluated no plans");
  }
  return best;
}

}  // namespace rod::place
