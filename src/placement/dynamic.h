// Copyright (c) the ROD reproduction authors.
//
// A reactive dynamic load-distribution policy — the standard alternative
// ROD is motivated against (paper §1: dynamic redistribution suits
// medium-to-long-term variations, but "dealing with short-term load
// fluctuations by frequent operator re-distribution is typically
// prohibitive"). The balancer watches per-node utilization each epoch and
// greedily sheds load from the hottest node to the coolest one, subject to
// a trigger watermark, a cooldown, and a per-decision move budget.

#ifndef ROD_PLACEMENT_DYNAMIC_H_
#define ROD_PLACEMENT_DYNAMIC_H_

#include "runtime/fluid.h"

namespace rod::place {

/// Reactive greedy balancer for the fluid simulator.
class ReactiveBalancer : public sim::MigrationPolicy {
 public:
  struct Options {
    /// Migrate only when some node's utilization reaches this watermark.
    double high_watermark = 0.9;

    /// Stop shedding once the hot node is projected below this.
    double low_watermark = 0.75;

    /// Minimum epochs between consecutive migration decisions (statistics
    /// gathering + reaction delay of a real controller).
    size_t cooldown_epochs = 2;

    /// Maximum operators moved per decision.
    size_t max_moves = 2;

    /// Only operators whose current load is at most this fraction of the
    /// destination node's capacity may move. The paper's hybrid proposal
    /// (§1): pin heavy(-state) operators with ROD, migrate only
    /// lightweight ones dynamically. 1.0 = everything may move.
    double max_movable_load_fraction = 1.0;
  };

  ReactiveBalancer() = default;
  explicit ReactiveBalancer(const Options& options) : options_(options) {}

  /// Total moves proposed so far (for reporting).
  size_t proposed_moves() const { return proposed_moves_; }

  std::vector<sim::Migration> Decide(const EpochView& view) override;

 private:
  Options options_;
  size_t last_decision_epoch_ = 0;
  bool decided_before_ = false;
  size_t proposed_moves_ = 0;
};

}  // namespace rod::place

#endif  // ROD_PLACEMENT_DYNAMIC_H_
