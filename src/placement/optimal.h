// Copyright (c) the ROD reproduction authors.
//
// Brute-force optimal placement by exhaustive enumeration — the paper's
// yardstick for small cases (§7.3.1: "no more than 12 operators and 2 to 5
// input streams on two nodes"; ROD achieved >= 0.82 of optimal, 0.95 on
// average). The number of distinct plans is n^m (n^m / n! up to node
// relabeling on homogeneous clusters), so this is only usable for small m.

#ifndef ROD_PLACEMENT_OPTIMAL_H_
#define ROD_PLACEMENT_OPTIMAL_H_

#include "geometry/feasible_set.h"
#include "placement/plan.h"
#include "query/load_model.h"

namespace rod::place {

/// Exhaustive-search configuration.
struct OptimalOptions {
  /// Sampling settings for the per-plan volume estimate. All plans are
  /// scored against the *same* deterministic sample set, so plan
  /// comparisons are exact with respect to the samples.
  geom::VolumeOptions volume;

  /// Enumerate canonical assignments only (restricted-growth strings) when
  /// the cluster is homogeneous, cutting the space by up to n! without
  /// losing any distinct plan.
  bool exploit_node_symmetry = true;

  /// Safety valve: fail instead of enumerating more than this many plans.
  size_t max_plans = 1u << 22;
};

/// Outcome of the exhaustive search.
struct OptimalResult {
  Placement placement;        ///< A plan attaining the maximum sampled ratio.
  double ratio_to_ideal = 0;  ///< Its V(F)/V(F*) estimate.
  size_t plans_evaluated = 0;
};

/// Finds a feasible-set-maximizing placement by enumeration. Fails if the
/// plan count would exceed `options.max_plans`.
Result<OptimalResult> OptimalPlace(const query::LoadModel& model,
                                   const SystemSpec& system,
                                   const OptimalOptions& options = {});

}  // namespace rod::place

#endif  // ROD_PLACEMENT_OPTIMAL_H_
