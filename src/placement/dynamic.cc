#include "placement/dynamic.h"

#include <algorithm>
#include <limits>

namespace rod::place {

std::vector<sim::Migration> ReactiveBalancer::Decide(const EpochView& view) {
  std::vector<sim::Migration> moves;
  if (decided_before_ &&
      view.epoch_index < last_decision_epoch_ + options_.cooldown_epochs) {
    return moves;
  }
  const size_t n = view.system->num_nodes();
  const size_t m = view.assignment->size();

  // Working copies so successive moves within one decision see each other.
  Vector node_loads = *view.node_loads;
  std::vector<size_t> assignment = *view.assignment;

  auto util = [&](size_t i) {
    return node_loads[i] / view.system->capacities[i];
  };

  for (size_t round = 0; round < options_.max_moves; ++round) {
    // Hottest and coolest nodes.
    size_t hot = 0, cool = 0;
    for (size_t i = 1; i < n; ++i) {
      if (util(i) > util(hot)) hot = i;
      if (util(i) < util(cool)) cool = i;
    }
    if (util(hot) < options_.high_watermark || hot == cool) break;

    // Largest operator on the hot node whose move does not just swap the
    // hotspot: after the move the destination must stay below the hot
    // node's current level.
    size_t best_op = m;
    double best_load = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (assignment[j] != hot) continue;
      const double load = (*view.op_loads)[j];
      if (load <= best_load) continue;
      if (load > options_.max_movable_load_fraction *
                     view.system->capacities[cool]) {
        continue;  // too heavy to migrate (hybrid mode)
      }
      const double dest_util =
          (node_loads[cool] + load) / view.system->capacities[cool];
      if (dest_util >= util(hot)) continue;
      best_load = load;
      best_op = j;
    }
    if (best_op == m) break;

    moves.push_back(sim::Migration{best_op, cool});
    node_loads[hot] -= best_load;
    node_loads[cool] += best_load;
    assignment[best_op] = cool;
    ++proposed_moves_;

    if (util(hot) <= options_.low_watermark) break;
  }

  if (!moves.empty()) {
    last_decision_epoch_ = view.epoch_index;
    decided_before_ = true;
  }
  return moves;
}

}  // namespace rod::place
