#include "placement/rod.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "common/random.h"
#include "common/thread_pool.h"
#include "geometry/hyperplane.h"
#include "placement/delta_volume.h"

namespace rod::place {

namespace {

constexpr double kClassITolerance = 1e-9;

/// Candidate metrics of placing the current unit on one node.
struct Candidate {
  bool class_one = false;     ///< Hyperplane stays above the ideal one.
  double plane_distance = 0;  ///< From the (possibly shifted) origin.
  double max_weight = 0;      ///< max_k w_ik after the assignment.
};

}  // namespace

Result<Placement> RodPlaceMatrix(
    const Matrix& op_coeffs, std::span<const double> total_coeffs,
    const SystemSpec& system, const RodOptions& options,
    std::span<const double> normalized_lower_bound,
    const std::vector<std::vector<size_t>>* unit_neighbors,
    const std::vector<size_t>* fixed_assignment) {
  ROD_RETURN_IF_ERROR(system.Validate());
  const size_t m = op_coeffs.rows();
  const size_t dims = op_coeffs.cols();
  const size_t n = system.num_nodes();
  if (m == 0) return Status::InvalidArgument("no units to place");
  if (fixed_assignment != nullptr && fixed_assignment->size() != m) {
    return Status::InvalidArgument("fixed_assignment size mismatch");
  }
  if (total_coeffs.size() != dims) {
    return Status::InvalidArgument("total_coeffs size mismatch");
  }
  for (size_t k = 0; k < dims; ++k) {
    if (total_coeffs[k] <= 0.0) {
      return Status::InvalidArgument(
          "rate variable " + std::to_string(k) +
          " has non-positive total load coefficient");
    }
  }
  if (!normalized_lower_bound.empty() &&
      normalized_lower_bound.size() != dims) {
    return Status::InvalidArgument("lower bound dimension mismatch");
  }
  if (options.tie_break == RodOptions::ClassITieBreak::kMinCrossArcs &&
      unit_neighbors == nullptr) {
    return Status::InvalidArgument(
        "kMinCrossArcs tie-break requires the dataflow neighbor lists");
  }

  const double total_capacity = system.TotalCapacity();
  Vector cap_share(n);
  for (size_t i = 0; i < n; ++i) {
    cap_share[i] = system.capacities[i] / total_capacity;
  }

  // --- Phase 1: operator ordering by ||l^o_j||_2 (Figure 10). Pinned
  // units (incremental mode) are excluded from the order entirely. ---
  std::vector<size_t> order;
  order.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    if (fixed_assignment == nullptr || (*fixed_assignment)[j] >= n) {
      order.push_back(j);
    }
  }
  if (options.sort_operators) {
    std::vector<double> norms(m);
    for (size_t j = 0; j < m; ++j) norms[j] = Norm2(op_coeffs.Row(j));
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return options.sort_ascending ? norms[a] < norms[b]
                                    : norms[a] > norms[b];
    });
  }

  // --- Phase 2: greedy assignment. ---
  Rng rng(options.seed);
  Matrix node_coeffs(n, dims);
  std::vector<size_t> assignment(m, 0);
  std::vector<bool> assigned(m, false);
  if (fixed_assignment != nullptr) {
    // Seed the node coefficients with the immovable units' load.
    for (size_t j = 0; j < m; ++j) {
      const size_t node = (*fixed_assignment)[j];
      if (node >= n) continue;
      assignment[j] = node;
      assigned[j] = true;
      for (size_t k = 0; k < dims; ++k) {
        node_coeffs(node, k) += op_coeffs(j, k);
      }
    }
  }
  Vector w(dims);  // scratch candidate weight row

  // Volume-scored greedy: per-sample feasibility state shared across the
  // whole run, seeded with any pinned units in unit order.
  std::unique_ptr<DeltaVolumeContext> volume_ctx;
  if (options.mode == RodOptions::Mode::kVolumeGreedy) {
    Vector inv_cap(n);
    for (size_t i = 0; i < n; ++i) inv_cap[i] = 1.0 / cap_share[i];
    auto set = geom::SimplexSampleCache::Global().Get(
        geom::VolumeSampleKey(dims, options.volume));
    volume_ctx = std::make_unique<DeltaVolumeContext>(
        op_coeffs, total_coeffs, std::move(inv_cap), std::move(set),
        options.volume.num_threads);
    if (fixed_assignment != nullptr) {
      for (size_t j = 0; j < m; ++j) {
        const size_t node = (*fixed_assignment)[j];
        if (node >= n) continue;
        volume_ctx->LoadUnit(j);
        volume_ctx->Commit(node);
      }
    }
  }

  const bool has_lb = !normalized_lower_bound.empty();
  std::vector<Candidate> cand(n);
  std::vector<size_t> class_one_nodes;
  std::vector<size_t> all_nodes(n);
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  // Nodes per parallel chunk of the candidate evaluation; below one chunk
  // per lane the pool dispatch costs more than the dims-length row scans.
  constexpr size_t kNodeGrain = 16;

  for (size_t j : order) {
    auto eval_node = [&](size_t i, Vector& scratch) {
      bool class_one = true;
      double max_weight = 0.0;
      for (size_t k = 0; k < dims; ++k) {
        scratch[k] = (node_coeffs(i, k) + op_coeffs(j, k)) / total_coeffs[k] /
                     cap_share[i];
        max_weight = std::max(max_weight, scratch[k]);
        if (scratch[k] > 1.0 + kClassITolerance) class_one = false;
      }
      const double pd =
          has_lb ? geom::PlaneDistanceFrom(scratch, normalized_lower_bound)
                 : geom::PlaneDistance(scratch);
      cand[i] = Candidate{class_one, pd, max_weight};
    };
    if (options.num_threads > 1 && n > kNodeGrain) {
      ParallelFor(options.num_threads, n, kNodeGrain,
                  [&](size_t, size_t begin, size_t end) {
                    Vector scratch(dims);
                    for (size_t i = begin; i < end; ++i) {
                      eval_node(i, scratch);
                    }
                  });
    } else {
      for (size_t i = 0; i < n; ++i) eval_node(i, w);
    }
    class_one_nodes.clear();
    for (size_t i = 0; i < n; ++i) {
      if (cand[i].class_one) class_one_nodes.push_back(i);
    }

    // Node selection.
    size_t selected = 0;
    auto argmax_pd = [&](const std::vector<size_t>& nodes) {
      assert(!nodes.empty());
      size_t best = nodes[0];
      for (size_t i : nodes) {
        if (cand[i].plane_distance > cand[best].plane_distance) best = i;
      }
      return best;
    };

    switch (options.mode) {
      case RodOptions::Mode::kVolumeGreedy: {
        // Maximize the surviving feasible-sample count; break count ties
        // by plane distance, then by lowest node id. Counts are identical
        // with delta evaluation on or off, so the placement is too.
        volume_ctx->LoadUnit(j);
        selected = 0;
        size_t best_count =
            volume_ctx->ScoreCandidate(0, options.delta_eval);
        for (size_t i = 1; i < n; ++i) {
          const size_t count =
              volume_ctx->ScoreCandidate(i, options.delta_eval);
          if (count > best_count ||
              (count == best_count &&
               cand[i].plane_distance > cand[selected].plane_distance)) {
            best_count = count;
            selected = i;
          }
        }
        break;
      }
      case RodOptions::Mode::kMmpdOnly:
        selected = argmax_pd(all_nodes);
        break;
      case RodOptions::Mode::kMmadOnly: {
        // Pure axis balancing: minimize the worst per-axis weight, i.e.
        // keep every axis intercept 1/w_ik as large as possible.
        selected = 0;
        for (size_t i = 1; i < n; ++i) {
          if (cand[i].max_weight < cand[selected].max_weight) selected = i;
        }
        break;
      }
      case RodOptions::Mode::kCombined: {
        if (!class_one_nodes.empty()) {
          switch (options.tie_break) {
            case RodOptions::ClassITieBreak::kMaxPlaneDistance:
              selected = argmax_pd(class_one_nodes);
              break;
            case RodOptions::ClassITieBreak::kRandom:
              selected = class_one_nodes[rng.NextIndex(class_one_nodes.size())];
              break;
            case RodOptions::ClassITieBreak::kFirst:
              selected = class_one_nodes[0];
              break;
            case RodOptions::ClassITieBreak::kMinMaxWeight:
              selected = class_one_nodes[0];
              for (size_t i : class_one_nodes) {
                if (cand[i].max_weight < cand[selected].max_weight) {
                  selected = i;
                }
              }
              break;
            case RodOptions::ClassITieBreak::kMinCrossArcs: {
              // Count already-placed dataflow neighbors of j per node; the
              // node with the most co-located neighbors creates the fewest
              // new inter-node arcs. Ties fall back to plane distance.
              std::vector<size_t> colocated(n, 0);
              for (size_t nb : (*unit_neighbors)[j]) {
                if (nb < m && assigned[nb]) ++colocated[assignment[nb]];
              }
              selected = class_one_nodes[0];
              for (size_t i : class_one_nodes) {
                if (colocated[i] > colocated[selected] ||
                    (colocated[i] == colocated[selected] &&
                     cand[i].plane_distance > cand[selected].plane_distance)) {
                  selected = i;
                }
              }
              break;
            }
          }
        } else {
          // Class II step: MMPD — maximize the candidate plane distance.
          selected = argmax_pd(all_nodes);
        }
        break;
      }
    }

    assignment[j] = selected;
    assigned[j] = true;
    if (volume_ctx != nullptr) volume_ctx->Commit(selected);
    for (size_t k = 0; k < dims; ++k) {
      node_coeffs(selected, k) += op_coeffs(j, k);
    }
  }

  return Placement(n, std::move(assignment));
}

Result<Placement> RodPlace(const query::LoadModel& model,
                           const SystemSpec& system, const RodOptions& options,
                           const query::QueryGraph* graph) {
  // Map the physical lower bound (over system inputs) into normalized
  // coordinates; auxiliary variables get bound 0.
  Vector norm_lb;
  if (!options.lower_bound.empty()) {
    if (options.lower_bound.size() != model.num_system_inputs()) {
      return Status::InvalidArgument(
          "lower bound must cover exactly the system input streams");
    }
    for (double b : options.lower_bound) {
      if (b < 0.0) {
        return Status::InvalidArgument("lower bound must be non-negative");
      }
    }
    norm_lb.assign(model.num_vars(), 0.0);
    const double total_capacity = system.TotalCapacity();
    for (size_t k = 0; k < model.num_system_inputs(); ++k) {
      norm_lb[k] =
          model.total_coeffs()[k] * options.lower_bound[k] / total_capacity;
    }
  }

  std::vector<std::vector<size_t>> neighbors;
  const std::vector<std::vector<size_t>>* neighbors_ptr = nullptr;
  if (options.tie_break == RodOptions::ClassITieBreak::kMinCrossArcs) {
    if (graph == nullptr) {
      return Status::InvalidArgument(
          "kMinCrossArcs tie-break requires the query graph");
    }
    neighbors.resize(graph->num_operators());
    for (query::OperatorId j = 0; j < graph->num_operators(); ++j) {
      for (const query::Arc& arc : graph->inputs_of(j)) {
        if (arc.from.kind == query::StreamRef::Kind::kOperator) {
          neighbors[j].push_back(arc.from.index);
          neighbors[arc.from.index].push_back(j);
        }
      }
    }
    neighbors_ptr = &neighbors;
  }

  return RodPlaceMatrix(model.op_coeffs(), model.total_coeffs(), system,
                        options, norm_lb, neighbors_ptr);
}

}  // namespace rod::place
