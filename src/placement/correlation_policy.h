// Copyright (c) the ROD reproduction authors.
//
// The correlation-based *dynamic* load distribution scheme of Xing, Zdonik
// & Hwang (ICDE'05, the paper's [23]) as a fluid-simulator migration
// policy: when a node runs hot, move an operator to the underloaded node
// whose recent load time series is *least correlated* with the operator's,
// so that operators that spike together end up apart. This is the dynamic
// comparator the paper positions ROD against (and complements: "lighter-
// weight operators can be moved more frequently using a dynamic algorithm
// (e.g., the correlation-based scheme that we proposed earlier [23])").

#ifndef ROD_PLACEMENT_CORRELATION_POLICY_H_
#define ROD_PLACEMENT_CORRELATION_POLICY_H_

#include <deque>
#include <vector>

#include "runtime/fluid.h"

namespace rod::place {

/// Correlation-aware reactive migrator for the fluid simulator.
class CorrelationBalancer : public sim::MigrationPolicy {
 public:
  struct Options {
    /// Epochs of load history kept per operator / node.
    size_t history = 16;

    /// Minimum history before correlation-based decisions (falls back to
    /// no-op before that).
    size_t min_history = 4;

    /// Migrate only when some node's utilization reaches this watermark.
    double high_watermark = 0.9;

    /// Minimum epochs between decisions.
    size_t cooldown_epochs = 2;

    /// Maximum operators moved per decision.
    size_t max_moves = 2;
  };

  CorrelationBalancer() = default;
  explicit CorrelationBalancer(const Options& options) : options_(options) {}

  std::vector<sim::Migration> Decide(const EpochView& view) override;

 private:
  Options options_;
  size_t last_decision_epoch_ = 0;
  bool decided_before_ = false;
  /// Rolling load history: per operator and per node, newest at the back.
  std::vector<std::deque<double>> op_history_;
  std::vector<std::deque<double>> node_history_;
};

}  // namespace rod::place

#endif  // ROD_PLACEMENT_CORRELATION_POLICY_H_
