#include "placement/correlation_policy.h"

#include <algorithm>
#include <limits>

#include "common/stats.h"

namespace rod::place {

namespace {

std::vector<double> ToVector(const std::deque<double>& q) {
  return std::vector<double>(q.begin(), q.end());
}

}  // namespace

std::vector<sim::Migration> CorrelationBalancer::Decide(const EpochView& view) {
  const size_t m = view.assignment->size();
  const size_t n = view.system->num_nodes();

  // Record this epoch's history first (the policy must observe every
  // epoch, even when it does not act).
  if (op_history_.empty()) {
    op_history_.resize(m);
    node_history_.resize(n);
  }
  for (size_t j = 0; j < m; ++j) {
    op_history_[j].push_back((*view.op_loads)[j]);
    if (op_history_[j].size() > options_.history) op_history_[j].pop_front();
  }
  for (size_t i = 0; i < n; ++i) {
    node_history_[i].push_back((*view.node_loads)[i]);
    if (node_history_[i].size() > options_.history) {
      node_history_[i].pop_front();
    }
  }

  std::vector<sim::Migration> moves;
  if (op_history_[0].size() < options_.min_history) return moves;
  if (decided_before_ &&
      view.epoch_index < last_decision_epoch_ + options_.cooldown_epochs) {
    return moves;
  }

  Vector node_loads = *view.node_loads;
  std::vector<size_t> assignment = *view.assignment;
  auto util = [&](size_t i) {
    return node_loads[i] / view.system->capacities[i];
  };

  for (size_t round = 0; round < options_.max_moves; ++round) {
    size_t hot = 0;
    for (size_t i = 1; i < n; ++i) {
      if (util(i) > util(hot)) hot = i;
    }
    if (util(hot) < options_.high_watermark) break;

    const double mean_util = [&] {
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) acc += util(i);
      return acc / static_cast<double>(n);
    }();

    // Candidate destinations: below the mean utilization.
    // Candidate operators: on the hot node. Pick the (op, dest) pair with
    // the smallest correlation between the op's and the destination's
    // recent load series, requiring the move to actually help.
    size_t best_op = m;
    size_t best_dest = n;
    double best_corr = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < m; ++j) {
      if (assignment[j] != hot) continue;
      const double load = (*view.op_loads)[j];
      if (load <= 0.0) continue;
      const std::vector<double> op_series = ToVector(op_history_[j]);
      for (size_t i = 0; i < n; ++i) {
        if (i == hot || util(i) > mean_util) continue;
        const double dest_util =
            (node_loads[i] + load) / view.system->capacities[i];
        if (dest_util >= util(hot)) continue;
        const double corr =
            PearsonCorrelation(op_series, ToVector(node_history_[i]));
        if (corr < best_corr) {
          best_corr = corr;
          best_op = j;
          best_dest = i;
        }
      }
    }
    if (best_op == m) break;

    moves.push_back(sim::Migration{best_op, best_dest});
    const double load = (*view.op_loads)[best_op];
    node_loads[hot] -= load;
    node_loads[best_dest] += load;
    assignment[best_op] = best_dest;
  }

  if (!moves.empty()) {
    last_decision_epoch_ = view.epoch_index;
    decided_before_ = true;
  }
  return moves;
}

}  // namespace rod::place
