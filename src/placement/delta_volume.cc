#include "placement/delta_volume.h"

#include <cassert>

#include "common/thread_pool.h"

namespace rod::place {

namespace {

/// Samples per ParallelFor chunk, matching the membership kernel's grain so
/// chunk boundaries — and therefore the chunk-ordered count reduction — are
/// a pure function of the sample count.
constexpr size_t kSampleGrain = 1024;

}  // namespace

DeltaVolumeContext::DeltaVolumeContext(
    const Matrix& op_coeffs, std::span<const double> total_coeffs,
    Vector inv_cap, std::shared_ptr<const geom::SimplexSampleSet> set,
    size_t num_threads, double tol)
    : op_coeffs_(op_coeffs),
      unit_norm_(op_coeffs.cols()),
      inv_cap_(std::move(inv_cap)),
      set_(std::move(set)),
      num_threads_(num_threads),
      tol_(tol),
      num_samples_(set_->samples.rows()),
      num_nodes_(inv_cap_.size()),
      v_(num_samples_, 0.0),
      u_(num_nodes_, num_samples_, 0.0),
      viol_(num_nodes_ * num_samples_, 0),
      violation_count_(num_samples_, 0) {
  assert(set_->samples.cols() == op_coeffs.cols());
  assert(total_coeffs.size() == op_coeffs.cols());
  total_coeffs_ = Vector(total_coeffs.begin(), total_coeffs.end());
}

void DeltaVolumeContext::LoadUnit(size_t j) {
  assert(j < op_coeffs_.rows());
  const size_t d = op_coeffs_.cols();
  const auto row = op_coeffs_.Row(j);
  for (size_t k = 0; k < d; ++k) unit_norm_[k] = row[k] / total_coeffs_[k];
  // v_j(s) = sum_k unit_norm[k] * x_s[k], accumulated in ascending k —
  // the same mul-then-add recurrence as the scalar Dot. Lane-major loops
  // (k outer, s inner) keep the per-sample accumulation order identical
  // while letting the compiler vectorize across samples.
  ParallelFor(num_threads_, num_samples_, kSampleGrain,
              [&](size_t, size_t begin, size_t end) {
                double* v = v_.data();
                for (size_t s = begin; s < end; ++s) v[s] = 0.0;
                for (size_t k = 0; k < d; ++k) {
                  const double c = unit_norm_[k];
                  const double* lane = set_->Lane(k);
                  for (size_t s = begin; s < end; ++s) {
                    v[s] += c * lane[s];
                  }
                }
              });
}

size_t DeltaVolumeContext::ScoreCandidate(size_t node, bool delta) const {
  assert(node < num_nodes_);
  const double limit = 1.0 + tol_;
  const double scale = inv_cap_[node];
  const size_t num_chunks =
      (num_samples_ + kSampleGrain - 1) / kSampleGrain;
  std::vector<size_t> counts(num_chunks, 0);
  const double* u_node = u_.Row(node).data();
  const uint8_t* viol_node = viol_.data() + node * num_samples_;
  ParallelFor(
      num_threads_, num_samples_, kSampleGrain,
      [&](size_t chunk, size_t begin, size_t end) {
        size_t feasible = 0;
        if (delta) {
          // Only the changed row needs a fresh test: every other row's
          // verdict is already in the violation counters.
          for (size_t s = begin; s < end; ++s) {
            const bool others_ok =
                violation_count_[s] == static_cast<uint32_t>(viol_node[s]);
            if (others_ok && u_node[s] + v_[s] * scale <= limit) ++feasible;
          }
        } else {
          // Full reference: re-test every row of W per sample, swapping in
          // the candidate row for `node`. Reads the same u/v values as the
          // delta path, so the verdicts are bit-identical.
          for (size_t s = begin; s < end; ++s) {
            bool inside = u_node[s] + v_[s] * scale <= limit;
            for (size_t r = 0; r < num_nodes_ && inside; ++r) {
              if (r == node) continue;
              if (u_(r, s) > limit) inside = false;
            }
            if (inside) ++feasible;
          }
        }
        counts[chunk] = feasible;
      });
  size_t total = 0;
  for (size_t c : counts) total += c;
  return total;
}

void DeltaVolumeContext::Commit(size_t node) {
  assert(node < num_nodes_);
  const double limit = 1.0 + tol_;
  const double scale = inv_cap_[node];
  double* u_node = u_.Row(node).data();
  uint8_t* viol_node = viol_.data() + node * num_samples_;
  ParallelFor(num_threads_, num_samples_, kSampleGrain,
              [&](size_t, size_t begin, size_t end) {
                for (size_t s = begin; s < end; ++s) {
                  u_node[s] += v_[s] * scale;
                  if (viol_node[s] == 0 && u_node[s] > limit) {
                    viol_node[s] = 1;
                    ++violation_count_[s];
                  }
                }
              });
}

}  // namespace rod::place
