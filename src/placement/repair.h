// Copyright (c) the ROD reproduction authors.
//
// Incremental placement maintenance. A resilient *static* placement still
// has to change when the cluster does (node failure, decommission,
// scale-out). Recomputing from scratch moves nearly every operator —
// exactly the expensive migrations ROD exists to avoid — so this module
// repairs an existing plan: operators on surviving nodes stay put, ROD's
// greedy phase re-places only the orphaned ones against the frozen load
// already on the survivors, and an optional bounded rebalance pass spends
// a move budget where it buys the most plane distance.

#ifndef ROD_PLACEMENT_REPAIR_H_
#define ROD_PLACEMENT_REPAIR_H_

#include "placement/rod.h"

namespace rod::place {

/// Incremental ROD: places only the operators whose `fixed_assignment`
/// entry is `kUnassigned`, treating the rest as immovable load already on
/// their nodes. With every entry unassigned this is exactly RodPlace.
inline constexpr size_t kUnassigned = SIZE_MAX;

Result<Placement> RodPlaceIncremental(const query::LoadModel& model,
                                      const SystemSpec& system,
                                      const std::vector<size_t>& fixed_assignment,
                                      const RodOptions& options = {});

/// Repair configuration.
struct RepairOptions {
  RodOptions rod;

  /// After re-homing orphans, move up to this many additional operators
  /// if each move strictly improves the minimum plane distance
  /// (0 = repair only).
  size_t max_rebalance_moves = 0;
};

/// Outcome of a repair.
struct RepairResult {
  Placement placement;
  size_t operators_moved = 0;   ///< Orphans re-homed + rebalance moves.
  double plane_distance = 0.0;  ///< Min plane distance of the result.
};

/// Adapts `old_placement` (over `old_system`'s nodes) to `new_system`.
/// `node_mapping[i]` gives old node i's index in the new system, or
/// `kUnassigned` if the node is gone. Operators on surviving nodes keep
/// their (re-indexed) homes; orphaned operators are placed by incremental
/// ROD; fresh nodes start empty and attract load naturally.
Result<RepairResult> RepairPlacement(const query::LoadModel& model,
                                     const Placement& old_placement,
                                     const SystemSpec& new_system,
                                     const std::vector<size_t>& node_mapping,
                                     const RepairOptions& options = {});

}  // namespace rod::place

#endif  // ROD_PLACEMENT_REPAIR_H_
