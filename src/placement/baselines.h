// Copyright (c) the ROD reproduction authors.
//
// The four competing load-distribution schemes of paper §7.2: Random
// (equal operator counts), Largest-Load-First load balancing, Connected
// load balancing (co-locate connected operators), and Correlation-based
// load balancing (the authors' earlier dynamic scheme [23], used here as a
// static initial placement). All three balancing schemes optimize for a
// *single* rate point / rate history, which is exactly the behaviour ROD's
// feasible-set objective improves upon.

#ifndef ROD_PLACEMENT_BASELINES_H_
#define ROD_PLACEMENT_BASELINES_H_

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "placement/plan.h"
#include "query/load_model.h"
#include "query/query_graph.h"

namespace rod::place {

/// Random placement that keeps an equal number of operators per node
/// (paper: "produces a random placement while maintaining an equal number
/// of operators on each node"): shuffle, then deal round-robin.
Result<Placement> RandomPlace(const query::LoadModel& model,
                              const SystemSpec& system, Rng& rng);

/// Largest-Load-First load balancing: compute each operator's load at the
/// observed average rates `avg_rates` (physical, size = system inputs),
/// sort descending, and assign each to the node with the smallest current
/// load/capacity ratio.
Result<Placement> LargestLoadFirstPlace(const query::LoadModel& model,
                                        const SystemSpec& system,
                                        std::span<const double> avg_rates);

/// Connected load balancing: (1) assign the most loaded unassigned
/// operator to the least (relatively) loaded node N_s; (2) keep pulling
/// operators connected to N_s's operators onto N_s while N_s's load stays
/// below its proportional share of the total; (3) repeat. Minimizes
/// inter-node streams at the cost of stacking whole input subtrees on one
/// node.
Result<Placement> ConnectedLoadBalancePlace(const query::LoadModel& model,
                                            const query::QueryGraph& graph,
                                            const SystemSpec& system,
                                            std::span<const double> avg_rates);

/// Correlation-based load balancing (reimplementation of the scheme of
/// Xing, Zdonik & Hwang, ICDE'05 [23], as used statically in §7.2): given a
/// history of rate points (`rate_series`: T x d, physical rates), operators
/// are ordered by mean load and greedily assigned, among nodes whose mean
/// load is at or below their proportional share, to the node whose
/// aggregate load time series has the *smallest* Pearson correlation with
/// the operator's — separating operators whose loads spike together.
Result<Placement> CorrelationBasedPlace(const query::LoadModel& model,
                                        const SystemSpec& system,
                                        const Matrix& rate_series);

}  // namespace rod::place

#endif  // ROD_PLACEMENT_BASELINES_H_
