// Copyright (c) the ROD reproduction authors.
//
// Incremental (delta) feasible-volume scoring for greedy placement. A
// candidate assignment of one unit to one node changes exactly one row of
// the weight matrix W, so the per-sample feasibility state of the partial
// placement — each node row's accumulated dot product u_i(s), its violation
// bit, and the per-sample violation count — can be cached once and each
// candidate re-scored by testing only the changed row against the cached
// counters, instead of re-running the full W·x <= 1 membership kernel.
//
// Bit-exactness contract: both the delta path and the full reference path
// score candidates from the SAME cached state. The canonical algebra is
//   v_j(s)   = sum_k (op_coeffs(j,k) / total_coeffs[k]) * x_s[k]   (k asc.)
//   u_i(s)   = sum over committed units j on node i, in commit order,
//              of v_j(s) * inv_cap[i]
//   feasible(s, candidate i) <=> every row r != i has u_r(s) <= 1 + tol
//                            and u_i(s) + v_j(s) * inv_cap[i] <= 1 + tol
// The full path evaluates the predicate by scanning all rows per sample;
// the delta path uses the cached violation counters and re-tests only row
// i. Both read identical u/v values, so every candidate count — and hence
// the greedy placement — is bit-identical with delta evaluation on or off,
// for every thread count (chunked integer counts reduced in chunk order).

#ifndef ROD_PLACEMENT_DELTA_VOLUME_H_
#define ROD_PLACEMENT_DELTA_VOLUME_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/matrix.h"
#include "geometry/feasible_set.h"
#include "geometry/sample_cache.h"

namespace rod::place {

/// Per-sample feasibility state of a partial placement, scored over one
/// cached simplex sample set.
class DeltaVolumeContext {
 public:
  /// `op_coeffs` is the m x D unit load-coefficient matrix, `total_coeffs`
  /// the per-variable totals (positive), `inv_cap[i]` the reciprocal
  /// capacity share 1 / (c_i / C) of node i. `set` must hold samples of
  /// dimension D. `num_threads` parallelizes the per-sample loops; results
  /// are bit-identical for every value.
  DeltaVolumeContext(const Matrix& op_coeffs,
                     std::span<const double> total_coeffs, Vector inv_cap,
                     std::shared_ptr<const geom::SimplexSampleSet> set,
                     size_t num_threads = 1,
                     double tol = geom::kMembershipTol);

  /// Computes unit j's normalized contribution lane v_j(s) into internal
  /// scratch. Required before ScoreCandidate / Commit for that unit.
  void LoadUnit(size_t j);

  /// Feasible-sample count if the loaded unit were assigned to `node`.
  /// `delta` selects the incremental path (cached violation counters +
  /// changed-row retest) or the full reference path (every row re-tested
  /// per sample); the two return bit-identical counts.
  size_t ScoreCandidate(size_t node, bool delta) const;

  /// Folds the loaded unit into `node`'s cached row state (u, violation
  /// bit, per-sample violation count). Contributions are non-negative, so
  /// violations are monotone: once a row is violated at a sample it stays
  /// violated.
  void Commit(size_t node);

  size_t num_samples() const { return num_samples_; }
  size_t num_nodes() const { return num_nodes_; }
  double tol() const { return tol_; }

 private:
  const Matrix& op_coeffs_;
  Vector total_coeffs_;
  Vector unit_norm_;  // op_coeffs row j / total_coeffs, for LoadUnit
  Vector inv_cap_;
  std::shared_ptr<const geom::SimplexSampleSet> set_;
  size_t num_threads_;
  double tol_;
  size_t num_samples_;
  size_t num_nodes_;

  Vector v_;                   // loaded unit's contribution lane, size S
  Matrix u_;                   // num_nodes x S accumulated row dots
  std::vector<uint8_t> viol_;  // num_nodes x S violation bits
  std::vector<uint32_t> violation_count_;  // per sample, size S
};

}  // namespace rod::place

#endif  // ROD_PLACEMENT_DELTA_VOLUME_H_
