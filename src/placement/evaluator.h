// Copyright (c) the ROD reproduction authors.
//
// Placement evaluation: connects a load model, a cluster, and a placement
// into the paper's metrics — node load-coefficient and weight matrices,
// feasible-set ratios, plane distances, per-node utilization at concrete
// rate points, and communication-cost-aware node coefficients (§6.3).

#ifndef ROD_PLACEMENT_EVALUATOR_H_
#define ROD_PLACEMENT_EVALUATOR_H_

#include <span>

#include "geometry/feasible_set.h"
#include "placement/plan.h"
#include "query/load_model.h"

namespace rod::place {

/// Evaluates placements for one (load model, cluster) pair. Holds
/// references: the model and system must outlive the evaluator.
class PlacementEvaluator {
 public:
  /// `system` must validate and match any placement's node count.
  PlacementEvaluator(const query::LoadModel& model, const SystemSpec& system);

  const query::LoadModel& model() const { return *model_; }
  const SystemSpec& system() const { return *system_; }

  /// Normalized weight matrix W of `placement` (paper §3.3).
  Result<Matrix> WeightMatrix(const Placement& placement) const;

  /// `V(F(A)) / V(F*)`: the fraction of the ideal feasible set this
  /// placement retains — the paper's primary metric.
  Result<double> RatioToIdeal(const Placement& placement,
                              const geom::VolumeOptions& options = {}) const;

  /// The paper's `r`: minimum plane distance over node hyperplanes.
  Result<double> MinPlaneDistance(const Placement& placement) const;

  /// Per-node CPU load at physical input rates `R` (extends rates through
  /// any auxiliary variables first).
  Vector NodeLoadsAt(const Placement& placement,
                     std::span<const double> system_rates) const;

  /// Per-node load divided by capacity at `R`; > 1 means overloaded.
  Vector NodeUtilizationAt(const Placement& placement,
                           std::span<const double> system_rates) const;

  /// True iff no node is overloaded at `R` (utilization <= 1 + tol).
  bool FeasibleAt(const Placement& placement,
                  std::span<const double> system_rates,
                  double tol = 1e-9) const;

  /// Analytic feasibility boundary along `direction` (componentwise >= 0,
  /// not all zero) in physical rate space: the largest scale s with
  /// FeasibleAt(s * direction). Purely linear models resolve in closed
  /// form (1 / max utilization at `direction`); linearized models with
  /// auxiliary variables — where load is no longer linear in s — use a
  /// bracketed bisection on FeasibleAt with relative tolerance `rel_tol`.
  /// Returns +infinity when no node ever loads along the direction. The
  /// model-level counterpart of the engine's SimulatedBoundaryScale.
  Result<double> BoundaryScaleAlong(const Placement& placement,
                                    std::span<const double> direction,
                                    double rel_tol = 1e-9) const;

  /// Volume of the ideal feasible set in the original rate space
  /// (Theorem 1). Only meaningful for purely linear models (the original
  /// space of a linearized model is not the Lebesgue box the integral
  /// assumes); returns FailedPrecondition when auxiliary variables exist.
  Result<double> IdealVolume() const;

 private:
  const query::LoadModel* model_;
  const SystemSpec* system_;
};

/// Multi-line human-readable report of a placement: per-node operator
/// lists (names resolved through `graph` when provided), per-node weight
/// rows, plane distances against the ideal, and the feasible-set ratio.
/// The operational "explain this plan" entry point used by the CLI tool.
Result<std::string> ExplainPlacement(const PlacementEvaluator& evaluator,
                                     const Placement& placement,
                                     const query::QueryGraph* graph = nullptr,
                                     const geom::VolumeOptions& options = {});

/// Node load-coefficient matrix including per-tuple communication CPU cost
/// (§6.3): for every dataflow arc that crosses nodes under `placement`, the
/// arc's `comm_cost` is charged per transferred tuple on *both* endpoint
/// nodes (send + receive); arcs from system input streams charge only the
/// receiving node (the source is external). The transferred rate is the
/// source stream's (linear) rate-coefficient vector, so the result remains
/// a valid linear node coefficient matrix.
Matrix NodeCoeffsWithComm(const Placement& placement,
                          const query::LoadModel& model,
                          const query::QueryGraph& graph);

}  // namespace rod::place

#endif  // ROD_PLACEMENT_EVALUATOR_H_
