#include "placement/repair.h"

#include <algorithm>

#include "geometry/hyperplane.h"

namespace rod::place {

Result<Placement> RodPlaceIncremental(const query::LoadModel& model,
                                      const SystemSpec& system,
                                      const std::vector<size_t>& fixed_assignment,
                                      const RodOptions& options) {
  if (fixed_assignment.size() != model.num_operators()) {
    return Status::InvalidArgument("fixed_assignment size mismatch");
  }
  // The LoadModel overload handles lower-bound normalization; incremental
  // mode reuses the matrix core directly (no kMinCrossArcs support here —
  // incremental callers have no graph context).
  if (options.tie_break == RodOptions::ClassITieBreak::kMinCrossArcs) {
    return Status::InvalidArgument(
        "incremental placement does not support kMinCrossArcs");
  }
  Vector norm_lb;
  if (!options.lower_bound.empty()) {
    if (options.lower_bound.size() != model.num_system_inputs()) {
      return Status::InvalidArgument(
          "lower bound must cover exactly the system input streams");
    }
    norm_lb.assign(model.num_vars(), 0.0);
    const double total_capacity = system.TotalCapacity();
    for (size_t k = 0; k < model.num_system_inputs(); ++k) {
      norm_lb[k] =
          model.total_coeffs()[k] * options.lower_bound[k] / total_capacity;
    }
  }
  return RodPlaceMatrix(model.op_coeffs(), model.total_coeffs(), system,
                        options, norm_lb, nullptr, &fixed_assignment);
}

Result<RepairResult> RepairPlacement(const query::LoadModel& model,
                                     const Placement& old_placement,
                                     const SystemSpec& new_system,
                                     const std::vector<size_t>& node_mapping,
                                     const RepairOptions& options) {
  ROD_RETURN_IF_ERROR(new_system.Validate());
  if (old_placement.num_operators() != model.num_operators()) {
    return Status::InvalidArgument("placement/model operator count mismatch");
  }
  if (node_mapping.size() != old_placement.num_nodes()) {
    return Status::InvalidArgument(
        "node_mapping must cover every old node");
  }
  const size_t new_n = new_system.num_nodes();
  for (size_t target : node_mapping) {
    if (target != kUnassigned && target >= new_n) {
      return Status::InvalidArgument("node_mapping points outside the new "
                                     "system");
    }
  }

  // Re-index survivors; orphan the rest.
  const size_t m = model.num_operators();
  std::vector<size_t> fixed(m, kUnassigned);
  size_t orphans = 0;
  for (size_t j = 0; j < m; ++j) {
    const size_t target = node_mapping[old_placement.node_of(j)];
    if (target == kUnassigned) {
      ++orphans;
    } else {
      fixed[j] = target;
    }
  }

  auto placed = RodPlaceIncremental(model, new_system, fixed, options.rod);
  if (!placed.ok()) return placed.status();

  RepairResult result{*placed, orphans, 0.0};

  // Optional bounded rebalance: greedily move the single operator whose
  // relocation most improves the minimum plane distance; stop when no
  // move helps or the budget is spent.
  const double total_capacity = new_system.TotalCapacity();
  auto weight_matrix = [&](const Placement& p) {
    return geom::ComputeWeightMatrix(p.NodeCoeffs(model.op_coeffs()),
                                     model.total_coeffs(),
                                     new_system.capacities);
  };
  auto score = [&](const Placement& p) {
    auto w = weight_matrix(p);
    return w.ok() ? geom::MinPlaneDistance(*w) : 0.0;
  };
  (void)total_capacity;

  Placement current = result.placement;
  double current_score = score(current);
  for (size_t move = 0; move < options.max_rebalance_moves; ++move) {
    double best_score = current_score;
    size_t best_op = m;
    size_t best_node = 0;
    for (size_t j = 0; j < m; ++j) {
      const size_t home = current.node_of(j);
      for (size_t i = 0; i < new_n; ++i) {
        if (i == home) continue;
        std::vector<size_t> trial = current.assignment();
        trial[j] = i;
        const double s = score(Placement(new_n, std::move(trial)));
        if (s > best_score + 1e-12) {
          best_score = s;
          best_op = j;
          best_node = i;
        }
      }
    }
    if (best_op == m) break;
    std::vector<size_t> next = current.assignment();
    next[best_op] = best_node;
    current = Placement(new_n, std::move(next));
    current_score = best_score;
    ++result.operators_moved;
  }
  result.placement = current;
  result.plane_distance = current_score;
  return result;
}

}  // namespace rod::place
