#include "placement/evaluator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>

#include "geometry/hyperplane.h"

namespace rod::place {

PlacementEvaluator::PlacementEvaluator(const query::LoadModel& model,
                                       const SystemSpec& system)
    : model_(&model), system_(&system) {
  ROD_CHECK_OK(system.Validate());
}

Result<Matrix> PlacementEvaluator::WeightMatrix(
    const Placement& placement) const {
  if (placement.num_operators() != model_->num_operators()) {
    return Status::InvalidArgument("placement/model operator count mismatch");
  }
  if (placement.num_nodes() != system_->num_nodes()) {
    return Status::InvalidArgument("placement/system node count mismatch");
  }
  const Matrix node_coeffs = placement.NodeCoeffs(model_->op_coeffs());
  return geom::ComputeWeightMatrix(node_coeffs, model_->total_coeffs(),
                                   system_->capacities);
}

Result<double> PlacementEvaluator::RatioToIdeal(
    const Placement& placement, const geom::VolumeOptions& options) const {
  auto weights = WeightMatrix(placement);
  if (!weights.ok()) return weights.status();
  return geom::FeasibleSet(std::move(*weights)).RatioToIdeal(options);
}

Result<double> PlacementEvaluator::MinPlaneDistance(
    const Placement& placement) const {
  auto weights = WeightMatrix(placement);
  if (!weights.ok()) return weights.status();
  return geom::MinPlaneDistance(*weights);
}

Vector PlacementEvaluator::NodeLoadsAt(
    const Placement& placement, std::span<const double> system_rates) const {
  const Vector op_loads = model_->OperatorLoadsAt(system_rates);
  Vector node_loads(placement.num_nodes(), 0.0);
  for (size_t j = 0; j < op_loads.size(); ++j) {
    node_loads[placement.node_of(j)] += op_loads[j];
  }
  return node_loads;
}

Vector PlacementEvaluator::NodeUtilizationAt(
    const Placement& placement, std::span<const double> system_rates) const {
  Vector util = NodeLoadsAt(placement, system_rates);
  for (size_t i = 0; i < util.size(); ++i) {
    util[i] /= system_->capacities[i];
  }
  return util;
}

bool PlacementEvaluator::FeasibleAt(const Placement& placement,
                                    std::span<const double> system_rates,
                                    double tol) const {
  const Vector util = NodeUtilizationAt(placement, system_rates);
  for (double u : util) {
    if (u > 1.0 + tol) return false;
  }
  return true;
}

Result<double> PlacementEvaluator::BoundaryScaleAlong(
    const Placement& placement, std::span<const double> direction,
    double rel_tol) const {
  if (direction.size() != model_->num_system_inputs()) {
    return Status::InvalidArgument("one direction entry per input stream");
  }
  double max_dir = 0.0;
  for (double d : direction) {
    if (d < 0.0 || !std::isfinite(d)) {
      return Status::InvalidArgument("direction must be finite, >= 0");
    }
    max_dir = std::max(max_dir, d);
  }
  if (max_dir <= 0.0) {
    return Status::InvalidArgument("direction must have a positive entry");
  }

  Vector scaled(direction.begin(), direction.end());
  auto feasible_at_scale = [&](double s) {
    for (size_t k = 0; k < direction.size(); ++k) scaled[k] = s * direction[k];
    return FeasibleAt(placement, scaled);
  };

  if (!model_->has_aux_vars()) {
    // Linear model: utilization scales linearly, closed form.
    const Vector util = NodeUtilizationAt(placement, direction);
    double max_util = 0.0;
    for (double u : util) max_util = std::max(max_util, u);
    if (max_util <= 0.0) return std::numeric_limits<double>::infinity();
    return 1.0 / max_util;
  }

  // Linearized model: load grows superlinearly in s (join auxiliary
  // variables are rate products), so bracket by doubling and bisect.
  double lo = 0.0;
  double hi = 1.0;
  size_t guard = 0;
  while (feasible_at_scale(hi)) {
    lo = hi;
    hi *= 2.0;
    if (++guard > 1024) return std::numeric_limits<double>::infinity();
  }
  while (hi - lo > rel_tol * hi) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at_scale(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<double> PlacementEvaluator::IdealVolume() const {
  if (model_->has_aux_vars()) {
    return Status::FailedPrecondition(
        "ideal volume in the original rate space is undefined for "
        "linearized (auxiliary-variable) models");
  }
  return geom::IdealFeasibleVolume(model_->total_coeffs(),
                                   system_->TotalCapacity());
}

Result<std::string> ExplainPlacement(const PlacementEvaluator& evaluator,
                                     const Placement& placement,
                                     const query::QueryGraph* graph,
                                     const geom::VolumeOptions& options) {
  auto weights = evaluator.WeightMatrix(placement);
  if (!weights.ok()) return weights.status();
  auto ratio = evaluator.RatioToIdeal(placement, options);
  if (!ratio.ok()) return ratio.status();

  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  const auto by_node = placement.OperatorsByNode();
  for (size_t i = 0; i < by_node.size(); ++i) {
    os << "node " << i << " (capacity "
       << evaluator.system().capacities[i] << "):";
    for (query::OperatorId j : by_node[i]) {
      if (graph != nullptr) {
        os << " " << graph->spec(j).name;
      } else {
        os << " op" << j;
      }
    }
    os << "\n  weights:";
    for (size_t k = 0; k < weights->cols(); ++k) {
      os << " " << (*weights)(i, k);
    }
    os << "  (plane distance " << geom::PlaneDistance(weights->Row(i))
       << ")\n";
  }
  os << "min plane distance r = " << geom::MinPlaneDistance(*weights)
     << " (ideal r* = " << geom::IdealPlaneDistance(weights->cols()) << ")\n"
     << "feasible-set ratio V(F)/V(F*) = " << *ratio << "\n";
  return os.str();
}

Matrix NodeCoeffsWithComm(const Placement& placement,
                          const query::LoadModel& model,
                          const query::QueryGraph& graph) {
  assert(graph.num_operators() == model.num_operators());
  Matrix node_coeffs = placement.NodeCoeffs(model.op_coeffs());
  const size_t dims = model.num_vars();
  for (query::OperatorId j = 0; j < graph.num_operators(); ++j) {
    const size_t dst_node = placement.node_of(j);
    for (const query::Arc& arc : graph.inputs_of(j)) {
      if (arc.comm_cost <= 0.0) continue;
      if (arc.from.kind == query::StreamRef::Kind::kInput) {
        // External source: the receiving node pays ingestion cost on the
        // raw input-stream rate regardless of placement.
        node_coeffs(dst_node, arc.from.index) += arc.comm_cost;
        continue;
      }
      const size_t src_node = placement.node_of(arc.from.index);
      if (src_node == dst_node) continue;  // local arc: no network transfer
      auto rate = model.out_rate_coeffs().Row(arc.from.index);
      for (size_t v = 0; v < dims; ++v) {
        const double add = arc.comm_cost * rate[v];
        node_coeffs(src_node, v) += add;  // marshal + send
        node_coeffs(dst_node, v) += add;  // receive + unmarshal
      }
    }
  }
  return node_coeffs;
}

}  // namespace rod::place
