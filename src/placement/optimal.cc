#include "placement/optimal.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "geometry/hyperplane.h"
#include "geometry/qmc.h"

namespace rod::place {

namespace {

/// Draws the shared sample set over the ideal simplex.
std::vector<Vector> DrawSamples(size_t dims, const geom::VolumeOptions& opt) {
  std::vector<Vector> samples;
  samples.reserve(opt.num_samples);
  if (opt.use_pseudo_random || dims > opt.max_halton_dims) {
    Rng rng(opt.seed);
    for (size_t s = 0; s < opt.num_samples; ++s) {
      Vector cube(dims);
      for (double& v : cube) v = rng.NextDouble();
      samples.push_back(geom::MapUnitCubeToSimplex(std::move(cube)));
    }
  } else {
    geom::HaltonSequence halton(dims);
    for (size_t s = 0; s < opt.num_samples; ++s) {
      samples.push_back(geom::MapUnitCubeToSimplex(halton.Next()));
    }
  }
  return samples;
}

}  // namespace

Result<OptimalResult> OptimalPlace(const query::LoadModel& model,
                                   const SystemSpec& system,
                                   const OptimalOptions& options) {
  ROD_RETURN_IF_ERROR(system.Validate());
  const size_t m = model.num_operators();
  const size_t n = system.num_nodes();
  const size_t dims = model.num_vars();
  if (m == 0) return Status::InvalidArgument("no operators to place");

  const bool homogeneous =
      std::all_of(system.capacities.begin(), system.capacities.end(),
                  [&](double c) { return c == system.capacities[0]; });
  const bool canonical = options.exploit_node_symmetry && homogeneous;

  // Plan-count guard (overflow-safe; canonical mode fixes the first
  // operator's node, bounding the space by n^(m-1)).
  const double log_plans =
      static_cast<double>(canonical && m > 0 ? m - 1 : m) *
      std::log(static_cast<double>(n));
  if (n > 1 && log_plans > std::log(static_cast<double>(options.max_plans))) {
    return Status::InvalidArgument(
        "plan space too large for exhaustive search; reduce operators/nodes "
        "or raise max_plans");
  }

  const std::vector<Vector> samples = DrawSamples(dims, options.volume);

  // Precompute normalization so per-plan weight evaluation is one pass:
  // w_ik = node_coeff(i,k) * inv_norm(i,k), inv_norm = 1/(l_k * C_i/C_T).
  const double total_capacity = system.TotalCapacity();
  Matrix inv_norm(n, dims);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dims; ++k) {
      const double lk = model.total_coeffs()[k];
      if (lk <= 0.0) {
        return Status::InvalidArgument(
            "non-positive total load coefficient; cannot normalize");
      }
      inv_norm(i, k) = 1.0 / (lk * system.capacities[i] / total_capacity);
    }
  }

  std::vector<size_t> assignment(m, 0);
  OptimalResult best{Placement(n, assignment), -1.0, 0};
  Matrix node_coeffs(n, dims);

  auto evaluate = [&]() {
    ++best.plans_evaluated;
    node_coeffs = Matrix(n, dims);
    for (size_t j = 0; j < m; ++j) {
      auto row = model.op_coeffs().Row(j);
      auto dst = node_coeffs.Row(assignment[j]);
      for (size_t k = 0; k < dims; ++k) dst[k] += row[k];
    }
    size_t feasible = 0;
    for (const Vector& x : samples) {
      bool ok = true;
      for (size_t i = 0; i < n && ok; ++i) {
        double wx = 0.0;
        for (size_t k = 0; k < dims; ++k) {
          wx += node_coeffs(i, k) * inv_norm(i, k) * x[k];
        }
        ok = wx <= 1.0 + 1e-12;
      }
      if (ok) ++feasible;
    }
    const double ratio =
        static_cast<double>(feasible) / static_cast<double>(samples.size());
    if (ratio > best.ratio_to_ideal) {
      best.ratio_to_ideal = ratio;
      best.placement = Placement(n, assignment);
    }
  };

  // Depth-first enumeration. In canonical mode operator j may only use
  // nodes 0..min(used, n-1), where `used` counts distinct nodes referenced
  // so far (restricted-growth strings). That enumerates set partitions
  // into at most n blocks — every distinct plan of a homogeneous cluster
  // exactly once, never a mere node relabeling.
  auto enumerate = [&](auto&& self, size_t j, size_t used) -> void {
    if (j == m) {
      evaluate();
      return;
    }
    const size_t limit = canonical ? std::min(used, n - 1) : n - 1;
    for (size_t node = 0; node <= limit; ++node) {
      assignment[j] = node;
      self(self, j + 1, std::max(used, node + 1));
    }
  };
  enumerate(enumerate, 0, 0);
  assert(best.ratio_to_ideal >= 0.0);
  return best;
}

}  // namespace rod::place
