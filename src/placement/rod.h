// Copyright (c) the ROD reproduction authors.
//
// The Resilient Operator Distribution algorithm (paper §5, Figure 10), with
// the §6.1 lower-bound extension and the ablation switches DESIGN.md calls
// out (operator ordering, Class-I tie-break, MMAD-only / MMPD-only modes).

#ifndef ROD_PLACEMENT_ROD_H_
#define ROD_PLACEMENT_ROD_H_

#include <cstdint>

#include "common/matrix.h"
#include "common/status.h"
#include "geometry/feasible_set.h"
#include "placement/plan.h"
#include "query/load_model.h"
#include "query/query_graph.h"

namespace rod::place {

/// Configuration of one ROD run.
struct RodOptions {
  /// How to pick among Class I nodes (all of which leave the attainable
  /// feasible set untouched at this step — paper §5.2: "a random node can
  /// be selected or we can choose the destination node using some other
  /// criteria").
  enum class ClassITieBreak {
    kMaxPlaneDistance,  ///< Greedy-balanced: keep the largest candidate
                        ///< plane distance (deterministic default).
    kRandom,            ///< The paper's random choice (uses `seed`).
    kMinCrossArcs,      ///< Minimize new inter-node arcs (needs `graph`;
                        ///< the paper's data-communication criterion).
    kMinMaxWeight,      ///< Keep the candidate's largest per-stream weight
                        ///< smallest (pure MMAD balancing inside Class I).
    kFirst,             ///< Lowest node id (degenerate; for ablation).
  };

  /// Heuristic composition (ablation; the paper's algorithm is kCombined).
  enum class Mode {
    kCombined,  ///< Class I/II logic: MMAD while possible, then MMPD.
    kMmadOnly,  ///< Always minimize the candidate maximum weight
                ///< (pure axis-distance balancing, §4.1).
    kMmpdOnly,  ///< Always maximize the candidate plane distance (§4.2).
    kVolumeGreedy,  ///< Maximize the resulting feasible-set sample count
                    ///< directly (Monte-Carlo over `volume`'s sample set;
                    ///< ties fall back to plane distance). Candidate counts
                    ///< come from the DeltaVolumeContext; `delta_eval`
                    ///< switches incremental vs full scoring, which are
                    ///< bit-identical by construction.
  };

  ClassITieBreak tie_break = ClassITieBreak::kMaxPlaneDistance;
  Mode mode = Mode::kCombined;

  /// Sampling configuration of Mode::kVolumeGreedy (sample set, count,
  /// scoring parallelism). Ignored by the other modes.
  geom::VolumeOptions volume;

  /// Mode::kVolumeGreedy only: score candidates incrementally from the
  /// cached per-sample feasibility state (true) or by re-testing every
  /// node row per sample (false). Placements are identical either way;
  /// the toggle exists to prove it and to measure the speedup.
  bool delta_eval = true;

  /// Sort operators by ||l^o_j||_2 before assignment (phase 1). Disabling
  /// (or ascending order) is exposed for the ordering ablation.
  bool sort_operators = true;
  bool sort_ascending = false;

  /// Known lower bound B on the *physical* input stream rates (§6.1), size
  /// = number of system inputs; empty means B = 0 (no knowledge). Plane
  /// distances are then measured from the normalized image of B.
  Vector lower_bound;

  /// Seed for ClassITieBreak::kRandom.
  uint64_t seed = 0x20d5eedULL;

  /// Parallelism of the per-unit candidate-node evaluation: > 1 computes
  /// the candidate metrics of large clusters on the shared thread pool.
  /// Metrics land in node-indexed slots and selection stays sequential,
  /// so the placement is identical for every value.
  size_t num_threads = 1;
};

/// Runs ROD on raw matrices: `op_coeffs` is the (m x D) load-coefficient
/// matrix of the units to place (operators or clusters), `total_coeffs`
/// the per-variable totals l_k (must all be positive), `system` the
/// cluster. `normalized_lower_bound`, if non-empty, is the lower-bound
/// point already mapped into normalized coordinates. `fixed_assignment`,
/// if non-null, pins units whose entry is a valid node index and places
/// only the rest (incremental mode; see repair.h).
///
/// This is the building block; most callers use the LoadModel overload.
Result<Placement> RodPlaceMatrix(const Matrix& op_coeffs,
                                 std::span<const double> total_coeffs,
                                 const SystemSpec& system,
                                 const RodOptions& options = {},
                                 std::span<const double> normalized_lower_bound = {},
                                 const std::vector<std::vector<size_t>>*
                                     unit_neighbors = nullptr,
                                 const std::vector<size_t>* fixed_assignment =
                                     nullptr);

/// Runs ROD for a query graph's load model. `graph` is only required for
/// ClassITieBreak::kMinCrossArcs. `options.lower_bound`, when set, is given
/// in physical rates over the *system inputs*; auxiliary (linearized)
/// variables get lower bound 0.
Result<Placement> RodPlace(const query::LoadModel& model,
                           const SystemSpec& system,
                           const RodOptions& options = {},
                           const query::QueryGraph* graph = nullptr);

}  // namespace rod::place

#endif  // ROD_PLACEMENT_ROD_H_
