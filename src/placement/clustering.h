// Copyright (c) the ROD reproduction authors.
//
// Operator clustering (paper §6.3): a preprocessing step that contracts
// dataflow arcs whose per-tuple transfer cost is high relative to the
// processing cost of their end operators, so that ROD never separates them
// across the network. Two greedy schemes are provided, plus the paper's
// practical recipe: sweep thresholds for both schemes, run ROD on every
// resulting clustering, and keep the plan with the maximum
// communication-aware plane distance.

#ifndef ROD_PLACEMENT_CLUSTERING_H_
#define ROD_PLACEMENT_CLUSTERING_H_

#include <vector>

#include "placement/plan.h"
#include "placement/rod.h"
#include "query/load_model.h"
#include "query/query_graph.h"

namespace rod::place {

/// A partition of the operators into placement units.
struct Clustering {
  /// cluster id -> member operator ids (ascending).
  std::vector<std::vector<query::OperatorId>> clusters;
  /// operator id -> cluster id.
  std::vector<size_t> cluster_of;
  /// Per-cluster load-coefficient rows (sums of member L^o rows).
  Matrix cluster_coeffs;

  size_t num_clusters() const { return clusters.size(); }

  /// Normalized weight of a cluster: `max_k (sum_j l^o_jk) / l_k` — the
  /// largest fraction of any one stream's total load the cluster pins to a
  /// single node.
  double ClusterWeight(size_t c, std::span<const double> total_coeffs) const;

  /// Expands a cluster-level placement into an operator-level one.
  Placement ExpandPlacement(const Placement& cluster_placement) const;
};

/// Clustering configuration.
struct ClusteringOptions {
  /// Arc-selection rule for step (ii) of the greedy loop.
  enum class Scheme {
    kClusteringRatio,  ///< Contract the arc with the largest clustering
                       ///< ratio (per-tuple transfer cost / min end-operator
                       ///< processing cost) first.
    kMinWeight,        ///< Among arcs above the threshold, contract the pair
                       ///< of clusters with the minimum combined weight
                       ///< (avoids building heavyweight clusters).
  };

  Scheme scheme = Scheme::kClusteringRatio;

  /// Contraction stops once every remaining inter-cluster arc has
  /// clustering ratio below this.
  double ratio_threshold = 1.0;

  /// Upper bound on any resulting cluster's weight; contractions that
  /// would exceed it are skipped. <= 0 selects the default `max_i C_i/C_T`
  /// (no cluster may exceed the largest node's proportional share of any
  /// stream).
  double max_cluster_weight = 0.0;
};

/// Builds a clustering of `graph`'s operators. Arcs with zero
/// communication cost are never contracted.
Result<Clustering> ClusterOperators(const query::LoadModel& model,
                                    const query::QueryGraph& graph,
                                    const SystemSpec& system,
                                    const ClusteringOptions& options = {});

/// The trivial clustering (every operator its own cluster).
Clustering SingletonClustering(const query::LoadModel& model);

/// Sweep configuration for `ClusteredRodPlace`.
struct ClusterSweepOptions {
  /// Thresholds tried for each scheme (paper: "systematically varying the
  /// threshold values").
  std::vector<double> thresholds = {0.5, 1.0, 2.0, 4.0};
  /// ROD settings used for every candidate plan.
  RodOptions rod;
  /// Also evaluate the unclustered (singleton) plan.
  bool include_unclustered = true;
  /// Cluster weight caps to try for each (scheme, threshold) pair. The
  /// default 0 entry selects ClusterOperators' default cap (largest node's
  /// capacity share); larger caps permit heavyweight clusters, which win
  /// when communication is so expensive that crossings dominate load.
  std::vector<double> weight_caps = {0.0, 0.67, 1.0};
};

/// Outcome of the clustering sweep.
struct ClusterSweepResult {
  Placement placement;              ///< Best operator-level plan found.
  Clustering clustering;            ///< The clustering it came from.
  double plane_distance = 0.0;      ///< Its communication-aware min plane
                                    ///< distance (the selection metric).
  size_t plans_evaluated = 0;
};

/// The paper's end-to-end §6.3 procedure: generate clusterings for both
/// schemes across `options.thresholds`, run ROD on each cluster-level load
/// matrix, score every expanded plan by its minimum plane distance computed
/// from communication-aware node coefficients, and return the best.
Result<ClusterSweepResult> ClusteredRodPlace(
    const query::LoadModel& model, const query::QueryGraph& graph,
    const SystemSpec& system, const ClusterSweepOptions& options = {});

}  // namespace rod::place

#endif  // ROD_PLACEMENT_CLUSTERING_H_
