// Copyright (c) the ROD reproduction authors.
//
// Operator placement plans: the paper's operator allocation matrix
// `A = {a_ij}` in the compact form `assignment[j] = node of operator j`,
// plus the cluster (machine set) description.

#ifndef ROD_PLACEMENT_PLAN_H_
#define ROD_PLACEMENT_PLAN_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "query/query_graph.h"

namespace rod::place {

/// The computing cluster: one CPU capacity per node, in CPU-seconds of
/// processing available per second of wall time (paper §2.1 assumes these
/// are fixed and known).
struct SystemSpec {
  Vector capacities;

  /// A homogeneous cluster of `n` nodes with capacity `capacity` each.
  static SystemSpec Homogeneous(size_t n, double capacity = 1.0) {
    return SystemSpec{Vector(n, capacity)};
  }

  size_t num_nodes() const { return capacities.size(); }
  double TotalCapacity() const { return Sum(capacities); }

  /// OK iff there is at least one node and all capacities are positive.
  Status Validate() const;
};

/// An assignment of every operator to one node.
class Placement {
 public:
  /// `assignment[j]` is the node hosting operator `j`; every entry must be
  /// < `num_nodes` (asserted).
  Placement(size_t num_nodes, std::vector<size_t> assignment);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_operators() const { return assignment_.size(); }
  size_t node_of(query::OperatorId j) const { return assignment_.at(j); }
  const std::vector<size_t>& assignment() const { return assignment_; }

  /// The paper's allocation matrix A (n x m, entries 0/1).
  Matrix AllocationMatrix() const;

  /// Node load-coefficient matrix `L^n = A . L^o` (n x D), computed by
  /// summing each node's operator rows.
  Matrix NodeCoeffs(const Matrix& op_coeffs) const;

  /// Operators hosted by each node.
  std::vector<std::vector<query::OperatorId>> OperatorsByNode() const;

  /// Number of dataflow arcs whose endpoints live on different nodes
  /// (arcs from system inputs are never counted: sources are external).
  size_t CountCrossNodeArcs(const query::QueryGraph& graph) const;

  bool operator==(const Placement& other) const = default;

 private:
  size_t num_nodes_;
  std::vector<size_t> assignment_;
};

/// Serializes a placement as one line: "nodes=<n> assignment=<a0,a1,...>".
std::string SerializePlacement(const Placement& placement);

/// Parses the SerializePlacement format.
Result<Placement> ParsePlacement(const std::string& text);

}  // namespace rod::place

#endif  // ROD_PLACEMENT_PLAN_H_
