#include "placement/baselines.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "common/stats.h"

namespace rod::place {

namespace {

/// Index of the node with the smallest load/capacity ratio.
size_t LeastLoadedNode(const Vector& node_loads, const SystemSpec& system) {
  size_t best = 0;
  double best_ratio = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node_loads.size(); ++i) {
    const double ratio = node_loads[i] / system.capacities[i];
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = i;
    }
  }
  return best;
}

/// Operator ids sorted by `load` descending (stable for determinism).
std::vector<size_t> SortByLoadDesc(const Vector& load) {
  std::vector<size_t> order(load.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return load[a] > load[b]; });
  return order;
}

Status CheckCommon(const query::LoadModel& model, const SystemSpec& system) {
  ROD_RETURN_IF_ERROR(system.Validate());
  if (model.num_operators() == 0) {
    return Status::InvalidArgument("no operators to place");
  }
  return Status::OK();
}

}  // namespace

Result<Placement> RandomPlace(const query::LoadModel& model,
                              const SystemSpec& system, Rng& rng) {
  ROD_RETURN_IF_ERROR(CheckCommon(model, system));
  const size_t m = model.num_operators();
  const size_t n = system.num_nodes();
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::vector<size_t> assignment(m, 0);
  for (size_t pos = 0; pos < m; ++pos) {
    assignment[order[pos]] = pos % n;  // round-robin: equal counts
  }
  return Placement(n, std::move(assignment));
}

Result<Placement> LargestLoadFirstPlace(const query::LoadModel& model,
                                        const SystemSpec& system,
                                        std::span<const double> avg_rates) {
  ROD_RETURN_IF_ERROR(CheckCommon(model, system));
  if (avg_rates.size() != model.num_system_inputs()) {
    return Status::InvalidArgument("avg_rates size mismatch");
  }
  const Vector op_load = model.OperatorLoadsAt(avg_rates);
  const std::vector<size_t> order = SortByLoadDesc(op_load);

  const size_t n = system.num_nodes();
  Vector node_loads(n, 0.0);
  std::vector<size_t> assignment(model.num_operators(), 0);
  for (size_t j : order) {
    const size_t target = LeastLoadedNode(node_loads, system);
    assignment[j] = target;
    node_loads[target] += op_load[j];
  }
  return Placement(n, std::move(assignment));
}

Result<Placement> ConnectedLoadBalancePlace(const query::LoadModel& model,
                                            const query::QueryGraph& graph,
                                            const SystemSpec& system,
                                            std::span<const double> avg_rates) {
  ROD_RETURN_IF_ERROR(CheckCommon(model, system));
  if (graph.num_operators() != model.num_operators()) {
    return Status::InvalidArgument("graph/model operator count mismatch");
  }
  if (avg_rates.size() != model.num_system_inputs()) {
    return Status::InvalidArgument("avg_rates size mismatch");
  }
  const size_t m = model.num_operators();
  const size_t n = system.num_nodes();
  const Vector op_load = model.OperatorLoadsAt(avg_rates);
  const double total_load = Sum(op_load);
  const double total_capacity = system.TotalCapacity();

  // Undirected dataflow adjacency.
  std::vector<std::vector<size_t>> neighbors(m);
  for (query::OperatorId j = 0; j < m; ++j) {
    for (const query::Arc& arc : graph.inputs_of(j)) {
      if (arc.from.kind == query::StreamRef::Kind::kOperator) {
        neighbors[j].push_back(arc.from.index);
        neighbors[arc.from.index].push_back(j);
      }
    }
  }

  const std::vector<size_t> by_load = SortByLoadDesc(op_load);
  std::vector<bool> assigned(m, false);
  std::vector<size_t> assignment(m, 0);
  Vector node_loads(n, 0.0);
  size_t num_assigned = 0;

  while (num_assigned < m) {
    // Step 1: most loaded unassigned operator -> least loaded node.
    size_t seed_op = m;
    for (size_t j : by_load) {
      if (!assigned[j]) {
        seed_op = j;
        break;
      }
    }
    assert(seed_op < m);
    const size_t target = LeastLoadedNode(node_loads, system);
    const double share = total_load * system.capacities[target] / total_capacity;

    auto place = [&](size_t j) {
      assignment[j] = target;
      assigned[j] = true;
      node_loads[target] += op_load[j];
      ++num_assigned;
    };
    place(seed_op);

    // Step 2: grow the connected component onto this node while its load
    // stays below its proportional share of the total. Expand the
    // most-loaded connected candidate first.
    bool grew = true;
    while (grew && node_loads[target] < share && num_assigned < m) {
      grew = false;
      size_t best = m;
      for (size_t j : by_load) {
        if (assigned[j]) continue;
        const bool connected =
            std::any_of(neighbors[j].begin(), neighbors[j].end(),
                        [&](size_t nb) {
                          return assigned[nb] && assignment[nb] == target;
                        });
        if (connected) {
          best = j;
          break;  // by_load is descending: first hit is the most loaded
        }
      }
      if (best < m && node_loads[target] + op_load[best] < share) {
        place(best);
        grew = true;
      }
    }
  }
  return Placement(n, std::move(assignment));
}

Result<Placement> CorrelationBasedPlace(const query::LoadModel& model,
                                        const SystemSpec& system,
                                        const Matrix& rate_series) {
  ROD_RETURN_IF_ERROR(CheckCommon(model, system));
  if (rate_series.cols() != model.num_system_inputs()) {
    return Status::InvalidArgument("rate_series column count mismatch");
  }
  if (rate_series.rows() < 2) {
    return Status::InvalidArgument(
        "rate_series needs at least 2 time steps for correlations");
  }
  const size_t m = model.num_operators();
  const size_t n = system.num_nodes();
  const size_t horizon = rate_series.rows();

  // Per-operator load time series under the rate history.
  std::vector<std::vector<double>> op_series(m,
                                             std::vector<double>(horizon, 0.0));
  Vector mean_load(m, 0.0);
  for (size_t t = 0; t < horizon; ++t) {
    const Vector loads = model.OperatorLoadsAt(rate_series.Row(t));
    for (size_t j = 0; j < m; ++j) {
      op_series[j][t] = loads[j];
      mean_load[j] += loads[j];
    }
  }
  double total_mean_load = 0.0;
  for (size_t j = 0; j < m; ++j) {
    mean_load[j] /= static_cast<double>(horizon);
    total_mean_load += mean_load[j];
  }
  const double total_capacity = system.TotalCapacity();

  std::vector<std::vector<double>> node_series(
      n, std::vector<double>(horizon, 0.0));
  Vector node_mean(n, 0.0);
  std::vector<size_t> assignment(m, 0);

  for (size_t j : SortByLoadDesc(mean_load)) {
    // Balance constraint: nodes at or below their proportional share of
    // the mean load (always non-empty: the global mean cannot exceed every
    // node's share simultaneously).
    std::vector<size_t> candidates;
    for (size_t i = 0; i < n; ++i) {
      const double share =
          total_mean_load * system.capacities[i] / total_capacity;
      if (node_mean[i] <= share + 1e-12) candidates.push_back(i);
    }
    if (candidates.empty()) {
      candidates.resize(n);
      std::iota(candidates.begin(), candidates.end(), 0);
    }
    // Separate correlated operators: prefer the candidate node whose load
    // series is least correlated with this operator's.
    size_t best = candidates[0];
    double best_corr = std::numeric_limits<double>::infinity();
    for (size_t i : candidates) {
      const double corr = PearsonCorrelation(op_series[j], node_series[i]);
      const bool better =
          corr < best_corr - 1e-12 ||
          (std::abs(corr - best_corr) <= 1e-12 &&
           node_mean[i] / system.capacities[i] <
               node_mean[best] / system.capacities[best]);
      if (better) {
        best_corr = corr;
        best = i;
      }
    }
    assignment[j] = best;
    node_mean[best] += mean_load[j];
    for (size_t t = 0; t < horizon; ++t) {
      node_series[best][t] += op_series[j][t];
    }
  }
  return Placement(n, std::move(assignment));
}

}  // namespace rod::place
