#include "placement/plan.h"

#include <cassert>
#include <sstream>

namespace rod::place {

Status SystemSpec::Validate() const {
  if (capacities.empty()) {
    return Status::InvalidArgument("system has no nodes");
  }
  for (double c : capacities) {
    if (c <= 0.0) {
      return Status::InvalidArgument("node capacities must be positive");
    }
  }
  return Status::OK();
}

Placement::Placement(size_t num_nodes, std::vector<size_t> assignment)
    : num_nodes_(num_nodes), assignment_(std::move(assignment)) {
  assert(num_nodes_ > 0);
  for ([[maybe_unused]] size_t node : assignment_) {
    assert(node < num_nodes_ && "operator assigned to nonexistent node");
  }
}

Matrix Placement::AllocationMatrix() const {
  Matrix a(num_nodes_, assignment_.size());
  for (size_t j = 0; j < assignment_.size(); ++j) {
    a(assignment_[j], j) = 1.0;
  }
  return a;
}

Matrix Placement::NodeCoeffs(const Matrix& op_coeffs) const {
  assert(op_coeffs.rows() == assignment_.size());
  Matrix node_coeffs(num_nodes_, op_coeffs.cols());
  for (size_t j = 0; j < assignment_.size(); ++j) {
    auto row = op_coeffs.Row(j);
    auto dst = node_coeffs.Row(assignment_[j]);
    for (size_t k = 0; k < row.size(); ++k) dst[k] += row[k];
  }
  return node_coeffs;
}

std::vector<std::vector<query::OperatorId>> Placement::OperatorsByNode() const {
  std::vector<std::vector<query::OperatorId>> by_node(num_nodes_);
  for (size_t j = 0; j < assignment_.size(); ++j) {
    by_node[assignment_[j]].push_back(j);
  }
  return by_node;
}

std::string SerializePlacement(const Placement& placement) {
  std::ostringstream os;
  os << "nodes=" << placement.num_nodes() << " assignment=";
  const auto& a = placement.assignment();
  for (size_t j = 0; j < a.size(); ++j) {
    if (j > 0) os << ",";
    os << a[j];
  }
  return os.str();
}

Result<Placement> ParsePlacement(const std::string& text) {
  std::istringstream is(text);
  std::string nodes_tok, assign_tok;
  if (!(is >> nodes_tok >> assign_tok) ||
      nodes_tok.rfind("nodes=", 0) != 0 ||
      assign_tok.rfind("assignment=", 0) != 0) {
    return Status::InvalidArgument(
        "expected: nodes=<n> assignment=<a0,a1,...>");
  }
  size_t num_nodes = 0;
  try {
    num_nodes = std::stoul(nodes_tok.substr(6));
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed node count");
  }
  if (num_nodes == 0) {
    return Status::InvalidArgument("node count must be positive");
  }
  std::vector<size_t> assignment;
  std::istringstream list(assign_tok.substr(11));
  std::string part;
  while (std::getline(list, part, ',')) {
    size_t node = 0;
    try {
      size_t consumed = 0;
      node = std::stoul(part, &consumed);
      if (consumed != part.size()) {
        return Status::InvalidArgument("malformed assignment entry '" +
                                       part + "'");
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("malformed assignment entry '" + part +
                                     "'");
    }
    if (node >= num_nodes) {
      return Status::InvalidArgument("assignment references node " +
                                     std::to_string(node) + " of " +
                                     std::to_string(num_nodes));
    }
    assignment.push_back(node);
  }
  if (assignment.empty()) {
    return Status::InvalidArgument("empty assignment");
  }
  return Placement(num_nodes, std::move(assignment));
}

size_t Placement::CountCrossNodeArcs(const query::QueryGraph& graph) const {
  assert(graph.num_operators() == assignment_.size());
  size_t crossing = 0;
  for (query::OperatorId j = 0; j < graph.num_operators(); ++j) {
    for (const query::Arc& arc : graph.inputs_of(j)) {
      if (arc.from.kind == query::StreamRef::Kind::kOperator &&
          assignment_[arc.from.index] != assignment_[j]) {
        ++crossing;
      }
    }
  }
  return crossing;
}

}  // namespace rod::place
