// Copyright (c) the ROD reproduction authors.
//
// Umbrella header: the full public API of the Resilient Operator
// Distribution library. Include individual module headers instead when
// compile time matters.
//
// Layer map (bottom-up):
//   telemetry/ metric registry (counters/gauges/histograms), trace
//              spans, Chrome-trace + metrics-snapshot JSON exporters
//   common/    Status/Result, Rng, Matrix/Vector, statistics
//   query/     operators, query graphs, load models, linearization,
//              workload generators, text format, Graphviz export
//   geometry/  normalized feasible-set geometry, QMC volume (+ randomized
//              error bars), exact 2-D polygons, exact Lasserre volumes,
//              boundary analysis, ASCII plots
//   placement/ ROD (incl. incremental/repair), baselines, optimal search,
//              clustering, dynamic policies, evaluation & explanation
//   trace/     self-similar rate traces (b-model, ON/OFF, sinusoid),
//              Hurst analysis, CSV / timestamp I/O, and the segmented
//              binary arrival store (mmap reader, zero-copy replay)
//   runtime/   tuple-level DES engine, fluid simulator with migration
//              policies, statistics-driven calibration
//   cluster/   multi-process runtime: framed TCP protocol, worker and
//              coordinator processes, plan-diff reassignment

#ifndef ROD_ROD_H_
#define ROD_ROD_H_

#include "cluster/clock_sync.h"
#include "cluster/coordinator.h"
#include "cluster/frame.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "cluster/worker.h"
#include "common/matrix.h"
#include "common/net.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "geometry/ascii_plot.h"
#include "geometry/boundary.h"
#include "geometry/exact_volume.h"
#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"
#include "geometry/polygon2d.h"
#include "geometry/qmc.h"
#include "geometry/sample_cache.h"
#include "geometry/simd_kernel.h"
#include "placement/baselines.h"
#include "placement/clustering.h"
#include "placement/correlation_policy.h"
#include "placement/delta_volume.h"
#include "placement/dynamic.h"
#include "placement/evaluator.h"
#include "placement/optimal.h"
#include "placement/plan.h"
#include "placement/repair.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/graphviz.h"
#include "query/linearize.h"
#include "query/load_model.h"
#include "query/operator.h"
#include "query/parser.h"
#include "query/query_graph.h"
#include "runtime/calibrate.h"
#include "runtime/chaos.h"
#include "runtime/deployment.h"
#include "runtime/engine.h"
#include "runtime/fluid.h"
#include "runtime/metrics.h"
#include "runtime/supervisor.h"
#include "runtime/sweep.h"
#include "runtime/workload_driver.h"
#include "telemetry/json_reader.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_merge.h"
#include "trace/bmodel.h"
#include "trace/hurst.h"
#include "trace/io.h"
#include "trace/onoff.h"
#include "trace/store/format.h"
#include "trace/store/reader.h"
#include "trace/store/replay.h"
#include "trace/store/writer.h"
#include "trace/trace.h"

#endif  // ROD_ROD_H_
