// Copyright (c) the ROD reproduction authors.
//
// A simulated processing node: one CPU serving queued tasks. Capacity
// scales service times (a node with capacity C executes `cost` CPU-seconds
// of work in `cost / C` wall seconds), exactly the paper's model of "the
// available CPU cycles on each machine ... are fixed and known". Two
// Borealis-style scheduling disciplines are provided: a single global FIFO
// and per-operator queues served round-robin (which isolates cheap query
// paths from bursts on expensive ones).
//
// All queues are flat ring-ish buffers (vector + head index with amortized
// compaction) and the round-robin state is indexed by operator id, so a
// node allocates only while a queue grows past its high-water mark —
// steady-state Enqueue/StartService never touch the allocator, and pooled
// nodes reused across runs (SimNode::Reset) start with warm capacity.

#ifndef ROD_RUNTIME_NODE_H_
#define ROD_RUNTIME_NODE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rod::sim {

/// FIFO over a vector: pop_front advances a head index and lazily
/// compacts once the dead prefix dominates, so push/pop are amortized
/// O(1) without deque's per-block allocations, and capacity survives
/// clear() for reuse across simulation runs.
template <typename T>
class FifoBuffer {
 public:
  bool empty() const { return head_ == items_.size(); }
  size_t size() const { return items_.size() - head_; }

  void push_back(const T& v) { items_.push_back(v); }
  T& front() { return items_[head_]; }
  const T& front() const { return items_[head_]; }

  void pop_front() {
    ++head_;
    if (head_ >= 32 && head_ * 2 >= items_.size()) Compact();
  }

  /// Drops all elements, keeping the allocation.
  void clear() {
    items_.clear();
    head_ = 0;
  }

  /// Live elements, front to back.
  const T* begin() const { return items_.data() + head_; }
  const T* end() const { return items_.data() + items_.size(); }

  /// Moves the elements matching `pred` into `out` (in queue order) and
  /// keeps the rest, preserving their order. O(size), in place.
  template <typename Pred>
  void ExtractInto(Pred pred, std::vector<T>& out) {
    size_t w = head_;
    for (size_t r = head_; r < items_.size(); ++r) {
      if (pred(items_[r])) {
        out.push_back(items_[r]);
      } else {
        if (w != r) items_[w] = items_[r];
        ++w;
      }
    }
    items_.resize(w);
    if (head_ == items_.size()) clear();
  }

 private:
  void Compact() {
    items_.erase(items_.begin(),
                 items_.begin() + static_cast<ptrdiff_t>(head_));
    head_ = 0;
  }

  std::vector<T> items_;
  size_t head_ = 0;
};

/// How a node picks the next task to serve.
enum class Scheduling {
  kFifo,        ///< One global arrival-order queue.
  kRoundRobin,  ///< Per-operator queues served cyclically.
};

/// A unit of work queued on a node: process one tuple at one operator, or
/// pay a communication overhead (op == kCommTask).
struct Task {
  /// Sentinel operator id for pure communication (send-side) work.
  static constexpr uint32_t kCommTask = UINT32_MAX;

  uint32_t op = 0;      ///< Target operator, or kCommTask.
  uint32_t port = 0;    ///< Which input of the operator the tuple arrived on.
  double origin = 0.0;  ///< Source timestamp carried for latency accounting.
  double extra_cost = 0.0;  ///< Additional CPU-seconds (receive-side comm).
};

/// Single-server queue with busy-time accounting.
class SimNode {
 public:
  explicit SimNode(double capacity,
                   Scheduling scheduling = Scheduling::kFifo)
      : capacity_(capacity), scheduling_(scheduling) {}

  double capacity() const { return capacity_; }
  Scheduling scheduling() const { return scheduling_; }
  bool busy() const { return busy_; }
  size_t queue_length() const { return queued_; }
  double busy_time() const { return busy_time_; }
  size_t tasks_processed() const { return tasks_processed_; }

  /// Reinitializes the node for a fresh run (pooled reuse): queues are
  /// emptied but keep their storage, counters reset, capacity and
  /// discipline replaced.
  void Reset(double capacity, Scheduling scheduling);

  /// Enqueues a task; the engine starts service separately.
  void Enqueue(const Task& task);

  /// True iff a task is available and the CPU is idle.
  bool CanStart() const { return !busy_ && queued_ > 0; }

  /// Pops the next task per the scheduling discipline and marks the node
  /// busy. Caller computes the service duration (join probe costs depend
  /// on window state) and calls FinishService with it when the completion
  /// event fires.
  Task StartService();

  /// Marks the current task finished after `service_seconds` of wall time.
  void FinishService(double service_seconds);

  /// Cancels the in-flight task without crediting busy time (node crash:
  /// the work is lost, the caller accounts the partial busy interval).
  void AbortService();

  /// Empties every queue and returns the dropped tasks (node crash).
  std::vector<Task> DrainAll();

  /// Removes and returns the queued tasks matching `pred`, preserving the
  /// arrival order of the survivors (operator migration re-homes queued
  /// work onto the operator's new host).
  std::vector<Task> ExtractIf(const std::function<bool(const Task&)>& pred);

  /// The operator with the most queued tasks and its count (0 tasks ->
  /// {Task::kCommTask, 0}); diagnostic for runaway-load aborts.
  std::pair<uint32_t, size_t> HottestOperator() const;

  /// Rescales capacity mid-run (slowdown / recovery). Affects services
  /// started after the call; the in-flight one keeps its old rate.
  void set_capacity(double capacity);

  /// Wall-clock service time of `cpu_cost` CPU-seconds on this node.
  double ServiceTime(double cpu_cost) const { return cpu_cost / capacity_; }

 private:
  /// The round-robin bucket of `op` (kCommTask maps to the comm bucket),
  /// growing the per-operator table on first sight of a new id.
  FifoBuffer<Task>& BucketFor(uint32_t op);

  double capacity_;
  Scheduling scheduling_;
  size_t queued_ = 0;
  bool busy_ = false;
  double busy_time_ = 0.0;
  size_t tasks_processed_ = 0;

  // kFifo state.
  FifoBuffer<Task> fifo_;

  // kRoundRobin state: per-operator queues (indexed by operator id; comm
  // work has its own bucket) plus the cyclic order of buckets that
  // currently have work (each id appears at most once).
  std::vector<FifoBuffer<Task>> per_op_;
  FifoBuffer<Task> comm_;
  FifoBuffer<uint32_t> rr_order_;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_NODE_H_
