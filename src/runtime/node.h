// Copyright (c) the ROD reproduction authors.
//
// A simulated processing node: one CPU serving queued tasks. Capacity
// scales service times (a node with capacity C executes `cost` CPU-seconds
// of work in `cost / C` wall seconds), exactly the paper's model of "the
// available CPU cycles on each machine ... are fixed and known". Two
// Borealis-style scheduling disciplines are provided: a single global FIFO
// and per-operator queues served round-robin (which isolates cheap query
// paths from bursts on expensive ones).
//
// All queues are flat ring-ish buffers (vector + head index with amortized
// compaction) and the round-robin state is indexed by operator id, so a
// node allocates only while a queue grows past its high-water mark —
// steady-state Enqueue/StartService never touch the allocator, and pooled
// nodes reused across runs (SimNode::Reset) start with warm capacity.

#ifndef ROD_RUNTIME_NODE_H_
#define ROD_RUNTIME_NODE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/random.h"

namespace rod::sim {

/// FIFO over a vector: pop_front advances a head index and lazily
/// compacts once the dead prefix dominates, so push/pop are amortized
/// O(1) without deque's per-block allocations, and capacity survives
/// clear() for reuse across simulation runs.
template <typename T>
class FifoBuffer {
 public:
  bool empty() const { return head_ == items_.size(); }
  size_t size() const { return items_.size() - head_; }

  void push_back(const T& v) { items_.push_back(v); }
  T& front() { return items_[head_]; }
  const T& front() const { return items_[head_]; }
  /// The most recently pushed live element (undefined when empty).
  T& back() { return items_.back(); }
  const T& back() const { return items_.back(); }

  void pop_front() {
    ++head_;
    if (head_ >= 32 && head_ * 2 >= items_.size()) Compact();
  }

  /// Drops all elements, keeping the allocation.
  void clear() {
    items_.clear();
    head_ = 0;
  }

  /// Live elements, front to back.
  const T* begin() const { return items_.data() + head_; }
  const T* end() const { return items_.data() + items_.size(); }

  /// The i-th live element (0 = front).
  const T& at(size_t i) const { return items_[head_ + i]; }

  /// Removes and returns the i-th live element, preserving the order of
  /// the rest. O(size - i); overflow eviction only, never the hot path.
  T RemoveAt(size_t i) {
    T v = items_[head_ + i];
    items_.erase(items_.begin() + static_cast<ptrdiff_t>(head_ + i));
    if (head_ == items_.size()) clear();
    return v;
  }

  /// Moves the elements matching `pred` into `out` (in queue order) and
  /// keeps the rest, preserving their order. O(size), in place.
  template <typename Pred>
  void ExtractInto(Pred pred, std::vector<T>& out) {
    size_t w = head_;
    for (size_t r = head_; r < items_.size(); ++r) {
      if (pred(items_[r])) {
        out.push_back(items_[r]);
      } else {
        if (w != r) items_[w] = items_[r];
        ++w;
      }
    }
    items_.resize(w);
    if (head_ == items_.size()) clear();
  }

 private:
  void Compact() {
    items_.erase(items_.begin(),
                 items_.begin() + static_cast<ptrdiff_t>(head_));
    head_ = 0;
  }

  std::vector<T> items_;
  size_t head_ = 0;
};

/// How a node picks the next task to serve.
enum class Scheduling {
  kFifo,        ///< One global arrival-order queue.
  kRoundRobin,  ///< Per-operator queues served cyclically.
};

/// What a bounded ingress queue does with a tuple that would push it past
/// capacity. Communication (kCommTask) tasks are bookkeeping, not data,
/// and are never bounded or evicted.
enum class OverflowPolicy {
  kDropNewest,   ///< Reject the arriving tuple (tail drop).
  kDropOldest,   ///< Evict the longest-queued tuple, admit the arrival.
  kRandom,       ///< Drop uniformly among the queued tuples + the arrival.
  kQosWeighted,  ///< Evict the lowest drop-weight tuple (semantic shed);
                 ///< the arrival is rejected when it weighs least itself.
};

/// Ingress-queue bound of one node. capacity 0 keeps the legacy
/// unbounded queues (the bit-exact default).
struct QueueBound {
  size_t capacity = 0;  ///< Max queued *tuple* tasks (comm tasks exempt).
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
};

/// A unit of work queued on a node: process one tuple at one operator, or
/// pay a communication overhead (op == kCommTask).
struct Task {
  /// Sentinel operator id for pure communication (send-side) work.
  static constexpr uint32_t kCommTask = UINT32_MAX;

  uint32_t op = 0;      ///< Target operator, or kCommTask.
  uint32_t port = 0;    ///< Which input of the operator the tuple arrived on.
  double origin = 0.0;  ///< Source timestamp carried for latency accounting.
  double extra_cost = 0.0;  ///< Additional CPU-seconds (receive-side comm).
};

/// Single-server queue with busy-time accounting.
class SimNode {
 public:
  explicit SimNode(double capacity,
                   Scheduling scheduling = Scheduling::kFifo)
      : capacity_(capacity), scheduling_(scheduling) {}

  double capacity() const { return capacity_; }
  Scheduling scheduling() const { return scheduling_; }
  bool busy() const { return busy_; }
  size_t queue_length() const { return queued_; }
  size_t tuple_queue_length() const { return queued_tuples_; }
  size_t queue_high_water() const { return queue_high_water_; }
  double busy_time() const { return busy_time_; }
  size_t tasks_processed() const { return tasks_processed_; }

  /// Reinitializes the node for a fresh run (pooled reuse): queues are
  /// emptied but keep their storage, counters reset, capacity and
  /// discipline replaced. Clears any queue bound.
  void Reset(double capacity, Scheduling scheduling);

  /// Installs a queue bound (capacity 0 = unbounded) and, for
  /// kQosWeighted, the per-operator drop-weight table (borrowed; must
  /// outlive the run; ops >= `num_weights` weigh 1.0).
  void ConfigureOverflow(const QueueBound& bound,
                         const double* drop_weights = nullptr,
                         size_t num_weights = 0);

  /// Enqueues a task; the engine starts service separately. Inline (as
  /// are StartService / FinishService below): these run a few times per
  /// simulated event and the engine loop is compiled -O3.
  void Enqueue(const Task& task) {
    ++queued_;
    if (task.op != Task::kCommTask) {
      ++queued_tuples_;
      if (queued_tuples_ > queue_high_water_) {
        queue_high_water_ = queued_tuples_;
      }
    }
    if (scheduling_ == Scheduling::kFifo) {
      fifo_.push_back(task);
      return;
    }
    FifoBuffer<Task>& bucket = BucketFor(task.op);
    if (bucket.empty()) rr_order_.push_back(task.op);
    bucket.push_back(task);
  }

  /// What EnqueueBounded did with the arriving task.
  struct EnqueueOutcome {
    bool accepted = true;  ///< The arrival is now queued.
    bool evicted = false;  ///< An already-queued tuple was dropped for it.
    Task victim{};         ///< The evicted tuple (valid iff `evicted`).
  };

  /// Enqueue honouring the configured bound: comm tasks and under-bound
  /// tuples are admitted unconditionally; at capacity the overflow policy
  /// decides who is dropped. `rng` is only drawn from by kRandom, and
  /// only on overflow.
  EnqueueOutcome EnqueueBounded(const Task& task, Rng& rng);

  /// True iff a task is available and the CPU is idle.
  bool CanStart() const { return !busy_ && queued_ > 0; }

  /// Pops the next task per the scheduling discipline and marks the node
  /// busy. Caller computes the service duration (join probe costs depend
  /// on window state) and calls FinishService with it when the completion
  /// event fires.
  Task StartService() {
    assert(CanStart());
    busy_ = true;
    --queued_;
    if (scheduling_ == Scheduling::kFifo) {
      Task task = fifo_.front();
      fifo_.pop_front();
      if (task.op != Task::kCommTask) --queued_tuples_;
      return task;
    }
    return StartServiceRoundRobin();
  }

  /// Marks the current task finished after `service_seconds` of wall time.
  void FinishService(double service_seconds) {
    assert(busy_);
    busy_ = false;
    busy_time_ += service_seconds;
    ++tasks_processed_;
  }

  /// Cancels the in-flight task without crediting busy time (node crash:
  /// the work is lost, the caller accounts the partial busy interval).
  void AbortService();

  /// Empties every queue and returns the dropped tasks (node crash).
  std::vector<Task> DrainAll();

  /// Removes and returns the queued tasks matching `pred`, preserving the
  /// arrival order of the survivors (operator migration re-homes queued
  /// work onto the operator's new host).
  std::vector<Task> ExtractIf(const std::function<bool(const Task&)>& pred);

  /// The operator with the most queued tasks and its count (0 tasks ->
  /// {Task::kCommTask, 0}); diagnostic for runaway-load aborts.
  std::pair<uint32_t, size_t> HottestOperator() const;

  /// Rescales capacity mid-run (slowdown / recovery). Affects services
  /// started after the call; the in-flight one keeps its old rate.
  void set_capacity(double capacity);

  /// Wall-clock service time of `cpu_cost` CPU-seconds on this node.
  double ServiceTime(double cpu_cost) const { return cpu_cost / capacity_; }

 private:
  /// The round-robin bucket of `op` (kCommTask maps to the comm bucket),
  /// growing the per-operator table on first sight of a new id.
  FifoBuffer<Task>& BucketFor(uint32_t op);

  /// Round-robin tail of StartService (cold next to the FIFO path).
  Task StartServiceRoundRobin();

  double DropWeightOf(uint32_t op) const {
    return (drop_weights_ != nullptr && op < num_weights_) ? drop_weights_[op]
                                                           : 1.0;
  }

  /// Removes the oldest queued tuple task (round-robin: the front of the
  /// fullest bucket, lowest operator id on ties — the tuple whose wait is
  /// deepest). Requires queued_tuples_ > 0.
  Task EvictOldestTuple();

  /// Removes the i-th queued tuple task in deterministic enumeration
  /// order (FIFO: queue order; round-robin: ascending operator id, then
  /// bucket order). Requires i < queued_tuples_.
  Task EvictNthTuple(size_t i);

  /// Removes the front tuple of the lowest drop-weight non-empty bucket
  /// (FIFO: the oldest minimum-weight tuple). Requires queued_tuples_ > 0.
  Task EvictCheapestTuple();

  /// Smallest drop weight among the queued tuples (+inf when none).
  double CheapestQueuedWeight() const;

  /// Removes the i-th live element of `bucket`, maintaining queue/rr
  /// bookkeeping. `op` identifies the bucket under round-robin.
  Task RemoveFromBucket(FifoBuffer<Task>& bucket, uint32_t op, size_t i);

  double capacity_;
  Scheduling scheduling_;
  size_t queued_ = 0;
  size_t queued_tuples_ = 0;      ///< Queued tasks with op != kCommTask.
  size_t queue_high_water_ = 0;   ///< Max queued_tuples_ seen this run.
  QueueBound bound_;
  const double* drop_weights_ = nullptr;  ///< Borrowed, kQosWeighted only.
  size_t num_weights_ = 0;
  bool busy_ = false;
  double busy_time_ = 0.0;
  size_t tasks_processed_ = 0;

  // kFifo state.
  FifoBuffer<Task> fifo_;

  // kRoundRobin state: per-operator queues (indexed by operator id; comm
  // work has its own bucket) plus the cyclic order of buckets that
  // currently have work (each id appears at most once).
  std::vector<FifoBuffer<Task>> per_op_;
  FifoBuffer<Task> comm_;
  FifoBuffer<uint32_t> rr_order_;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_NODE_H_
