#include "runtime/node.h"

#include <cassert>

namespace rod::sim {

void SimNode::Enqueue(const Task& task) {
  ++queued_;
  if (scheduling_ == Scheduling::kFifo) {
    fifo_.push_back(task);
    return;
  }
  auto& queue = per_op_[task.op];
  if (queue.empty()) rr_order_.push_back(task.op);
  queue.push_back(task);
}

Task SimNode::StartService() {
  assert(CanStart());
  busy_ = true;
  --queued_;
  if (scheduling_ == Scheduling::kFifo) {
    Task task = fifo_.front();
    fifo_.pop_front();
    return task;
  }
  assert(!rr_order_.empty());
  const uint32_t op = rr_order_.front();
  rr_order_.pop_front();
  auto it = per_op_.find(op);
  assert(it != per_op_.end() && !it->second.empty());
  Task task = it->second.front();
  it->second.pop_front();
  // Re-queue the operator at the back of the rotation if it still has
  // work; otherwise drop its (empty) bucket.
  if (!it->second.empty()) {
    rr_order_.push_back(op);
  } else {
    per_op_.erase(it);
  }
  return task;
}

void SimNode::FinishService(double service_seconds) {
  assert(busy_);
  busy_ = false;
  busy_time_ += service_seconds;
  ++tasks_processed_;
}

void SimNode::AbortService() {
  assert(busy_);
  busy_ = false;
}

std::vector<Task> SimNode::DrainAll() {
  std::vector<Task> dropped;
  dropped.reserve(queued_);
  if (scheduling_ == Scheduling::kFifo) {
    dropped.assign(fifo_.begin(), fifo_.end());
    fifo_.clear();
  } else {
    // Per-operator queues in rotation order so the drop order is the
    // service order the tasks would have seen.
    for (uint32_t op : rr_order_) {
      auto& queue = per_op_[op];
      dropped.insert(dropped.end(), queue.begin(), queue.end());
    }
    per_op_.clear();
    rr_order_.clear();
  }
  queued_ = 0;
  return dropped;
}

std::vector<Task> SimNode::ExtractIf(
    const std::function<bool(const Task&)>& pred) {
  std::vector<Task> extracted;
  if (scheduling_ == Scheduling::kFifo) {
    std::deque<Task> kept;
    for (const Task& t : fifo_) {
      if (pred(t)) {
        extracted.push_back(t);
      } else {
        kept.push_back(t);
      }
    }
    fifo_ = std::move(kept);
    queued_ = fifo_.size();
    return extracted;
  }
  std::deque<uint32_t> order;
  size_t remaining = 0;
  for (uint32_t op : rr_order_) {
    auto it = per_op_.find(op);
    assert(it != per_op_.end());
    std::deque<Task> kept;
    for (const Task& t : it->second) {
      if (pred(t)) {
        extracted.push_back(t);
      } else {
        kept.push_back(t);
      }
    }
    if (kept.empty()) {
      per_op_.erase(it);
    } else {
      remaining += kept.size();
      it->second = std::move(kept);
      order.push_back(op);
    }
  }
  rr_order_ = std::move(order);
  queued_ = remaining;
  return extracted;
}

std::pair<uint32_t, size_t> SimNode::HottestOperator() const {
  std::unordered_map<uint32_t, size_t> counts;
  if (scheduling_ == Scheduling::kFifo) {
    for (const Task& t : fifo_) ++counts[t.op];
  } else {
    for (const auto& [op, queue] : per_op_) counts[op] += queue.size();
  }
  std::pair<uint32_t, size_t> hottest{Task::kCommTask, 0};
  for (const auto& [op, n] : counts) {
    if (n > hottest.second) hottest = {op, n};
  }
  return hottest;
}

void SimNode::set_capacity(double capacity) {
  assert(capacity > 0.0);
  capacity_ = capacity;
}

}  // namespace rod::sim
