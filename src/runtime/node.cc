#include "runtime/node.h"

#include <cassert>

namespace rod::sim {

void SimNode::Enqueue(const Task& task) {
  ++queued_;
  if (scheduling_ == Scheduling::kFifo) {
    fifo_.push_back(task);
    return;
  }
  auto& queue = per_op_[task.op];
  if (queue.empty()) rr_order_.push_back(task.op);
  queue.push_back(task);
}

Task SimNode::StartService() {
  assert(CanStart());
  busy_ = true;
  --queued_;
  if (scheduling_ == Scheduling::kFifo) {
    Task task = fifo_.front();
    fifo_.pop_front();
    return task;
  }
  assert(!rr_order_.empty());
  const uint32_t op = rr_order_.front();
  rr_order_.pop_front();
  auto it = per_op_.find(op);
  assert(it != per_op_.end() && !it->second.empty());
  Task task = it->second.front();
  it->second.pop_front();
  // Re-queue the operator at the back of the rotation if it still has
  // work; otherwise drop its (empty) bucket.
  if (!it->second.empty()) {
    rr_order_.push_back(op);
  } else {
    per_op_.erase(it);
  }
  return task;
}

void SimNode::FinishService(double service_seconds) {
  assert(busy_);
  busy_ = false;
  busy_time_ += service_seconds;
  ++tasks_processed_;
}

}  // namespace rod::sim
