#include "runtime/node.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <unordered_map>

namespace rod::sim {

void SimNode::Reset(double capacity, Scheduling scheduling) {
  assert(capacity > 0.0);
  capacity_ = capacity;
  scheduling_ = scheduling;
  queued_ = 0;
  queued_tuples_ = 0;
  queue_high_water_ = 0;
  bound_ = QueueBound{};
  drop_weights_ = nullptr;
  num_weights_ = 0;
  busy_ = false;
  busy_time_ = 0.0;
  tasks_processed_ = 0;
  fifo_.clear();
  for (auto& bucket : per_op_) bucket.clear();
  comm_.clear();
  rr_order_.clear();
}

void SimNode::ConfigureOverflow(const QueueBound& bound,
                                const double* drop_weights,
                                size_t num_weights) {
  bound_ = bound;
  drop_weights_ = drop_weights;
  num_weights_ = num_weights;
}

FifoBuffer<Task>& SimNode::BucketFor(uint32_t op) {
  if (op == Task::kCommTask) return comm_;
  if (op >= per_op_.size()) per_op_.resize(op + 1);
  return per_op_[op];
}

namespace {

void RemoveFromOrder(FifoBuffer<uint32_t>& order, uint32_t op) {
  std::vector<uint32_t> dropped;
  order.ExtractInto([op](uint32_t o) { return o == op; }, dropped);
}

}  // namespace

Task SimNode::RemoveFromBucket(FifoBuffer<Task>& bucket, uint32_t op,
                               size_t i) {
  Task victim = bucket.RemoveAt(i);
  assert(victim.op != Task::kCommTask);
  if (scheduling_ == Scheduling::kRoundRobin && bucket.empty()) {
    RemoveFromOrder(rr_order_, op);
  }
  --queued_;
  --queued_tuples_;
  return victim;
}

Task SimNode::EvictOldestTuple() {
  assert(queued_tuples_ > 0);
  if (scheduling_ == Scheduling::kFifo) {
    for (size_t i = 0; i < fifo_.size(); ++i) {
      if (fifo_.at(i).op != Task::kCommTask) {
        return RemoveFromBucket(fifo_, Task::kCommTask, i);
      }
    }
    assert(false && "queued_tuples_ > 0 but no tuple in the FIFO");
    return Task{};
  }
  // Round-robin has no single global age order; drop the head of the
  // fullest bucket (lowest operator id on ties) — the queue with the
  // deepest backlog sheds first, deterministically.
  size_t best = per_op_.size();
  for (size_t op = 0; op < per_op_.size(); ++op) {
    if (per_op_[op].empty()) continue;
    if (best == per_op_.size() || per_op_[op].size() > per_op_[best].size()) {
      best = op;
    }
  }
  assert(best < per_op_.size());
  return RemoveFromBucket(per_op_[best], static_cast<uint32_t>(best), 0);
}

Task SimNode::EvictNthTuple(size_t i) {
  assert(i < queued_tuples_);
  if (scheduling_ == Scheduling::kFifo) {
    for (size_t k = 0; k < fifo_.size(); ++k) {
      if (fifo_.at(k).op == Task::kCommTask) continue;
      if (i == 0) return RemoveFromBucket(fifo_, Task::kCommTask, k);
      --i;
    }
    assert(false && "tuple index out of range");
    return Task{};
  }
  for (size_t op = 0; op < per_op_.size(); ++op) {
    FifoBuffer<Task>& bucket = per_op_[op];
    if (i < bucket.size()) {
      return RemoveFromBucket(bucket, static_cast<uint32_t>(op), i);
    }
    i -= bucket.size();
  }
  assert(false && "tuple index out of range");
  return Task{};
}

double SimNode::CheapestQueuedWeight() const {
  double min_w = std::numeric_limits<double>::infinity();
  if (scheduling_ == Scheduling::kFifo) {
    for (const Task& t : fifo_) {
      if (t.op != Task::kCommTask) min_w = std::min(min_w, DropWeightOf(t.op));
    }
    return min_w;
  }
  for (size_t op = 0; op < per_op_.size(); ++op) {
    if (!per_op_[op].empty()) {
      min_w = std::min(min_w, DropWeightOf(static_cast<uint32_t>(op)));
    }
  }
  return min_w;
}

Task SimNode::EvictCheapestTuple() {
  assert(queued_tuples_ > 0);
  if (scheduling_ == Scheduling::kFifo) {
    size_t best = fifo_.size();
    double best_w = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < fifo_.size(); ++i) {
      const Task& t = fifo_.at(i);
      if (t.op == Task::kCommTask) continue;
      const double w = DropWeightOf(t.op);
      if (w < best_w) {  // strict: ties keep the first (oldest) candidate
        best_w = w;
        best = i;
      }
    }
    assert(best < fifo_.size());
    return RemoveFromBucket(fifo_, Task::kCommTask, best);
  }
  size_t best = per_op_.size();
  double best_w = std::numeric_limits<double>::infinity();
  for (size_t op = 0; op < per_op_.size(); ++op) {
    if (per_op_[op].empty()) continue;
    const double w = DropWeightOf(static_cast<uint32_t>(op));
    if (w < best_w) {
      best_w = w;
      best = op;
    }
  }
  assert(best < per_op_.size());
  return RemoveFromBucket(per_op_[best], static_cast<uint32_t>(best), 0);
}

SimNode::EnqueueOutcome SimNode::EnqueueBounded(const Task& task, Rng& rng) {
  if (task.op == Task::kCommTask || bound_.capacity == 0 ||
      queued_tuples_ < bound_.capacity) {
    Enqueue(task);
    return EnqueueOutcome{};
  }
  EnqueueOutcome out;
  switch (bound_.policy) {
    case OverflowPolicy::kDropNewest:
      out.accepted = false;
      return out;
    case OverflowPolicy::kDropOldest:
      out.victim = EvictOldestTuple();
      out.evicted = true;
      break;
    case OverflowPolicy::kRandom: {
      // Uniform over the queued tuples plus the arrival itself, so every
      // candidate is equally likely to be the drop.
      const size_t pick = rng.NextIndex(queued_tuples_ + 1);
      if (pick == queued_tuples_) {
        out.accepted = false;
        return out;
      }
      out.victim = EvictNthTuple(pick);
      out.evicted = true;
      break;
    }
    case OverflowPolicy::kQosWeighted: {
      // Semantic shed: the least valuable tuple goes. Ties favour the
      // queued tuples (reject the arrival), which keeps the policy
      // work-conserving for uniform weights.
      if (DropWeightOf(task.op) <= CheapestQueuedWeight()) {
        out.accepted = false;
        return out;
      }
      out.victim = EvictCheapestTuple();
      out.evicted = true;
      break;
    }
  }
  Enqueue(task);
  return out;
}

Task SimNode::StartServiceRoundRobin() {
  assert(!rr_order_.empty());
  const uint32_t op = rr_order_.front();
  rr_order_.pop_front();
  FifoBuffer<Task>& bucket = BucketFor(op);
  assert(!bucket.empty());
  Task task = bucket.front();
  bucket.pop_front();
  if (task.op != Task::kCommTask) --queued_tuples_;
  // Re-queue the operator at the back of the rotation if it still has
  // work (empty buckets simply leave the rotation, keeping storage).
  if (!bucket.empty()) rr_order_.push_back(op);
  return task;
}

void SimNode::AbortService() {
  assert(busy_);
  busy_ = false;
}

std::vector<Task> SimNode::DrainAll() {
  std::vector<Task> dropped;
  dropped.reserve(queued_);
  if (scheduling_ == Scheduling::kFifo) {
    dropped.assign(fifo_.begin(), fifo_.end());
    fifo_.clear();
  } else {
    // Per-operator queues in rotation order so the drop order is the
    // service order the tasks would have seen.
    for (uint32_t op : rr_order_) {
      FifoBuffer<Task>& bucket = BucketFor(op);
      dropped.insert(dropped.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    rr_order_.clear();
  }
  queued_ = 0;
  queued_tuples_ = 0;
  return dropped;
}

std::vector<Task> SimNode::ExtractIf(
    const std::function<bool(const Task&)>& pred) {
  std::vector<Task> extracted;
  if (scheduling_ == Scheduling::kFifo) {
    fifo_.ExtractInto(pred, extracted);
    queued_ = fifo_.size();
    queued_tuples_ = 0;
    for (const Task& t : fifo_) {
      if (t.op != Task::kCommTask) ++queued_tuples_;
    }
    return extracted;
  }
  FifoBuffer<uint32_t> order;
  size_t remaining = 0;
  size_t remaining_tuples = 0;
  for (uint32_t op : rr_order_) {
    FifoBuffer<Task>& bucket = BucketFor(op);
    bucket.ExtractInto(pred, extracted);
    if (!bucket.empty()) {
      remaining += bucket.size();
      if (op != Task::kCommTask) remaining_tuples += bucket.size();
      order.push_back(op);
    }
  }
  rr_order_ = std::move(order);
  queued_ = remaining;
  queued_tuples_ = remaining_tuples;
  return extracted;
}

std::pair<uint32_t, size_t> SimNode::HottestOperator() const {
  std::pair<uint32_t, size_t> hottest{Task::kCommTask, 0};
  if (scheduling_ == Scheduling::kFifo) {
    std::unordered_map<uint32_t, size_t> counts;
    for (const Task& t : fifo_) ++counts[t.op];
    for (const auto& [op, n] : counts) {
      if (n > hottest.second) hottest = {op, n};
    }
    return hottest;
  }
  for (uint32_t op = 0; op < per_op_.size(); ++op) {
    if (per_op_[op].size() > hottest.second) hottest = {op, per_op_[op].size()};
  }
  if (comm_.size() > hottest.second) hottest = {Task::kCommTask, comm_.size()};
  return hottest;
}

void SimNode::set_capacity(double capacity) {
  assert(capacity > 0.0);
  capacity_ = capacity;
}

}  // namespace rod::sim
