#include "runtime/node.h"

#include <cassert>
#include <unordered_map>

namespace rod::sim {

void SimNode::Reset(double capacity, Scheduling scheduling) {
  assert(capacity > 0.0);
  capacity_ = capacity;
  scheduling_ = scheduling;
  queued_ = 0;
  busy_ = false;
  busy_time_ = 0.0;
  tasks_processed_ = 0;
  fifo_.clear();
  for (auto& bucket : per_op_) bucket.clear();
  comm_.clear();
  rr_order_.clear();
}

FifoBuffer<Task>& SimNode::BucketFor(uint32_t op) {
  if (op == Task::kCommTask) return comm_;
  if (op >= per_op_.size()) per_op_.resize(op + 1);
  return per_op_[op];
}

void SimNode::Enqueue(const Task& task) {
  ++queued_;
  if (scheduling_ == Scheduling::kFifo) {
    fifo_.push_back(task);
    return;
  }
  FifoBuffer<Task>& bucket = BucketFor(task.op);
  if (bucket.empty()) rr_order_.push_back(task.op);
  bucket.push_back(task);
}

Task SimNode::StartService() {
  assert(CanStart());
  busy_ = true;
  --queued_;
  if (scheduling_ == Scheduling::kFifo) {
    Task task = fifo_.front();
    fifo_.pop_front();
    return task;
  }
  assert(!rr_order_.empty());
  const uint32_t op = rr_order_.front();
  rr_order_.pop_front();
  FifoBuffer<Task>& bucket = BucketFor(op);
  assert(!bucket.empty());
  Task task = bucket.front();
  bucket.pop_front();
  // Re-queue the operator at the back of the rotation if it still has
  // work (empty buckets simply leave the rotation, keeping storage).
  if (!bucket.empty()) rr_order_.push_back(op);
  return task;
}

void SimNode::FinishService(double service_seconds) {
  assert(busy_);
  busy_ = false;
  busy_time_ += service_seconds;
  ++tasks_processed_;
}

void SimNode::AbortService() {
  assert(busy_);
  busy_ = false;
}

std::vector<Task> SimNode::DrainAll() {
  std::vector<Task> dropped;
  dropped.reserve(queued_);
  if (scheduling_ == Scheduling::kFifo) {
    dropped.assign(fifo_.begin(), fifo_.end());
    fifo_.clear();
  } else {
    // Per-operator queues in rotation order so the drop order is the
    // service order the tasks would have seen.
    for (uint32_t op : rr_order_) {
      FifoBuffer<Task>& bucket = BucketFor(op);
      dropped.insert(dropped.end(), bucket.begin(), bucket.end());
      bucket.clear();
    }
    rr_order_.clear();
  }
  queued_ = 0;
  return dropped;
}

std::vector<Task> SimNode::ExtractIf(
    const std::function<bool(const Task&)>& pred) {
  std::vector<Task> extracted;
  if (scheduling_ == Scheduling::kFifo) {
    fifo_.ExtractInto(pred, extracted);
    queued_ = fifo_.size();
    return extracted;
  }
  FifoBuffer<uint32_t> order;
  size_t remaining = 0;
  for (uint32_t op : rr_order_) {
    FifoBuffer<Task>& bucket = BucketFor(op);
    bucket.ExtractInto(pred, extracted);
    if (!bucket.empty()) {
      remaining += bucket.size();
      order.push_back(op);
    }
  }
  rr_order_ = std::move(order);
  queued_ = remaining;
  return extracted;
}

std::pair<uint32_t, size_t> SimNode::HottestOperator() const {
  std::pair<uint32_t, size_t> hottest{Task::kCommTask, 0};
  if (scheduling_ == Scheduling::kFifo) {
    std::unordered_map<uint32_t, size_t> counts;
    for (const Task& t : fifo_) ++counts[t.op];
    for (const auto& [op, n] : counts) {
      if (n > hottest.second) hottest = {op, n};
    }
    return hottest;
  }
  for (uint32_t op = 0; op < per_op_.size(); ++op) {
    if (per_op_[op].size() > hottest.second) hottest = {op, per_op_[op].size()};
  }
  if (comm_.size() > hottest.second) hottest = {Task::kCommTask, comm_.size()};
  return hottest;
}

void SimNode::set_capacity(double capacity) {
  assert(capacity > 0.0);
  capacity_ = capacity;
}

}  // namespace rod::sim
