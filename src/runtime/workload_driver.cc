#include "runtime/workload_driver.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace rod::sim {

ArrivalGenerator::ArrivalGenerator(trace::RateTrace trace, bool poisson,
                                   Rng* rng)
    : trace_(std::move(trace)), poisson_(poisson), rng_(rng) {
  assert(rng_ != nullptr);
  assert(trace_.window_sec > 0.0);
}

double ArrivalGenerator::NextArrival(double now) {
  // Walk windows from `now`, drawing the next gap at each window's rate;
  // if the gap overruns the window, restart the draw from the next window
  // (memorylessness makes this exact for Poisson; for deterministic
  // spacing it yields evenly spaced arrivals within each window).
  double t = std::max(now, 0.0);
  const double horizon = trace_.duration();
  while (t < horizon) {
    const size_t w = static_cast<size_t>(t / trace_.window_sec);
    const double w_end = static_cast<double>(w + 1) * trace_.window_sec;
    const double rate = trace_.rates[w] * rate_multiplier_;
    if (rate <= 0.0) {
      t = w_end;
      continue;
    }
    const double gap = poisson_ ? rng_->Exponential(rate) : 1.0 / rate;
    if (t + gap < w_end) return t + gap;
    t = w_end;
  }
  return std::numeric_limits<double>::infinity();
}

std::vector<std::vector<double>> MaterializeArrivals(
    const std::vector<trace::RateTrace>& inputs, bool poisson, uint64_t seed,
    double duration) {
  // Mirror the engine's setup exactly: fork one RNG per stream first
  // (all forks), then build the generators, so each stream's random
  // stream is identical to the one the engine would hand it.
  Rng master(seed);
  std::vector<Rng> rngs;
  rngs.reserve(inputs.size());
  for (size_t k = 0; k < inputs.size(); ++k) rngs.push_back(master.Fork());

  std::vector<std::vector<double>> out(inputs.size());
  for (size_t k = 0; k < inputs.size(); ++k) {
    ArrivalGenerator gen(inputs[k], poisson, &rngs[k]);
    // The engine seeds at 0 and then redraws from each arrival's own
    // instant; replicate that call pattern, cutting at the horizon the
    // same way the event loop does (arrivals past `duration` are never
    // scheduled).
    for (double t = gen.NextArrival(0.0);
         std::isfinite(t) && t <= duration; t = gen.NextArrival(t)) {
      out[k].push_back(t);
    }
  }
  return out;
}

}  // namespace rod::sim
