#include "runtime/workload_driver.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace rod::sim {

ArrivalGenerator::ArrivalGenerator(trace::RateTrace trace, bool poisson,
                                   Rng* rng)
    : trace_(std::move(trace)), poisson_(poisson), rng_(rng) {
  assert(rng_ != nullptr);
  assert(trace_.window_sec > 0.0);
}

double ArrivalGenerator::NextArrival(double now) {
  // Walk windows from `now`, drawing the next gap at each window's rate;
  // if the gap overruns the window, restart the draw from the next window
  // (memorylessness makes this exact for Poisson; for deterministic
  // spacing it yields evenly spaced arrivals within each window).
  double t = std::max(now, 0.0);
  const double horizon = trace_.duration();
  while (t < horizon) {
    const size_t w = static_cast<size_t>(t / trace_.window_sec);
    const double w_end = static_cast<double>(w + 1) * trace_.window_sec;
    const double rate = trace_.rates[w] * rate_multiplier_;
    if (rate <= 0.0) {
      t = w_end;
      continue;
    }
    const double gap = poisson_ ? rng_->Exponential(rate) : 1.0 / rate;
    if (t + gap < w_end) return t + gap;
    t = w_end;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace rod::sim
