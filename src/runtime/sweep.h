// Copyright (c) the ROD reproduction authors.
//
// Parallel, deterministic simulation sweeps: run N independent engine
// configurations (full tuple-level runs or feasibility probes) across the
// shared ThreadPool and return results in input order. Each case is an
// isolated simulation — its own seed, its own thread-local engine
// workspace — and case-to-slot assignment is fixed by index, so a sweep's
// results are bit-identical for every `SweepOptions::num_threads`,
// including to a plain sequential loop over Simulate(). This is the same
// determinism contract PR 2's ParallelFor established for the volume
// kernel, applied to the engine side of the paper's evaluation (§7's
// figures are exactly such sweeps).

#ifndef ROD_RUNTIME_SWEEP_H_
#define ROD_RUNTIME_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "placement/plan.h"
#include "query/query_graph.h"
#include "runtime/engine.h"
#include "trace/trace.h"

namespace rod::sim {

/// How a sweep is spread over the shared thread pool.
struct SweepOptions {
  /// Maximum cases in flight (the calling thread participates). 1 runs
  /// sequentially inline; 0 uses the hardware concurrency. Results do
  /// not depend on this value.
  size_t num_threads = 0;

  /// Cases per scheduling chunk. 1 (the default) balances best; raise it
  /// only when cases are very short.
  size_t grain = 1;

  /// Telemetry sink for sweep-level series ("sweep" spans per case/probe,
  /// `sweep.cases` / `sweep.probes` counters). Not owned; null disables.
  /// Independent of any per-case SimulationOptions::telemetry.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Resolves SweepOptions::num_threads (0 -> hardware concurrency).
size_t ResolveSweepThreads(size_t num_threads);

/// `n` decorrelated seeds derived from `base` by constant mixing
/// (splitmix64 finalizer): seed i is a pure function of (base, i), so a
/// sweep over forked seeds is reproducible and order-independent.
std::vector<uint64_t> ForkSeeds(uint64_t base, size_t n);

/// One simulation configuration of a sweep. Exactly one of
/// {`deployment`} or {`graph`, `placement`, `system`} must be set;
/// pointed-to objects are borrowed and must outlive the sweep. A stateful
/// `options.recovery` agent must be a distinct instance per case (cases
/// run concurrently).
struct SimulationCase {
  const Deployment* deployment = nullptr;
  const query::QueryGraph* graph = nullptr;
  const place::Placement* placement = nullptr;
  const place::SystemSpec* system = nullptr;
  const std::vector<trace::RateTrace>* inputs = nullptr;
  SimulationOptions options;
};

/// Runs every case and returns per-case results in input order.
std::vector<Result<SimulationResult>> SimulateSweep(
    std::span<const SimulationCase> cases, const SweepOptions& sweep = {});

/// Feasibility probes of one placement at many rate points (each point is
/// one rate per input stream), compiled once and simulated per point.
/// Results are in point order.
std::vector<Result<bool>> ProbeFeasibleSweep(
    const query::QueryGraph& graph, const place::Placement& placement,
    const place::SystemSpec& system, std::span<const Vector> rate_points,
    const SimulationOptions& options = {}, const SweepOptions& sweep = {});

/// Simulated feasibility boundary search (see SimulatedBoundaryScale).
struct BoundarySearchOptions {
  /// Initial bracket [lo, hi] of the scale. `hi` 0 auto-brackets by
  /// doubling from max(lo, 1).
  double lo = 0.0;
  double hi = 0.0;

  /// Stop once (hi - lo) <= rel_tol * hi.
  double rel_tol = 0.02;

  /// Feasibility probes per refinement round. Fixed by the caller, never
  /// derived from the thread count, so the probed grid — and therefore
  /// the answer — is identical for every SweepOptions::num_threads.
  size_t batch = 8;

  size_t max_rounds = 32;
};

/// The simulated counterpart of the paper's analytic boundary scale
/// (geom::BoundaryScale, PlacementEvaluator::BoundaryScaleAlong): the
/// largest scale s such that the tuple-level engine stays un-saturated at
/// rates `s * direction`. Each refinement round probes a fixed grid of
/// `batch` interior points in parallel and keeps the longest feasible
/// prefix, so simulation noise cannot make the search thread-dependent.
Result<double> SimulatedBoundaryScale(const query::QueryGraph& graph,
                                      const place::Placement& placement,
                                      const place::SystemSpec& system,
                                      const Vector& direction,
                                      const SimulationOptions& options = {},
                                      const BoundarySearchOptions& search = {},
                                      const SweepOptions& sweep = {});

/// Deterministic ordered parallel map: `out[i] = fn(i)` for i in [0, n),
/// evaluated across the shared pool. `fn` must be safe to call
/// concurrently and `fn(i)` must depend only on `i` (not on shared
/// mutable state), which makes the output independent of the thread
/// count. The generic building block for benches whose trials are
/// independent evaluations rather than full simulations.
template <typename Fn>
auto SweepMap(size_t n, Fn&& fn, const SweepOptions& sweep = {})
    -> std::vector<std::decay_t<decltype(fn(size_t{0}))>> {
  using T = std::decay_t<decltype(fn(size_t{0}))>;
  std::vector<T> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.emplace_back();  // default slots
  ParallelFor(ResolveSweepThreads(sweep.num_threads), n,
              sweep.grain == 0 ? 1 : sweep.grain,
              [&](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) out[i] = fn(i);
              });
  return out;
}

}  // namespace rod::sim

#endif  // ROD_RUNTIME_SWEEP_H_
