#include "runtime/fluid.h"

#include <algorithm>
#include <cmath>

namespace rod::sim {

Result<FluidResult> FluidSimulate(const query::LoadModel& model,
                                  const place::Placement& initial,
                                  const place::SystemSpec& system,
                                  const std::vector<trace::RateTrace>& inputs,
                                  const FluidOptions& options,
                                  MigrationPolicy* policy) {
  ROD_RETURN_IF_ERROR(system.Validate());
  if (initial.num_operators() != model.num_operators()) {
    return Status::InvalidArgument("placement/model operator count mismatch");
  }
  if (initial.num_nodes() != system.num_nodes()) {
    return Status::InvalidArgument("placement/system node count mismatch");
  }
  if (inputs.size() != model.num_system_inputs()) {
    return Status::InvalidArgument("one rate trace per input stream required");
  }
  if (options.epoch_sec <= 0.0) {
    return Status::InvalidArgument("epoch_sec must be positive");
  }
  if (options.migration_latency < 0.0 || options.migration_cpu_cost < 0.0) {
    return Status::InvalidArgument("migration costs must be non-negative");
  }

  const size_t n = system.num_nodes();
  const size_t m = model.num_operators();
  double horizon = 0.0;
  for (const auto& t : inputs) horizon = std::max(horizon, t.duration());
  const size_t epochs = static_cast<size_t>(
      std::ceil(horizon / options.epoch_sec - 1e-9));
  if (epochs == 0) {
    return Status::InvalidArgument("input traces are empty");
  }

  std::vector<size_t> assignment = initial.assignment();
  Vector backlog(n, 0.0);  // CPU-seconds of unserved work per node
  if (!options.initial_backlog.empty()) {
    if (options.initial_backlog.size() != n) {
      return Status::InvalidArgument("initial_backlog size mismatch");
    }
    for (double b : options.initial_backlog) {
      if (b < 0.0) {
        return Status::InvalidArgument("initial_backlog must be >= 0");
      }
    }
    backlog = options.initial_backlog;
  }
  Vector move_overhead(n, 0.0);  // CPU-seconds of migration work this epoch

  FluidResult result;
  result.epochs = epochs;

  Vector rates(inputs.size());
  for (size_t e = 0; e < epochs; ++e) {
    const double t_mid =
        (static_cast<double>(e) + 0.5) * options.epoch_sec;
    for (size_t k = 0; k < inputs.size(); ++k) {
      rates[k] = inputs[k].RateAt(t_mid);
    }
    const Vector op_loads = model.OperatorLoadsAt(rates);

    // Demand per node: operator work plus this epoch's migration overhead
    // amortized over the epoch.
    Vector node_loads(n, 0.0);
    for (size_t j = 0; j < m; ++j) node_loads[assignment[j]] += op_loads[j];
    Vector demand = node_loads;
    for (size_t i = 0; i < n; ++i) {
      demand[i] += move_overhead[i] / options.epoch_sec;
      move_overhead[i] = 0.0;
    }

    // Fluid queue update: unserved work accumulates, spare capacity drains
    // backlog.
    double epoch_max_util = 0.0;
    double epoch_max_backlog_sec = 0.0;
    bool overloaded = false;
    for (size_t i = 0; i < n; ++i) {
      const double cap = system.capacities[i];
      const double util = demand[i] / cap;
      epoch_max_util = std::max(epoch_max_util, util);
      overloaded |= util >= options.overload_threshold - 1e-12;
      backlog[i] = std::max(
          0.0, backlog[i] + (demand[i] - cap) * options.epoch_sec);
      epoch_max_backlog_sec = std::max(epoch_max_backlog_sec, backlog[i] / cap);
    }
    result.max_utilization = std::max(result.max_utilization, epoch_max_util);
    result.mean_utilization += epoch_max_util;
    result.overloaded_epochs += overloaded ? 1 : 0;
    result.max_backlog_sec =
        std::max(result.max_backlog_sec, epoch_max_backlog_sec);
    result.mean_backlog_sec += epoch_max_backlog_sec;

    // Consult the policy at the epoch boundary.
    if (policy != nullptr && e + 1 < epochs) {
      MigrationPolicy::EpochView view;
      view.model = &model;
      view.system = &system;
      view.assignment = &assignment;
      view.op_loads = &op_loads;
      view.node_loads = &node_loads;
      view.backlog = &backlog;
      view.epoch_index = e;
      for (const Migration& mv : policy->Decide(view)) {
        if (mv.op >= m || mv.to_node >= n) continue;
        const size_t from = assignment[mv.op];
        if (from == mv.to_node) continue;
        assignment[mv.op] = mv.to_node;
        ++result.migrations;
        // Marshalling overhead on both endpoints next epoch; the stalled
        // operator's deferred work lands on the destination's backlog.
        move_overhead[from] += options.migration_cpu_cost;
        move_overhead[mv.to_node] += options.migration_cpu_cost;
        backlog[mv.to_node] += op_loads[mv.op] * options.migration_latency;
      }
    }
  }

  result.mean_utilization /= static_cast<double>(epochs);
  result.mean_backlog_sec /= static_cast<double>(epochs);
  double final_backlog = 0.0;
  for (size_t i = 0; i < n; ++i) {
    final_backlog = std::max(final_backlog, backlog[i] / system.capacities[i]);
  }
  result.final_backlog_sec = final_backlog;
  result.final_assignment = std::move(assignment);
  result.final_backlog = std::move(backlog);
  return result;
}

}  // namespace rod::sim
