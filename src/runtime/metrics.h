// Copyright (c) the ROD reproduction authors.
//
// Runtime measurement: end-to-end tuple latencies, per-node utilization
// (overall and per fixed window — the paper's Borealis feasibility probe
// deems a rate point feasible "if none of the nodes experience 100%
// utilization"), and saturation indicators.

#ifndef ROD_RUNTIME_METRICS_H_
#define ROD_RUNTIME_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/matrix.h"

namespace rod::sim {

/// Collects measurements during one simulation run.
class MetricsCollector {
 public:
  /// `num_nodes` nodes, per-window utilization buckets of `window_sec`
  /// seconds over `duration` seconds of virtual time.
  MetricsCollector(size_t num_nodes, double window_sec, double duration);

  /// Records one output of sink operator `sink_op` with end-to-end latency
  /// `latency` seconds, completing at virtual time `completion_time` (the
  /// timestamp lets incident reports split latencies into pre-failure /
  /// recovery / post-recovery phases).
  void RecordOutput(uint32_t sink_op, double latency,
                    double completion_time = 0.0);

  /// Records one external input tuple.
  void RecordInput() { ++inputs_; }

  /// Accounts a service interval [start, end) on `node`, splitting the
  /// busy time across utilization windows.
  void RecordService(size_t node, double start, double end);

  size_t inputs() const { return inputs_; }
  size_t outputs() const { return latencies_.size(); }
  const std::vector<double>& latencies() const { return latencies_; }

  /// Completion time of each latency sample, parallel to latencies().
  const std::vector<double>& output_times() const { return output_times_; }

  /// Per-sink latency samples, keyed by sink operator id.
  const std::map<uint32_t, std::vector<double>>& sink_latencies() const {
    return sink_latencies_;
  }

  /// Busy fraction of `node` over the whole run.
  double NodeUtilization(size_t node, double capacity_duration) const;

  /// Per-(window, node) busy fraction matrix (rows = windows).
  const Matrix& window_busy() const { return window_busy_; }
  double window_sec() const { return window_sec_; }

  /// Number of windows where some node's busy fraction reached
  /// `threshold` (default: effectively pegged).
  size_t OverloadedWindows(double threshold = 0.99) const;

  /// Largest per-node busy fraction within window `w`.
  double WindowMaxBusyFraction(size_t w) const;

  size_t num_windows() const { return window_busy_.rows(); }

 private:
  size_t inputs_ = 0;
  std::vector<double> latencies_;
  std::vector<double> output_times_;
  std::map<uint32_t, std::vector<double>> sink_latencies_;
  Vector node_busy_;      ///< total busy seconds per node
  Matrix window_busy_;    ///< busy seconds per (window, node)
  double window_sec_;
  double duration_;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_METRICS_H_
