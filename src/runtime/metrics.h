// Copyright (c) the ROD reproduction authors.
//
// Runtime measurement: end-to-end tuple latencies, per-node utilization
// (overall and per fixed window — the paper's Borealis feasibility probe
// deems a rate point feasible "if none of the nodes experience 100%
// utilization"), and saturation indicators.
//
// Latency collection has two modes. The default (reservoir = 0) keeps
// every sample, so percentiles are exact and the raw (latency, time)
// series is available — what tests and incident analysis want. With a
// positive reservoir size, only exact mean/max (Welford) plus a
// fixed-size deterministic reservoir are kept, making RecordOutput O(1)
// in memory regardless of output volume — what the engine hot path wants.

#ifndef ROD_RUNTIME_METRICS_H_
#define ROD_RUNTIME_METRICS_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/matrix.h"
#include "common/stats.h"

namespace rod::sim {

/// How latency samples are retained (see file comment).
struct LatencyStatsOptions {
  /// 0: store every sample (exact percentiles). > 0: keep a
  /// deterministic uniform reservoir of this many samples per series.
  size_t reservoir = 0;

  /// Seed of the reservoir-replacement stream; ignored in exact mode.
  /// The retained set is a pure function of (reservoir, seed, sample
  /// order), so identical runs summarize identically.
  uint64_t seed = 0;
};

/// Latency distribution summary of one output series.
struct LatencySummary {
  size_t count = 0;  ///< Outputs observed (not the retained sample size).
  double mean = 0.0;  ///< Exact (streaming) regardless of mode.
  double max = 0.0;   ///< Exact (streaming) regardless of mode.
  double p50 = 0.0;   ///< Exact, or reservoir estimate.
  double p95 = 0.0;
  double p99 = 0.0;
  bool exact = true;  ///< False when percentiles come from a reservoir.
};

/// Collects measurements during one simulation run.
class MetricsCollector {
 public:
  /// `num_nodes` nodes, per-window utilization buckets of `window_sec`
  /// seconds over `duration` seconds of virtual time.
  MetricsCollector(size_t num_nodes, double window_sec, double duration,
                   LatencyStatsOptions stats = {});

  /// Records one output of sink operator `sink_op` with end-to-end latency
  /// `latency` seconds, completing at virtual time `completion_time` (the
  /// timestamp lets incident reports split latencies into pre-failure /
  /// recovery / post-recovery phases; timestamps are retained only in
  /// exact mode). Inline — one call per sink output on the engine's -O3
  /// hot path (as is RecordService below, one call per task completion).
  void RecordOutput(uint32_t sink_op, double latency,
                    double completion_time = 0.0) {
    total_stats_.Add(latency);
    total_samples_.Add(latency);
    if (exact()) output_times_.push_back(completion_time);
    if (sink_op != last_sink_ || last_acc_ == nullptr) {
      SwitchSink(sink_op);
    }
    last_acc_->stats.Add(latency);
    last_acc_->samples.Add(latency);
  }

  /// Records one external input tuple.
  void RecordInput() { ++inputs_; }

  /// Accounts a service interval [start, end) on `node`, splitting the
  /// busy time across utilization windows.
  void RecordService(size_t node, double start, double end) {
    assert(node < node_busy_.size());
    assert(end >= start);
    node_busy_[node] += end - start;
    // Fast path: the interval fits one utilization window (service times
    // are micro-seconds, windows are seconds). `min(end, w_end) - cursor`
    // evaluates to exactly `end - start` here, so this adds the same
    // value the general loop below would.
    {
      const size_t w = static_cast<size_t>(start / window_sec_);
      if (w < window_busy_.rows() &&
          end <= static_cast<double>(w + 1) * window_sec_) {
        window_busy_(w, node) += end - start;
        return;
      }
    }
    // Split the interval across utilization windows.
    double cursor = start;
    while (cursor < end) {
      const size_t w = static_cast<size_t>(cursor / window_sec_);
      if (w >= window_busy_.rows()) break;  // service past the horizon
      const double w_end = static_cast<double>(w + 1) * window_sec_;
      const double slice = std::min(end, w_end) - cursor;
      window_busy_(w, node) += slice;
      cursor = w_end;
    }
  }

  size_t inputs() const { return inputs_; }
  size_t outputs() const { return total_stats_.count(); }

  /// True when every latency sample is retained (reservoir disabled).
  bool exact() const { return stats_options_.reservoir == 0; }

  /// Every recorded latency in output order. Exact mode only.
  const std::vector<double>& latencies() const { return total_samples_.samples(); }

  /// Completion time of each latency sample, parallel to latencies().
  /// Exact mode only (empty otherwise).
  const std::vector<double>& output_times() const { return output_times_; }

  /// Summary of all sink outputs (percentiles sorted once per call).
  LatencySummary TotalLatency() const;

  /// Per-sink summaries, ordered by sink operator id.
  std::vector<std::pair<uint32_t, LatencySummary>> SinkSummaries() const;

  /// Retained latency samples of one sink (all of them in exact mode);
  /// empty for an unknown sink.
  const std::vector<double>& SinkSamples(uint32_t sink_op) const;

  /// Busy fraction of `node` over the whole run.
  double NodeUtilization(size_t node, double capacity_duration) const;

  /// Per-(window, node) busy fraction matrix (rows = windows).
  const Matrix& window_busy() const { return window_busy_; }
  double window_sec() const { return window_sec_; }

  /// Number of windows where some node's busy fraction reached
  /// `threshold` (default: effectively pegged).
  size_t OverloadedWindows(double threshold = 0.99) const;

  /// Largest per-node busy fraction within window `w`.
  double WindowMaxBusyFraction(size_t w) const;

  size_t num_windows() const { return window_busy_.rows(); }

 private:
  struct SinkAccumulator {
    RunningStats stats;
    ReservoirSampler samples;
  };

  static LatencySummary Summarize(const RunningStats& stats,
                                  const ReservoirSampler& samples);

  /// Cold tail of RecordOutput: look up (or create) the accumulator of a
  /// sink other than the cached one.
  void SwitchSink(uint32_t sink_op);

  size_t inputs_ = 0;
  LatencyStatsOptions stats_options_;
  RunningStats total_stats_;
  ReservoirSampler total_samples_;
  std::vector<double> output_times_;  ///< Exact mode only.
  std::map<uint32_t, SinkAccumulator> sinks_;
  // Most runs have a handful of sinks and long same-sink bursts; cache
  // the last accumulator to skip the map lookup on the hot path.
  uint32_t last_sink_ = UINT32_MAX;
  SinkAccumulator* last_acc_ = nullptr;
  Vector node_busy_;      ///< total busy seconds per node
  Matrix window_busy_;    ///< busy seconds per (window, node)
  double window_sec_;
  double duration_;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_METRICS_H_
