// Copyright (c) the ROD reproduction authors.
//
// A deployment compiles (query graph, placement, cluster) into the flat
// routing tables the simulation engine executes: for every operator its
// host node, per-tuple cost, emission behaviour, and consumer fan-out with
// per-arc communication costs; for every input stream its direct consumers.

#ifndef ROD_RUNTIME_DEPLOYMENT_H_
#define ROD_RUNTIME_DEPLOYMENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "placement/plan.h"
#include "query/query_graph.h"

namespace rod::sim {

/// One dataflow edge in compiled form.
struct Route {
  uint32_t to_op = 0;
  uint32_t to_port = 0;       ///< Input position at the consumer.
  bool crosses_nodes = false; ///< Endpoints on different nodes.
  double comm_cost = 0.0;     ///< CPU-seconds per tuple on each endpoint.
};

/// Compiled per-operator execution info.
struct CompiledOp {
  uint32_t node = 0;
  bool is_join = false;
  double cost = 0.0;         ///< CPU-seconds per tuple (per pair for joins).
  double selectivity = 1.0;  ///< Emission ratio (per pair for joins).
  double window = 0.0;       ///< Join window (seconds).
  bool is_sink = false;      ///< Output goes to applications (latency taps).

  /// Shedding priority of a tuple queued at this operator: the operator's
  /// qos_weight times the expected number of sink outputs a tuple entering
  /// it eventually produces (product of downstream selectivities, summed
  /// over consumer branches; joins use their per-pair selectivity as a
  /// rate-free heuristic). QoS-aware overflow policies evict the
  /// lowest-weight queued tuple first.
  double drop_weight = 1.0;
  std::vector<Route> consumers;
};

/// A runnable deployment.
struct Deployment {
  std::vector<CompiledOp> ops;
  /// Per input stream: routes to its direct consumer operators.
  std::vector<std::vector<Route>> input_routes;
  place::SystemSpec system;

  size_t num_nodes() const { return system.num_nodes(); }
  size_t num_inputs() const { return input_routes.size(); }
};

/// Compiles a deployment; fails on graph/placement/system inconsistencies.
Result<Deployment> CompileDeployment(const query::QueryGraph& graph,
                                     const place::Placement& placement,
                                     const place::SystemSpec& system);

/// Incremental recompile for supervised re-homing: rewrites each
/// operator's host per `assignment` (size = number of operators, entries
/// < num_nodes) and refreshes every route's `crosses_nodes` flag in place
/// — no graph needed, routing topology and costs are preserved. Returns
/// the ids of the operators whose host changed.
Result<std::vector<uint32_t>> ReassignOperators(
    Deployment& deployment, const std::vector<size_t>& assignment);

}  // namespace rod::sim

#endif  // ROD_RUNTIME_DEPLOYMENT_H_
