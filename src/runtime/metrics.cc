#include "runtime/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace rod::sim {
namespace {

/// Decorrelates per-sink reservoir streams from the run-level stream
/// without consuming any run randomness (splitmix64-style mix).
uint64_t SinkSeed(uint64_t base, uint32_t sink_op) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (uint64_t{sink_op} + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

MetricsCollector::MetricsCollector(size_t num_nodes, double window_sec,
                                   double duration, LatencyStatsOptions stats)
    : stats_options_(stats),
      total_samples_(stats.reservoir, stats.seed),
      node_busy_(num_nodes, 0.0),
      window_busy_(static_cast<size_t>(std::ceil(duration / window_sec)),
                   num_nodes),
      window_sec_(window_sec),
      duration_(duration) {
  assert(num_nodes > 0 && window_sec > 0 && duration > 0);
}

void MetricsCollector::SwitchSink(uint32_t sink_op) {
  auto [it, inserted] = sinks_.try_emplace(sink_op);
  if (inserted) {
    it->second.samples = ReservoirSampler(
        stats_options_.reservoir, SinkSeed(stats_options_.seed, sink_op));
  }
  last_sink_ = sink_op;
  last_acc_ = &it->second;
}

namespace {

/// Quantile by selection: nth_element at the two ranks QuantileOfSorted
/// would interpolate between. The k-th order statistic is the same value
/// whether found by a full sort or a partial selection, so this is
/// bit-identical to sorting `v` and calling QuantileOfSorted — at O(n)
/// instead of O(n log n) per quantile. Runs once per (node, sink) at the
/// end of every run, which dominates finalization for large exact-mode
/// sample sets and short sweep runs. Partially reorders `v`.
double QuantileBySelection(std::vector<double>& v, double q) {
  const size_t n = v.size();
  if (n == 0) return 0.0;
  if (n == 1) return v[0];
  const double pos = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(lo), v.end());
  const double a = v[static_cast<ptrdiff_t>(lo)];
  double b = a;
  if (hi != lo) {
    // The (lo+1)-th order statistic is the minimum of what nth_element
    // left to the right of position lo.
    b = *std::min_element(v.begin() + static_cast<ptrdiff_t>(lo) + 1, v.end());
  }
  return a + frac * (b - a);
}

}  // namespace

LatencySummary MetricsCollector::Summarize(const RunningStats& stats,
                                           const ReservoirSampler& samples) {
  LatencySummary s;
  s.count = stats.count();
  s.exact = samples.exact();
  if (s.count == 0) return s;
  s.mean = stats.mean();
  s.max = stats.max();
  std::vector<double> scratch(samples.samples());
  if (s.exact) {
    // Store-all mode keeps the historical full-sort implementation: it is
    // the legacy configuration the engine perf baseline regresses against,
    // and exact-mode sample sets are test/incident sized, not hot-path
    // sized. Selection below returns bit-identical values (the k-th order
    // statistic does not depend on how it is found), so the split is a
    // cost split, not a semantic one.
    std::sort(scratch.begin(), scratch.end());
    s.p50 = QuantileOfSorted(scratch, 0.50);
    s.p95 = QuantileOfSorted(scratch, 0.95);
    s.p99 = QuantileOfSorted(scratch, 0.99);
    return s;
  }
  s.p50 = QuantileBySelection(scratch, 0.50);
  s.p95 = QuantileBySelection(scratch, 0.95);
  s.p99 = QuantileBySelection(scratch, 0.99);
  return s;
}

LatencySummary MetricsCollector::TotalLatency() const {
  return Summarize(total_stats_, total_samples_);
}

std::vector<std::pair<uint32_t, LatencySummary>>
MetricsCollector::SinkSummaries() const {
  std::vector<std::pair<uint32_t, LatencySummary>> out;
  out.reserve(sinks_.size());
  for (const auto& [op, acc] : sinks_) {
    out.emplace_back(op, Summarize(acc.stats, acc.samples));
  }
  return out;
}

const std::vector<double>& MetricsCollector::SinkSamples(
    uint32_t sink_op) const {
  static const std::vector<double> kEmpty;
  auto it = sinks_.find(sink_op);
  return it == sinks_.end() ? kEmpty : it->second.samples.samples();
}

double MetricsCollector::NodeUtilization(size_t node,
                                         double capacity_duration) const {
  assert(node < node_busy_.size());
  return capacity_duration > 0 ? node_busy_[node] / capacity_duration : 0.0;
}

double MetricsCollector::WindowMaxBusyFraction(size_t w) const {
  assert(w < window_busy_.rows());
  double max_frac = 0.0;
  for (size_t i = 0; i < window_busy_.cols(); ++i) {
    max_frac = std::max(max_frac, window_busy_(w, i) / window_sec_);
  }
  return max_frac;
}

size_t MetricsCollector::OverloadedWindows(double threshold) const {
  size_t count = 0;
  for (size_t w = 0; w < window_busy_.rows(); ++w) {
    for (size_t i = 0; i < window_busy_.cols(); ++i) {
      if (window_busy_(w, i) / window_sec_ >= threshold) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace rod::sim
