#include "runtime/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/stats.h"

namespace rod::sim {
namespace {

/// Decorrelates per-sink reservoir streams from the run-level stream
/// without consuming any run randomness (splitmix64-style mix).
uint64_t SinkSeed(uint64_t base, uint32_t sink_op) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (uint64_t{sink_op} + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

MetricsCollector::MetricsCollector(size_t num_nodes, double window_sec,
                                   double duration, LatencyStatsOptions stats)
    : stats_options_(stats),
      total_samples_(stats.reservoir, stats.seed),
      node_busy_(num_nodes, 0.0),
      window_busy_(static_cast<size_t>(std::ceil(duration / window_sec)),
                   num_nodes),
      window_sec_(window_sec),
      duration_(duration) {
  assert(num_nodes > 0 && window_sec > 0 && duration > 0);
}

void MetricsCollector::RecordOutput(uint32_t sink_op, double latency,
                                    double completion_time) {
  total_stats_.Add(latency);
  total_samples_.Add(latency);
  if (exact()) output_times_.push_back(completion_time);
  if (sink_op != last_sink_ || last_acc_ == nullptr) {
    auto [it, inserted] = sinks_.try_emplace(sink_op);
    if (inserted) {
      it->second.samples = ReservoirSampler(
          stats_options_.reservoir, SinkSeed(stats_options_.seed, sink_op));
    }
    last_sink_ = sink_op;
    last_acc_ = &it->second;
  }
  last_acc_->stats.Add(latency);
  last_acc_->samples.Add(latency);
}

void MetricsCollector::RecordService(size_t node, double start, double end) {
  assert(node < node_busy_.size());
  assert(end >= start);
  node_busy_[node] += end - start;
  // Split the interval across utilization windows.
  double cursor = start;
  while (cursor < end) {
    const size_t w = static_cast<size_t>(cursor / window_sec_);
    if (w >= window_busy_.rows()) break;  // service past the horizon
    const double w_end = static_cast<double>(w + 1) * window_sec_;
    const double slice = std::min(end, w_end) - cursor;
    window_busy_(w, node) += slice;
    cursor = w_end;
  }
}

LatencySummary MetricsCollector::Summarize(const RunningStats& stats,
                                           const ReservoirSampler& samples) {
  LatencySummary s;
  s.count = stats.count();
  s.exact = samples.exact();
  if (s.count == 0) return s;
  s.mean = stats.mean();
  s.max = stats.max();
  std::vector<double> sorted(samples.samples());
  std::sort(sorted.begin(), sorted.end());
  s.p50 = QuantileOfSorted(sorted, 0.50);
  s.p95 = QuantileOfSorted(sorted, 0.95);
  s.p99 = QuantileOfSorted(sorted, 0.99);
  return s;
}

LatencySummary MetricsCollector::TotalLatency() const {
  return Summarize(total_stats_, total_samples_);
}

std::vector<std::pair<uint32_t, LatencySummary>>
MetricsCollector::SinkSummaries() const {
  std::vector<std::pair<uint32_t, LatencySummary>> out;
  out.reserve(sinks_.size());
  for (const auto& [op, acc] : sinks_) {
    out.emplace_back(op, Summarize(acc.stats, acc.samples));
  }
  return out;
}

const std::vector<double>& MetricsCollector::SinkSamples(
    uint32_t sink_op) const {
  static const std::vector<double> kEmpty;
  auto it = sinks_.find(sink_op);
  return it == sinks_.end() ? kEmpty : it->second.samples.samples();
}

double MetricsCollector::NodeUtilization(size_t node,
                                         double capacity_duration) const {
  assert(node < node_busy_.size());
  return capacity_duration > 0 ? node_busy_[node] / capacity_duration : 0.0;
}

double MetricsCollector::WindowMaxBusyFraction(size_t w) const {
  assert(w < window_busy_.rows());
  double max_frac = 0.0;
  for (size_t i = 0; i < window_busy_.cols(); ++i) {
    max_frac = std::max(max_frac, window_busy_(w, i) / window_sec_);
  }
  return max_frac;
}

size_t MetricsCollector::OverloadedWindows(double threshold) const {
  size_t count = 0;
  for (size_t w = 0; w < window_busy_.rows(); ++w) {
    for (size_t i = 0; i < window_busy_.cols(); ++i) {
      if (window_busy_(w, i) / window_sec_ >= threshold) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace rod::sim
