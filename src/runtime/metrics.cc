#include "runtime/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rod::sim {

MetricsCollector::MetricsCollector(size_t num_nodes, double window_sec,
                                   double duration)
    : node_busy_(num_nodes, 0.0),
      window_busy_(static_cast<size_t>(std::ceil(duration / window_sec)),
                   num_nodes),
      window_sec_(window_sec),
      duration_(duration) {
  assert(num_nodes > 0 && window_sec > 0 && duration > 0);
}

void MetricsCollector::RecordOutput(uint32_t sink_op, double latency,
                                    double completion_time) {
  latencies_.push_back(latency);
  output_times_.push_back(completion_time);
  sink_latencies_[sink_op].push_back(latency);
}

void MetricsCollector::RecordService(size_t node, double start, double end) {
  assert(node < node_busy_.size());
  assert(end >= start);
  node_busy_[node] += end - start;
  // Split the interval across utilization windows.
  double cursor = start;
  while (cursor < end) {
    const size_t w = static_cast<size_t>(cursor / window_sec_);
    if (w >= window_busy_.rows()) break;  // service past the horizon
    const double w_end = static_cast<double>(w + 1) * window_sec_;
    const double slice = std::min(end, w_end) - cursor;
    window_busy_(w, node) += slice;
    cursor = w_end;
  }
}

double MetricsCollector::NodeUtilization(size_t node,
                                         double capacity_duration) const {
  assert(node < node_busy_.size());
  return capacity_duration > 0 ? node_busy_[node] / capacity_duration : 0.0;
}

double MetricsCollector::WindowMaxBusyFraction(size_t w) const {
  assert(w < window_busy_.rows());
  double max_frac = 0.0;
  for (size_t i = 0; i < window_busy_.cols(); ++i) {
    max_frac = std::max(max_frac, window_busy_(w, i) / window_sec_);
  }
  return max_frac;
}

size_t MetricsCollector::OverloadedWindows(double threshold) const {
  size_t count = 0;
  for (size_t w = 0; w < window_busy_.rows(); ++w) {
    for (size_t i = 0; i < window_busy_.cols(); ++i) {
      if (window_busy_(w, i) / window_sec_ >= threshold) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace rod::sim
