#include "runtime/sweep.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "runtime/deployment.h"

namespace rod::sim {
namespace {

uint64_t SplitMix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<SimulationResult> RunCase(const SimulationCase& c) {
  if (c.inputs == nullptr) {
    return Status::InvalidArgument("sweep case has no input traces");
  }
  if (c.deployment != nullptr) {
    return Simulate(*c.deployment, *c.inputs, c.options);
  }
  if (c.graph != nullptr && c.placement != nullptr && c.system != nullptr) {
    return SimulatePlacement(*c.graph, *c.placement, *c.system, *c.inputs,
                             c.options);
  }
  return Status::InvalidArgument(
      "sweep case needs a deployment or a (graph, placement, system) triple");
}

}  // namespace

size_t ResolveSweepThreads(size_t num_threads) {
  return num_threads == 0 ? ThreadPool::Shared().num_threads() : num_threads;
}

std::vector<uint64_t> ForkSeeds(uint64_t base, size_t n) {
  std::vector<uint64_t> seeds;
  seeds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    seeds.push_back(
        SplitMix64(base + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(i) + 1)));
  }
  return seeds;
}

std::vector<Result<SimulationResult>> SimulateSweep(
    std::span<const SimulationCase> cases, const SweepOptions& sweep) {
  // Result<T> is not default-constructible; seed every slot with a
  // placeholder status that a completed case overwrites.
  std::vector<Result<SimulationResult>> results(
      cases.size(), Result<SimulationResult>(Status::Internal("case not run")));
  ParallelFor(ResolveSweepThreads(sweep.num_threads), cases.size(),
              sweep.grain == 0 ? 1 : sweep.grain,
              [&](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  telemetry::TraceSpan span(sweep.telemetry, "sweep", "case",
                                            static_cast<uint64_t>(i));
                  results[i] = RunCase(cases[i]);
                }
                if (sweep.telemetry != nullptr) {
                  sweep.telemetry->Count("sweep.cases", end - begin);
                }
              });
  return results;
}

std::vector<Result<bool>> ProbeFeasibleSweep(const query::QueryGraph& graph,
                                             const place::Placement& placement,
                                             const place::SystemSpec& system,
                                             std::span<const Vector> rate_points,
                                             const SimulationOptions& options,
                                             const SweepOptions& sweep) {
  std::vector<Result<bool>> results(
      rate_points.size(), Result<bool>(Status::Internal("point not run")));
  // Compile once; CompileDeployment is deterministic, so sharing the
  // read-only deployment across probes matches per-point ProbeFeasibleAt
  // bit for bit.
  auto deployment = CompileDeployment(graph, placement, system);
  if (!deployment.ok()) {
    std::fill(results.begin(), results.end(),
              Result<bool>(deployment.status()));
    return results;
  }
  const size_t num_streams = graph.num_input_streams();
  ParallelFor(
      ResolveSweepThreads(sweep.num_threads), rate_points.size(),
      sweep.grain == 0 ? 1 : sweep.grain,
      [&](size_t, size_t begin, size_t end) {
        std::vector<trace::RateTrace> traces;
        if (sweep.telemetry != nullptr) {
          sweep.telemetry->Count("sweep.probes", end - begin);
        }
        for (size_t i = begin; i < end; ++i) {
          telemetry::TraceSpan span(sweep.telemetry, "sweep", "probe",
                                    static_cast<uint64_t>(i));
          const Vector& rates = rate_points[i];
          if (rates.size() != num_streams) {
            results[i] = Result<bool>(Status::InvalidArgument(
                "one rate per input stream required"));
            continue;
          }
          traces.clear();
          traces.reserve(rates.size());
          for (double r : rates) {
            trace::RateTrace t;
            t.window_sec = options.duration;
            t.rates = {r};
            traces.push_back(std::move(t));
          }
          auto run = Simulate(*deployment, traces, options);
          results[i] = run.ok() ? Result<bool>(!run->saturated)
                                : Result<bool>(run.status());
        }
      });
  return results;
}

Result<double> SimulatedBoundaryScale(const query::QueryGraph& graph,
                                      const place::Placement& placement,
                                      const place::SystemSpec& system,
                                      const Vector& direction,
                                      const SimulationOptions& options,
                                      const BoundarySearchOptions& search,
                                      const SweepOptions& sweep) {
  if (direction.size() != graph.num_input_streams()) {
    return Status::InvalidArgument("one direction entry per input stream");
  }
  double max_dir = 0.0;
  for (double d : direction) {
    if (d < 0.0 || !std::isfinite(d)) {
      return Status::InvalidArgument("direction must be finite, >= 0");
    }
    max_dir = std::max(max_dir, d);
  }
  if (max_dir <= 0.0) {
    return Status::InvalidArgument("direction must have a positive entry");
  }
  const size_t batch = std::max<size_t>(1, search.batch);

  // Probes `scales` in one parallel round; fails on the first (lowest
  // scale) probe error so the outcome is deterministic.
  std::vector<Vector> points;
  auto probe = [&](std::span<const double> scales) -> Result<std::vector<bool>> {
    points.clear();
    points.reserve(scales.size());
    for (double s : scales) {
      Vector p(direction);
      for (size_t k = 0; k < p.size(); ++k) p[k] *= s;
      points.push_back(std::move(p));
    }
    auto probed = ProbeFeasibleSweep(graph, placement, system, points, options,
                                     sweep);
    std::vector<bool> feasible;
    feasible.reserve(probed.size());
    for (auto& r : probed) {
      if (!r.ok()) return r.status();
      feasible.push_back(*r);
    }
    return feasible;
  };

  double lo = std::max(0.0, search.lo);
  double hi = search.hi;
  std::vector<double> scales(batch);
  if (!(hi > lo)) {
    // Auto-bracket: geometric ladders of `batch` scales per round until
    // an infeasible one appears.
    double s0 = std::max(lo, 1.0);
    bool bracketed = false;
    for (size_t round = 0; round < search.max_rounds && !bracketed; ++round) {
      for (size_t j = 0; j < batch; ++j) {
        scales[j] = s0 * std::pow(2.0, static_cast<double>(j));
      }
      auto feasible = probe(scales);
      if (!feasible.ok()) return feasible.status();
      for (size_t j = 0; j < batch; ++j) {
        if (!(*feasible)[j]) {
          hi = scales[j];
          bracketed = true;
          break;
        }
        lo = scales[j];
      }
      s0 = scales[batch - 1] * 2.0;
    }
    if (!bracketed) {
      return Status::FailedPrecondition(
          "no infeasible scale found while bracketing the boundary");
    }
  }

  for (size_t round = 0;
       round < search.max_rounds && (hi - lo) > search.rel_tol * hi; ++round) {
    const double step = (hi - lo) / static_cast<double>(batch + 1);
    for (size_t j = 0; j < batch; ++j) {
      scales[j] = lo + step * static_cast<double>(j + 1);
    }
    auto feasible = probe(scales);
    if (!feasible.ok()) return feasible.status();
    // Longest feasible prefix: simulation noise past the first
    // infeasible grid point is ignored, keeping the bracket — and the
    // final answer — a pure function of the probed grid.
    size_t first_bad = batch;
    for (size_t j = 0; j < batch; ++j) {
      if (!(*feasible)[j]) {
        first_bad = j;
        break;
      }
    }
    if (first_bad > 0) lo = scales[first_bad - 1];
    if (first_bad < batch) hi = scales[first_bad];
  }
  return lo;
}

}  // namespace rod::sim
