#include "runtime/chaos.h"

#include <algorithm>
#include <string>

namespace rod::sim {

FailureSchedule& FailureSchedule::CrashAt(double time, uint32_t node) {
  events_.push_back(FaultEvent{time, node, FaultKind::kCrash, 1.0});
  return *this;
}

FailureSchedule& FailureSchedule::RecoverAt(double time, uint32_t node) {
  events_.push_back(FaultEvent{time, node, FaultKind::kRecover, 1.0});
  return *this;
}

FailureSchedule& FailureSchedule::SlowdownAt(double time, uint32_t node,
                                             double factor) {
  events_.push_back(FaultEvent{time, node, FaultKind::kSlowdown, factor});
  return *this;
}

FailureSchedule& FailureSchedule::LoadSpikeAt(double time, uint32_t stream,
                                              double factor) {
  events_.push_back(FaultEvent{time, stream, FaultKind::kLoadSpike, factor});
  return *this;
}

Status FailureSchedule::Validate(size_t num_nodes, size_t num_streams) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kLoadSpike) {
      if (e.node >= num_streams) {
        return Status::InvalidArgument("load spike targets input stream " +
                                       std::to_string(e.node) +
                                       " outside the query");
      }
    } else if (e.node >= num_nodes) {
      return Status::InvalidArgument("fault targets node " +
                                     std::to_string(e.node) +
                                     " outside the cluster");
    }
    if (e.time < 0.0) {
      return Status::InvalidArgument("fault scheduled before t=0");
    }
    if (e.kind == FaultKind::kSlowdown && e.factor <= 0.0) {
      return Status::InvalidArgument("slowdown factor must be positive");
    }
    if (e.kind == FaultKind::kLoadSpike && e.factor < 0.0) {
      return Status::InvalidArgument("load spike factor must be >= 0");
    }
  }
  // Replay the per-node up/down state machine in time order (stable sort
  // keeps insertion order for simultaneous events, which is also the
  // engine's replay order: EventQueue breaks time ties by push sequence).
  std::vector<size_t> order(events_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return events_[a].time < events_[b].time;
  });
  std::vector<bool> up(num_nodes, true);
  for (size_t i : order) {
    const FaultEvent& e = events_[i];
    switch (e.kind) {
      case FaultKind::kCrash:
        if (!up[e.node]) {
          return Status::InvalidArgument("node " + std::to_string(e.node) +
                                         " crashes while already down");
        }
        up[e.node] = false;
        break;
      case FaultKind::kRecover:
        if (up[e.node]) {
          return Status::InvalidArgument("node " + std::to_string(e.node) +
                                         " recovers while already up");
        }
        up[e.node] = true;
        break;
      case FaultKind::kSlowdown:
        if (!up[e.node]) {
          return Status::InvalidArgument("slowdown targets crashed node " +
                                         std::to_string(e.node));
        }
        break;
      case FaultKind::kLoadSpike:
        break;  // stream event: node liveness does not apply
    }
  }
  return Status::OK();
}

Status FailureSchedule::Validate(size_t num_nodes) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kLoadSpike) {
      return Status::InvalidArgument(
          "schedule contains load spikes; validate with the "
          "(num_nodes, num_streams) overload");
    }
  }
  return Validate(num_nodes, 0);
}

}  // namespace rod::sim
