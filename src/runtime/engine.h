// Copyright (c) the ROD reproduction authors.
//
// The tuple-level stream-processing simulation engine — our stand-in for
// the Borealis prototype (DESIGN.md substitution #2). Nodes are
// capacity-scaled single-server FIFO queues; tuples flow through the
// compiled deployment paying per-tuple operator costs and per-arc
// communication costs; end-to-end latency and per-window utilization are
// measured. A placement is feasible at a rate point exactly when queues
// stay bounded — the same mechanism the paper probes with CPU utilization.

#ifndef ROD_RUNTIME_ENGINE_H_
#define ROD_RUNTIME_ENGINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "placement/plan.h"
#include "query/query_graph.h"
#include "runtime/chaos.h"
#include "runtime/deployment.h"
#include "runtime/event_queue.h"
#include "runtime/node.h"
#include "trace/trace.h"

namespace rod::telemetry {
class FlightRecorder;
class JsonWriter;
}  // namespace rod::telemetry

namespace rod::trace::store {
class ReplaySet;
}  // namespace rod::trace::store

namespace rod::sim {

/// One simulation run's configuration.
struct SimulationOptions {
  /// Virtual seconds simulated.
  double duration = 60.0;

  /// One-way network latency added to tuples crossing nodes (seconds).
  double network_latency = 1e-3;

  /// Poisson arrivals (true) or evenly spaced within windows (false).
  bool poisson_arrivals = true;

  /// Node task-scheduling discipline (see node.h). Round-robin isolates
  /// cheap query paths from bursts queued behind expensive operators;
  /// throughput and utilization are unaffected.
  Scheduling scheduling = Scheduling::kFifo;

  /// Per-window utilization bucket width (seconds).
  double utilization_window = 1.0;

  /// Per-window busy fraction at/above which a window counts overloaded.
  double overload_threshold = 0.99;

  /// Abort guard: fail the run if it would process more than this many
  /// simulation events (runaway load or miswired graphs).
  uint64_t max_events = 200'000'000;

  /// Measurement warm-up: sink outputs whose *origin* timestamp falls
  /// before this many seconds are excluded from latency statistics (the
  /// queues have not reached steady state yet). Utilization windows and
  /// tuple counts are unaffected.
  double warmup = 0.0;

  /// Load shedding (Borealis-style overload response): when a node's queue
  /// holds at least this many tasks, tuples arriving from *external input
  /// streams* at that node are dropped instead of enqueued (internal
  /// dataflow is never shed, so no partial work is wasted). 0 disables
  /// shedding (queues grow without bound under overload).
  size_t shed_queue_threshold = 0;

  /// Bounded per-node ingress queues: at most `queue_bound.capacity`
  /// tuple tasks queued per node, overflow resolved by the configured
  /// OverflowPolicy (see runtime/node.h) — kQosWeighted uses the compiled
  /// per-operator drop weights. Capacity 0 (the default) keeps the legacy
  /// unbounded queues, bit-exact with previous releases. Dropped tuples
  /// are counted in OverloadStats (and, for rejected external arrivals,
  /// in shed_tuples).
  QueueBound queue_bound;

  /// Backpressure propagation: a node whose tuple queue reaches
  /// `high_water` becomes congested; deliveries to it are parked, the
  /// sending nodes stall (no new service starts) and sources feeding it
  /// pause, all until its queue drains to `low_water`. Parked tuples keep
  /// their origin timestamps, so the stall surfaces as latency, not loss.
  /// Congestion cycles among nodes can dead-stall the affected component
  /// — by design (DESIGN.md §11): shedding, not backpressure, is the
  /// mechanism that restores an infeasible system.
  struct BackpressureOptions {
    bool enabled = false;
    size_t high_water = 64;
    size_t low_water = 0;  ///< 0 -> high_water / 2.
  };
  BackpressureOptions backpressure;

  /// Sustained-overload detector: sampled every `check_interval` virtual
  /// seconds, a breach is a node tuple-queue at/above `queue_high_water`
  /// or (when `latency_slo` > 0) a sink latency above the SLO since the
  /// last sample. A breach sustained for `sustain` seconds escalates to
  /// `recovery`->OnOverload (at most once per `cooldown`); the ordered
  /// shed fraction applies to external arrivals until the deepest queue
  /// drains to `clear_low_water`, which also notifies OnOverloadCleared.
  struct OverloadControlOptions {
    bool enabled = false;
    double check_interval = 0.25;
    size_t queue_high_water = 128;
    double latency_slo = 0.0;  ///< Seconds; 0 disables the latency trigger.
    double sustain = 0.5;
    double cooldown = 2.0;
    size_t clear_low_water = 0;  ///< 0 -> queue_high_water / 4.
  };
  OverloadControlOptions overload;

  /// Seed for arrivals and probabilistic emission.
  uint64_t seed = 0xdecaf5eedULL;

  /// Recorded-arrival replay: when set, external tuples are drawn from
  /// this set's feeds (one per input stream, in stream order; see
  /// trace/store/replay.h) instead of the synthetic ArrivalGenerator.
  /// The rate traces passed to Simulate still size the input streams but
  /// no longer produce arrivals, and the per-stream input RNGs are forked
  /// exactly as in generator mode, so every downstream random stream
  /// (emission, shedding) is unchanged — replaying MaterializeArrivals of
  /// a trace reproduces the generator-driven run bit for bit (absent
  /// source stalls, which re-time generator draws). kLoadSpike faults are
  /// rejected in replay mode: a recorded trace has no rate to rescale.
  /// Not owned; null (the default) keeps the synthetic driver.
  trace::store::ReplaySet* replay = nullptr;

  /// Fault injection script (crash / recover / slowdown events; see
  /// runtime/chaos.h). Not owned; null disables chaos.
  const FailureSchedule* failures = nullptr;

  /// Supervision: consulted one detection delay after each crash to
  /// re-home operators, and — when `overload.enabled` — on sustained
  /// overload to pick a shed rate or re-placement (see
  /// runtime/supervisor.h). Not owned; null means nobody repairs —
  /// orphaned operators stay dark until their node recovers, and the
  /// overload detector observes without acting.
  ControlAgent* recovery = nullptr;

  /// Incident report: per-window max busy fraction at/below which the
  /// cluster counts as recovered after a crash.
  double recovered_utilization = 0.95;

  /// Event-queue implementation. Both produce the same (time, seq) event
  /// order, so results are bit-identical; the calendar queue is O(1)
  /// amortized, the binary heap is the legacy reference.
  EventQueueImpl event_queue = EventQueueImpl::kCalendar;

  /// Network-delivery batching: up to `batch_size` tuples entering the
  /// simulated network at the same instant ride one kNetworkDelivery
  /// calendar event (a tuple batch in the network FIFO) instead of one
  /// event each, amortizing queue pushes and pops over operator fan-out.
  /// Provably bit-exact for every value: a batch only forms from
  /// deliveries pushed back-to-back (consecutive sequence numbers) for
  /// the same arrival time, which the (time, seq) total order already
  /// pops consecutively — the batched handler replays the exact legacy
  /// per-tuple order, and per-tuple accounting (bounded queues,
  /// backpressure, shedding, processed-event counts) is unchanged.
  /// 1 disables batching and takes the legacy one-event-per-tuple path.
  size_t batch_size = 64;

  /// Store every latency sample and compute exact percentiles (the
  /// pre-overhaul behavior) instead of the fixed-memory streaming
  /// summary. Mean and max are exact either way; runs with a failure
  /// schedule always keep full samples (incident phase analysis needs
  /// the timed series).
  bool exact_percentiles = false;

  /// Reservoir size per latency series when streaming summaries are in
  /// use (ignored under exact_percentiles; 0 also forces exact).
  size_t latency_reservoir = 8192;

  /// Telemetry sink (metrics + trace spans; see docs/TELEMETRY.md). Not
  /// owned; null (the default) disables all recording. Telemetry never
  /// touches the run's random streams or control flow, so results are
  /// bit-identical whether it is attached or not.
  telemetry::Telemetry* telemetry = nullptr;

  /// Incident flight recorder (see telemetry/flight_recorder.h): the
  /// first crash of the run opens an incident — freezing the metrics
  /// snapshot, trace rings, and aggregator window as they stood at the
  /// fault instant — subsequent faults and supervisor milestones append
  /// notes, and the run's IncidentReport is attached when the incident
  /// completes at the end of the run. Observation-only, like
  /// `telemetry`: results are bit-identical with or without it. Not
  /// owned; null disables.
  telemetry::FlightRecorder* flight_recorder = nullptr;
};

/// Latency percentiles over the sink outputs completing in one incident
/// phase (pre-failure / during recovery / post-recovery).
struct PhaseLatency {
  size_t outputs = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// What a mid-run node crash cost, and how the run recovered. Times are
/// virtual seconds; the report covers the run's *first* crash (subsequent
/// faults still execute and contribute to the loss counters).
struct IncidentReport {
  double crash_time = 0.0;
  uint32_t failed_node = 0;

  double detect_time = -1.0;        ///< Supervisor consulted (-1: none).
  double plan_applied_time = -1.0;  ///< Repaired routing live (-1: never).
  size_t operators_moved = 0;       ///< Re-homed by all plan updates.

  // Tuples lost to the incident, by mechanism, plus the total.
  size_t lost_queued = 0;     ///< Queued on a node when it crashed.
  size_t lost_inflight = 0;   ///< Being served on a node when it crashed.
  size_t lost_network = 0;    ///< In transit to a node that was down on
                              ///< delivery.
  size_t rejected_inputs = 0; ///< External tuples rejected because every
                              ///< consumer's node was down.
  size_t lost_tuples = 0;     ///< Sum of the four above.

  // Migration pause bookkeeping (state transfer of moved operators).
  size_t migration_buffered = 0;  ///< Tuples held and replayed.
  size_t migration_shed = 0;      ///< Tuples dropped (shed_during_pause).

  /// Recovery: the first utilization window at/after the repaired plan
  /// went live (or the crash, without a supervisor) from which every
  /// remaining window stays below `recovered_utilization`.
  bool recovered = false;
  double recovery_time = -1.0;  ///< Crash -> start of that window (s).
  double post_recovery_max_utilization = 0.0;

  /// Accepted fraction of external tuples offered over the whole run:
  /// accepted / (accepted + rejected_inputs + shed).
  double availability = 1.0;

  // Overload breakdown over the whole run (mirrors OverloadStats, so an
  // incident artifact is self-contained).
  size_t overload_shed = 0;            ///< Edge + overflow + directive drops.
  size_t backpressure_deferred = 0;    ///< Deliveries parked by congestion.
  double source_stall_seconds = 0.0;   ///< Summed source pause time.

  PhaseLatency pre_failure;      ///< Outputs completing before the crash.
  PhaseLatency during_recovery;  ///< Crash until recovered (or horizon).
  PhaseLatency post_recovery;    ///< After the recovery point.
};

/// Latency summary of one sink operator's outputs.
struct SinkLatency {
  uint32_t sink_op = 0;
  size_t outputs = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Aggregated results of one run.
struct SimulationResult {
  size_t input_tuples = 0;   ///< External tuples accepted by >= 1 consumer.
  size_t shed_tuples = 0;    ///< External tuples dropped at *every*
                             ///< consumer by load shedding.
  size_t output_tuples = 0;

  // End-to-end latency (seconds) over sink outputs.
  double mean_latency = 0.0;
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  double max_latency = 0.0;

  /// Per-sink breakdown, ordered by sink operator id.
  std::vector<SinkLatency> sink_latencies;

  /// Per-operator execution statistics (indexed by operator id) — the raw
  /// material for statistics-driven cost/selectivity calibration
  /// (paper §7.1; see runtime/calibrate.h).
  struct OperatorStats {
    size_t tuples_processed = 0;  ///< Input tuples served (joins: probing
                                  ///< tuples, not pairs).
    size_t pairs_probed = 0;      ///< Join pairs examined (0 for non-joins).
    size_t tuples_emitted = 0;    ///< Output tuples produced.
    double cpu_seconds = 0.0;     ///< CPU time consumed (excl. comm).
  };
  std::vector<OperatorStats> op_stats;

  Vector node_utilization;          ///< busy fraction per node, whole run
  double max_node_utilization = 0.0;
  size_t overloaded_windows = 0;    ///< windows with a pegged node
  size_t total_windows = 0;
  size_t final_backlog = 0;         ///< tasks still queued at the horizon

  /// Heuristic saturation flag: a node was pegged for most of the run or a
  /// large backlog remained — the run's rate point is infeasible for this
  /// placement.
  bool saturated = false;

  /// Discrete events executed by the run (throughput denominator for
  /// bench_engine_perf).
  uint64_t processed_events = 0;

  /// Degradation accounting: what the overload machinery (bounded
  /// queues, backpressure, control-loop shedding) did this run. All
  /// zeros when the corresponding knobs are off.
  struct OverloadStats {
    size_t shed_edge = 0;       ///< External tuples dropped at ingress
                                ///< (threshold or full bounded queue).
    size_t shed_overflow = 0;   ///< Queued tuples evicted by an overflow
                                ///< policy (internal dataflow included).
    size_t shed_directive = 0;  ///< External tuples dropped by the control
                                ///< agent's ordered shed fraction.
    size_t backpressure_deferred = 0;  ///< Deliveries parked at congested
                                       ///< nodes (later replayed).
    size_t congestion_episodes = 0;    ///< Times a node crossed high water.
    size_t source_stalls = 0;          ///< Times a source was paused.
    double source_stall_seconds = 0.0; ///< Summed source pause time.
    double node_congested_seconds = 0.0;  ///< Summed per-node congestion.
    size_t queue_depth_high_water = 0;  ///< Max tuple-queue depth seen on
                                        ///< any node.
    double overload_detect_time = -1.0; ///< First sustained breach (-1:
                                        ///< never).
    size_t control_consults = 0;   ///< OnOverload calls made.
    double shed_rate_applied = 0.0;  ///< Last directive in force.
    size_t total_shed() const {
      return shed_edge + shed_overflow + shed_directive;
    }
  };
  OverloadStats overload;

  /// Present iff a node crashed during the run (options.failures).
  std::optional<IncidentReport> incident;
};

/// Runs the deployment against one rate trace per input stream (sizes must
/// match). Traces shorter than `duration` fall silent after they end.
Result<SimulationResult> Simulate(const Deployment& deployment,
                                  const std::vector<trace::RateTrace>& inputs,
                                  const SimulationOptions& options = {});

/// Convenience: compile and run in one call.
Result<SimulationResult> SimulatePlacement(
    const query::QueryGraph& graph, const place::Placement& placement,
    const place::SystemSpec& system,
    const std::vector<trace::RateTrace>& inputs,
    const SimulationOptions& options = {});

/// Writes `report` as one inline JSON object — the flight recorder's
/// per-incident "report" member (schema in docs/OBSERVABILITY.md). The
/// engine calls this when completing an incident; exposed so tests and
/// tools can render reports standalone.
void WriteIncidentReportJson(const IncidentReport& report,
                             telemetry::JsonWriter& w);

/// The paper's Borealis-style feasibility probe: run at constant rates `R`
/// and report whether the system stayed un-saturated.
Result<bool> ProbeFeasibleAt(const query::QueryGraph& graph,
                             const place::Placement& placement,
                             const place::SystemSpec& system,
                             std::span<const double> rates,
                             const SimulationOptions& options = {});

}  // namespace rod::sim

#endif  // ROD_RUNTIME_ENGINE_H_
