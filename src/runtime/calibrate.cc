#include "runtime/calibrate.h"

#include "placement/baselines.h"
#include "query/load_model.h"

namespace rod::sim {

Result<query::QueryGraph> CalibrateFromRun(const query::QueryGraph& topology,
                                           const SimulationResult& run,
                                           const CalibrateOptions& options) {
  ROD_RETURN_IF_ERROR(topology.Validate());
  if (run.op_stats.size() != topology.num_operators()) {
    return Status::InvalidArgument(
        "run statistics do not match the topology's operator count");
  }

  query::QueryGraph calibrated;
  for (query::InputStreamId k = 0; k < topology.num_input_streams(); ++k) {
    calibrated.AddInputStream(topology.input_name(k));
  }
  for (query::OperatorId j = 0; j < topology.num_operators(); ++j) {
    query::OperatorSpec spec = topology.spec(j);
    const auto& stats = run.op_stats[j];
    const bool is_join = spec.kind == query::OperatorKind::kJoin;
    const size_t samples =
        is_join ? stats.pairs_probed : stats.tuples_processed;
    if (samples >= options.min_samples) {
      const double denom = static_cast<double>(samples);
      spec.cost = std::max(0.0, stats.cpu_seconds / denom);
      const double sel = static_cast<double>(stats.tuples_emitted) / denom;
      // Keep kind-specific validity: filters cannot exceed 1; joins need
      // strictly positive selectivity for linearization.
      if (spec.kind == query::OperatorKind::kFilter) {
        spec.selectivity = std::min(1.0, sel);
      } else if (is_join && sel <= 0.0) {
        // No match ever observed: keep the declared selectivity rather
        // than producing an unlinearizable spec.
      } else {
        spec.selectivity = sel;
      }
    }
    std::vector<query::StreamRef> inputs;
    std::vector<double> comm;
    for (const query::Arc& arc : topology.inputs_of(j)) {
      inputs.push_back(arc.from);
      comm.push_back(arc.comm_cost);
    }
    auto id = calibrated.AddOperator(spec, inputs, comm);
    ROD_RETURN_IF_ERROR(id.status());
  }
  return calibrated;
}

Result<query::QueryGraph> CalibrateWithTrialRun(
    const query::QueryGraph& topology, const place::SystemSpec& system,
    std::span<const double> rates, double duration, uint64_t seed,
    const CalibrateOptions& options) {
  auto model = topology.RequiresLinearization()
                   ? query::BuildLinearizedLoadModel(topology)
                   : query::BuildLoadModel(topology);
  if (!model.ok()) return model.status();

  // The paper's procedure: a random trial distribution.
  Rng rng(seed);
  auto trial = place::RandomPlace(*model, system, rng);
  if (!trial.ok()) return trial.status();

  if (rates.size() != topology.num_input_streams()) {
    return Status::InvalidArgument("one rate per input stream required");
  }
  std::vector<trace::RateTrace> traces;
  for (double r : rates) {
    trace::RateTrace t;
    t.window_sec = duration;
    t.rates = {r};
    traces.push_back(std::move(t));
  }
  SimulationOptions sim_options;
  sim_options.duration = duration;
  sim_options.seed = seed ^ 0x5151ULL;
  auto run = SimulatePlacement(topology, *trial, system, traces, sim_options);
  if (!run.ok()) return run.status();
  return CalibrateFromRun(topology, *run, options);
}

}  // namespace rod::sim
