// Copyright (c) the ROD reproduction authors.
//
// Workload driver: turns per-input rate traces into tuple arrival times.
// Arrivals are Poisson with the trace's piecewise-constant intensity (the
// event-based aperiodic nature of stream sources, paper §1) or, optionally,
// deterministic and evenly spaced within each window.

#ifndef ROD_RUNTIME_WORKLOAD_DRIVER_H_
#define ROD_RUNTIME_WORKLOAD_DRIVER_H_

#include <vector>

#include "common/random.h"
#include "trace/trace.h"

namespace rod::sim {

/// Generates successive arrival times for one input stream.
class ArrivalGenerator {
 public:
  /// Poisson (when `poisson` is true) or evenly spaced arrivals following
  /// `trace`'s piecewise-constant rate. The generator owns a copy of the
  /// trace; `rng` must outlive it.
  ArrivalGenerator(trace::RateTrace trace, bool poisson, Rng* rng);

  /// Next arrival strictly after `now`, or +infinity when the trace's rate
  /// is zero from `now` on.
  double NextArrival(double now);

  /// Scales every subsequent rate draw by `m` (chaos kLoadSpike: flash
  /// crowds and lulls layered over the scripted trace). Multiplier 0
  /// silences the stream; already-scheduled arrivals are unaffected.
  void set_rate_multiplier(double m) { rate_multiplier_ = m; }
  double rate_multiplier() const { return rate_multiplier_; }

 private:
  trace::RateTrace trace_;
  bool poisson_;
  double rate_multiplier_ = 1.0;
  Rng* rng_;
};

/// Pre-draws every arrival instant the engine's synthetic driver would
/// produce for `inputs` at `seed` — one ascending vector per stream, cut
/// at `duration`. The per-stream RNGs are forked from the master in the
/// engine's exact order and each stream is advanced with the engine's
/// call pattern (seed at 0, then from the previous arrival), so feeding
/// the result back through SimulationOptions::replay reproduces the
/// generator-driven run bit for bit as long as nothing re-times the
/// draws (no source stalls, no load-spike faults). This is the bridge
/// from rate traces to recorded stores: trace_convert materializes a
/// trace once and writes it as segment files.
std::vector<std::vector<double>> MaterializeArrivals(
    const std::vector<trace::RateTrace>& inputs, bool poisson, uint64_t seed,
    double duration);

}  // namespace rod::sim

#endif  // ROD_RUNTIME_WORKLOAD_DRIVER_H_
