#include "runtime/engine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>

#include "common/stats.h"
#include "runtime/event_queue.h"
#include "runtime/metrics.h"
#include "runtime/node.h"
#include "runtime/workload_driver.h"

namespace rod::sim {

namespace {

/// A tuple travelling between nodes (constant network latency makes the
/// delivery order FIFO, so a deque suffices).
struct PendingDelivery {
  double time = 0.0;
  uint32_t node = 0;
  Task task;
};

/// Binomial(n, p) sample; exact Bernoulli loop for small n, normal
/// approximation beyond (join probe counts can reach thousands).
uint64_t SampleBinomial(uint64_t n, double p, Rng& rng) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    uint64_t k = 0;
    for (uint64_t i = 0; i < n; ++i) k += rng.Bernoulli(p) ? 1 : 0;
    return k;
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  const double draw = std::round(rng.Normal(mean, sd));
  return static_cast<uint64_t>(std::clamp(draw, 0.0, static_cast<double>(n)));
}

/// Emission count of a non-join operator with `selectivity` s >= 0:
/// floor(s) guaranteed outputs plus one more with probability frac(s).
uint64_t SampleEmissions(double selectivity, Rng& rng) {
  const double whole = std::floor(selectivity);
  const double frac = selectivity - whole;
  return static_cast<uint64_t>(whole) + (rng.Bernoulli(frac) ? 1 : 0);
}

/// In-flight service bookkeeping per node.
struct InFlight {
  Task task;
  double start = 0.0;
  double service = 0.0;
  uint64_t probes = 0;  ///< Join pairings counted at service start.
};

}  // namespace

Result<SimulationResult> Simulate(const Deployment& deployment,
                                  const std::vector<trace::RateTrace>& inputs,
                                  const SimulationOptions& options) {
  if (inputs.size() != deployment.num_inputs()) {
    return Status::InvalidArgument("one rate trace per input stream required");
  }
  if (options.duration <= 0.0 || options.utilization_window <= 0.0) {
    return Status::InvalidArgument("duration and window must be positive");
  }
  if (options.warmup < 0.0 || options.warmup >= options.duration) {
    return Status::InvalidArgument("warmup must lie in [0, duration)");
  }

  Rng master(options.seed);
  std::vector<Rng> input_rngs;
  input_rngs.reserve(inputs.size());
  std::vector<std::unique_ptr<ArrivalGenerator>> arrivals;
  for (size_t k = 0; k < inputs.size(); ++k) input_rngs.push_back(master.Fork());
  for (size_t k = 0; k < inputs.size(); ++k) {
    arrivals.push_back(std::make_unique<ArrivalGenerator>(
        inputs[k], options.poisson_arrivals, &input_rngs[k]));
  }
  Rng emission_rng = master.Fork();

  std::vector<SimNode> nodes;
  nodes.reserve(deployment.num_nodes());
  for (double cap : deployment.system.capacities) {
    nodes.emplace_back(cap, options.scheduling);
  }
  std::vector<InFlight> inflight(nodes.size());

  // Join window buffers: per operator, per port, timestamps of buffered
  // tuples (empty for non-joins).
  std::vector<std::array<std::deque<double>, 2>> join_state(
      deployment.ops.size());

  MetricsCollector metrics(nodes.size(), options.utilization_window,
                           options.duration);
  EventQueue events;
  std::deque<PendingDelivery> network;
  std::vector<SimulationResult::OperatorStats> op_stats(deployment.ops.size());
  size_t shed_count = 0;
  size_t warmup_outputs = 0;

  // Seed the first arrival of each input.
  for (uint32_t k = 0; k < inputs.size(); ++k) {
    const double t = arrivals[k]->NextArrival(0.0);
    if (std::isfinite(t) && t <= options.duration) {
      events.Push(t, EventType::kExternalArrival, k);
    }
  }

  // Starts service on `node` if it is idle with work queued.
  auto try_start = [&](uint32_t node_id, double now) {
    SimNode& node = nodes[node_id];
    if (!node.CanStart()) return;
    InFlight fl;
    fl.task = node.StartService();
    fl.start = now;
    double cpu = fl.task.extra_cost;
    if (fl.task.op != Task::kCommTask) {
      const CompiledOp& op = deployment.ops[fl.task.op];
      if (op.is_join) {
        auto& state = join_state[fl.task.op];
        auto& mine = state[fl.task.port & 1];
        auto& other = state[1 - (fl.task.port & 1)];
        // Evict expired tuples, probe the live window, join the window.
        const double cutoff = now - op.window;
        while (!other.empty() && other.front() < cutoff) other.pop_front();
        while (!mine.empty() && mine.front() < cutoff) mine.pop_front();
        fl.probes = other.size();
        mine.push_back(now);
        cpu += op.cost * static_cast<double>(fl.probes);
      } else {
        cpu += op.cost;
      }
    }
    fl.service = node.ServiceTime(cpu);
    inflight[node_id] = fl;
    events.Push(now + fl.service, EventType::kNodeDone, node_id);
  };

  // Delivers a task to a node, possibly across the simulated network.
  auto deliver = [&](const Route& route, double origin, double now) {
    const uint32_t dst_node = deployment.ops[route.to_op].node;
    Task task;
    task.op = route.to_op;
    task.port = route.to_port;
    task.origin = origin;
    task.extra_cost = route.crosses_nodes ? route.comm_cost : 0.0;
    if (route.crosses_nodes && options.network_latency > 0.0) {
      network.push_back(
          PendingDelivery{now + options.network_latency, dst_node, task});
      // kNodeDone/kExternalArrival drive the clock; deliveries ride a
      // dedicated event indexed implicitly by FIFO order.
      events.Push(now + options.network_latency, EventType::kExternalArrival,
                  UINT32_MAX);
    } else {
      nodes[dst_node].Enqueue(task);
      try_start(dst_node, now);
    }
  };

  uint64_t processed_events = 0;
  while (!events.empty()) {
    const Event ev = events.Pop();
    if (ev.time > options.duration) break;
    if (++processed_events > options.max_events) {
      return Status::FailedPrecondition(
          "simulation exceeded max_events; reduce rates or duration");
    }
    const double now = ev.time;

    if (ev.type == EventType::kExternalArrival && ev.index == UINT32_MAX) {
      // Network delivery completion.
      assert(!network.empty());
      const PendingDelivery d = network.front();
      network.pop_front();
      assert(std::abs(d.time - now) < 1e-9);
      nodes[d.node].Enqueue(d.task);
      try_start(d.node, now);
      continue;
    }

    if (ev.type == EventType::kExternalArrival) {
      const uint32_t k = ev.index;
      bool accepted = false;
      bool shed = false;
      for (const Route& route : deployment.input_routes[k]) {
        // External ingestion: receiver pays the arc cost, no network hop
        // is simulated (sources push directly into the cluster).
        const uint32_t dst_node = deployment.ops[route.to_op].node;
        if (options.shed_queue_threshold > 0 &&
            nodes[dst_node].queue_length() >= options.shed_queue_threshold) {
          shed = true;  // overload response: drop at the edge
          continue;
        }
        Task task;
        task.op = route.to_op;
        task.port = route.to_port;
        task.origin = now;
        task.extra_cost = route.comm_cost;
        nodes[dst_node].Enqueue(task);
        try_start(dst_node, now);
        accepted = true;
      }
      if (accepted) {
        metrics.RecordInput();
      } else if (shed) {
        ++shed_count;
      }
      const double next = arrivals[k]->NextArrival(now);
      if (std::isfinite(next) && next <= options.duration) {
        events.Push(next, EventType::kExternalArrival, k);
      }
      continue;
    }

    // kNodeDone.
    const uint32_t node_id = ev.index;
    const InFlight fl = inflight[node_id];
    nodes[node_id].FinishService(fl.service);
    metrics.RecordService(node_id, fl.start, now);

    if (fl.task.op != Task::kCommTask) {
      const CompiledOp& op = deployment.ops[fl.task.op];
      const uint64_t emitted =
          op.is_join ? SampleBinomial(fl.probes, op.selectivity, emission_rng)
                     : SampleEmissions(op.selectivity, emission_rng);
      auto& stats = op_stats[fl.task.op];
      ++stats.tuples_processed;
      stats.pairs_probed += fl.probes;
      stats.tuples_emitted += emitted;
      // CPU attributable to the operator itself (comm overhead excluded).
      stats.cpu_seconds +=
          fl.service * nodes[node_id].capacity() - fl.task.extra_cost;
      for (uint64_t e = 0; e < emitted; ++e) {
        if (op.is_sink) {
          if (fl.task.origin >= options.warmup) {
            metrics.RecordOutput(fl.task.op, now - fl.task.origin);
          } else {
            ++warmup_outputs;
          }
          continue;
        }
        for (const Route& route : op.consumers) {
          if (route.crosses_nodes && route.comm_cost > 0.0) {
            // Send-side communication overhead on this node.
            Task send;
            send.op = Task::kCommTask;
            send.origin = fl.task.origin;
            send.extra_cost = route.comm_cost;
            nodes[node_id].Enqueue(send);
          }
          deliver(route, fl.task.origin, now);
        }
      }
    }
    try_start(node_id, now);
  }

  // Assemble results.
  SimulationResult result;
  result.input_tuples = metrics.inputs();
  result.shed_tuples = shed_count;
  result.output_tuples = metrics.outputs() + warmup_outputs;
  const auto& lat = metrics.latencies();
  if (!lat.empty()) {
    result.mean_latency = Mean(lat);
    result.p50_latency = Percentile(lat, 0.50);
    result.p95_latency = Percentile(lat, 0.95);
    result.p99_latency = Percentile(lat, 0.99);
    result.max_latency = *std::max_element(lat.begin(), lat.end());
  }
  for (const auto& [sink, samples] : metrics.sink_latencies()) {
    SinkLatency s;
    s.sink_op = sink;
    s.outputs = samples.size();
    s.mean = Mean(samples);
    s.p50 = Percentile(samples, 0.50);
    s.p95 = Percentile(samples, 0.95);
    result.sink_latencies.push_back(s);
  }
  result.node_utilization.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    result.node_utilization[i] = metrics.NodeUtilization(i, options.duration);
    result.max_node_utilization =
        std::max(result.max_node_utilization, result.node_utilization[i]);
    result.final_backlog += nodes[i].queue_length() + (nodes[i].busy() ? 1 : 0);
  }
  result.op_stats = std::move(op_stats);
  result.overloaded_windows =
      metrics.OverloadedWindows(options.overload_threshold);
  result.total_windows = metrics.num_windows();
  // Saturation: a node pegged for a large share of the run, or a backlog
  // disproportionate to the input volume remaining at the horizon.
  const double backlog_limit =
      50.0 + 0.02 * static_cast<double>(result.input_tuples);
  result.saturated =
      result.overloaded_windows * 2 >= result.total_windows ||
      static_cast<double>(result.final_backlog) > backlog_limit;
  return result;
}

Result<SimulationResult> SimulatePlacement(
    const query::QueryGraph& graph, const place::Placement& placement,
    const place::SystemSpec& system,
    const std::vector<trace::RateTrace>& inputs,
    const SimulationOptions& options) {
  auto deployment = CompileDeployment(graph, placement, system);
  if (!deployment.ok()) return deployment.status();
  return Simulate(*deployment, inputs, options);
}

Result<bool> ProbeFeasibleAt(const query::QueryGraph& graph,
                             const place::Placement& placement,
                             const place::SystemSpec& system,
                             std::span<const double> rates,
                             const SimulationOptions& options) {
  if (rates.size() != graph.num_input_streams()) {
    return Status::InvalidArgument("one rate per input stream required");
  }
  std::vector<trace::RateTrace> traces;
  traces.reserve(rates.size());
  for (double r : rates) {
    trace::RateTrace t;
    t.window_sec = options.duration;
    t.rates = {r};
    traces.push_back(std::move(t));
  }
  auto result = SimulatePlacement(graph, placement, system, traces, options);
  if (!result.ok()) return result.status();
  return !result->saturated;
}

}  // namespace rod::sim
