#include "runtime/engine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "common/stats.h"
#include "runtime/event_queue.h"
#include "runtime/metrics.h"
#include "runtime/node.h"
#include "runtime/workload_driver.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"
#include "trace/store/replay.h"

namespace rod::sim {

namespace {

/// Sender id used where a parked delivery has no upstream node to stall
/// (external arrivals, migration replays, orphan re-homing).
constexpr uint32_t kNoUpstream = UINT32_MAX;

/// Tuples travelling between nodes, stored as columnar batches (constant
/// network latency makes the delivery order FIFO, so queues suffice).
/// Structure-of-arrays: one FIFO column per tuple field, popped in
/// lockstep, plus a per-event column giving how many tuples ride each
/// scheduled kNetworkDelivery calendar event. The destination node is
/// resolved at *delivery* time: a supervisor may re-home the target
/// operator while the tuple is on the wire.
struct TupleBatchQueue {
  FifoBuffer<double> arrive;      ///< Delivery instant.
  FifoBuffer<uint32_t> from;      ///< Sending node (backpressure stalls it).
  FifoBuffer<uint32_t> op;        ///< Destination operator.
  FifoBuffer<uint32_t> port;      ///< Destination input port.
  FifoBuffer<double> origin;      ///< Source timestamp (latency accounting).
  FifoBuffer<double> extra_cost;  ///< Receive-side comm overhead.
  FifoBuffer<uint32_t> counts;    ///< Tuples per kNetworkDelivery event.

  bool empty() const { return arrive.empty(); }

  void clear() {
    arrive.clear();
    from.clear();
    op.clear();
    port.clear();
    origin.clear();
    extra_cost.clear();
    counts.clear();
  }

  void PushTuple(double at, uint32_t sender, const Task& task) {
    arrive.push_back(at);
    from.push_back(sender);
    op.push_back(task.op);
    port.push_back(task.port);
    origin.push_back(task.origin);
    extra_cost.push_back(task.extra_cost);
  }

  /// Pops the front tuple into (task, sender) form.
  Task PopTuple(uint32_t& sender) {
    Task task;
    task.op = op.front();
    task.port = port.front();
    task.origin = origin.front();
    task.extra_cost = extra_cost.front();
    sender = from.front();
    arrive.pop_front();
    from.pop_front();
    op.pop_front();
    port.pop_front();
    origin.pop_front();
    extra_cost.pop_front();
    return task;
  }
};

/// A delivery parked at a congested node until its queue drains.
struct HeldDelivery {
  uint32_t from = kNoUpstream;
  Task task;
};

/// Binomial(n, p) sample; exact Bernoulli loop for small n, normal
/// approximation beyond (join probe counts can reach thousands).
uint64_t SampleBinomial(uint64_t n, double p, Rng& rng) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    uint64_t k = 0;
    for (uint64_t i = 0; i < n; ++i) k += rng.Bernoulli(p) ? 1 : 0;
    return k;
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  const double draw = std::round(rng.Normal(mean, sd));
  return static_cast<uint64_t>(std::clamp(draw, 0.0, static_cast<double>(n)));
}

/// Emission count of a non-join operator with `selectivity` s >= 0:
/// floor(s) guaranteed outputs plus one more with probability frac(s).
uint64_t SampleEmissions(double selectivity, Rng& rng) {
  const double whole = std::floor(selectivity);
  const double frac = selectivity - whole;
  return static_cast<uint64_t>(whole) + (rng.Bernoulli(frac) ? 1 : 0);
}

/// In-flight service bookkeeping per node.
struct InFlight {
  Task task;
  double start = 0.0;
  double service = 0.0;
  uint64_t probes = 0;  ///< Join pairings counted at service start.
};

/// Percentile summary of one incident phase's latency samples; `scratch`
/// holds the sorted copy (reused across phases, no per-phase vectors).
PhaseLatency SummarizePhase(std::span<const double> samples,
                            std::vector<double>& scratch) {
  PhaseLatency p;
  p.outputs = samples.size();
  if (samples.empty()) return p;
  scratch.assign(samples.begin(), samples.end());
  std::sort(scratch.begin(), scratch.end());
  double sum = 0.0;
  for (double x : scratch) sum += x;
  p.mean = sum / static_cast<double>(scratch.size());
  p.p50 = QuantileOfSorted(scratch, 0.50);
  p.p95 = QuantileOfSorted(scratch, 0.95);
  p.p99 = QuantileOfSorted(scratch, 0.99);
  return p;
}

/// Per-run mutable state, pooled so repeated Simulate() calls (feasibility
/// probes, sweeps) reuse warmed-up allocations instead of rebuilding every
/// vector from scratch. One workspace per thread; a re-entrant call on the
/// same thread (defensive — recovery agents do not simulate) falls back to
/// a heap-allocated scratch workspace.
struct EngineWorkspace {
  bool in_use = false;

  Deployment dep;  ///< Working copy of the routing tables.
  std::vector<Rng> input_rngs;
  std::vector<std::unique_ptr<ArrivalGenerator>> arrivals;
  std::vector<SimNode> nodes;
  std::vector<InFlight> inflight;
  std::vector<std::array<FifoBuffer<double>, 2>> join_state;
  std::vector<char> node_up;
  std::vector<uint64_t> service_token;
  std::vector<double> paused_until;
  std::vector<std::vector<Task>> migration_buffer;
  std::vector<Task> release_scratch;  ///< Replay staging, kMigrationRelease.

  // Overload machinery (bounded queues / backpressure / control loop).
  std::vector<double> drop_weights;    ///< Per-op, borrowed by the nodes.
  std::vector<char> congested;         ///< Per-node backpressure state.
  std::vector<double> congested_since;
  std::vector<std::vector<HeldDelivery>> bp_held;  ///< Parked deliveries.
  std::vector<HeldDelivery> bp_release_scratch;
  std::vector<char> bp_blocked;       ///< [from * nodes + to] stall edges.
  std::vector<uint32_t> stall_refs;   ///< Congested downstreams per node.
  std::vector<char> source_stalled;   ///< Per input stream.
  std::vector<double> source_stall_since;
  std::vector<double> source_held_origin;
  std::vector<char> arrival_live;     ///< Arrival event in flight per stream.
  std::vector<uint64_t> window_arrivals;  ///< Arrivals since detector tick.

  EventQueue events;
  TupleBatchQueue network;
  std::vector<SimulationResult::OperatorStats> op_stats;
  std::vector<double> phase_scratch;  ///< SummarizePhase sort buffer.
};

class WorkspaceLease {
 public:
  WorkspaceLease() {
    thread_local EngineWorkspace tls;
    if (tls.in_use) {
      owned_ = std::make_unique<EngineWorkspace>();
      ws_ = owned_.get();
    } else {
      ws_ = &tls;
    }
    ws_->in_use = true;
  }
  ~WorkspaceLease() { ws_->in_use = false; }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  EngineWorkspace& operator*() const { return *ws_; }
  EngineWorkspace* operator->() const { return ws_; }

 private:
  EngineWorkspace* ws_ = nullptr;
  std::unique_ptr<EngineWorkspace> owned_;
};

}  // namespace

Result<SimulationResult> Simulate(const Deployment& deployment,
                                  const std::vector<trace::RateTrace>& inputs,
                                  const SimulationOptions& options) {
  if (inputs.size() != deployment.num_inputs()) {
    return Status::InvalidArgument("one rate trace per input stream required");
  }
  if (options.duration <= 0.0 || options.utilization_window <= 0.0) {
    return Status::InvalidArgument("duration and window must be positive");
  }
  if (options.warmup < 0.0 || options.warmup >= options.duration) {
    return Status::InvalidArgument("warmup must lie in [0, duration)");
  }
  if (options.failures) {
    ROD_RETURN_IF_ERROR(
        options.failures->Validate(deployment.num_nodes(), inputs.size()));
  }
  if (options.replay != nullptr) {
    if (options.replay->num_streams() != inputs.size()) {
      return Status::InvalidArgument(
          "replay set has " + std::to_string(options.replay->num_streams()) +
          " feeds; deployment has " + std::to_string(inputs.size()) +
          " input streams");
    }
    if (options.failures) {
      for (const FaultEvent& fault : options.failures->events()) {
        if (fault.kind == FaultKind::kLoadSpike) {
          return Status::InvalidArgument(
              "load-spike faults rescale the synthetic generator and cannot "
              "apply to a recorded trace; record the spiked arrivals instead");
        }
      }
    }
  }
  if (options.backpressure.enabled && options.backpressure.high_water == 0) {
    return Status::InvalidArgument("backpressure high_water must be positive");
  }
  if (options.overload.enabled && (options.overload.check_interval <= 0.0 ||
                                   options.overload.queue_high_water == 0)) {
    return Status::InvalidArgument(
        "overload detector needs a positive check_interval and high water");
  }

  // Telemetry is observation-only: it never draws from the run's random
  // streams and never branches the simulation, so results are bit-exact
  // with `tel` attached or null.
  telemetry::Telemetry* const tel = options.telemetry;
  telemetry::FlightRecorder* const recorder = options.flight_recorder;
  telemetry::TraceSpan setup_span(tel, "engine", "setup");

  WorkspaceLease lease;
  EngineWorkspace& ws = *lease;

  // Working copy of the routing tables: supervised recovery re-homes
  // operators in place mid-run (ReassignOperators). Copy-assignment into
  // the pooled copy reuses its vector capacity.
  ws.dep = deployment;
  Deployment& dep = ws.dep;
  const size_t num_nodes = dep.num_nodes();
  const size_t num_ops = dep.ops.size();

  Rng master(options.seed);
  ws.input_rngs.clear();
  ws.input_rngs.reserve(inputs.size());
  ws.arrivals.clear();
  for (size_t k = 0; k < inputs.size(); ++k) {
    ws.input_rngs.push_back(master.Fork());
  }
  for (size_t k = 0; k < inputs.size(); ++k) {
    ws.arrivals.push_back(std::make_unique<ArrivalGenerator>(
        inputs[k], options.poisson_arrivals, &ws.input_rngs[k]));
  }
  auto& arrivals = ws.arrivals;
  Rng emission_rng = master.Fork();

  // Arrival source: recorded feeds when options.replay is set, otherwise
  // the synthetic generators above. The input RNGs are forked either way
  // (replay feeds never draw from them), so `emission_rng` and everything
  // after it see identical random streams in both modes. A replay instant
  // is clamped to `now`: after a backpressure stall releases a source,
  // recorded arrivals that fell due during the stall are delivered at the
  // release instant rather than in the past.
  trace::store::ReplaySet* const replay = options.replay;
  auto next_arrival = [&](uint32_t k, double now) -> double {
    if (replay != nullptr) {
      return std::max(replay->feed(k).NextArrival(), now);
    }
    return arrivals[k]->NextArrival(now);
  };

  while (ws.nodes.size() < num_nodes) {
    ws.nodes.emplace_back(1.0, options.scheduling);
  }
  ws.nodes.erase(ws.nodes.begin() + static_cast<ptrdiff_t>(num_nodes),
                 ws.nodes.end());
  for (size_t i = 0; i < num_nodes; ++i) {
    ws.nodes[i].Reset(dep.system.capacities[i], options.scheduling);
  }
  auto& nodes = ws.nodes;
  const bool bounded = options.queue_bound.capacity > 0;
  if (bounded) {
    ws.drop_weights.resize(num_ops);
    for (size_t j = 0; j < num_ops; ++j) {
      ws.drop_weights[j] = dep.ops[j].drop_weight;
    }
    for (size_t i = 0; i < num_nodes; ++i) {
      nodes[i].ConfigureOverflow(options.queue_bound, ws.drop_weights.data(),
                                 num_ops);
    }
  }
  ws.inflight.assign(num_nodes, InFlight{});
  auto& inflight = ws.inflight;

  // Join window buffers: per operator, per port, timestamps of buffered
  // tuples (empty for non-joins). Indexed by operator id, so the state
  // survives a supervised migration — the pause models its transfer.
  ws.join_state.resize(num_ops);
  for (auto& state : ws.join_state) {
    state[0].clear();
    state[1].clear();
  }
  auto& join_state = ws.join_state;

  // Chaos state: node liveness, per-node service tokens (a crash bumps the
  // token so the stale completion event is ignored), migration pauses.
  ws.node_up.assign(num_nodes, 1);
  ws.service_token.assign(num_nodes, 0);
  ws.paused_until.assign(num_ops, 0.0);
  ws.migration_buffer.resize(num_ops);
  for (auto& held : ws.migration_buffer) held.clear();
  auto& node_up = ws.node_up;
  auto& service_token = ws.service_token;
  auto& paused_until = ws.paused_until;
  auto& migration_buffer = ws.migration_buffer;
  bool shed_during_pause = false;
  IncidentReport incident;
  bool have_incident = false;

  // Backpressure and overload-control state. All of it is inert — never
  // branched into, no RNG draws — unless the corresponding knob is on, so
  // default runs stay bit-exact with previous releases.
  const bool bp_on = options.backpressure.enabled;
  const bool oc_on = options.overload.enabled;
  const size_t bp_low = options.backpressure.low_water > 0
                            ? options.backpressure.low_water
                            : options.backpressure.high_water / 2;
  const size_t oc_clear = options.overload.clear_low_water > 0
                              ? options.overload.clear_low_water
                              : options.overload.queue_high_water / 4;
  ws.congested.assign(num_nodes, 0);
  ws.congested_since.assign(num_nodes, 0.0);
  ws.bp_held.resize(num_nodes);
  for (auto& held : ws.bp_held) held.clear();
  ws.bp_blocked.assign(num_nodes * num_nodes, 0);
  ws.stall_refs.assign(num_nodes, 0);
  ws.source_stalled.assign(inputs.size(), 0);
  ws.source_stall_since.assign(inputs.size(), 0.0);
  ws.source_held_origin.assign(inputs.size(), 0.0);
  ws.arrival_live.assign(inputs.size(), 0);
  ws.window_arrivals.assign(inputs.size(), 0);
  auto& congested = ws.congested;
  auto& stall_refs = ws.stall_refs;
  auto& source_stalled = ws.source_stalled;
  SimulationResult::OverloadStats ov;
  double oc_breach_since = -1.0;   ///< Breach latch (hysteresis): >= 0 on.
  double oc_last_consult = -1e300;
  double active_shed = 0.0;        ///< Control-directed source drop rate.
  bool overload_signalled = false;
  double recent_latency_max = 0.0;
  // Overflow eviction and directive shedding draw from a control stream
  // derived by constant mixing — never an extra master.Fork() — so runs
  // without those features keep their historical random streams.
  Rng control_rng(options.seed ^ 0x0ddba11c0ffee5ULL);

  // Latency collection: fixed-memory streaming summary on the hot path;
  // exact store-all mode for tests and for incident analysis (the phase
  // split needs the full timed series).
  LatencyStatsOptions lat_opts;
  if (!options.exact_percentiles && options.failures == nullptr) {
    lat_opts.reservoir = options.latency_reservoir;
    // Independent of the run's random streams: derived by constant
    // mixing, never by drawing from `master`.
    lat_opts.seed = options.seed ^ 0x5ca1ab1e0ddba11ULL;
  }
  MetricsCollector metrics(num_nodes, options.utilization_window,
                           options.duration, lat_opts);

  if (ws.events.impl() != options.event_queue) {
    ws.events = EventQueue(options.event_queue);
  } else {
    ws.events.Clear();
  }
  // Unconditional: the pooled queue must not keep a stale sink across runs.
  ws.events.set_telemetry(tel);
  ws.events.Reserve(2 * num_nodes + inputs.size() + 64);
  EventQueue& events = ws.events;
  ws.network.clear();
  auto& network = ws.network;
  // Delivery batching (see SimulationOptions::batch_size): tuples pushed
  // back-to-back for the same arrival instant share one kNetworkDelivery
  // event. A batch stays open only while (a) it has room, (b) the next
  // tuple lands at exactly its instant, and (c) the queue's sequence
  // counter has not moved since the batch's event was pushed — (c) proves
  // no other event was scheduled in between, so the batched tuples would
  // have popped consecutively in the one-event-per-tuple engine anyway,
  // and (a)+(b)+(c) together make every batch size bit-exact. Once the
  // batch event pops, time has reached its instant and new deliveries
  // land strictly later (latency > 0), so a stale open batch can never
  // be matched again.
  const size_t batch_limit = std::max<size_t>(1, options.batch_size);
  double open_batch_time = 0.0;
  uint64_t open_batch_seq = 0;
  size_t open_batch_count = 0;
  ws.op_stats.assign(num_ops, SimulationResult::OperatorStats{});
  auto& op_stats = ws.op_stats;
  size_t shed_count = 0;
  size_t warmup_outputs = 0;

  // Seed the first arrival of each input.
  for (uint32_t k = 0; k < inputs.size(); ++k) {
    const double t = next_arrival(k, 0.0);
    if (std::isfinite(t) && t <= options.duration) {
      events.Push(t, EventType::kExternalArrival, k);
      ws.arrival_live[k] = 1;
    }
  }
  // Schedule the fault script.
  if (options.failures) {
    const auto& faults = options.failures->events();
    for (uint32_t i = 0; i < faults.size(); ++i) {
      if (faults[i].time <= options.duration) {
        events.Push(faults[i].time, EventType::kFault, i);
      }
    }
  }
  // First overload-detector sample.
  if (oc_on && options.overload.check_interval <= options.duration) {
    events.Push(options.overload.check_interval, EventType::kOverloadCheck, 0);
  }

  // Starts service on `node` if it is up, unstalled, and idle with work
  // queued. A node with a congested downstream (stall_refs > 0) holds its
  // queue instead of producing into the congestion.
  auto try_start = [&](uint32_t node_id, double now) {
    SimNode& node = nodes[node_id];
    if (!node_up[node_id] || stall_refs[node_id] > 0 || !node.CanStart()) {
      return;
    }
    InFlight fl;
    fl.task = node.StartService();
    fl.start = now;
    double cpu = fl.task.extra_cost;
    if (fl.task.op != Task::kCommTask) {
      const CompiledOp& op = dep.ops[fl.task.op];
      if (op.is_join) {
        auto& state = join_state[fl.task.op];
        auto& mine = state[fl.task.port & 1];
        auto& other = state[1 - (fl.task.port & 1)];
        // Evict expired tuples, probe the live window, join the window.
        const double cutoff = now - op.window;
        while (!other.empty() && other.front() < cutoff) other.pop_front();
        while (!mine.empty() && mine.front() < cutoff) mine.pop_front();
        fl.probes = other.size();
        mine.push_back(now);
        cpu += op.cost * static_cast<double>(fl.probes);
      } else {
        cpu += op.cost;
      }
    }
    fl.service = node.ServiceTime(cpu);
    inflight[node_id] = fl;
    events.Push(now + fl.service, EventType::kNodeDone, node_id,
                ++service_token[node_id]);
  };

  // Flags `n` congested once its tuple queue reaches the high-water mark.
  auto note_congestion = [&](uint32_t n, double now) {
    if (congested[n] == 0 &&
        nodes[n].tuple_queue_length() >= options.backpressure.high_water) {
      congested[n] = 1;
      ws.congested_since[n] = now;
      ++ov.congestion_episodes;
      if (tel != nullptr) tel->Count("engine.backpressure.episodes");
    }
  };

  // Parks a delivery at congested node `dst`; the sending node (when
  // there is one) stalls until the congestion clears.
  auto park_delivery = [&](const Task& task, uint32_t dst, uint32_t from) {
    ws.bp_held[dst].push_back(HeldDelivery{from, task});
    ++ov.backpressure_deferred;
    if (from != kNoUpstream) {
      char& blocked = ws.bp_blocked[from * num_nodes + dst];
      if (blocked == 0) {
        blocked = 1;
        ++stall_refs[from];
      }
    }
  };

  // Hands a tuple-task to its operator's *current* host, honouring
  // migration pauses, node liveness, backpressure, and the queue bound.
  // False iff the task was dropped as *lost* (destination down, or shed
  // during a migration pause); overflow-policy drops are accounted as
  // shed, not lost, and still return true.
  auto place_task = [&](const Task& task, uint32_t from, double now) -> bool {
    if (paused_until[task.op] > now) {
      if (shed_during_pause) {
        ++incident.migration_shed;
        return false;
      }
      migration_buffer[task.op].push_back(task);
      ++incident.migration_buffered;
      return true;
    }
    const uint32_t dst = dep.ops[task.op].node;
    if (!node_up[dst]) return false;
    if (bp_on && congested[dst] != 0) {
      park_delivery(task, dst, from);
      return true;
    }
    if (bounded) {
      const auto outcome = nodes[dst].EnqueueBounded(task, control_rng);
      if (outcome.evicted) ++ov.shed_overflow;
      if (!outcome.accepted) {
        ++ov.shed_overflow;
        return true;
      }
    } else {
      nodes[dst].Enqueue(task);
    }
    if (bp_on) note_congestion(dst, now);
    try_start(dst, now);
    return true;
  };

  // Delivers a task to an operator, possibly across the simulated network.
  auto deliver = [&](const Route& route, double origin, double now,
                     uint32_t from) {
    Task task;
    task.op = route.to_op;
    task.port = route.to_port;
    task.origin = origin;
    task.extra_cost = route.crosses_nodes ? route.comm_cost : 0.0;
    if (route.crosses_nodes && options.network_latency > 0.0) {
      const double at = now + options.network_latency;
      network.PushTuple(at, from, task);
      if (open_batch_count != 0 && open_batch_count < batch_limit &&
          at == open_batch_time && events.next_seq() == open_batch_seq) {
        ++open_batch_count;
        ++network.counts.back();
      } else {
        events.Push(at, EventType::kNetworkDelivery, 0);
        network.counts.push_back(1);
        open_batch_time = at;
        open_batch_seq = events.next_seq();
        open_batch_count = 1;
      }
    } else if (!place_task(task, from, now)) {
      ++incident.lost_network;
    }
  };

  // True when stream `k` currently feeds a congested (live, unpaused)
  // consumer node — arrivals must hold at the source.
  auto source_blocked = [&](uint32_t k, double now) -> bool {
    for (const Route& route : dep.input_routes[k]) {
      if (paused_until[route.to_op] > now) continue;
      const uint32_t dst = dep.ops[route.to_op].node;
      if (node_up[dst] != 0 && congested[dst] != 0) return true;
    }
    return false;
  };

  auto schedule_next_arrival = [&](uint32_t k, double now) {
    const double next = next_arrival(k, now);
    if (std::isfinite(next) && next <= options.duration) {
      events.Push(next, EventType::kExternalArrival, k);
      ws.arrival_live[k] = 1;
    } else {
      ws.arrival_live[k] = 0;
    }
  };

  // Fans one external tuple of stream `k` out to its consumers with the
  // full accounting (accept > reject > shed precedence per arrival).
  auto deliver_arrival = [&](uint32_t k, double origin, double now) {
    bool accepted = false;
    bool shed = false;
    bool rejected = false;
    for (const Route& route : dep.input_routes[k]) {
      // External ingestion: receiver pays the arc cost, no network hop
      // is simulated (sources push directly into the cluster).
      Task task;
      task.op = route.to_op;
      task.port = route.to_port;
      task.origin = origin;
      task.extra_cost = route.comm_cost;
      if (paused_until[task.op] > now) {
        // Consumer is mid-migration: hold (or shed) at the edge.
        if (shed_during_pause) {
          ++incident.migration_shed;
          shed = true;
        } else {
          migration_buffer[task.op].push_back(task);
          ++incident.migration_buffered;
          accepted = true;
        }
        continue;
      }
      const uint32_t dst_node = dep.ops[route.to_op].node;
      if (!node_up[dst_node]) {
        rejected = true;  // crashed node: arrivals bounce
        continue;
      }
      if (bp_on && congested[dst_node] != 0) {
        // Backpressured edge: park rather than drop (the stall is the
        // throttle; the tuple keeps its origin and pays it as latency).
        park_delivery(task, dst_node, kNoUpstream);
        accepted = true;
        continue;
      }
      if (options.shed_queue_threshold > 0 &&
          nodes[dst_node].queue_length() >= options.shed_queue_threshold) {
        shed = true;  // overload response: drop at the edge
        continue;
      }
      if (bounded) {
        const auto outcome = nodes[dst_node].EnqueueBounded(task, control_rng);
        if (outcome.evicted) ++ov.shed_overflow;
        if (!outcome.accepted) {
          shed = true;  // bounded ingress: tail-dropped at the edge
          continue;
        }
      } else {
        nodes[dst_node].Enqueue(task);
      }
      if (bp_on) note_congestion(dst_node, now);
      try_start(dst_node, now);
      accepted = true;
    }
    if (accepted) {
      metrics.RecordInput();
    } else if (rejected) {
      ++incident.rejected_inputs;
    } else if (shed) {
      ++shed_count;
    }
  };

  // Clears node `n`'s congestion: unstalls its upstreams, replays (or,
  // when the node crashed, counts as lost) the parked deliveries, and
  // releases any source that is no longer blocked.
  auto release_congestion = [&](uint32_t n, double now, bool replay) {
    congested[n] = 0;
    ov.node_congested_seconds += now - ws.congested_since[n];
    for (uint32_t a = 0; a < num_nodes; ++a) {
      char& blocked = ws.bp_blocked[a * num_nodes + n];
      if (blocked != 0) {
        blocked = 0;
        assert(stall_refs[a] > 0);
        --stall_refs[a];
      }
    }
    ws.bp_release_scratch.clear();
    std::swap(ws.bp_release_scratch, ws.bp_held[n]);
    for (const HeldDelivery& h : ws.bp_release_scratch) {
      if (!replay) {
        ++incident.lost_network;  // parked at a node that then crashed
      } else if (!place_task(h.task, h.from, now)) {
        ++incident.lost_network;
      }
    }
    for (uint32_t a = 0; a < num_nodes; ++a) {
      if (stall_refs[a] == 0) try_start(a, now);
    }
    for (uint32_t k = 0; k < source_stalled.size(); ++k) {
      if (source_stalled[k] == 0 || source_blocked(k, now)) continue;
      source_stalled[k] = 0;
      ov.source_stall_seconds += now - ws.source_stall_since[k];
      deliver_arrival(k, ws.source_held_origin[k], now);
      schedule_next_arrival(k, now);
    }
  };

  // Drains congestion state once the queue falls to the low-water mark.
  auto maybe_clear_congestion = [&](uint32_t n, double now) {
    if (!bp_on || congested[n] == 0) return;
    if (nodes[n].tuple_queue_length() > bp_low) return;
    release_congestion(n, now, /*replay=*/true);
  };

  // Applies a control-agent plan update — crash repair or overload
  // re-placement take the identical path: re-route in place, start the
  // migration pauses, and re-home tasks already queued for the moved
  // operators.
  auto apply_plan = [&](const PlanUpdate& update, double now) -> Status {
    telemetry::TraceSpan reassign_span(tel, "supervisor", "reassign");
    auto moved = ReassignOperators(dep, update.assignment);
    if (!moved.ok()) return moved.status();
    shed_during_pause = update.shed_during_pause;
    incident.operators_moved += moved->size();
    if (incident.plan_applied_time < 0) {
      incident.plan_applied_time = now;
    }
    if (tel != nullptr) {
      tel->Count("supervisor.plan_updates");
      tel->Count("supervisor.operators_moved", moved->size());
    }
    if (recorder != nullptr) {
      recorder->Note("plan applied at t=" + std::to_string(now) + ", moved " +
                     std::to_string(moved->size()) + " operators");
    }
    if (!moved->empty()) {
      std::vector<char> is_moved(dep.ops.size(), 0);
      for (uint32_t j : *moved) is_moved[j] = 1;
      if (update.migration_pause > 0.0) {
        for (uint32_t j : *moved) {
          paused_until[j] = now + update.migration_pause;
          if (!update.shed_during_pause) {
            events.Push(paused_until[j], EventType::kMigrationRelease, j);
          }
        }
      }
      // Tasks already queued on survivors for a moved operator follow
      // it to its new host (through the migration pause, if any).
      for (uint32_t i = 0; i < nodes.size(); ++i) {
        if (!node_up[i]) continue;
        auto orphaned = nodes[i].ExtractIf([&](const Task& t) {
          return t.op != Task::kCommTask && is_moved[t.op];
        });
        for (const Task& t : orphaned) {
          if (!place_task(t, kNoUpstream, now)) ++incident.lost_network;
        }
      }
      // The extraction may have drained a congested queue.
      if (bp_on) {
        for (uint32_t i = 0; i < num_nodes; ++i) {
          if (node_up[i]) maybe_clear_congestion(i, now);
        }
      }
    }
    return Status::OK();
  };

  setup_span.End();
  telemetry::TraceSpan run_span(tel, "engine", "run");

  uint64_t processed_events = 0;
  while (!events.empty()) {
    const Event ev = events.Pop();
    if (ev.time > options.duration) break;
    const double now = ev.time;
    // A delivery event carries a whole tuple batch; count the batch so
    // processed_events (and the max_events guard) stay per-tuple,
    // identical for every batch size.
    uint32_t batch_n = 1;
    if (ev.type == EventType::kNetworkDelivery) {
      batch_n = network.counts.front();
      network.counts.pop_front();
    }

    processed_events += batch_n;

    if (processed_events > options.max_events) {
      // Name the hot spot so runaway-load aborts are diagnosable.
      size_t hot_node = 0;
      for (size_t i = 1; i < nodes.size(); ++i) {
        if (nodes[i].queue_length() > nodes[hot_node].queue_length()) {
          hot_node = i;
        }
      }
      const auto [hot_op, hot_count] = nodes[hot_node].HottestOperator();
      std::string msg = "simulation exceeded max_events at t=" +
                        std::to_string(now) + "s; hottest node " +
                        std::to_string(hot_node) + " has " +
                        std::to_string(nodes[hot_node].queue_length()) +
                        " queued tasks";
      if (hot_count > 0 && hot_op != Task::kCommTask) {
        msg += ", most at operator " + std::to_string(hot_op) + " (" +
               std::to_string(hot_count) + ")";
      }
      msg += "; reduce rates or duration";
      return Status::FailedPrecondition(std::move(msg));
    }

    if (ev.type == EventType::kNetworkDelivery) {
      // Replays the batch in push order — exactly the order the
      // one-event-per-tuple engine pops these deliveries.
      for (uint32_t i = 0; i < batch_n; ++i) {
        assert(!network.empty());
        assert(network.arrive.front() == now);
        uint32_t from = kNoUpstream;
        const Task task = network.PopTuple(from);
        if (!place_task(task, from, now)) ++incident.lost_network;
      }
      continue;
    }

    if (ev.type == EventType::kExternalArrival) {
      const uint32_t k = ev.index;
      if (oc_on) ++ws.window_arrivals[k];
      if (active_shed > 0.0 && control_rng.Bernoulli(active_shed)) {
        // Control-directed shedding drops the whole tuple at the source.
        ++ov.shed_directive;
        schedule_next_arrival(k, now);
        continue;
      }
      if (bp_on && source_blocked(k, now)) {
        // A consumer is congested: the source pauses — the tuple is held
        // (keeping its origin for latency accounting) and no further
        // arrivals are drawn until the congestion clears.
        source_stalled[k] = 1;
        ws.source_stall_since[k] = now;
        ws.source_held_origin[k] = now;
        ws.arrival_live[k] = 0;
        ++ov.source_stalls;
        continue;
      }
      deliver_arrival(k, now, now);
      schedule_next_arrival(k, now);
      continue;
    }

    if (ev.type == EventType::kFault) {
      const FaultEvent& fault = options.failures->events()[ev.index];
      if (tel != nullptr) {
        const char* kind = fault.kind == FaultKind::kCrash ? "crash"
                           : fault.kind == FaultKind::kRecover ? "recover"
                           : fault.kind == FaultKind::kSlowdown
                               ? "slowdown"
                               : "load_spike";
        tel->RecordInstant("engine", kind, fault.node, /*has_arg=*/true);
        tel->Count("engine.faults");
      }
      if (recorder != nullptr) {
        const std::string what =
            (fault.kind == FaultKind::kCrash     ? "crash node "
             : fault.kind == FaultKind::kRecover ? "recover node "
             : fault.kind == FaultKind::kSlowdown
                 ? "slowdown node "
                 : "load spike on stream ") +
            std::to_string(fault.node) + " at t=" + std::to_string(now);
        if (fault.kind == FaultKind::kCrash && !recorder->pending()) {
          // First crash: freeze pre-incident state (metrics snapshot,
          // trace rings, aggregator window) as of this instant.
          recorder->BeginIncident("node_crash", what);
        } else {
          recorder->Note(what);
        }
      }
      if (fault.kind == FaultKind::kCrash) {
        node_up[fault.node] = 0;
        // Queued and in-flight tuple-tasks are lost (comm overhead tasks
        // are bookkeeping, not tuples).
        for (const Task& t : nodes[fault.node].DrainAll()) {
          if (t.op != Task::kCommTask) ++incident.lost_queued;
        }
        if (nodes[fault.node].busy()) {
          const InFlight& fl = inflight[fault.node];
          if (fl.task.op != Task::kCommTask) ++incident.lost_inflight;
          metrics.RecordService(fault.node, fl.start, now);
          nodes[fault.node].AbortService();
          ++service_token[fault.node];  // cancel the pending kNodeDone
        }
        if (!have_incident) {
          have_incident = true;
          incident.crash_time = now;
          incident.failed_node = fault.node;
        }
        if (congested[fault.node] != 0) {
          // The congested queue is gone with the node: parked deliveries
          // are lost in transit, its upstreams and sources resume.
          release_congestion(fault.node, now, /*replay=*/false);
        }
        if (options.recovery) {
          events.Push(now + options.recovery->detection_delay(),
                      EventType::kFailureDetected, fault.node);
        }
      } else if (fault.kind == FaultKind::kRecover) {
        node_up[fault.node] = 1;
        nodes[fault.node].set_capacity(dep.system.capacities[fault.node]);
      } else if (fault.kind == FaultKind::kLoadSpike) {
        // `node` indexes the input stream. If the stream's arrival chain
        // had run dry (zero-rate tail), restart it so the spike takes
        // effect; a live chain keeps its already-drawn next arrival and
        // applies the multiplier from the following draw on.
        arrivals[fault.node]->set_rate_multiplier(fault.factor);
        if (ws.arrival_live[fault.node] == 0 &&
            source_stalled[fault.node] == 0) {
          schedule_next_arrival(fault.node, now);
        }
      } else {  // kSlowdown
        nodes[fault.node].set_capacity(dep.system.capacities[fault.node] *
                                       fault.factor);
      }
      continue;
    }

    if (ev.type == EventType::kFailureDetected) {
      if (have_incident && incident.detect_time < 0) {
        incident.detect_time = now;
      }
      telemetry::TraceSpan detect_span(tel, "supervisor", "detect",
                                       uint64_t{ev.index});
      auto update = options.recovery->OnFailureDetected(
          now, ev.index, std::vector<bool>(node_up.begin(), node_up.end()),
          dep);
      detect_span.End();
      if (update) {
        ROD_RETURN_IF_ERROR(apply_plan(*update, now));
      } else {
        // The agent declined (or its repair failed): a positive retry
        // delay re-runs the detection later, with backoff owned by the
        // agent (see Supervisor::RepairRetryDelay).
        const double retry = options.recovery->RepairRetryDelay();
        if (retry > 0.0 && now + retry <= options.duration) {
          events.Push(now + retry, EventType::kFailureDetected, ev.index);
          if (recorder != nullptr) {
            recorder->Note("supervisor: repair retry in " +
                           std::to_string(retry) + "s");
          }
          if (tel != nullptr) tel->Count("supervisor.repair_retries");
        }
      }
      continue;
    }

    if (ev.type == EventType::kMigrationRelease) {
      const uint32_t op = ev.index;
      if (paused_until[op] > now + 1e-12) continue;  // superseded pause
      // Swap the held tuples into reusable staging: place_task may buffer
      // into *other* paused operators, never back into `op` (its pause
      // has expired), so iterating the swapped-out vector is safe.
      ws.release_scratch.clear();
      std::swap(ws.release_scratch, migration_buffer[op]);
      for (const Task& t : ws.release_scratch) {
        if (!place_task(t, kNoUpstream, now)) ++incident.lost_network;
      }
      continue;
    }

    if (ev.type == EventType::kOverloadCheck) {
      // Sustained-overload detector: sample the deepest live queue, latch
      // a breach with hysteresis, and escalate to the control agent once
      // the breach has held for `sustain` seconds (one consult per
      // `cooldown`).
      uint32_t hot = 0;
      size_t depth = 0;
      for (uint32_t i = 0; i < num_nodes; ++i) {
        if (node_up[i] != 0 && nodes[i].tuple_queue_length() > depth) {
          depth = nodes[i].tuple_queue_length();
          hot = i;
        }
      }
      const bool trigger =
          depth >= options.overload.queue_high_water ||
          (options.overload.latency_slo > 0.0 &&
           recent_latency_max > options.overload.latency_slo);
      if (trigger && oc_breach_since < 0.0) oc_breach_since = now;
      if (oc_breach_since >= 0.0) {
        const bool sustained =
            now - oc_breach_since >= options.overload.sustain - 1e-12;
        if (sustained && ov.overload_detect_time < 0.0) {
          ov.overload_detect_time = now;
          if (tel != nullptr) {
            tel->RecordInstant("engine", "overload_detected", hot,
                               /*has_arg=*/true);
          }
        }
        if (sustained && options.recovery != nullptr &&
            now - oc_last_consult >= options.overload.cooldown - 1e-12) {
          OverloadSignal signal;
          signal.time = now;
          signal.hot_node = hot;
          signal.queue_depth = depth;
          signal.queue_high_water = options.overload.queue_high_water;
          signal.recent_max_latency = recent_latency_max;
          signal.sustained_seconds = now - oc_breach_since;
          signal.observed_rates.resize(inputs.size());
          for (size_t k = 0; k < inputs.size(); ++k) {
            signal.observed_rates[k] =
                static_cast<double>(ws.window_arrivals[k]) /
                options.overload.check_interval;
          }
          signal.node_up.assign(node_up.begin(), node_up.end());
          if (recorder != nullptr) {
            const std::string what =
                "overload: node " + std::to_string(hot) + " depth " +
                std::to_string(depth) + " at t=" + std::to_string(now);
            if (!recorder->pending()) {
              recorder->BeginIncident("overload", what);
            } else {
              recorder->Note(what);
            }
          }
          telemetry::TraceSpan consult_span(tel, "supervisor", "overload");
          auto decision = options.recovery->OnOverload(signal, dep);
          consult_span.End();
          ++ov.control_consults;
          oc_last_consult = now;
          if (tel != nullptr) tel->Count("engine.overload.consults");
          if (decision) {
            overload_signalled = true;
            active_shed = std::clamp(decision->shed_fraction, 0.0, 1.0);
            ov.shed_rate_applied = active_shed;
            if (recorder != nullptr) {
              recorder->Note("overload directive: shed " +
                             std::to_string(active_shed) +
                             (decision->plan ? ", re-place" : ""));
            }
            if (decision->plan) {
              ROD_RETURN_IF_ERROR(apply_plan(*decision->plan, now));
            }
          }
        }
        if (!trigger && depth <= oc_clear) {
          // Hysteresis satisfied: the overload is over.
          oc_breach_since = -1.0;
          if (overload_signalled) {
            overload_signalled = false;
            active_shed = 0.0;
            options.recovery->OnOverloadCleared(now);
            if (recorder != nullptr) {
              recorder->Note("overload cleared at t=" + std::to_string(now));
            }
            if (tel != nullptr) tel->Count("engine.overload.cleared");
          }
        }
      }
      recent_latency_max = 0.0;
      std::fill(ws.window_arrivals.begin(), ws.window_arrivals.end(),
                uint64_t{0});
      const double next = now + options.overload.check_interval;
      if (next <= options.duration) {
        events.Push(next, EventType::kOverloadCheck, 0);
      }
      continue;
    }

    // kNodeDone.
    const uint32_t node_id = ev.index;
    if (ev.tag != service_token[node_id]) continue;  // crash-cancelled
    const InFlight fl = inflight[node_id];
    nodes[node_id].FinishService(fl.service);
    metrics.RecordService(node_id, fl.start, now);

    if (fl.task.op != Task::kCommTask) {
      const CompiledOp& op = dep.ops[fl.task.op];
      const uint64_t emitted =
          op.is_join ? SampleBinomial(fl.probes, op.selectivity, emission_rng)
                     : SampleEmissions(op.selectivity, emission_rng);
      auto& stats = op_stats[fl.task.op];
      ++stats.tuples_processed;
      stats.pairs_probed += fl.probes;
      stats.tuples_emitted += emitted;
      // CPU attributable to the operator itself (comm overhead excluded).
      stats.cpu_seconds +=
          fl.service * nodes[node_id].capacity() - fl.task.extra_cost;
      for (uint64_t e = 0; e < emitted; ++e) {
        if (op.is_sink) {
          if (fl.task.origin >= options.warmup) {
            metrics.RecordOutput(fl.task.op, now - fl.task.origin, now);
            if (oc_on) {
              recent_latency_max =
                  std::max(recent_latency_max, now - fl.task.origin);
            }
          } else {
            ++warmup_outputs;
          }
          continue;
        }
        for (const Route& route : op.consumers) {
          if (route.crosses_nodes && route.comm_cost > 0.0) {
            // Send-side communication overhead on this node.
            Task send;
            send.op = Task::kCommTask;
            send.origin = fl.task.origin;
            send.extra_cost = route.comm_cost;
            nodes[node_id].Enqueue(send);
          }
          deliver(route, fl.task.origin, now, node_id);
        }
      }
    }
    try_start(node_id, now);
    maybe_clear_congestion(node_id, now);
  }

  run_span.End();
  telemetry::TraceSpan finalize_span(tel, "engine", "finalize");

  // A replay feed that hit an I/O or integrity error mid-run reports
  // end-of-stream to the event loop and latches the error; surface it
  // now rather than returning a silently truncated result.
  if (replay != nullptr) {
    ROD_RETURN_IF_ERROR(replay->status());
  }

  // Assemble results.
  SimulationResult result;
  result.processed_events = processed_events;
  result.input_tuples = metrics.inputs();
  // Degradation accounting: close out stall intervals still open at the
  // horizon, then fold the breakdown into the headline counters.
  ov.shed_edge = shed_count;
  for (uint32_t k = 0; k < source_stalled.size(); ++k) {
    if (source_stalled[k] != 0) {
      ov.source_stall_seconds += options.duration - ws.source_stall_since[k];
    }
  }
  for (uint32_t i = 0; i < num_nodes; ++i) {
    if (congested[i] != 0) {
      ov.node_congested_seconds += options.duration - ws.congested_since[i];
    }
    ov.queue_depth_high_water =
        std::max(ov.queue_depth_high_water, nodes[i].queue_high_water());
  }
  result.shed_tuples = shed_count + ov.shed_directive;
  result.output_tuples = metrics.outputs() + warmup_outputs;
  result.overload = ov;
  {
    const LatencySummary total = metrics.TotalLatency();
    result.mean_latency = total.mean;
    result.p50_latency = total.p50;
    result.p95_latency = total.p95;
    result.p99_latency = total.p99;
    result.max_latency = total.max;
  }
  for (const auto& [sink, summary] : metrics.SinkSummaries()) {
    SinkLatency s;
    s.sink_op = sink;
    s.outputs = summary.count;
    s.mean = summary.mean;
    s.p50 = summary.p50;
    s.p95 = summary.p95;
    result.sink_latencies.push_back(s);
  }
  result.node_utilization.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    result.node_utilization[i] = metrics.NodeUtilization(i, options.duration);
    result.max_node_utilization =
        std::max(result.max_node_utilization, result.node_utilization[i]);
    result.final_backlog += nodes[i].queue_length() + (nodes[i].busy() ? 1 : 0);
  }
  for (const auto& held : migration_buffer) result.final_backlog += held.size();
  for (const auto& held : ws.bp_held) result.final_backlog += held.size();
  result.op_stats = op_stats;
  result.overloaded_windows =
      metrics.OverloadedWindows(options.overload_threshold);
  result.total_windows = metrics.num_windows();
  // Saturation: a node pegged for a large share of the run, or a backlog
  // disproportionate to the input volume remaining at the horizon.
  const double backlog_limit =
      50.0 + 0.02 * static_cast<double>(result.input_tuples);
  result.saturated =
      result.overloaded_windows * 2 >= result.total_windows ||
      static_cast<double>(result.final_backlog) > backlog_limit;

  if (have_incident) {
    incident.lost_tuples = incident.lost_queued + incident.lost_inflight +
                           incident.lost_network + incident.rejected_inputs;
    incident.overload_shed = ov.total_shed();
    incident.backpressure_deferred = ov.backpressure_deferred;
    incident.source_stall_seconds = ov.source_stall_seconds;
    const double offered = static_cast<double>(
        result.input_tuples + incident.rejected_inputs + result.shed_tuples);
    incident.availability =
        offered > 0 ? static_cast<double>(result.input_tuples) / offered : 1.0;

    // Recovery point: the earliest utilization window at/after the plan
    // went live (or the crash, unsupervised) from which every remaining
    // window stays below the recovered threshold.
    const double anchor = incident.plan_applied_time >= 0.0
                              ? incident.plan_applied_time
                              : incident.crash_time;
    const size_t num_w = metrics.num_windows();
    const size_t start_w = std::min(
        num_w, static_cast<size_t>(anchor / options.utilization_window));
    size_t recovered_w = num_w;
    for (size_t w = num_w; w-- > start_w;) {
      if (metrics.WindowMaxBusyFraction(w) < options.recovered_utilization) {
        recovered_w = w;
      } else {
        break;
      }
    }
    double recovery_abs = options.duration;
    if (recovered_w < num_w) {
      incident.recovered = true;
      recovery_abs =
          static_cast<double>(recovered_w) * options.utilization_window;
      incident.recovery_time =
          std::max(0.0, recovery_abs - incident.crash_time);
      for (size_t w = recovered_w; w < num_w; ++w) {
        incident.post_recovery_max_utilization =
            std::max(incident.post_recovery_max_utilization,
                     metrics.WindowMaxBusyFraction(w));
      }
    }

    // Phase latency split by output completion time. Runs with a failure
    // schedule always retain the full series, and completion times are
    // nondecreasing (events fire in time order), so the phases are
    // contiguous spans located by binary search — no per-phase copies.
    const std::span<const double> lat(metrics.latencies());
    const auto& times = metrics.output_times();
    assert(lat.size() == times.size());
    const size_t crash_idx = static_cast<size_t>(
        std::lower_bound(times.begin(), times.end(), incident.crash_time) -
        times.begin());
    const size_t recov_idx = static_cast<size_t>(
        std::lower_bound(times.begin() + static_cast<ptrdiff_t>(crash_idx),
                         times.end(), recovery_abs) -
        times.begin());
    incident.pre_failure =
        SummarizePhase(lat.subspan(0, crash_idx), ws.phase_scratch);
    incident.during_recovery = SummarizePhase(
        lat.subspan(crash_idx, recov_idx - crash_idx), ws.phase_scratch);
    incident.post_recovery =
        SummarizePhase(lat.subspan(recov_idx), ws.phase_scratch);
    result.incident = incident;
  }

  if (tel != nullptr) {
    tel->Count("engine.runs");
    tel->Count("engine.events_processed", result.processed_events);
    tel->Count("engine.input_tuples", result.input_tuples);
    tel->Count("engine.output_tuples", result.output_tuples);
    tel->Count("engine.shed_tuples", result.shed_tuples);
    // Overload families are registered (at zero) on every instrumented
    // run, so the live plane always exposes them.
    tel->Count("engine.tuples_shed", ov.total_shed());
    tel->gauge("node.queue_depth_high_water")
        .Max(static_cast<double>(ov.queue_depth_high_water));
    tel->Count("engine.backpressure.deferred", ov.backpressure_deferred);
    if (ov.source_stall_seconds > 0.0) {
      tel->Observe("engine.source_stall_seconds", ov.source_stall_seconds);
    }
    tel->Observe("engine.run.mean_latency_ms", result.mean_latency * 1e3);
    tel->Observe("engine.run.max_utilization", result.max_node_utilization);
    if (result.incident) {
      tel->Count("engine.incident.lost_tuples", result.incident->lost_tuples);
      tel->Count("engine.migration.buffered",
                 result.incident->migration_buffered);
      tel->Count("engine.migration.shed", result.incident->migration_shed);
    }
  }
  if (recorder != nullptr && recorder->pending()) {
    // Close out the incident opened at the crash instant: the full
    // IncidentReport is only known now that the run has finished.
    if (result.incident) {
      const IncidentReport& report = *result.incident;
      recorder->CompleteIncident([&report](telemetry::JsonWriter& w) {
        WriteIncidentReportJson(report, w);
      });
    } else {
      recorder->CompleteIncident();
    }
  }
  return result;
}

void WriteIncidentReportJson(const IncidentReport& report,
                             telemetry::JsonWriter& w) {
  const auto write_phase = [&w](const char* key, const PhaseLatency& p) {
    w.Key(key).BeginObjectInline();
    w.Key("outputs").Uint(p.outputs);
    w.Key("mean").Double(p.mean);
    w.Key("p50").Double(p.p50);
    w.Key("p95").Double(p.p95);
    w.Key("p99").Double(p.p99);
    w.EndObject();
  };
  // Inline so the flight recorder can splice the rendered object into
  // its per-incident artifact via JsonWriter::Raw.
  w.BeginObjectInline();
  w.Key("crash_time").Double(report.crash_time);
  w.Key("failed_node").Uint(report.failed_node);
  w.Key("detect_time").Double(report.detect_time);
  w.Key("plan_applied_time").Double(report.plan_applied_time);
  w.Key("operators_moved").Uint(report.operators_moved);
  w.Key("lost_queued").Uint(report.lost_queued);
  w.Key("lost_inflight").Uint(report.lost_inflight);
  w.Key("lost_network").Uint(report.lost_network);
  w.Key("rejected_inputs").Uint(report.rejected_inputs);
  w.Key("lost_tuples").Uint(report.lost_tuples);
  w.Key("migration_buffered").Uint(report.migration_buffered);
  w.Key("migration_shed").Uint(report.migration_shed);
  w.Key("overload_shed").Uint(report.overload_shed);
  w.Key("backpressure_deferred").Uint(report.backpressure_deferred);
  w.Key("source_stall_seconds").Double(report.source_stall_seconds);
  w.Key("recovered").Bool(report.recovered);
  w.Key("recovery_time").Double(report.recovery_time);
  w.Key("post_recovery_max_utilization")
      .Double(report.post_recovery_max_utilization);
  w.Key("availability").Double(report.availability);
  write_phase("pre_failure", report.pre_failure);
  write_phase("during_recovery", report.during_recovery);
  write_phase("post_recovery", report.post_recovery);
  w.EndObject();
}

Result<SimulationResult> SimulatePlacement(
    const query::QueryGraph& graph, const place::Placement& placement,
    const place::SystemSpec& system,
    const std::vector<trace::RateTrace>& inputs,
    const SimulationOptions& options) {
  auto deployment = CompileDeployment(graph, placement, system);
  if (!deployment.ok()) return deployment.status();
  return Simulate(*deployment, inputs, options);
}

Result<bool> ProbeFeasibleAt(const query::QueryGraph& graph,
                             const place::Placement& placement,
                             const place::SystemSpec& system,
                             std::span<const double> rates,
                             const SimulationOptions& options) {
  if (rates.size() != graph.num_input_streams()) {
    return Status::InvalidArgument("one rate per input stream required");
  }
  std::vector<trace::RateTrace> traces;
  traces.reserve(rates.size());
  for (double r : rates) {
    trace::RateTrace t;
    t.window_sec = options.duration;
    t.rates = {r};
    traces.push_back(std::move(t));
  }
  auto result = SimulatePlacement(graph, placement, system, traces, options);
  if (!result.ok()) return result.status();
  return !result->saturated;
}

}  // namespace rod::sim
