// Copyright (c) the ROD reproduction authors.
//
// Statistics-driven model calibration — the paper's prototype workflow
// (§7.1): "To measure the operator costs and selectivities in the
// prototype implementation, we randomly distribute the operators and run
// the system for a sufficiently long time to gather stable statistics."
// Given the per-operator counters of a trial run, this module estimates
// each operator's cost and selectivity and rebuilds the query graph with
// the measured values, so placement can be driven by observations instead
// of declared specs.

#ifndef ROD_RUNTIME_CALIBRATE_H_
#define ROD_RUNTIME_CALIBRATE_H_

#include "common/status.h"
#include "query/query_graph.h"
#include "runtime/engine.h"

namespace rod::sim {

/// Calibration settings.
struct CalibrateOptions {
  /// Operators with fewer processed tuples (joins: probed pairs) than this
  /// keep their declared spec instead of a noisy estimate.
  size_t min_samples = 20;
};

/// Returns a copy of `topology` whose operator costs and selectivities are
/// replaced by estimates from `run`:
///   cost        = cpu_seconds / tuples_processed   (joins: / pairs_probed)
///   selectivity = tuples_emitted / tuples_processed (joins: / pairs)
/// Structure (streams, arcs, kinds, windows, comm costs) is preserved.
/// Fails if `run.op_stats` does not cover the topology.
Result<query::QueryGraph> CalibrateFromRun(const query::QueryGraph& topology,
                                           const SimulationResult& run,
                                           const CalibrateOptions& options = {});

/// Convenience: run a random trial placement (the paper's procedure) at
/// the given constant input rates for `duration` seconds and calibrate
/// from it.
Result<query::QueryGraph> CalibrateWithTrialRun(
    const query::QueryGraph& topology, const place::SystemSpec& system,
    std::span<const double> rates, double duration = 60.0,
    uint64_t seed = 0xca11b7a7ULL, const CalibrateOptions& options = {});

}  // namespace rod::sim

#endif  // ROD_RUNTIME_CALIBRATE_H_
