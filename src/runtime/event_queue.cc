#include "runtime/event_queue.h"

#include <cassert>
#include <cmath>

namespace rod::sim {

void EventQueue::Push(double time, EventType type, uint32_t index,
                      uint64_t tag) {
  assert(std::isfinite(time));
  heap_.push(Event{time, next_seq_++, type, index, tag});
}

Event EventQueue::Pop() {
  assert(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace rod::sim
