#include "runtime/event_queue.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rod::sim {

size_t EventQueue::FindMinBucketSparse() {
  // Sparse epoch: no event within a full wrap of the cursor. Find the
  // global minimum directly and jump the cursor to its slot. Distinct
  // buckets never hold equal-time fronts (equal times share a slot), so
  // the (time, seq) comparison below is a total order over fronts.
  size_t best = buckets_.size();
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    if (best == buckets_.size() ||
        Later{}(buckets_[best].front(), buckets_[b].front())) {
      best = b;
    }
  }
  assert(best < buckets_.size());
  cur_vslot_ = VslotOf(buckets_[best].front().time);
  cur_bucket_ = static_cast<size_t>(cur_vslot_) & mask_;
  return best;
}

void EventQueue::Rebuild(size_t new_bucket_count) {
  if (telemetry_ != nullptr) {
    telemetry_->Count("engine.calendar.resizes");
    telemetry_->RecordInstant("engine", "calendar_resize", new_bucket_count,
                              /*has_arg=*/true);
  }
  scratch_.clear();
  scratch_.reserve(size_);
  for (auto& bucket : buckets_) {
    scratch_.insert(scratch_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  if (new_bucket_count != buckets_.size()) {
    buckets_.resize(new_bucket_count);
    mask_ = new_bucket_count - 1;
  }
  if (scratch_.empty()) {
    cur_vslot_ = 0;
    cur_bucket_ = 0;
    return;
  }
  double min_time = scratch_.front().time;
  double max_time = min_time;
  for (const Event& e : scratch_) {
    min_time = std::min(min_time, e.time);
    max_time = std::max(max_time, e.time);
  }
  base_ = min_time;
  // About one event per virtual slot: with bucket_count ~= size / 2 the
  // live span covers a couple of cursor wraps, keeping both the year
  // scan and the per-bucket heaps short.
  width_ = (max_time - min_time) / static_cast<double>(scratch_.size());
  if (!(width_ > 0.0)) width_ = 1.0;
  inv_width_ = 1.0 / width_;
  // A denormal width would overflow the inverse; a degenerate (single
  // slot) calendar is slow but still correct, so just keep it finite.
  if (!std::isfinite(inv_width_)) {
    width_ = 1.0;
    inv_width_ = 1.0;
  }
  for (const Event& e : scratch_) {
    auto& bucket = buckets_[static_cast<size_t>(VslotOf(e.time)) & mask_];
    bucket.push_back(e);
    std::push_heap(bucket.begin(), bucket.end(), Later{});
  }
  cur_vslot_ = 0;  // base_ is the minimum event time, i.e. slot 0.
  cur_bucket_ = 0;
}

void EventQueue::Reserve(size_t n) {
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    heap_.reserve(n);
    return;
  }
  scratch_.reserve(n);
  size_t bucket_count = kMinBuckets;
  while (bucket_count < kMaxBuckets && 2 * bucket_count < n) {
    bucket_count *= 2;
  }
  if (bucket_count > buckets_.size() && size_ == 0) {
    buckets_.resize(bucket_count);
    mask_ = bucket_count - 1;
  }
}

void EventQueue::Clear() {
  heap_.clear();
  for (auto& bucket : buckets_) bucket.clear();
  size_ = 0;
  next_seq_ = 0;
  pending_high_water_ = 0;
  base_ = 0.0;
  width_ = 1.0;
  inv_width_ = 1.0;
  cur_vslot_ = 0;
  cur_bucket_ = 0;
}

}  // namespace rod::sim
