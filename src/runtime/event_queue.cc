#include "runtime/event_queue.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rod::sim {
namespace {

constexpr size_t kMinBuckets = 4;        // Power of two.
constexpr size_t kMaxBuckets = 1 << 20;  // Power of two.
constexpr uint64_t kMaxVslot = uint64_t{1} << 62;

}  // namespace

uint64_t EventQueue::VslotOf(double time) const {
  const double q = (time - base_) / width_;
  // Clamp instead of casting out-of-range doubles (UB). The clamped map
  // stays monotone, which is all pop-order correctness needs.
  if (!(q > 0.0)) return 0;
  if (q >= static_cast<double>(kMaxVslot)) return kMaxVslot;
  return static_cast<uint64_t>(q);
}

void EventQueue::Push(double time, EventType type, uint32_t index,
                      uint64_t tag) {
  assert(std::isfinite(time));
  const Event e{time, next_seq_++, type, index, tag};
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++size_;
  } else {
    PushCalendar(e);
  }
  size_high_water_.Max(static_cast<double>(size_));
}

void EventQueue::PushCalendar(const Event& e) {
  if (buckets_.empty()) {
    buckets_.resize(kMinBuckets);
    mask_ = kMinBuckets - 1;
  }
  if (size_ == 0) {
    // Re-anchor the calendar on the first event so virtual slot numbers
    // stay small; width is corrected by the next rebuild if stale.
    base_ = e.time;
    cur_vslot_ = 0;
    cur_bucket_ = 0;
  }
  const size_t bucket_count = mask_ + 1;
  if (size_ + 1 > 2 * bucket_count && bucket_count < kMaxBuckets) {
    Rebuild(bucket_count * 2);
  }
  const uint64_t vslot = VslotOf(e.time);
  if (vslot < cur_vslot_) {
    // Non-monotone push behind the cursor: walk the cursor back so the
    // "no event earlier than the cursor slot" invariant holds.
    cur_vslot_ = vslot;
    cur_bucket_ = static_cast<size_t>(vslot) & mask_;
  }
  auto& bucket = buckets_[static_cast<size_t>(vslot) & mask_];
  bucket.push_back(e);
  std::push_heap(bucket.begin(), bucket.end(), Later{});
  ++size_;
}

size_t EventQueue::FindMinBucket() {
  assert(size_ > 0);
  // Year scan: visit at most one full wrap of buckets looking for an
  // event whose virtual slot matches the cursor. The slot test reuses
  // VslotOf, so it agrees bit-for-bit with where Push filed the event.
  for (size_t step = 0; step <= mask_; ++step) {
    const auto& bucket = buckets_[cur_bucket_];
    if (!bucket.empty() && VslotOf(bucket.front().time) == cur_vslot_) {
      return cur_bucket_;
    }
    ++cur_vslot_;
    cur_bucket_ = static_cast<size_t>(cur_vslot_) & mask_;
  }
  // Sparse epoch: no event within a full wrap of the cursor. Find the
  // global minimum directly and jump the cursor to its slot. Distinct
  // buckets never hold equal-time fronts (equal times share a slot), so
  // the (time, seq) comparison below is a total order over fronts.
  size_t best = buckets_.size();
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    if (best == buckets_.size() ||
        Later{}(buckets_[best].front(), buckets_[b].front())) {
      best = b;
    }
  }
  assert(best < buckets_.size());
  cur_vslot_ = VslotOf(buckets_[best].front().time);
  cur_bucket_ = static_cast<size_t>(cur_vslot_) & mask_;
  return best;
}

const Event& EventQueue::Top() {
  assert(size_ > 0);
  if (impl_ == EventQueueImpl::kBinaryHeap) return heap_.front();
  return buckets_[FindMinBucket()].front();
}

Event EventQueue::Pop() {
  assert(size_ > 0);
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event e = heap_.back();
    heap_.pop_back();
    --size_;
    return e;
  }
  auto& bucket = buckets_[FindMinBucket()];
  std::pop_heap(bucket.begin(), bucket.end(), Later{});
  Event e = bucket.back();
  bucket.pop_back();
  --size_;
  const size_t bucket_count = mask_ + 1;
  if (bucket_count > kMinBuckets && size_ < bucket_count / 8) {
    Rebuild(bucket_count / 2);
  }
  return e;
}

void EventQueue::Rebuild(size_t new_bucket_count) {
  if (telemetry_ != nullptr) {
    telemetry_->Count("engine.calendar.resizes");
    telemetry_->RecordInstant("engine", "calendar_resize", new_bucket_count,
                              /*has_arg=*/true);
  }
  scratch_.clear();
  scratch_.reserve(size_);
  for (auto& bucket : buckets_) {
    scratch_.insert(scratch_.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  if (new_bucket_count != buckets_.size()) {
    buckets_.resize(new_bucket_count);
    mask_ = new_bucket_count - 1;
  }
  if (scratch_.empty()) {
    cur_vslot_ = 0;
    cur_bucket_ = 0;
    return;
  }
  double min_time = scratch_.front().time;
  double max_time = min_time;
  for (const Event& e : scratch_) {
    min_time = std::min(min_time, e.time);
    max_time = std::max(max_time, e.time);
  }
  base_ = min_time;
  // About one event per virtual slot: with bucket_count ~= size / 2 the
  // live span covers a couple of cursor wraps, keeping both the year
  // scan and the per-bucket heaps short.
  width_ = (max_time - min_time) / static_cast<double>(scratch_.size());
  if (!(width_ > 0.0)) width_ = 1.0;
  for (const Event& e : scratch_) {
    auto& bucket = buckets_[static_cast<size_t>(VslotOf(e.time)) & mask_];
    bucket.push_back(e);
    std::push_heap(bucket.begin(), bucket.end(), Later{});
  }
  cur_vslot_ = 0;  // base_ is the minimum event time, i.e. slot 0.
  cur_bucket_ = 0;
}

void EventQueue::Reserve(size_t n) {
  if (impl_ == EventQueueImpl::kBinaryHeap) {
    heap_.reserve(n);
    return;
  }
  scratch_.reserve(n);
  size_t bucket_count = kMinBuckets;
  while (bucket_count < kMaxBuckets && 2 * bucket_count < n) {
    bucket_count *= 2;
  }
  if (bucket_count > buckets_.size() && size_ == 0) {
    buckets_.resize(bucket_count);
    mask_ = bucket_count - 1;
  }
}

void EventQueue::Clear() {
  heap_.clear();
  for (auto& bucket : buckets_) bucket.clear();
  size_ = 0;
  next_seq_ = 0;
  base_ = 0.0;
  width_ = 1.0;
  cur_vslot_ = 0;
  cur_bucket_ = 0;
}

}  // namespace rod::sim
