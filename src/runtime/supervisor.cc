#include "runtime/supervisor.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace rod::sim {

namespace {

void NoteIncident(telemetry::FlightRecorder* recorder, std::string text) {
  if (recorder != nullptr) recorder->Note(std::move(text));
}

}  // namespace

void Supervisor::ObserveLiveness(const std::vector<bool>& node_up) {
  if (last_known_up_.size() < node_up.size()) {
    last_known_up_.resize(node_up.size(), true);
    crash_counts_.resize(node_up.size(), 0);
    quarantined_.resize(node_up.size(), 0);
  }
  for (size_t i = 0; i < node_up.size(); ++i) {
    if (last_known_up_[i] && !node_up[i]) {
      ++crash_counts_[i];
      if (options_.quarantine_after > 0 && quarantined_[i] == 0 &&
          crash_counts_[i] >= options_.quarantine_after) {
        quarantined_[i] = 1;
        NoteIncident(options_.flight_recorder,
                     "supervisor: node " + std::to_string(i) +
                         " quarantined after " +
                         std::to_string(crash_counts_[i]) + " crashes");
        if (options_.telemetry != nullptr) {
          options_.telemetry->Count("supervisor.quarantines");
        }
      }
    }
    last_known_up_[i] = node_up[i];
  }
}

size_t Supervisor::num_quarantined() const {
  size_t count = 0;
  for (char q : quarantined_) count += (q != 0);
  return count;
}

void Supervisor::Reset() {
  repairs_ = 0;
  operators_moved_ = 0;
  last_plane_distance_ = 0.0;
  last_status_ = Status::OK();
  retry_pending_ = false;
  retries_attempted_ = 0;
  repair_retries_ = 0;
  last_known_up_.clear();
  crash_counts_.clear();
  quarantined_.clear();
  overload_consults_ = 0;
  overload_rebalances_ = 0;
  overload_sheds_ = 0;
  last_shed_fraction_ = 0.0;
}

double Supervisor::RepairRetryDelay() {
  if (!retry_pending_) return 0.0;
  if (retries_attempted_ >= options_.max_repair_retries) {
    NoteIncident(options_.flight_recorder,
                 "supervisor: repair retries exhausted (" +
                     std::to_string(retries_attempted_) + ")");
    return 0.0;
  }
  const double delay =
      std::min(options_.repair_retry_backoff *
                   std::ldexp(1.0, static_cast<int>(retries_attempted_)),
               options_.repair_retry_backoff_max);
  ++retries_attempted_;
  ++repair_retries_;
  return delay;
}

std::optional<PlanUpdate> Supervisor::OnFailureDetected(
    double now, uint32_t failed_node, const std::vector<bool>& node_up,
    const Deployment& deployment) {
  NoteIncident(options_.flight_recorder,
               "supervisor: failure of node " + std::to_string(failed_node) +
                   " detected at t=" + std::to_string(now));
  ObserveLiveness(node_up);
  if (options_.policy == Policy::kNone) return std::nullopt;

  const size_t n = deployment.num_nodes();
  const size_t m = deployment.ops.size();
  std::vector<size_t> assignment(m);
  for (size_t j = 0; j < m; ++j) assignment[j] = deployment.ops[j].node;

  // Quarantined nodes are treated as down for placement purposes — unless
  // that would leave no home at all, in which case survival beats policy.
  std::vector<bool> usable(node_up);
  bool any_usable = false;
  for (size_t i = 0; i < n; ++i) {
    if (i < quarantined_.size() && quarantined_[i] != 0) usable[i] = false;
    any_usable = any_usable || usable[i];
  }
  if (!any_usable) {
    usable = node_up;
    NoteIncident(options_.flight_recorder,
                 "supervisor: quarantine waived, no other node up");
  }

  if (options_.policy == Policy::kNaiveDump) {
    // Baseline incident response: pile every orphan onto the first
    // surviving node, keep everything else where it is.
    size_t dump = n;
    for (size_t i = 0; i < n; ++i) {
      if (usable[i]) {
        dump = i;
        break;
      }
    }
    if (dump == n) {
      last_status_ = Status::FailedPrecondition("no surviving node");
      retry_pending_ = true;
      return std::nullopt;
    }
    bool changed = false;
    for (size_t j = 0; j < m; ++j) {
      if (!usable[assignment[j]]) {
        assignment[j] = dump;
        changed = true;
      }
    }
    if (!changed) return std::nullopt;
    ++repairs_;
    if (options_.telemetry != nullptr) {
      options_.telemetry->Count("supervisor.repairs");
    }
    NoteIncident(options_.flight_recorder, "supervisor: naive dump repair");
    last_status_ = Status::OK();
    retry_pending_ = false;
    retries_attempted_ = 0;
    return PlanUpdate{std::move(assignment), options_.migration_pause,
                      options_.shed_during_pause};
  }

  // kRepair: compact the survivors into a fresh SystemSpec, repair the
  // placement incrementally, then expand the result back to the full
  // cluster's node ids (crashed nodes keep their slot, hosting nothing).
  std::vector<size_t> survivor_ids;
  std::vector<size_t> node_mapping(n, place::kUnassigned);
  place::SystemSpec survivors;
  for (size_t i = 0; i < n; ++i) {
    if (!usable[i]) continue;
    node_mapping[i] = survivor_ids.size();
    survivor_ids.push_back(i);
    survivors.capacities.push_back(deployment.system.capacities[i]);
  }
  if (survivor_ids.empty()) {
    last_status_ = Status::FailedPrecondition("no surviving node");
    retry_pending_ = true;
    return std::nullopt;
  }

  place::RepairOptions repair_options;
  repair_options.rod = options_.rod;
  repair_options.max_rebalance_moves = options_.rebalance_budget;
  telemetry::TraceSpan repair_span(options_.telemetry, "supervisor", "repair");
  auto repaired = place::RepairPlacement(
      *model_, place::Placement(n, assignment), survivors, node_mapping,
      repair_options);
  repair_span.End();
  if (!repaired.ok()) {
    NoteIncident(options_.flight_recorder,
                 "supervisor: repair failed: " + repaired.status().ToString());
    last_status_ = repaired.status();
    retry_pending_ = true;
    return std::nullopt;
  }
  ++repairs_;
  if (options_.telemetry != nullptr) {
    options_.telemetry->Count("supervisor.repairs");
  }
  NoteIncident(options_.flight_recorder,
               "supervisor: repair moved " +
                   std::to_string(repaired->operators_moved) + " operators");
  operators_moved_ += repaired->operators_moved;
  last_plane_distance_ = repaired->plane_distance;
  last_status_ = Status::OK();
  retry_pending_ = false;
  retries_attempted_ = 0;

  std::vector<size_t> expanded(m);
  for (size_t j = 0; j < m; ++j) {
    expanded[j] = survivor_ids[repaired->placement.node_of(j)];
  }
  return PlanUpdate{std::move(expanded), options_.migration_pause,
                    options_.shed_during_pause};
}

std::optional<OverloadDecision> Supervisor::OnOverload(
    const OverloadSignal& signal, const Deployment& deployment) {
  ++overload_consults_;
  if (options_.telemetry != nullptr) {
    options_.telemetry->Count("supervisor.overload_consults");
  }
  NoteIncident(options_.flight_recorder,
               "supervisor: overload on node " +
                   std::to_string(signal.hot_node) + " (depth " +
                   std::to_string(signal.queue_depth) + ", sustained " +
                   std::to_string(signal.sustained_seconds) + "s)");
  if (options_.policy == Policy::kNone) return std::nullopt;

  double total_rate = 0.0;
  for (double r : signal.observed_rates) total_rate += r;

  // Expected tuples lost to shedding over the remaining overload horizon.
  const double shed_cost =
      options_.overload_shed_fraction * total_rate * options_.overload_horizon;

  // Candidate re-placement: incremental ROD over the up, non-quarantined
  // nodes with the overload rebalance budget. Every moved operator pauses
  // for the migration pause, during which its share of the input keeps
  // arriving — that is the migration cost.
  if (options_.overload_rebalance_budget > 0 &&
      options_.policy == Policy::kRepair) {
    const size_t n = deployment.num_nodes();
    const size_t m = deployment.ops.size();
    std::vector<size_t> assignment(m);
    for (size_t j = 0; j < m; ++j) assignment[j] = deployment.ops[j].node;

    std::vector<size_t> survivor_ids;
    std::vector<size_t> node_mapping(n, place::kUnassigned);
    place::SystemSpec survivors;
    for (size_t i = 0; i < n; ++i) {
      if (i < signal.node_up.size() && !signal.node_up[i]) continue;
      if (i < quarantined_.size() && quarantined_[i] != 0) continue;
      node_mapping[i] = survivor_ids.size();
      survivor_ids.push_back(i);
      survivors.capacities.push_back(deployment.system.capacities[i]);
    }
    if (!survivor_ids.empty()) {
      place::RepairOptions repair_options;
      repair_options.rod = options_.rod;
      repair_options.max_rebalance_moves = options_.overload_rebalance_budget;
      telemetry::TraceSpan span(options_.telemetry, "supervisor",
                                "overload_rebalance");
      auto repaired = place::RepairPlacement(
          *model_, place::Placement(n, assignment), survivors, node_mapping,
          repair_options);
      span.End();
      if (repaired.ok() && repaired->operators_moved > 0) {
        const double migrate_cost = static_cast<double>(
                                        repaired->operators_moved) *
                                    options_.migration_pause * total_rate /
                                    std::max<size_t>(m, 1);
        if (migrate_cost < shed_cost) {
          ++overload_rebalances_;
          if (options_.telemetry != nullptr) {
            options_.telemetry->Count("supervisor.overload_rebalances");
          }
          NoteIncident(options_.flight_recorder,
                       "supervisor: overload re-placement, moved " +
                           std::to_string(repaired->operators_moved) +
                           " operators (cost " + std::to_string(migrate_cost) +
                           " < shed " + std::to_string(shed_cost) + ")");
          last_plane_distance_ = repaired->plane_distance;
          last_status_ = Status::OK();
          std::vector<size_t> expanded(m);
          for (size_t j = 0; j < m; ++j) {
            expanded[j] = survivor_ids[repaired->placement.node_of(j)];
          }
          OverloadDecision decision;
          decision.plan = PlanUpdate{std::move(expanded),
                                     options_.migration_pause,
                                     options_.shed_during_pause};
          return decision;
        }
      }
    }
  }

  // Fall back to QoS-blind source shedding: cheaper than the re-placement
  // (or no useful re-placement exists).
  ++overload_sheds_;
  last_shed_fraction_ = options_.overload_shed_fraction;
  if (options_.telemetry != nullptr) {
    options_.telemetry->Count("supervisor.overload_sheds");
  }
  NoteIncident(options_.flight_recorder,
               "supervisor: shedding " +
                   std::to_string(options_.overload_shed_fraction) +
                   " of arrivals");
  OverloadDecision decision;
  decision.shed_fraction = options_.overload_shed_fraction;
  return decision;
}

void Supervisor::OnOverloadCleared(double now) {
  last_shed_fraction_ = 0.0;
  NoteIncident(options_.flight_recorder,
               "supervisor: overload cleared at t=" + std::to_string(now));
  if (options_.telemetry != nullptr) {
    options_.telemetry->Count("supervisor.overload_cleared");
  }
}

}  // namespace rod::sim
