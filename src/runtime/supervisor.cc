#include "runtime/supervisor.h"

#include <string>
#include <utility>

namespace rod::sim {

namespace {

void NoteIncident(telemetry::FlightRecorder* recorder, std::string text) {
  if (recorder != nullptr) recorder->Note(std::move(text));
}

}  // namespace

std::optional<PlanUpdate> Supervisor::OnFailureDetected(
    double now, uint32_t failed_node, const std::vector<bool>& node_up,
    const Deployment& deployment) {
  NoteIncident(options_.flight_recorder,
               "supervisor: failure of node " + std::to_string(failed_node) +
                   " detected at t=" + std::to_string(now));
  if (options_.policy == Policy::kNone) return std::nullopt;

  const size_t n = deployment.num_nodes();
  const size_t m = deployment.ops.size();
  std::vector<size_t> assignment(m);
  for (size_t j = 0; j < m; ++j) assignment[j] = deployment.ops[j].node;

  if (options_.policy == Policy::kNaiveDump) {
    // Baseline incident response: pile every orphan onto the first
    // surviving node, keep everything else where it is.
    size_t dump = n;
    for (size_t i = 0; i < n; ++i) {
      if (node_up[i]) {
        dump = i;
        break;
      }
    }
    if (dump == n) {
      last_status_ = Status::FailedPrecondition("no surviving node");
      return std::nullopt;
    }
    bool changed = false;
    for (size_t j = 0; j < m; ++j) {
      if (!node_up[assignment[j]]) {
        assignment[j] = dump;
        changed = true;
      }
    }
    if (!changed) return std::nullopt;
    ++repairs_;
    if (options_.telemetry != nullptr) {
      options_.telemetry->Count("supervisor.repairs");
    }
    NoteIncident(options_.flight_recorder, "supervisor: naive dump repair");
    last_status_ = Status::OK();
    return PlanUpdate{std::move(assignment), options_.migration_pause,
                      options_.shed_during_pause};
  }

  // kRepair: compact the survivors into a fresh SystemSpec, repair the
  // placement incrementally, then expand the result back to the full
  // cluster's node ids (crashed nodes keep their slot, hosting nothing).
  std::vector<size_t> survivor_ids;
  std::vector<size_t> node_mapping(n, place::kUnassigned);
  place::SystemSpec survivors;
  for (size_t i = 0; i < n; ++i) {
    if (!node_up[i]) continue;
    node_mapping[i] = survivor_ids.size();
    survivor_ids.push_back(i);
    survivors.capacities.push_back(deployment.system.capacities[i]);
  }
  if (survivor_ids.empty()) {
    last_status_ = Status::FailedPrecondition("no surviving node");
    return std::nullopt;
  }

  place::RepairOptions repair_options;
  repair_options.rod = options_.rod;
  repair_options.max_rebalance_moves = options_.rebalance_budget;
  telemetry::TraceSpan repair_span(options_.telemetry, "supervisor", "repair");
  auto repaired = place::RepairPlacement(
      *model_, place::Placement(n, assignment), survivors, node_mapping,
      repair_options);
  repair_span.End();
  if (!repaired.ok()) {
    NoteIncident(options_.flight_recorder,
                 "supervisor: repair failed: " + repaired.status().ToString());
    last_status_ = repaired.status();
    return std::nullopt;
  }
  ++repairs_;
  if (options_.telemetry != nullptr) {
    options_.telemetry->Count("supervisor.repairs");
  }
  NoteIncident(options_.flight_recorder,
               "supervisor: repair moved " +
                   std::to_string(repaired->operators_moved) + " operators");
  operators_moved_ += repaired->operators_moved;
  last_plane_distance_ = repaired->plane_distance;
  last_status_ = Status::OK();

  std::vector<size_t> expanded(m);
  for (size_t j = 0; j < m; ++j) {
    expanded[j] = survivor_ids[repaired->placement.node_of(j)];
  }
  return PlanUpdate{std::move(expanded), options_.migration_pause,
                    options_.shed_during_pause};
}

}  // namespace rod::sim
