// Copyright (c) the ROD reproduction authors.
//
// Discrete-event core of the stream-processing runtime simulator: a
// deterministic min-time event queue. Ties are broken by insertion
// sequence so identical seeds replay identically.
//
// Two implementations share the same (time, seq) total order:
//
//  * kCalendar (default): a bucketed calendar queue (Brown, CACM '88).
//    Events hash to `floor((time - base) / width)` virtual slots; slots
//    wrap onto a power-of-two bucket array and each bucket is kept as a
//    small (time, seq) binary heap. The engine's event times are
//    near-monotone, so push and pop are O(1) amortized; the structure
//    resizes itself (gather + redistribute) when occupancy drifts.
//    Correctness does not depend on floating-point bucket boundaries:
//    the pop test compares virtual slots computed by the same monotone
//    time->slot map used on push, so an event in an earlier slot can
//    never be passed over, and equal times always share a bucket where
//    the heap breaks ties by seq. Pop order is therefore bit-identical
//    to the binary heap's.
//  * kBinaryHeap: the original std::push_heap/pop_heap binary heap.
//    Kept as the reference order for tests and as the in-binary
//    baseline for bench_engine_perf.

#ifndef ROD_RUNTIME_EVENT_QUEUE_H_
#define ROD_RUNTIME_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/telemetry.h"

namespace rod::sim {

/// What a scheduled event means.
enum class EventType {
  kExternalArrival,   ///< Next tuple of input stream `index` arrives.
  kNodeDone,          ///< Node `index` finishes its current task.
  kNetworkDelivery,   ///< The oldest in-flight network transfer lands.
  kFault,             ///< Scheduled fault `index` fires (see chaos.h).
  kFailureDetected,   ///< The supervisor notices node `index` crashed.
  kMigrationRelease,  ///< Operator `index` finishes its migration pause.
  kOverloadCheck,     ///< The overload detector's periodic sample fires.
};

/// One scheduled simulation event.
struct Event {
  double time = 0.0;
  uint64_t seq = 0;  ///< Insertion order; makes equal-time ordering total.
  EventType type = EventType::kExternalArrival;
  uint32_t index = 0;  ///< Input stream id or node id, per `type`.
  uint64_t tag = 0;    ///< Optional payload; kNodeDone carries the service
                       ///< token so crashes can cancel stale completions.
};

/// Which backing structure orders the events (same observable order).
enum class EventQueueImpl {
  kCalendar,    ///< Bucketed calendar queue, O(1) amortized.
  kBinaryHeap,  ///< Legacy binary heap, O(log n).
};

/// Min-queue of events ordered by (time, seq).
class EventQueue {
 public:
  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kCalendar)
      : impl_(impl) {}

  EventQueueImpl impl() const { return impl_; }

  /// Schedules an event; `time` must be finite.
  void Push(double time, EventType type, uint32_t index, uint64_t tag = 0);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// The earliest event (undefined when empty). Non-const: the calendar
  /// implementation advances its bucket cursor to locate the minimum.
  const Event& Top();

  /// Removes and returns the earliest event.
  Event Pop();

  /// Pre-sizes internal storage for about `n` concurrently queued events.
  void Reserve(size_t n);

  /// Empties the queue and resets the tie-break sequence counter, keeping
  /// allocated storage so a pooled queue can be reused across runs.
  void Clear();

  /// Telemetry sink for calendar resize events (`engine.calendar.resizes`
  /// counter + "calendar_resize" instants) and the
  /// `event_queue.size_high_water` gauge (peak queued events, ratcheted
  /// with Gauge::Max per push; the Aggregator resets it each sample, so
  /// a sample reads "peak since the previous sample"). Not owned; null
  /// disables. Never consulted outside Push/Pop, so re-attaching per run
  /// is safe.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
    size_high_water_ = telemetry != nullptr
                           ? telemetry->gauge("event_queue.size_high_water")
                           : telemetry::Gauge();
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Monotone map from event time to virtual calendar slot. Shared by
  /// push placement and the pop-window test so rounding cannot strand or
  /// reorder events; out-of-range values clamp (still monotone).
  uint64_t VslotOf(double time) const;

  /// Moves the cursor to the bucket holding the global minimum and
  /// returns that bucket's index.
  size_t FindMinBucket();

  /// Gathers every event and redistributes into `new_bucket_count`
  /// buckets with a width recomputed from the observed time span.
  void Rebuild(size_t new_bucket_count);

  void PushCalendar(const Event& e);

  EventQueueImpl impl_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Gauge size_high_water_;  ///< Peak size_, Max() per push.

  // kBinaryHeap state.
  std::vector<Event> heap_;

  // kCalendar state. `buckets_[s & mask_]` is a (time, seq) min-heap of
  // the events whose virtual slot s wraps there.
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> scratch_;  ///< Rebuild staging, reused across resizes.
  size_t mask_ = 0;             ///< bucket_count - 1 (power of two).
  double base_ = 0.0;           ///< Time of virtual slot 0.
  double width_ = 1.0;          ///< Seconds per virtual slot.
  uint64_t cur_vslot_ = 0;      ///< Cursor: earliest slot that may hold work.
  size_t cur_bucket_ = 0;       ///< cur_vslot_ & mask_.
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_EVENT_QUEUE_H_
