// Copyright (c) the ROD reproduction authors.
//
// Discrete-event core of the stream-processing runtime simulator: a
// deterministic min-time event queue. Ties are broken by insertion
// sequence so identical seeds replay identically.
//
// Two implementations share the same (time, seq) total order:
//
//  * kCalendar (default): a bucketed calendar queue (Brown, CACM '88).
//    Events hash to `floor((time - base) / width)` virtual slots; slots
//    wrap onto a power-of-two bucket array and each bucket is kept as a
//    small (time, seq) binary heap. The engine's event times are
//    near-monotone, so push and pop are O(1) amortized; the structure
//    resizes itself (gather + redistribute) when occupancy drifts.
//    Correctness does not depend on floating-point bucket boundaries:
//    the pop test compares virtual slots computed by the same monotone
//    time->slot map used on push, so an event in an earlier slot can
//    never be passed over, and equal times always share a bucket where
//    the heap breaks ties by seq. Pop order is therefore bit-identical
//    to the binary heap's.
//  * kBinaryHeap: the original std::push_heap/pop_heap binary heap.
//    Kept as the reference order for tests and as the in-binary
//    baseline for bench_engine_perf.

#ifndef ROD_RUNTIME_EVENT_QUEUE_H_
#define ROD_RUNTIME_EVENT_QUEUE_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/telemetry.h"

namespace rod::sim {

/// What a scheduled event means.
enum class EventType {
  kExternalArrival,   ///< Next tuple of input stream `index` arrives.
  kNodeDone,          ///< Node `index` finishes its current task.
  kNetworkDelivery,   ///< The oldest in-flight network transfer lands.
  kFault,             ///< Scheduled fault `index` fires (see chaos.h).
  kFailureDetected,   ///< The supervisor notices node `index` crashed.
  kMigrationRelease,  ///< Operator `index` finishes its migration pause.
  kOverloadCheck,     ///< The overload detector's periodic sample fires.
};

/// One scheduled simulation event.
struct Event {
  double time = 0.0;
  uint64_t seq = 0;  ///< Insertion order; makes equal-time ordering total.
  EventType type = EventType::kExternalArrival;
  uint32_t index = 0;  ///< Input stream id or node id, per `type`.
  uint64_t tag = 0;    ///< Optional payload; kNodeDone carries the service
                       ///< token so crashes can cancel stale completions.
};

/// Which backing structure orders the events (same observable order).
enum class EventQueueImpl {
  kCalendar,    ///< Bucketed calendar queue, O(1) amortized.
  kBinaryHeap,  ///< Legacy binary heap, O(log n).
};

/// Min-queue of events ordered by (time, seq).
class EventQueue {
 public:
  explicit EventQueue(EventQueueImpl impl = EventQueueImpl::kCalendar)
      : impl_(impl) {}

  EventQueueImpl impl() const { return impl_; }

  /// Schedules an event; `time` must be finite. Defined inline (with the
  /// rest of the push/pop hot path) so the engine's event loop can fold
  /// the queue operations into its own body.
  void Push(double time, EventType type, uint32_t index, uint64_t tag = 0) {
    assert(std::isfinite(time));
    const Event e{time, next_seq_++, type, index, tag};
    if (impl_ == EventQueueImpl::kBinaryHeap) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      ++size_;
    } else {
      PushCalendar(e);
    }
    // Integer-only high-water ratchet; Pop flushes it into the gauge. With
    // no telemetry attached this is a single never-taken branch.
    if (track_high_water_ && size_ > pending_high_water_) {
      pending_high_water_ = size_;
    }
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Sequence number the next Push will stamp. Two pushes with no
  /// intervening Push have consecutive seqs, which the engine's delivery
  /// batcher uses to prove a pending batch event is still the most
  /// recently scheduled work at its arrival time.
  uint64_t next_seq() const { return next_seq_; }

  /// The earliest event (undefined when empty). Non-const: the calendar
  /// implementation advances its bucket cursor to locate the minimum.
  const Event& Top() {
    assert(size_ > 0);
    if (impl_ == EventQueueImpl::kBinaryHeap) return heap_.front();
    return buckets_[FindMinBucket()].front();
  }

  /// Removes and returns the earliest event.
  Event Pop() {
    assert(size_ > 0);
    if (pending_high_water_ != 0) {
      size_high_water_.Max(static_cast<double>(pending_high_water_));
      pending_high_water_ = 0;
    }
    if (impl_ == EventQueueImpl::kBinaryHeap) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Event e = heap_.back();
      heap_.pop_back();
      --size_;
      return e;
    }
    auto& bucket = buckets_[FindMinBucket()];
    if (bucket.size() > 1) {
      std::pop_heap(bucket.begin(), bucket.end(), Later{});
    }
    Event e = bucket.back();
    bucket.pop_back();
    --size_;
    const size_t bucket_count = mask_ + 1;
    if (bucket_count > kMinBuckets && size_ < bucket_count / 8) {
      // Shrink straight to the balanced size (~2 events per bucket) in one
      // gather instead of halving once per pop: a pooled queue that starts
      // a run with last run's large bucket array would otherwise pay a
      // chain of rebuilds, each walking the whole array.
      size_t target = kMinBuckets;
      while (target < 2 * size_) target *= 2;
      Rebuild(target);
    }
    return e;
  }

  /// Pre-sizes internal storage for about `n` concurrently queued events.
  void Reserve(size_t n);

  /// Empties the queue and resets the tie-break sequence counter, keeping
  /// allocated storage so a pooled queue can be reused across runs.
  void Clear();

  /// Telemetry sink for calendar resize events (`engine.calendar.resizes`
  /// counter + "calendar_resize" instants) and the
  /// `event_queue.size_high_water` gauge (peak queued events; the
  /// Aggregator resets it each sample, so a sample reads "peak since the
  /// previous sample"). Pushes ratchet a plain integer; the gauge itself
  /// is written at most once per Pop — so with no telemetry attached a
  /// push pays one predicted branch, and with telemetry attached the
  /// gauge update is amortized over every push between two pops (one
  /// batched delivery event covers its whole tuple batch). The at most
  /// one-pop delay is invisible to the Aggregator's periodic sampling.
  /// Not owned; null disables. Never consulted outside Push/Pop, so
  /// re-attaching per run is safe.
  void set_telemetry(telemetry::Telemetry* telemetry) {
    telemetry_ = telemetry;
    track_high_water_ = telemetry != nullptr;
    pending_high_water_ = 0;
    size_high_water_ = track_high_water_
                           ? telemetry->gauge("event_queue.size_high_water")
                           : telemetry::Gauge();
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr size_t kMinBuckets = 4;        // Power of two.
  static constexpr size_t kMaxBuckets = 1 << 20;  // Power of two.
  static constexpr uint64_t kMaxVslot = uint64_t{1} << 62;

  /// Monotone map from event time to virtual calendar slot. Shared by
  /// push placement and the pop-window test so rounding cannot strand or
  /// reorder events; out-of-range values clamp (still monotone).
  uint64_t VslotOf(double time) const {
    const double q = (time - base_) * inv_width_;
    // Clamp instead of casting out-of-range doubles (UB). The clamped map
    // stays monotone, which is all pop-order correctness needs.
    if (!(q > 0.0)) return 0;
    if (q >= static_cast<double>(kMaxVslot)) return kMaxVslot;
    return static_cast<uint64_t>(q);
  }

  /// Moves the cursor to the bucket holding the global minimum and
  /// returns that bucket's index.
  size_t FindMinBucket() {
    assert(size_ > 0);
    // Year scan: visit at most one full wrap of buckets looking for an
    // event whose virtual slot matches the cursor. The slot test reuses
    // VslotOf, so it agrees bit-for-bit with where Push filed the event.
    for (size_t step = 0; step <= mask_; ++step) {
      const auto& bucket = buckets_[cur_bucket_];
      if (!bucket.empty() && VslotOf(bucket.front().time) == cur_vslot_) {
        return cur_bucket_;
      }
      ++cur_vslot_;
      cur_bucket_ = static_cast<size_t>(cur_vslot_) & mask_;
    }
    return FindMinBucketSparse();
  }

  /// Sparse-epoch fallback of FindMinBucket: no event within a full wrap
  /// of the cursor; scans every bucket for the global minimum.
  size_t FindMinBucketSparse();

  /// Gathers every event and redistributes into `new_bucket_count`
  /// buckets with a width recomputed from the observed time span.
  void Rebuild(size_t new_bucket_count);

  void PushCalendar(const Event& e) {
    if (buckets_.empty()) {
      buckets_.resize(kMinBuckets);
      mask_ = kMinBuckets - 1;
    }
    if (size_ == 0) {
      // Re-anchor the calendar on the first event so virtual slot numbers
      // stay small; width is corrected by the next rebuild if stale.
      base_ = e.time;
      cur_vslot_ = 0;
      cur_bucket_ = 0;
    }
    const size_t bucket_count = mask_ + 1;
    if (size_ + 1 > 2 * bucket_count && bucket_count < kMaxBuckets) {
      Rebuild(bucket_count * 2);
    }
    const uint64_t vslot = VslotOf(e.time);
    if (vslot < cur_vslot_) {
      // Non-monotone push behind the cursor: walk the cursor back so the
      // "no event earlier than the cursor slot" invariant holds.
      cur_vslot_ = vslot;
      cur_bucket_ = static_cast<size_t>(vslot) & mask_;
    }
    auto& bucket = buckets_[static_cast<size_t>(vslot) & mask_];
    bucket.push_back(e);
    // Near-monotone pushes mostly land in empty buckets; skip the heap
    // call (and its comparator setup) for the singleton case.
    if (bucket.size() > 1) {
      std::push_heap(bucket.begin(), bucket.end(), Later{});
    }
    ++size_;
  }

  EventQueueImpl impl_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;
  telemetry::Telemetry* telemetry_ = nullptr;
  bool track_high_water_ = false;    ///< Cached (telemetry_ != nullptr).
  size_t pending_high_water_ = 0;    ///< Peak size_ since the last flush.
  telemetry::Gauge size_high_water_; ///< Flushed from the pending peak.

  // kBinaryHeap state.
  std::vector<Event> heap_;

  // kCalendar state. `buckets_[s & mask_]` is a (time, seq) min-heap of
  // the events whose virtual slot s wraps there.
  std::vector<std::vector<Event>> buckets_;
  std::vector<Event> scratch_;  ///< Rebuild staging, reused across resizes.
  size_t mask_ = 0;             ///< bucket_count - 1 (power of two).
  double base_ = 0.0;           ///< Time of virtual slot 0.
  double width_ = 1.0;          ///< Seconds per virtual slot.
  double inv_width_ = 1.0;      ///< 1 / width_, cached: VslotOf multiplies
                                ///< instead of dividing. Multiplying by a
                                ///< positive constant is monotone in IEEE
                                ///< arithmetic and push/pop share the same
                                ///< map, so pop order is unaffected.
  uint64_t cur_vslot_ = 0;      ///< Cursor: earliest slot that may hold work.
  size_t cur_bucket_ = 0;       ///< cur_vslot_ & mask_.
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_EVENT_QUEUE_H_
