// Copyright (c) the ROD reproduction authors.
//
// Discrete-event core of the stream-processing runtime simulator: a
// deterministic min-time event queue. Ties are broken by insertion
// sequence so identical seeds replay identically.

#ifndef ROD_RUNTIME_EVENT_QUEUE_H_
#define ROD_RUNTIME_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace rod::sim {

/// What a scheduled event means.
enum class EventType {
  kExternalArrival,   ///< Next tuple of input stream `index` arrives.
  kNodeDone,          ///< Node `index` finishes its current task.
  kNetworkDelivery,   ///< The oldest in-flight network transfer lands.
  kFault,             ///< Scheduled fault `index` fires (see chaos.h).
  kFailureDetected,   ///< The supervisor notices node `index` crashed.
  kMigrationRelease,  ///< Operator `index` finishes its migration pause.
};

/// One scheduled simulation event.
struct Event {
  double time = 0.0;
  uint64_t seq = 0;  ///< Insertion order; makes equal-time ordering total.
  EventType type = EventType::kExternalArrival;
  uint32_t index = 0;  ///< Input stream id or node id, per `type`.
  uint64_t tag = 0;    ///< Optional payload; kNodeDone carries the service
                       ///< token so crashes can cancel stale completions.
};

/// Min-heap of events ordered by (time, seq).
class EventQueue {
 public:
  /// Schedules an event; `time` must be finite.
  void Push(double time, EventType type, uint32_t index, uint64_t tag = 0);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// The earliest event (undefined when empty).
  const Event& Top() const { return heap_.top(); }

  /// Removes and returns the earliest event.
  Event Pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_EVENT_QUEUE_H_
