// Copyright (c) the ROD reproduction authors.
//
// Supervised recovery for the tuple-level engine. The Supervisor is the
// ControlAgent the engine consults when it detects a crash: it derives
// the current placement from the live routing tables, re-homes the
// orphaned operators with place::RepairPlacement (incremental ROD over
// the surviving nodes, plus an optional bounded rebalance), and returns
// the new assignment together with a per-moved-operator migration pause
// that models state transfer. A naive dump-on-one-node policy is provided
// as the baseline the repair path must beat.
//
// Hardening (DESIGN.md §11): failed repairs are retried with doubling
// backoff instead of being abandoned; nodes that crash repeatedly are
// quarantined — treated as down by every subsequent repair even while
// nominally up — so a flapping node stops reabsorbing operators it will
// drop again; and on sustained overload the supervisor chooses between
// shedding load at the sources and an incremental re-placement via an
// explicit cost model (expected tuples lost to migration pauses vs.
// expected tuples lost to shedding over the overload horizon).

#ifndef ROD_RUNTIME_SUPERVISOR_H_
#define ROD_RUNTIME_SUPERVISOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "placement/repair.h"
#include "query/load_model.h"
#include "runtime/chaos.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace rod::sim {

class Supervisor : public ControlAgent {
 public:
  /// How the supervisor re-homes orphans.
  enum class Policy {
    kRepair,     ///< place::RepairPlacement over the survivors.
    kNaiveDump,  ///< Every orphan onto the lowest-numbered up node.
    kNone,       ///< Observe only; leave the placement untouched.
  };

  struct Options {
    /// Seconds between a crash and the supervisor noticing it (failure
    /// detector timeout).
    double detection_delay = 0.5;

    /// Each moved operator is unavailable for this long after the plan is
    /// applied (state transfer); arrivals buffer (default) or shed.
    double migration_pause = 0.0;
    bool shed_during_pause = false;

    Policy policy = Policy::kRepair;

    /// RepairOptions::max_rebalance_moves for the kRepair policy.
    size_t rebalance_budget = 0;

    /// ROD knobs for the incremental repair (kMinCrossArcs is not
    /// supported incrementally and is rejected by RepairPlacement).
    place::RodOptions rod;

    /// When a repair attempt fails, re-try it up to this many times with
    /// doubling backoff starting at `repair_retry_backoff` seconds and
    /// capped at `repair_retry_backoff_max` (0 retries = fail fast).
    size_t max_repair_retries = 3;
    double repair_retry_backoff = 0.5;
    double repair_retry_backoff_max = 8.0;

    /// Quarantine a node after it has crashed this many times: every
    /// later repair treats it as down even while it is nominally up, so
    /// a flapping node cannot keep reabsorbing operators. 0 disables.
    size_t quarantine_after = 0;

    /// Overload response knobs (OnOverload). When the cost model picks
    /// shedding, this fraction of external arrivals is dropped at the
    /// sources until the overload clears.
    double overload_shed_fraction = 0.5;

    /// Expected remaining overload duration (seconds) the cost model
    /// charges against the shed option.
    double overload_horizon = 5.0;

    /// RepairOptions::max_rebalance_moves for the overload re-placement
    /// candidate. 0 disables re-placement: overload always sheds.
    size_t overload_rebalance_budget = 0;

    /// Telemetry sink ("supervisor.repair" spans, supervisor.* counters).
    /// Not owned; null disables.
    telemetry::Telemetry* telemetry = nullptr;

    /// Incident flight recorder: detection and repair milestones are
    /// appended as timestamped notes to the calling thread's pending
    /// incident (opened by the engine at the crash instant). Not owned;
    /// null disables.
    telemetry::FlightRecorder* flight_recorder = nullptr;
  };

  /// `model` must describe the deployed query graph and outlive the
  /// supervisor.
  Supervisor(const query::LoadModel& model, Options options)
      : model_(&model), options_(std::move(options)) {}

  double detection_delay() const override {
    return options_.detection_delay;
  }

  std::optional<PlanUpdate> OnFailureDetected(
      double now, uint32_t failed_node, const std::vector<bool>& node_up,
      const Deployment& deployment) override;

  /// Doubling backoff after a failed repair: retry k (1-based) waits
  /// `repair_retry_backoff * 2^(k-1)` seconds, capped at
  /// `repair_retry_backoff_max`; 0 once `max_repair_retries` attempts
  /// have been burned or the last attempt succeeded.
  double RepairRetryDelay() override;

  /// Cost-model overload response: candidate incremental re-placement
  /// (RepairPlacement with the overload rebalance budget over the up,
  /// non-quarantined nodes) vs. shedding `overload_shed_fraction` at the
  /// sources for `overload_horizon` seconds; the cheaper option in
  /// expected lost tuples wins.
  std::optional<OverloadDecision> OnOverload(
      const OverloadSignal& signal, const Deployment& deployment) override;

  void OnOverloadCleared(double now) override;

  /// Introspection for tests and benchmarks.
  size_t repairs_performed() const { return repairs_; }
  size_t operators_moved() const { return operators_moved_; }
  double last_plane_distance() const { return last_plane_distance_; }
  const Status& last_status() const { return last_status_; }
  size_t repair_retries() const { return repair_retries_; }
  size_t overload_consults() const { return overload_consults_; }
  size_t overload_rebalances() const { return overload_rebalances_; }
  size_t overload_sheds() const { return overload_sheds_; }
  double last_shed_fraction() const { return last_shed_fraction_; }
  bool quarantined(uint32_t node) const {
    return node < quarantined_.size() && quarantined_[node] != 0;
  }
  size_t num_quarantined() const;

  /// Returns the supervisor to its just-constructed state: introspection
  /// counters, retry backoff, crash history, and quarantine set are all
  /// cleared. Sweep and bench harnesses call this between runs so one
  /// supervisor can serve a whole grid without cross-run leakage.
  void Reset();

 private:
  /// Counts up->down transitions per node (for quarantine) from the
  /// liveness maps the engine hands us; idempotent for repeated calls
  /// with the same map (a retried detection is not a second crash).
  void ObserveLiveness(const std::vector<bool>& node_up);

  const query::LoadModel* model_;
  Options options_;
  size_t repairs_ = 0;
  size_t operators_moved_ = 0;
  double last_plane_distance_ = 0.0;
  Status last_status_ = Status::OK();

  // Retry state: armed by a failed repair, consumed by RepairRetryDelay,
  // cleared by the next success.
  bool retry_pending_ = false;
  size_t retries_attempted_ = 0;
  size_t repair_retries_ = 0;

  // Crash history and quarantine.
  std::vector<bool> last_known_up_;
  std::vector<size_t> crash_counts_;
  std::vector<char> quarantined_;

  // Overload response state.
  size_t overload_consults_ = 0;
  size_t overload_rebalances_ = 0;
  size_t overload_sheds_ = 0;
  double last_shed_fraction_ = 0.0;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_SUPERVISOR_H_
