// Copyright (c) the ROD reproduction authors.
//
// Supervised recovery for the tuple-level engine. The Supervisor is the
// RecoveryAgent the engine consults when it detects a crash: it derives
// the current placement from the live routing tables, re-homes the
// orphaned operators with place::RepairPlacement (incremental ROD over
// the surviving nodes, plus an optional bounded rebalance), and returns
// the new assignment together with a per-moved-operator migration pause
// that models state transfer. A naive dump-on-one-node policy is provided
// as the baseline the repair path must beat.

#ifndef ROD_RUNTIME_SUPERVISOR_H_
#define ROD_RUNTIME_SUPERVISOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "placement/repair.h"
#include "query/load_model.h"
#include "runtime/chaos.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"

namespace rod::sim {

class Supervisor : public RecoveryAgent {
 public:
  /// How the supervisor re-homes orphans.
  enum class Policy {
    kRepair,     ///< place::RepairPlacement over the survivors.
    kNaiveDump,  ///< Every orphan onto the lowest-numbered up node.
    kNone,       ///< Observe only; leave the placement untouched.
  };

  struct Options {
    /// Seconds between a crash and the supervisor noticing it (failure
    /// detector timeout).
    double detection_delay = 0.5;

    /// Each moved operator is unavailable for this long after the plan is
    /// applied (state transfer); arrivals buffer (default) or shed.
    double migration_pause = 0.0;
    bool shed_during_pause = false;

    Policy policy = Policy::kRepair;

    /// RepairOptions::max_rebalance_moves for the kRepair policy.
    size_t rebalance_budget = 0;

    /// ROD knobs for the incremental repair (kMinCrossArcs is not
    /// supported incrementally and is rejected by RepairPlacement).
    place::RodOptions rod;

    /// Telemetry sink ("supervisor.repair" spans, supervisor.* counters).
    /// Not owned; null disables.
    telemetry::Telemetry* telemetry = nullptr;

    /// Incident flight recorder: detection and repair milestones are
    /// appended as timestamped notes to the calling thread's pending
    /// incident (opened by the engine at the crash instant). Not owned;
    /// null disables.
    telemetry::FlightRecorder* flight_recorder = nullptr;
  };

  /// `model` must describe the deployed query graph and outlive the
  /// supervisor.
  Supervisor(const query::LoadModel& model, Options options)
      : model_(&model), options_(std::move(options)) {}

  double detection_delay() const override {
    return options_.detection_delay;
  }

  std::optional<PlanUpdate> OnFailureDetected(
      double now, uint32_t failed_node, const std::vector<bool>& node_up,
      const Deployment& deployment) override;

  /// Introspection for tests and benchmarks.
  size_t repairs_performed() const { return repairs_; }
  size_t operators_moved() const { return operators_moved_; }
  double last_plane_distance() const { return last_plane_distance_; }
  const Status& last_status() const { return last_status_; }

 private:
  const query::LoadModel* model_;
  Options options_;
  size_t repairs_ = 0;
  size_t operators_moved_ = 0;
  double last_plane_distance_ = 0.0;
  Status last_status_ = Status::OK();
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_SUPERVISOR_H_
