// Copyright (c) the ROD reproduction authors.
//
// Fault injection for the tuple-level engine. A FailureSchedule describes
// node crash / recover / slowdown events — plus per-stream load spikes —
// at virtual timestamps; the engine replays them inside the Simulate
// event loop. A crashed node drops its queued and in-flight tasks
// (counted as lost tuples) and rejects new arrivals until it recovers.
//
// A ControlAgent is the engine's supervision hook: it is consulted one
// detection delay after each crash (OnFailureDetected, may re-home
// operators; see runtime/supervisor.h for the production implementation
// built on place::RepairPlacement) and on sustained overload
// (OnOverload, may order a shed rate or an incremental re-placement).
// RecoveryAgent remains as an alias for the crash-only historical name.

#ifndef ROD_RUNTIME_CHAOS_H_
#define ROD_RUNTIME_CHAOS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "runtime/deployment.h"

namespace rod::sim {

/// What happens at a scheduled fault instant.
enum class FaultKind {
  kCrash,      ///< Node goes down: queued + in-flight tasks are lost,
               ///< arrivals are rejected until recovery.
  kRecover,    ///< Node comes back up, empty, at full capacity.
  kSlowdown,   ///< Node capacity is multiplied by `factor` (straggler /
               ///< co-tenant interference; > 1 models a speedup).
  kLoadSpike,  ///< Input stream `node`'s arrival rate is multiplied by
               ///< `factor` from this instant on (flash crowd; < 1
               ///< models a lull, 1 restores the trace).
};

/// One scheduled fault. `node` is a node id, except for kLoadSpike where
/// it indexes the input stream whose rate is scaled.
struct FaultEvent {
  double time = 0.0;
  uint32_t node = 0;
  FaultKind kind = FaultKind::kCrash;
  double factor = 1.0;  ///< Multiplier (kSlowdown / kLoadSpike only).
};

/// A time-ordered script of faults for one simulation run. Build with the
/// fluent CrashAt/RecoverAt/SlowdownAt/LoadSpikeAt calls; the engine
/// validates the script against the cluster before the run starts.
class FailureSchedule {
 public:
  FailureSchedule& CrashAt(double time, uint32_t node);
  FailureSchedule& RecoverAt(double time, uint32_t node);
  FailureSchedule& SlowdownAt(double time, uint32_t node, double factor);
  /// Scales input stream `stream`'s arrival rate by `factor` from `time`
  /// on (the multiplier persists until the next spike on that stream).
  FailureSchedule& LoadSpikeAt(double time, uint32_t stream, double factor);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// OK iff every event is well formed: node events target a node <
  /// `num_nodes` at a time >= 0, multipliers are positive, no node
  /// crashes twice without recovering in between, recoveries only follow
  /// crashes, slowdowns never target a node that is down at that instant
  /// (same-instant events apply in insertion order, matching the engine's
  /// replay), and load spikes target a stream < `num_streams`.
  Status Validate(size_t num_nodes, size_t num_streams) const;

  /// Legacy single-arg form: node checks only; any kLoadSpike event is
  /// rejected because the stream universe is unknown.
  Status Validate(size_t num_nodes) const;

 private:
  std::vector<FaultEvent> events_;
};

/// A re-homing decision returned by a ControlAgent.
struct PlanUpdate {
  /// New operator -> node assignment (size = number of operators). The
  /// engine re-routes in place via ReassignOperators.
  std::vector<size_t> assignment;

  /// Migration pause: every *moved* operator is unavailable for this many
  /// seconds after the plan is applied (state transfer). Tuples arriving
  /// for a paused operator are buffered and replayed at pause end, or shed
  /// when `shed_during_pause` is set.
  double migration_pause = 0.0;
  bool shed_during_pause = false;
};

/// What the engine observed when it escalated a sustained overload to the
/// control agent (see SimulationOptions::overload for the detector).
struct OverloadSignal {
  double time = 0.0;           ///< Consultation instant (virtual seconds).
  uint32_t hot_node = 0;       ///< Node with the deepest tuple queue.
  size_t queue_depth = 0;      ///< Its queued tuple tasks right now.
  size_t queue_high_water = 0; ///< Detector threshold that was breached.
  double recent_max_latency = 0.0;  ///< Max sink latency since the last
                                    ///< detector tick (0 when none).
  double sustained_seconds = 0.0;   ///< How long the breach has held.
  /// Per-input-stream arrival rates observed over the last detector
  /// window (tuples/second) — the demand the decision must absorb.
  std::vector<double> observed_rates;
  /// Node liveness at the consultation instant.
  std::vector<bool> node_up;
};

/// What a ControlAgent orders in response to an overload signal. Both
/// actions may be combined; the default-constructed decision is a no-op.
struct OverloadDecision {
  /// Fraction of external arrivals to drop at the sources until the
  /// overload clears (0 = none, 1 = all). Replaces any prior rate.
  double shed_fraction = 0.0;

  /// Optional incremental re-placement, applied exactly like a repair
  /// plan (including its migration pause).
  std::optional<PlanUpdate> plan;
};

/// Supervision hook: the engine consults the agent one detection_delay()
/// after each crash, after each failed repair (RepairRetryDelay), and on
/// sustained overload. Implementations see the current node up/down map
/// and routing tables and may return a repaired plan (or nullopt to leave
/// the placement unchanged).
class ControlAgent {
 public:
  virtual ~ControlAgent() = default;

  /// Seconds between a crash and the supervisor noticing it.
  virtual double detection_delay() const = 0;

  virtual std::optional<PlanUpdate> OnFailureDetected(
      double now, uint32_t failed_node, const std::vector<bool>& node_up,
      const Deployment& deployment) = 0;

  /// Consulted right after OnFailureDetected returns nullopt: a positive
  /// delay re-schedules the detection that many seconds later (retry with
  /// backoff); 0 (the default) accepts the nullopt as final.
  virtual double RepairRetryDelay() { return 0.0; }

  /// Consulted when the overload detector's breach has been sustained
  /// (see SimulationOptions::overload). Return nullopt to observe only.
  virtual std::optional<OverloadDecision> OnOverload(
      const OverloadSignal& signal, const Deployment& deployment) {
    (void)signal;
    (void)deployment;
    return std::nullopt;
  }

  /// Notified when a previously signalled overload drains below the
  /// detector's clear threshold (any ordered shed rate has been lifted).
  virtual void OnOverloadCleared(double now) { (void)now; }
};

/// Historical name from when the agent only handled crash recovery.
using RecoveryAgent = ControlAgent;

}  // namespace rod::sim

#endif  // ROD_RUNTIME_CHAOS_H_
