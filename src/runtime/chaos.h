// Copyright (c) the ROD reproduction authors.
//
// Fault injection for the tuple-level engine. A FailureSchedule describes
// node crash / recover / slowdown events at virtual timestamps; the engine
// replays them inside the Simulate event loop. A crashed node drops its
// queued and in-flight tasks (counted as lost tuples) and rejects new
// arrivals until it recovers. A RecoveryAgent — consulted one detection
// delay after each crash — may re-home operators onto the survivors (see
// runtime/supervisor.h for the production implementation built on
// place::RepairPlacement).

#ifndef ROD_RUNTIME_CHAOS_H_
#define ROD_RUNTIME_CHAOS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "runtime/deployment.h"

namespace rod::sim {

/// What happens to a node at a scheduled fault instant.
enum class FaultKind {
  kCrash,     ///< Node goes down: queued + in-flight tasks are lost,
              ///< arrivals are rejected until recovery.
  kRecover,   ///< Node comes back up, empty, at full capacity.
  kSlowdown,  ///< Node capacity is multiplied by `factor` (straggler /
              ///< co-tenant interference; > 1 models a speedup).
};

/// One scheduled fault.
struct FaultEvent {
  double time = 0.0;
  uint32_t node = 0;
  FaultKind kind = FaultKind::kCrash;
  double factor = 1.0;  ///< Capacity multiplier (kSlowdown only).
};

/// A time-ordered script of faults for one simulation run. Build with the
/// fluent CrashAt/RecoverAt/SlowdownAt calls; the engine validates the
/// script against the cluster before the run starts.
class FailureSchedule {
 public:
  FailureSchedule& CrashAt(double time, uint32_t node);
  FailureSchedule& RecoverAt(double time, uint32_t node);
  FailureSchedule& SlowdownAt(double time, uint32_t node, double factor);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// OK iff every event targets a node < `num_nodes` at a time >= 0 with a
  /// positive slowdown factor, no node crashes twice without recovering in
  /// between, and recoveries only follow crashes.
  Status Validate(size_t num_nodes) const;

 private:
  std::vector<FaultEvent> events_;
};

/// A re-homing decision returned by a RecoveryAgent.
struct PlanUpdate {
  /// New operator -> node assignment (size = number of operators). The
  /// engine re-routes in place via ReassignOperators.
  std::vector<size_t> assignment;

  /// Migration pause: every *moved* operator is unavailable for this many
  /// seconds after the plan is applied (state transfer). Tuples arriving
  /// for a paused operator are buffered and replayed at pause end, or shed
  /// when `shed_during_pause` is set.
  double migration_pause = 0.0;
  bool shed_during_pause = false;
};

/// Supervision hook: the engine calls OnFailureDetected one
/// detection_delay() after each crash. Implementations see the current
/// node up/down map and routing tables and may return a repaired plan
/// (or nullopt to leave the placement unchanged).
class RecoveryAgent {
 public:
  virtual ~RecoveryAgent() = default;

  /// Seconds between a crash and the supervisor noticing it.
  virtual double detection_delay() const = 0;

  virtual std::optional<PlanUpdate> OnFailureDetected(
      double now, uint32_t failed_node, const std::vector<bool>& node_up,
      const Deployment& deployment) = 0;
};

}  // namespace rod::sim

#endif  // ROD_RUNTIME_CHAOS_H_
