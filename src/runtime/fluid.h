// Copyright (c) the ROD reproduction authors.
//
// Epoch-based fluid simulation with optional dynamic operator migration.
// Where the tuple-level engine (engine.h) resolves individual tuples, this
// model advances in fixed epochs, treating load as a fluid: per-node
// demand comes from the analytic load model at the epoch's rates, unserved
// demand accumulates as backlog, and a pluggable MigrationPolicy may move
// operators between epochs — paying the migration costs the paper's
// introduction quantifies ("the base overhead of run-time operator
// migration is on the order of a few hundred milliseconds", §1). This is
// the substrate for the static-resilient vs dynamic-migration comparison
// that motivates ROD.

#ifndef ROD_RUNTIME_FLUID_H_
#define ROD_RUNTIME_FLUID_H_

#include <vector>

#include "common/status.h"
#include "placement/plan.h"
#include "query/load_model.h"
#include "trace/trace.h"

namespace rod::sim {

/// One operator move applied between epochs.
struct Migration {
  query::OperatorId op = 0;
  size_t to_node = 0;
};

/// Decides migrations at epoch boundaries. Implementations observe the
/// epoch that just ended and return moves to apply before the next one.
class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  /// Read-only view of the ended epoch.
  struct EpochView {
    const query::LoadModel* model = nullptr;
    const place::SystemSpec* system = nullptr;
    /// Current operator -> node assignment.
    const std::vector<size_t>* assignment = nullptr;
    /// Per-operator CPU demand during the epoch (CPU-seconds per second).
    const Vector* op_loads = nullptr;
    /// Per-node CPU demand during the epoch (CPU-seconds per second).
    const Vector* node_loads = nullptr;
    /// Per-node backlog at epoch end (CPU-seconds of unserved work).
    const Vector* backlog = nullptr;
    size_t epoch_index = 0;
  };

  /// Moves to apply before the next epoch (may be empty). Moves naming
  /// unknown operators/nodes or the operator's current node are ignored.
  virtual std::vector<Migration> Decide(const EpochView& view) = 0;
};

/// Fluid simulation knobs.
struct FluidOptions {
  /// Epoch width in seconds (also the policy's reaction granularity).
  double epoch_sec = 1.0;

  /// Seconds a migrating operator is stalled (its work during the stall is
  /// deferred onto the destination node's backlog). Paper §1: "on the
  /// order of a few hundred milliseconds", more for large state.
  double migration_latency = 0.3;

  /// CPU-seconds of marshalling overhead charged to both endpoints of a
  /// move, spread over the epoch it lands in.
  double migration_cpu_cost = 0.05;

  /// Node utilization (demand/capacity) at/above which an epoch counts as
  /// overloaded.
  double overload_threshold = 1.0;

  /// Carry-in backlog per node (CPU-seconds of unserved work), empty = all
  /// zero. Enables composing runs across topology changes — e.g. run on n
  /// nodes, a node fails, RepairPlacement re-homes its operators, and the
  /// continuation run starts with the survivors' remaining backlog (the
  /// dead node's queued work is lost with it).
  Vector initial_backlog;
};

/// Aggregate results of one fluid run.
struct FluidResult {
  size_t epochs = 0;
  size_t overloaded_epochs = 0;    ///< Epochs where some node's demand
                                   ///< (incl. migration overhead) exceeded
                                   ///< the overload threshold.
  double max_utilization = 0.0;    ///< Peak per-epoch max-node utilization.
  double mean_utilization = 0.0;   ///< Mean over epochs of max-node util.
  double max_backlog_sec = 0.0;    ///< Peak node backlog / capacity — the
                                   ///< fluid model's latency proxy.
  double mean_backlog_sec = 0.0;   ///< Mean over epochs of the same.
  double final_backlog_sec = 0.0;  ///< Left-over queueing delay at the end.
  size_t migrations = 0;           ///< Moves actually applied.
  std::vector<size_t> final_assignment;
  Vector final_backlog;            ///< Per-node backlog at the horizon
                                   ///< (CPU-seconds), for run composition.
};

/// Runs the fluid model: `inputs` supplies one rate trace per system input
/// stream; `initial` places the operators; `policy` (may be null = fully
/// static) is consulted at every epoch boundary.
Result<FluidResult> FluidSimulate(const query::LoadModel& model,
                                  const place::Placement& initial,
                                  const place::SystemSpec& system,
                                  const std::vector<trace::RateTrace>& inputs,
                                  const FluidOptions& options = {},
                                  MigrationPolicy* policy = nullptr);

}  // namespace rod::sim

#endif  // ROD_RUNTIME_FLUID_H_
