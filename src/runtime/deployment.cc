#include "runtime/deployment.h"

namespace rod::sim {

Result<Deployment> CompileDeployment(const query::QueryGraph& graph,
                                     const place::Placement& placement,
                                     const place::SystemSpec& system) {
  ROD_RETURN_IF_ERROR(system.Validate());
  ROD_RETURN_IF_ERROR(graph.Validate());
  if (placement.num_operators() != graph.num_operators()) {
    return Status::InvalidArgument("placement/graph operator count mismatch");
  }
  if (placement.num_nodes() != system.num_nodes()) {
    return Status::InvalidArgument("placement/system node count mismatch");
  }

  Deployment dep;
  dep.system = system;
  dep.ops.resize(graph.num_operators());
  dep.input_routes.resize(graph.num_input_streams());

  for (query::OperatorId j = 0; j < graph.num_operators(); ++j) {
    const query::OperatorSpec& spec = graph.spec(j);
    CompiledOp& op = dep.ops[j];
    if (placement.node_of(j) >= system.num_nodes()) {
      // Placement's constructor asserts this, but asserts vanish in release
      // builds and placements also arrive via deserialization.
      return Status::InvalidArgument("operator assigned to nonexistent node");
    }
    op.node = static_cast<uint32_t>(placement.node_of(j));
    op.is_join = spec.kind == query::OperatorKind::kJoin;
    op.cost = spec.cost;
    op.selectivity = spec.selectivity;
    // The paper's load convention is `window * r_u * r_v` pairs per unit
    // time (Example 3). The engine probes symmetrically (every arrival on
    // either side scans the opposite buffer), which pairs each tuple
    // couple exactly once — by the later arrival — so a per-side horizon
    // of window/2 yields |t_l - t_r| <= window/2 matches and exactly
    // 2 * (window/2) * r_u * r_v = window * r_u * r_v pairs per second.
    op.window = spec.kind == query::OperatorKind::kJoin ? spec.window / 2.0
                                                        : spec.window;
    op.is_sink = graph.consumers_of(j).empty();
  }

  // Shedding priority: expected sink outputs per tuple entering operator
  // j, folded backward over the DAG (insertion order is topological, so
  // reverse id order visits consumers before producers), scaled by the
  // operator's declared qos_weight. Joins contribute their per-pair
  // selectivity — a rate-free stand-in for the true window*rate product —
  // which keeps the ordering meaningful without runtime rate estimates.
  for (size_t r = graph.num_operators(); r-- > 0;) {
    const query::OperatorSpec& spec = graph.spec(r);
    double downstream = 1.0;  // sinks deliver straight to the application
    const auto& consumers = graph.consumers_of(r);
    if (!consumers.empty()) {
      downstream = 0.0;
      for (query::OperatorId c : consumers) downstream += dep.ops[c].drop_weight;
    }
    dep.ops[r].drop_weight = spec.qos_weight * spec.selectivity * downstream;
  }

  // Wire routes from each arc's source to its consumer.
  for (query::OperatorId j = 0; j < graph.num_operators(); ++j) {
    const auto& arcs = graph.inputs_of(j);
    for (uint32_t port = 0; port < arcs.size(); ++port) {
      const query::Arc& arc = arcs[port];
      Route route;
      route.to_op = static_cast<uint32_t>(j);
      route.to_port = port;
      route.comm_cost = arc.comm_cost;
      if (arc.from.kind == query::StreamRef::Kind::kInput) {
        // External sources always "cross" into the cluster; ingestion cost
        // is charged on the receiving node only.
        route.crosses_nodes = true;
        dep.input_routes[arc.from.index].push_back(route);
      } else {
        route.crosses_nodes =
            placement.node_of(arc.from.index) != placement.node_of(j);
        dep.ops[arc.from.index].consumers.push_back(route);
      }
    }
  }
  return dep;
}

Result<std::vector<uint32_t>> ReassignOperators(
    Deployment& deployment, const std::vector<size_t>& assignment) {
  if (assignment.size() != deployment.ops.size()) {
    return Status::InvalidArgument("assignment/deployment operator count "
                                   "mismatch");
  }
  for (size_t node : assignment) {
    if (node >= deployment.num_nodes()) {
      return Status::InvalidArgument("assignment points outside the cluster");
    }
  }
  std::vector<uint32_t> moved;
  for (uint32_t j = 0; j < deployment.ops.size(); ++j) {
    const auto node = static_cast<uint32_t>(assignment[j]);
    if (deployment.ops[j].node != node) {
      deployment.ops[j].node = node;
      moved.push_back(j);
    }
  }
  // Refresh cross-node flags on every internal route (input routes always
  // cross: sources are external).
  for (CompiledOp& op : deployment.ops) {
    for (Route& route : op.consumers) {
      route.crosses_nodes = op.node != deployment.ops[route.to_op].node;
    }
  }
  return moved;
}

}  // namespace rod::sim
