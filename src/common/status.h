// Copyright (c) the ROD reproduction authors.
//
// Error-handling primitives. The library does not throw exceptions across
// its public API; fallible operations return `Status` or `Result<T>`
// (RocksDB / Arrow idiom).

#ifndef ROD_COMMON_STATUS_H_
#define ROD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rod {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< Caller passed a malformed value.
  kNotFound,           ///< A referenced entity does not exist.
  kFailedPrecondition, ///< Object state does not permit the operation.
  kOutOfRange,         ///< Index or value outside the permitted interval.
  kUnimplemented,      ///< Feature intentionally not provided.
  kInternal,           ///< Invariant violation inside the library.
  kDataLoss,           ///< Persistent data is unrecoverably corrupt or
                       ///< truncated (checksum mismatch, torn write).
  kUnavailable,        ///< A peer or transport is (possibly transiently)
                       ///< gone: connection refused/reset, EOF mid-frame,
                       ///< socket timeout. Distinguished from kDataLoss
                       ///< (the bytes that did arrive were corrupt) and
                       ///< kFailedPrecondition (local state): retrying or
                       ///< re-routing may succeed.
};

/// Returns the canonical lower-case name of `code` ("ok", "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value.
///
/// A `Status` is either OK (no allocation, cheap to copy) or carries a code
/// plus a human-readable message. Functions that can fail return `Status`
/// (or `Result<T>`); callers must check `ok()` before relying on outputs.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>" for logging.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type `T`, or the `Status` explaining why it is absent.
///
/// `Result<T>` is the return type of fallible constructors and computations.
/// Access the payload only after checking `ok()`.
template <typename T>
class Result {
 public:
  /// Success: wraps `value`.
  Result(T value)  // NOLINT(google-explicit-constructor): mirrors absl::StatusOr.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Failure: wraps a non-OK `status`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Payload accessors; undefined behaviour unless `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller (`return` on error).
#define ROD_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::rod::Status _rod_st = (expr);          \
    if (!_rod_st.ok()) return _rod_st;       \
  } while (0)

/// Asserts OK in contexts where failure is a programming error.
#define ROD_CHECK_OK(expr)                                            \
  do {                                                                \
    ::rod::Status _rod_st = (expr);                                   \
    (void)_rod_st;                                                    \
    assert(_rod_st.ok() && "ROD_CHECK_OK failed");                    \
  } while (0)

}  // namespace rod

#endif  // ROD_COMMON_STATUS_H_
