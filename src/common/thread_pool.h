// Copyright (c) the ROD reproduction authors.
//
// A small fixed-size worker pool plus a chunked ParallelFor, built for the
// volume-estimation hot path. Determinism contract: ParallelFor splits
// [0, n) into chunks whose boundaries depend only on `n` and `grain` —
// never on the thread count or on scheduling — so a caller that writes
// per-chunk results into chunk-indexed slots and reduces them in chunk
// order gets bit-identical output for every `num_threads`.

#ifndef ROD_COMMON_THREAD_POOL_H_
#define ROD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace rod {

/// A fixed set of worker threads draining a shared task queue. Tasks must
/// not throw (an escaping exception terminates the process). Destruction
/// drains every queued task, then joins the workers.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Enqueues `count` copies of `task` under one lock acquisition, with a
  /// single queue-depth gauge update for the whole batch (ParallelFor's
  /// helper fan-out: submitting N helpers one by one pays N lock round
  /// trips and N telemetry ratchets for identical tasks).
  void SubmitMany(size_t count, const std::function<void()>& task);

  /// Attaches (or, with nullptr, detaches) a telemetry sink: workers
  /// record a "pool/task" span per executed task, a `pool.tasks`
  /// counter, a `pool.queue_depth` gauge, and a
  /// `pool.queue_depth_high_water` gauge (peak depth, ratcheted with
  /// Gauge::Max on submit; the Aggregator resets it each sample). Not
  /// owned; the sink must outlive its attachment.
  ///
  /// Swapping quiesces: the call blocks until the queue is empty and no
  /// worker is mid-task, because a worker ends its "pool/task" span
  /// *after* the task's completion becomes observable (a ParallelFor
  /// caller can wake, return, and destroy a scoped sink while the span
  /// end is still in flight — the swap must not race that). After
  /// set_telemetry returns, no worker can touch the previous sink, so
  /// the caller may destroy it. Must not be called from a pool task
  /// (it would wait on itself).
  void set_telemetry(telemetry::Telemetry* telemetry);

  /// Process-wide pool sized to the hardware concurrency (>= 1), created
  /// on first use. The ParallelFor overload without an explicit pool runs
  /// on this instance.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;  ///< Signals queue empty + no busy worker.
  std::deque<std::function<void()>> queue_;
  size_t busy_workers_ = 0;  ///< Guarded by mu_; includes the span end.
  bool stop_ = false;
  // Guarded by mu_; copied out before use so spans run unlocked.
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Counter tasks_counter_;
  telemetry::Gauge queue_depth_gauge_;
  telemetry::Gauge queue_depth_high_water_;
  std::vector<std::thread> workers_;
};

/// Chunked parallel loop over [0, n): invokes `fn(chunk, begin, end)` once
/// for every chunk `[c*grain, min(n, (c+1)*grain))`. Chunk boundaries are a
/// pure function of `n` and `grain`; only the chunk-to-thread mapping is
/// dynamic. At most `num_threads` chunks execute concurrently (the calling
/// thread participates as one of them). Runs inline on the caller when
/// `num_threads <= 1`, when there is a single chunk, or when called from
/// inside a pool worker (nested loops never re-enter the pool, so a worker
/// can never deadlock waiting on its own queue). Blocks until every chunk
/// has completed. `fn` must not throw and must only write chunk-owned
/// (disjoint) state.
void ParallelFor(ThreadPool& pool, size_t num_threads, size_t n, size_t grain,
                 const std::function<void(size_t chunk, size_t begin,
                                          size_t end)>& fn);

/// ParallelFor over ThreadPool::Shared().
void ParallelFor(size_t num_threads, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace rod

#endif  // ROD_COMMON_THREAD_POOL_H_
