// Copyright (c) the ROD reproduction authors.
//
// Streaming and batch statistics used by the trace generators (normalized
// rate variability, Fig. 2), the runtime metrics (latency percentiles), and
// the experiment harnesses (mean/min/max ratios across trials).

#ifndef ROD_COMMON_STATS_H_
#define ROD_COMMON_STATS_H_

#include <cstddef>
#include <limits>
#include <vector>

namespace rod {

/// Numerically stable running mean / variance / extrema (Welford).
class RunningStats {
 public:
  /// Incorporates one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch percentile of `values` (q in [0,1]) using linear interpolation
/// between order statistics. Copies and sorts; intended for end-of-run
/// metric extraction, not hot paths. Returns 0 for empty input.
double Percentile(std::vector<double> values, double q);

/// Pearson correlation coefficient of two equally sized series; returns 0
/// when either series is constant (the correlation-based baseline treats
/// constant-load operators as uncorrelated).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Mean of `v` (0 for empty input).
double Mean(const std::vector<double>& v);

/// Population standard deviation of `v` (0 for fewer than two elements).
double StdDev(const std::vector<double>& v);

/// Aggregates a series into coarser windows by summing groups of `factor`
/// consecutive elements (used by self-similarity analysis across
/// time-scales). The tail remainder that does not fill a window is dropped.
std::vector<double> AggregateSeries(const std::vector<double>& v, size_t factor);

}  // namespace rod

#endif  // ROD_COMMON_STATS_H_
