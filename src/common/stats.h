// Copyright (c) the ROD reproduction authors.
//
// Streaming and batch statistics used by the trace generators (normalized
// rate variability, Fig. 2), the runtime metrics (latency percentiles), and
// the experiment harnesses (mean/min/max ratios across trials).

#ifndef ROD_COMMON_STATS_H_
#define ROD_COMMON_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/random.h"

namespace rod {

/// Numerically stable running mean / variance / extrema (Welford).
class RunningStats {
 public:
  /// Incorporates one observation. Inline: this runs once per simulated
  /// tuple on the engine's output path.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-memory uniform sample of a stream (Vitter's Algorithm R). With
/// `capacity` 0 every observation is kept (exact mode); otherwise at most
/// `capacity` doubles are retained and each of the n observations seen so
/// far is present with probability capacity/n. Replacement draws come
/// from an internal Rng seeded at construction, so the retained set is a
/// pure function of (capacity, seed, observation order) — deterministic
/// across runs, threads, and platforms.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(size_t capacity = 0, uint64_t seed = 0)
      : capacity_(capacity), rng_(seed) {}

  /// Incorporates one observation. Inline: the engine offers every sink
  /// output to two reservoirs (total + per-sink).
  void Add(double x) {
    ++count_;
    if (capacity_ == 0 || samples_.size() < capacity_) {
      samples_.push_back(x);
      return;
    }
    // Algorithm R: the incoming observation replaces a uniformly random
    // retained one with probability capacity / count.
    const uint64_t j = rng_.NextIndex(count_);
    if (j < capacity_) samples_[j] = x;
  }

  /// Total observations offered (not the retained count).
  size_t count() const { return count_; }

  /// True when every observation is retained (capacity 0, or the stream
  /// has not yet exceeded the capacity).
  bool exact() const { return capacity_ == 0 || count_ <= capacity_; }

  /// The retained sample, in an implementation-defined order.
  const std::vector<double>& samples() const { return samples_; }

  /// Drops all observations; keeps capacity, seed state, and storage.
  void Clear() {
    samples_.clear();
    count_ = 0;
  }

 private:
  size_t capacity_;
  size_t count_ = 0;
  std::vector<double> samples_;
  Rng rng_;
};

/// Batch percentile of `values` (q in [0,1]) using linear interpolation
/// between order statistics. Copies and sorts; intended for end-of-run
/// metric extraction, not hot paths. Returns 0 for empty input.
double Percentile(std::vector<double> values, double q);

/// Percentile of an already ascending-sorted span (q in [0,1]), linear
/// interpolation between order statistics; the allocation-free core of
/// `Percentile`. Returns 0 for empty input.
double QuantileOfSorted(std::span<const double> sorted, double q);

/// Pearson correlation coefficient of two equally sized series; returns 0
/// when either series is constant (the correlation-based baseline treats
/// constant-load operators as uncorrelated).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Mean of `v` (0 for empty input).
double Mean(const std::vector<double>& v);

/// Population standard deviation of `v` (0 for fewer than two elements).
double StdDev(const std::vector<double>& v);

/// Aggregates a series into coarser windows by summing groups of `factor`
/// consecutive elements (used by self-similarity analysis across
/// time-scales). The tail remainder that does not fill a window is dropped.
std::vector<double> AggregateSeries(const std::vector<double>& v, size_t factor);

}  // namespace rod

#endif  // ROD_COMMON_STATS_H_
