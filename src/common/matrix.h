// Copyright (c) the ROD reproduction authors.
//
// Minimal dense linear algebra used by the load model and the feasible-set
// geometry: row-major matrices of doubles plus the handful of vector
// operations the paper's formulation needs (L^n = A·L^o, row norms, dot
// products, hyperplane distances).

#ifndef ROD_COMMON_MATRIX_H_
#define ROD_COMMON_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rod {

/// Dense vector of doubles.
using Vector = std::vector<double>;

/// Dot product of equally sized vectors.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean (L2) norm.
double Norm2(std::span<const double> a);

/// Sum of elements.
double Sum(std::span<const double> a);

/// `a + b`, element-wise.
Vector Add(std::span<const double> a, std::span<const double> b);

/// `a - b`, element-wise.
Vector Sub(std::span<const double> a, std::span<const double> b);

/// `s * a`.
Vector Scale(std::span<const double> a, double s);

/// True iff `|a[i] - b[i]| <= tol` for all i (and sizes match).
bool AlmostEqual(std::span<const double> a, std::span<const double> b,
                 double tol = 1e-9);

/// Dense row-major matrix of doubles.
///
/// Sized at construction; elements are addressed `m(i, j)` with asserted
/// bounds. Rows are exposed as spans so algorithms can operate on node /
/// operator load-coefficient rows without copying.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// A `rows` x `cols` matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<Vector>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    assert(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Mutable / immutable view of row `i`.
  std::span<double> Row(size_t i) {
    assert(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> Row(size_t i) const {
    assert(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  /// Column `j` as a freshly allocated vector.
  Vector Col(size_t j) const;

  /// Sum of column `j` (e.g. total load coefficient `l_k` of a stream).
  double ColSum(size_t j) const;

  /// Matrix product `this * rhs`.
  Matrix MatMul(const Matrix& rhs) const;

  /// Matrix-vector product `this * v`.
  Vector MatVec(std::span<const double> v) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// Element-wise equality within `tol`.
  bool AlmostEquals(const Matrix& other, double tol = 1e-9) const;

  /// Multi-line human-readable rendering (for logs and golden tests).
  std::string ToString(int precision = 4) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace rod

#endif  // ROD_COMMON_MATRIX_H_
