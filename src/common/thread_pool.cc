#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>

namespace rod {

namespace {

/// Set while a thread is executing pool tasks; a nested ParallelFor issued
/// from a worker runs inline instead of re-entering the pool (a worker
/// blocking on sub-tasks behind it in the queue would deadlock the pool).
thread_local bool t_inside_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(num_threads, 1);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_);
    queue_.push_back(std::move(task));
    if (telemetry_ != nullptr) {
      queue_depth_gauge_.Set(static_cast<double>(queue_.size()));
      queue_depth_high_water_.Max(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void ThreadPool::SubmitMany(size_t count, const std::function<void()>& task) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_);
    for (size_t i = 0; i < count; ++i) queue_.push_back(task);
    if (telemetry_ != nullptr) {
      queue_depth_gauge_.Set(static_cast<double>(queue_.size()));
      queue_depth_high_water_.Max(static_cast<double>(queue_.size()));
    }
  }
  if (count == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void ThreadPool::set_telemetry(telemetry::Telemetry* telemetry) {
  assert(!t_inside_pool_worker);
  std::unique_lock<std::mutex> lock(mu_);
  // Quiesce before swapping: a worker ends its "pool/task" span after
  // the task's effects (including a ParallelFor completion notify) are
  // visible, so the previous sink stays reachable until no worker is
  // mid-task. Once this returns the old sink may be destroyed.
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_workers_ == 0; });
  telemetry_ = telemetry;
  if (telemetry != nullptr) {
    tasks_counter_ = telemetry->counter("pool.tasks");
    queue_depth_gauge_ = telemetry->gauge("pool.queue_depth");
    queue_depth_high_water_ = telemetry->gauge("pool.queue_depth_high_water");
  } else {
    tasks_counter_ = telemetry::Counter();
    queue_depth_gauge_ = telemetry::Gauge();
    queue_depth_high_water_ = telemetry::Gauge();
  }
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    telemetry::Telemetry* telemetry = nullptr;
    telemetry::Counter tasks_counter;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_workers_;
      telemetry = telemetry_;
      if (telemetry != nullptr) {
        tasks_counter = tasks_counter_;
        queue_depth_gauge_.Set(static_cast<double>(queue_.size()));
      }
    }
    if (telemetry != nullptr) {
      telemetry::TraceSpan span(telemetry, "pool", "task");
      tasks_counter.Add();
      task();
    } else {
      task();
    }
    // The span above has ended and the task's captures are gone: the
    // worker no longer touches the sink, so it may count as idle for
    // set_telemetry's quiescence wait.
    task = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_workers_;
      if (busy_workers_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  return pool;
}

void ParallelFor(ThreadPool& pool, size_t num_threads, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  assert(grain > 0);
  if (n == 0) return;
  const size_t num_chunks = (n + grain - 1) / grain;
  auto run_chunk = [&fn, n, grain](size_t c) {
    fn(c, c * grain, std::min(n, (c + 1) * grain));
  };
  if (num_threads <= 1 || num_chunks <= 1 || t_inside_pool_worker) {
    for (size_t c = 0; c < num_chunks; ++c) run_chunk(c);
    return;
  }

  // Workers (including the caller) pull chunk indices from a shared
  // cursor. The state block is shared-owned because a helper task can
  // outlive this frame's local scope only between its final notify and
  // the caller's wakeup.
  struct State {
    std::atomic<size_t> next_chunk{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done_helpers = 0;
  };
  auto state = std::make_shared<State>();
  auto drain = [state, num_chunks, &run_chunk] {
    for (;;) {
      const size_t c = state->next_chunk.fetch_add(1);
      if (c >= num_chunks) return;
      run_chunk(c);
    }
  };
  // The caller is one of the `num_threads` lanes; the rest are pool tasks,
  // submitted as one batch (one lock, one telemetry update).
  const size_t helpers = std::min(num_threads, num_chunks) - 1;
  pool.SubmitMany(helpers, [state, drain] {
    drain();
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->done_helpers;
    }
    state->cv.notify_one();
  });
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock,
                 [&] { return state->done_helpers == helpers; });
}

void ParallelFor(size_t num_threads, size_t n, size_t grain,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  ParallelFor(ThreadPool::Shared(), num_threads, n, grain, fn);
}

}  // namespace rod
