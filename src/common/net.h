// Copyright (c) the ROD reproduction authors.
//
// Raw POSIX socket helpers shared by the telemetry HTTP server and the
// cluster transport: loopback listen/connect, exact-length reads, full
// writes, socket timeouts, and a self-pipe for waking poll() loops.
//
// This layer sits below rod_common (the telemetry library uses it), so it
// reports errors as bool + optional errno-derived message instead of
// rod::Status; the cluster transport wraps these into Status codes one
// layer up. All helpers are loopback-IPv4 only by design: both users
// observe or coordinate processes on one machine, and fronting them for
// remote peers is a proxy's job.

#ifndef ROD_COMMON_NET_H_
#define ROD_COMMON_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace rod::net {

/// Appends ": strerror(errno)" to `what` into `*error` (when non-null).
/// Always returns false so call sites can `return FillError(...)`.
bool FillErrno(std::string* error, const char* what);

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 picks an ephemeral
/// port) with SO_REUSEADDR and a backlog of 16. Returns the listening fd,
/// or -1 (with `*error` filled when given).
int ListenLoopback(uint16_t port, std::string* error = nullptr);

/// The locally bound port of `fd` (getsockname), or 0 on failure.
uint16_t BoundPort(int fd);

/// Accepts one pending connection; retries EINTR. Returns the connected
/// fd or -1.
int AcceptConnection(int listen_fd);

/// Connects to 127.0.0.1:`port`. Returns the connected fd, or -1 (with
/// `*error` filled when given).
int ConnectLoopback(uint16_t port, std::string* error = nullptr);

/// Sets both SO_RCVTIMEO and SO_SNDTIMEO to `seconds` (0 disables).
void SetSocketTimeouts(int fd, double seconds);

/// Reads exactly `len` bytes into `buf`, retrying EINTR and short reads.
/// Returns true on success; false on EOF, timeout, or error (errno is
/// preserved from the failing read; EOF sets errno to 0).
bool ReadExactly(int fd, void* buf, size_t len);

/// Writes the whole buffer, retrying EINTR and short writes. Returns
/// false on error (e.g. the peer is gone; errno preserved).
bool WriteAll(int fd, const void* data, size_t len);

/// Closes `*fd` if it is >= 0 and resets it to -1. Idempotent.
void CloseFd(int* fd);

/// A pipe whose read end is polled alongside sockets so another thread
/// can wake (and terminate) a poll loop: the event-loop owner polls
/// `read_fd()` for POLLIN, any thread calls Notify().
class SelfPipe {
 public:
  SelfPipe() = default;
  ~SelfPipe() { Close(); }

  SelfPipe(const SelfPipe&) = delete;
  SelfPipe& operator=(const SelfPipe&) = delete;

  /// Creates the pipe. Returns false (filling `*error`) on failure.
  bool Open(std::string* error = nullptr);

  /// Best-effort single-byte write to the pipe; wakes a blocked poll().
  void Notify();

  /// Drains any pending wake bytes (call after poll reports readable when
  /// the loop keeps running instead of exiting).
  void Drain();

  /// The pollable read end; -1 before Open().
  int read_fd() const { return fds_[0]; }

  bool open() const { return fds_[0] >= 0; }

  /// Closes both ends. Idempotent; called by the destructor.
  void Close();

 private:
  int fds_[2] = {-1, -1};
};

}  // namespace rod::net

#endif  // ROD_COMMON_NET_H_
