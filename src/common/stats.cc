#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rod {

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileOfSorted(values, q);
}

double QuantileOfSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  assert(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size()));
}

std::vector<double> AggregateSeries(const std::vector<double>& v,
                                    size_t factor) {
  assert(factor > 0);
  std::vector<double> out;
  out.reserve(v.size() / factor);
  for (size_t i = 0; i + factor <= v.size(); i += factor) {
    double s = 0.0;
    for (size_t j = 0; j < factor; ++j) s += v[i + j];
    out.push_back(s);
  }
  return out;
}

}  // namespace rod
