#include "common/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace rod::net {

bool FillErrno(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
  return false;
}

int ListenLoopback(uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    FillErrno(error, "socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    FillErrno(error, "bind");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, /*backlog=*/16) != 0) {
    FillErrno(error, "listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int AcceptConnection(int listen_fd) {
  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client >= 0) return client;
    if (errno != EINTR) return -1;
  }
}

int ConnectLoopback(uint16_t port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    FillErrno(error, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    FillErrno(error, "connect");
    ::close(fd);
    return -1;
  }
  return fd;
}

void SetSocketTimeouts(int fd, double seconds) {
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(seconds);
  timeout.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(timeout.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

bool ReadExactly(int fd, void* buf, size_t len) {
  char* out = static_cast<char*>(buf);
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd, out + off, len - off);
    if (n == 0) {
      errno = 0;  // Clean EOF, not an errno failure.
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool WriteAll(int fd, const void* data, size_t len) {
  const char* in = static_cast<const char*>(data);
  size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: writing to a peer that died must fail with EPIPE, not
    // raise SIGPIPE and kill the process (a cluster worker shipping to a
    // crashed peer is a survivable error, not a fatal one). Falls back to
    // write() for non-socket fds (send sets ENOTSOCK).
    ssize_t n = ::send(fd, in + off, len - off, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, in + off, len - off);
    }
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void CloseFd(int* fd) {
  if (fd != nullptr && *fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

bool SelfPipe::Open(std::string* error) {
  if (open()) return true;
  if (::pipe(fds_) != 0) return FillErrno(error, "pipe");
  // Non-blocking read end: Drain() must never wedge the event loop when
  // another thread's wake byte was already consumed.
  const int flags = ::fcntl(fds_[0], F_GETFL, 0);
  if (flags >= 0) ::fcntl(fds_[0], F_SETFL, flags | O_NONBLOCK);
  return true;
}

void SelfPipe::Notify() {
  if (fds_[1] < 0) return;
  const char byte = 'w';
  (void)!::write(fds_[1], &byte, 1);
}

void SelfPipe::Drain() {
  if (fds_[0] < 0) return;
  char buf[64];
  while (::read(fds_[0], buf, sizeof(buf)) > 0) {
  }
}

void SelfPipe::Close() {
  CloseFd(&fds_[0]);
  CloseFd(&fds_[1]);
}

}  // namespace rod::net
