// Copyright (c) the ROD reproduction authors.
//
// Deterministic pseudo-random number generation. Every stochastic component
// of the library (graph generation, workload synthesis, Monte-Carlo
// sampling, baseline placement algorithms) takes an explicit `Rng&` so that
// experiments are reproducible from a single seed.

#ifndef ROD_COMMON_RANDOM_H_
#define ROD_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace rod {

/// xoshiro256** generator seeded via SplitMix64.
///
/// Small, fast, and with well-understood statistical quality — sufficient
/// for simulation workloads (this is not a cryptographic generator). The
/// same seed always yields the same sequence on every platform.
class Rng {
 public:
  /// Seeds the state by running SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0xd1ce5bd19e3779b9ULL) { Reseed(seed); }

  /// Re-initializes the generator as if freshly constructed with `seed`.
  void Reseed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step (Vigna): decorrelates arbitrary user seeds.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    assert(lo <= hi);
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n); n must be positive.
  uint64_t NextIndex(uint64_t n) {
    assert(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    unsigned __int128 m =
        static_cast<unsigned __int128>(NextU64()) * static_cast<unsigned __int128>(n);
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(NextIndex(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box–Muller (polar form avoided for determinism).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    // Guard against log(0).
    double u1 = 1.0 - NextDouble();
    double u2 = NextDouble();
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
  }

  /// Exponential with rate `lambda` (mean 1/lambda).
  double Exponential(double lambda) {
    assert(lambda > 0);
    return -std::log(1.0 - NextDouble()) / lambda;
  }

  /// Pareto with scale `xm > 0` and shape `alpha > 0` (heavy-tailed for
  /// alpha <= 2; used by the ON/OFF self-similar trace generator).
  double Pareto(double xm, double alpha) {
    assert(xm > 0 && alpha > 0);
    return xm / std::pow(1.0 - NextDouble(), 1.0 / alpha);
  }

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextIndex(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each experiment
  /// trial / stream its own stable substream.
  Rng Fork() { return Rng(NextU64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace rod

#endif  // ROD_COMMON_RANDOM_H_
