#include "common/matrix.h"

#include <cmath>
#include <sstream>

namespace rod {

double Dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(std::span<const double> a) {
  double s = 0.0;
  for (double x : a) s += x * x;
  return std::sqrt(s);
}

double Sum(std::span<const double> a) {
  double s = 0.0;
  for (double x : a) s += x;
  return s;
}

Vector Add(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector Scale(std::span<const double> a, double s) {
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

bool AlmostEqual(std::span<const double> a, std::span<const double> b,
                 double tol) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

Matrix Matrix::FromRows(const std::vector<Vector>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i].size() == m.cols_ && "ragged rows");
    for (size_t j = 0; j < m.cols_; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

Vector Matrix::Col(size_t j) const {
  assert(j < cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

double Matrix::ColSum(size_t j) const {
  assert(j < cols_);
  double s = 0.0;
  for (size_t i = 0; i < rows_; ++i) s += (*this)(i, j);
  return s;
}

Matrix Matrix::MatMul(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;  // allocation matrices are sparse 0/1
      for (size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::MatVec(std::span<const double> v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) out[i] = Dot(Row(i), v);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

bool Matrix::AlmostEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j);
      if (j + 1 < cols_) os << ", ";
    }
    os << (i + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

}  // namespace rod
