#include "cluster/worker.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "telemetry/exposition.h"
#include "telemetry/json_writer.h"

namespace rod::cluster {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Socket timeout on the control connection: a coordinator that wedges
/// mid-frame surfaces as kUnavailable instead of hanging the worker.
constexpr double kControlTimeout = 30.0;

/// Data-plane send/dial timeout: a peer that stops draining is treated
/// as down (loss is counted) rather than stalling the event loop.
constexpr double kDataTimeout = 2.0;

/// Bound on batches buffered against paused operators; beyond it the
/// oldest buffered batch is dropped and counted lost (a migration fence
/// must not grow memory without bound if a resume never comes).
constexpr size_t kMaxPausedBatches = 65536;

}  // namespace

Worker::Worker(WorkerOptions options) : options_(std::move(options)) {
  if (options_.name.empty()) {
    options_.name = "worker-" + std::to_string(::getpid());
  }
}

Worker::~Worker() { http_.Stop(); }

Status RunWorker(const WorkerOptions& options) {
  Worker worker(options);
  return worker.Run();
}

void Worker::RequestStop() { stop_pipe_.Notify(); }

double Worker::Now() const {
  return started_ ? MonotonicSeconds() - run_epoch_ : 0.0;
}

Status Worker::Run() {
  std::string error;
  if (!stop_pipe_.Open(&error)) {
    return Status::Internal("self-pipe: " + error);
  }
  ROD_RETURN_IF_ERROR(Connect());
  const Status result = EventLoop();
  http_.Stop();
  if (!options_.trace_path.empty()) DumpTrace();
  return result;
}

void Worker::DumpTrace() const {
  std::ofstream out(options_.trace_path);
  if (!out.is_open()) return;
  telemetry::ChromeTraceProcess proc;
  proc.pid = static_cast<uint64_t>(worker_id_) + 2;  // Coordinator is 1.
  proc.name = options_.name;
  proc.metadata["worker_id"] = static_cast<double>(worker_id_);
  const bool synced =
      worker_id_ < have_offset_.size() && have_offset_[worker_id_] != 0;
  proc.metadata["clock_offset_us"] =
      synced ? clock_offset_us_[worker_id_] : 0.0;
  telemetry_.WriteChromeTrace(out, proc);
}

Status Worker::Connect() {
  ROD_RETURN_IF_ERROR(data_listener_.Listen(options_.data_port));
  data_listener_.set_metrics(&frame_metrics_);
  if (options_.serve_http) StartHttpPlane();

  // The coordinator may come up after its workers; retry the dial until
  // the connect timeout elapses.
  const double deadline = MonotonicSeconds() + options_.connect_timeout;
  for (;;) {
    auto conn = FrameConn::DialLoopback(options_.coordinator_port,
                                        kControlTimeout);
    if (conn.ok()) {
      control_ = std::move(conn.value());
      control_.set_metrics(&frame_metrics_);
      break;
    }
    if (MonotonicSeconds() >= deadline) return conn.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  HelloMsg hello;
  hello.data_port = data_listener_.port();
  hello.http_port = http_port_;
  hello.capacity = options_.capacity;
  hello.name = options_.name;
  ROD_RETURN_IF_ERROR(control_.Send(MsgType::kHello, hello.Encode()));

  Frame frame;
  ROD_RETURN_IF_ERROR(control_.Recv(&frame));
  if (frame.type != MsgType::kWelcome) {
    return Status::InvalidArgument(
        std::string("expected welcome, got ") + MsgTypeName(frame.type));
  }
  auto welcome = WelcomeMsg::Decode(frame.payload);
  if (!welcome.ok()) return welcome.status();
  worker_id_ = welcome->worker_id;
  num_workers_ = welcome->num_workers;
  heartbeat_interval_ = welcome->heartbeat_interval;
  return Status::OK();
}

Status Worker::EventLoop() {
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_.read_fd(), POLLIN, 0});
    fds.push_back({control_.fd(), POLLIN, 0});
    fds.push_back({data_listener_.fd(), POLLIN, 0});
    const size_t inbound_base = fds.size();
    for (const FrameConn& conn : inbound_) {
      fds.push_back({conn.fd(), POLLIN, 0});
    }

    int timeout_ms = -1;
    if (started_) {
      double next = next_heartbeat_;
      if (generating_) next = std::min(next, next_tick_);
      const double wait = next - Now();
      timeout_ms = wait <= 0.0
                       ? 0
                       : static_cast<int>(std::ceil(wait * 1000.0));
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("poll failed");
    }

    if (fds[0].revents != 0) return Status::OK();  // RequestStop().

    if (fds[1].revents != 0) {
      Frame frame;
      const Status recv = control_.Recv(&frame);
      if (!recv.ok()) return recv;  // Coordinator gone or corrupt stream.
      if (frame.type == MsgType::kShutdown) return Status::OK();
      ROD_RETURN_IF_ERROR(HandleControlFrame(frame));
    }

    if (fds[2].revents != 0) {
      auto conn = data_listener_.Accept(kDataTimeout);
      if (conn.ok()) inbound_.push_back(std::move(conn.value()));
    }

    // Drain readable peers; dead ones are compacted out afterwards.
    std::vector<size_t> dead;
    for (size_t i = inbound_base; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const size_t idx = i - inbound_base;
      Frame frame;
      const Status recv = inbound_[idx].Recv(&frame);
      if (!recv.ok()) {
        dead.push_back(idx);
        continue;
      }
      HandleDataFrame(frame);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      inbound_.erase(inbound_.begin() + static_cast<ptrdiff_t>(*it));
    }

    // Timers.
    if (started_) {
      const double now = Now();
      if (generating_ && now >= next_tick_) {
        const double dt = now - last_gen_time_;
        GenerateSources(now, dt);
        last_gen_time_ = now;
        next_tick_ = now + start_.tick_seconds;
        if (now >= start_.duration) generating_ = false;
      }
      if (now >= next_heartbeat_) {
        SendHeartbeat(now);
        next_heartbeat_ = now + heartbeat_interval_;
      }
    }
  }
}

Status Worker::HandleControlFrame(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPlan: {
      auto plan = PlanMsg::Decode(frame.payload);
      if (!plan.ok()) return plan.status();
      return InstallPlan(*plan);
    }
    case MsgType::kStart: {
      auto start = StartMsg::Decode(frame.payload);
      if (!start.ok()) return start.status();
      start_ = *start;
      started_ = true;
      generating_ = start_.duration > 0.0;
      run_epoch_ = MonotonicSeconds();
      last_gen_time_ = 0.0;
      next_tick_ = start_.tick_seconds;
      next_heartbeat_ = 0.0;  // First heartbeat right away.
      gen_carry_.assign(start_.rates.size(), 0.0);
      rng_.Reseed(start_.seed + worker_id_);
      return Status::OK();
    }
    case MsgType::kPause: {
      auto pause = PauseMsg::Decode(frame.payload);
      if (!pause.ok()) return pause.status();
      for (uint32_t op : pause->ops) {
        if (op < paused_.size()) paused_[op] = 1;
      }
      telemetry_.Count("cluster.pauses", 1);
      telemetry_.RecordInstant("cluster", "pause");
      // Single-threaded loop: nothing is in flight here, so paused ops
      // are already drained — the ack is the drain confirmation.
      PlanAckMsg ack{pause->plan_version, worker_id_};
      return control_.Send(MsgType::kPauseAck, ack.Encode());
    }
    case MsgType::kPlanDiff: {
      auto diff = PlanDiffMsg::Decode(frame.payload);
      if (!diff.ok()) return diff.status();
      ApplyPlanDiff(*diff);
      PlanAckMsg ack{diff->version, worker_id_};
      return control_.Send(MsgType::kPlanAck, ack.Encode());
    }
    case MsgType::kResume: {
      std::fill(paused_.begin(), paused_.end(), 0);
      FlushPausedBuffers();
      telemetry_.Count("cluster.resumes", 1);
      telemetry_.RecordInstant("cluster", "resume");
      return Status::OK();
    }
    case MsgType::kFinish: {
      generating_ = false;
      FinalStatsMsg stats{worker_id_, counters_};
      return control_.Send(MsgType::kFinalStats, stats.Encode());
    }
    case MsgType::kPing: {
      const double t2 = telemetry_.NowMicros();
      auto ping = PingMsg::Decode(frame.payload);
      if (!ping.ok()) return ping.status();
      PongMsg pong;
      pong.seq = ping->seq;
      pong.worker_id = worker_id_;
      pong.t1_us = ping->t1_us;
      pong.t2_us = t2;
      pong.t3_us = telemetry_.NowMicros();
      return control_.Send(MsgType::kPong, pong.Encode());
    }
    case MsgType::kClockSync: {
      auto sync = ClockSyncMsg::Decode(frame.payload);
      if (!sync.ok()) return sync.status();
      InstallClockSync(*sync);
      return Status::OK();
    }
    case MsgType::kFreeze: {
      auto freeze = FreezeMsg::Decode(frame.payload);
      if (!freeze.ok()) return freeze.status();
      return HandleFreeze(*freeze);
    }
    default:
      return Status::InvalidArgument(
          std::string("unexpected control frame: ") +
          MsgTypeName(frame.type));
  }
}

Status Worker::InstallPlan(const PlanMsg& plan) {
  ROD_TRACE_SPAN(&telemetry_, "cluster", "plan.install");
  place::SystemSpec system{Vector(plan.capacities)};
  std::vector<size_t> assignment(plan.assignment.begin(),
                                 plan.assignment.end());
  place::Placement placement(plan.capacities.size(), assignment);
  auto deployment = sim::CompileDeployment(plan.graph, placement, system);
  if (!deployment.ok()) return deployment.status();

  graph_ = plan.graph;
  deployment_ = std::move(deployment.value());
  assignment_ = std::move(assignment);
  source_owner_ = plan.source_owner;
  plan_version_ = plan.version;
  have_plan_ = true;

  const size_t num_ops = graph_.num_operators();
  paused_.assign(num_ops, 0);
  paused_buffers_.clear();
  emit_carry_.assign(num_ops, 0.0);
  op_processed_.assign(num_ops, 0);
  op_busy_.assign(num_ops, 0.0);

  for (const WorkerEndpoint& e : plan.endpoints) {
    if (e.worker_id == worker_id_) continue;
    Peer& peer = peers_[e.worker_id];
    if (peer.data_port != e.data_port) {
      peer.conn.Close();
      peer.data_port = e.data_port;
      peer.down_until = -1.0;
    }
  }

  size_t hosted = 0;
  for (size_t node : assignment_) hosted += node == worker_id_ ? 1 : 0;

  // Register the cluster.* families at zero so every worker's /metrics
  // exposes them from the first scrape.
  for (const char* name :
       {"cluster.tuples_generated", "cluster.tuples_processed",
        "cluster.tuples_emitted", "cluster.tuples_delivered",
        "cluster.tuples_shipped", "cluster.tuples_received",
        "cluster.tuples_lost", "cluster.ship_failures",
        "cluster.batches_received", "cluster.heartbeats_sent",
        "cluster.plan_installs", "cluster.operator_moves",
        "cluster.pauses", "cluster.resumes"}) {
    telemetry_.Count(name, 0);
  }
  telemetry_.Count("cluster.plan_installs", 1);
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  telemetry_.SetGauge("cluster.hosted_operators",
                      static_cast<double>(hosted));
  telemetry_.SetGauge("cluster.worker_id", static_cast<double>(worker_id_));
  // Offset-corrected inter-worker ship latency (microseconds), recorded
  // on the receive path once clock sync has distributed offsets.
  ship_latency_ = telemetry_.histogram("cluster.ship_latency_us");
  ready_.store(true);

  PlanAckMsg ack{plan.version, worker_id_};
  return control_.Send(MsgType::kPlanAck, ack.Encode());
}

void Worker::ApplyPlanDiff(const PlanDiffMsg& diff) {
  ROD_TRACE_SPAN(&telemetry_, "cluster", "plan.diff");
  size_t moved = 0;
  for (const OperatorMove& move : diff.moves) {
    if (move.op >= assignment_.size()) continue;
    assignment_[move.op] = move.to_worker;
    ++moved;
  }
  ROD_CHECK_OK(sim::ReassignOperators(deployment_, assignment_).status());
  plan_version_ = diff.version;
  size_t hosted = 0;
  for (size_t node : assignment_) hosted += node == worker_id_ ? 1 : 0;
  telemetry_.Count("cluster.operator_moves", moved);
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  telemetry_.SetGauge("cluster.hosted_operators",
                      static_cast<double>(hosted));
}

void Worker::HandleDataFrame(const Frame& frame) {
  if (frame.type != MsgType::kTuples || !have_plan_) return;
  const double recv_us = telemetry_.NowMicros();
  auto batch = TupleBatchMsg::Decode(frame.payload);
  if (!batch.ok()) return;  // Corrupt batch: drop (CRC already vetted).
  counters_.received += batch->count;
  telemetry_.Count("cluster.tuples_received", batch->count);
  telemetry_.Count("cluster.batches_received", 1);
  // End-to-end ship latency on the coordinator clock: both sides' local
  // stamps rebased by their distributed offsets. Only measurable once
  // clock sync has covered both this worker and the sender.
  const uint32_t from = batch->from_worker;
  if (batch->send_time_us > 0.0 && worker_id_ < have_offset_.size() &&
      have_offset_[worker_id_] != 0 && from < have_offset_.size() &&
      have_offset_[from] != 0) {
    const double recv_coord = recv_us + clock_offset_us_[worker_id_];
    const double send_coord = batch->send_time_us + clock_offset_us_[from];
    ship_latency_.Record(std::max(0.0, recv_coord - send_coord));
  }
  Dispatch(batch->to_op, batch->to_port, batch->count, batch->create_time);
}

void Worker::Dispatch(uint32_t op, uint32_t port, uint32_t count,
                      double create_time) {
  if (count == 0 || op >= assignment_.size()) return;
  if (paused_[op] != 0) {
    if (paused_buffers_.size() >= kMaxPausedBatches) {
      counters_.lost_tuples += paused_buffers_.front().count;
      paused_buffers_.erase(paused_buffers_.begin());
    }
    paused_buffers_.push_back({op, port, count, create_time});
    counters_.paused_buffered += count;
    return;
  }
  if (assignment_[op] == worker_id_) {
    ProcessLocal(op, count, create_time);
  } else {
    ShipTo(static_cast<uint32_t>(assignment_[op]), op, port, count,
           create_time);
  }
}

void Worker::ProcessLocal(uint32_t op, uint32_t count, double create_time) {
  struct Work {
    uint32_t op;
    uint32_t count;
    double create_time;
  };
  std::vector<Work> stack{{op, count, create_time}};
  while (!stack.empty()) {
    const Work work = stack.back();
    stack.pop_back();
    const sim::CompiledOp& compiled = deployment_.ops[work.op];

    counters_.processed += work.count;
    op_processed_[work.op] += work.count;
    const double busy = compiled.cost * work.count;
    op_busy_[work.op] += busy;
    counters_.busy_seconds += busy;
    telemetry_.Count("cluster.tuples_processed", work.count);

    // Fractional emission carry keeps long-run output rates equal to
    // count * selectivity without per-tuple randomness.
    emit_carry_[work.op] +=
        static_cast<double>(work.count) * compiled.selectivity;
    const uint32_t out =
        static_cast<uint32_t>(std::floor(emit_carry_[work.op]));
    emit_carry_[work.op] -= out;
    if (out == 0) continue;
    counters_.emitted += out;
    telemetry_.Count("cluster.tuples_emitted", out);

    if (compiled.consumers.empty()) {
      counters_.delivered += out;
      const double latency = std::max(0.0, Now() - work.create_time);
      counters_.latency_sum += latency * out;
      counters_.latency_max = std::max(counters_.latency_max, latency);
      counters_.latency_count += out;
      telemetry_.Count("cluster.tuples_delivered", out);
      continue;
    }
    for (const sim::Route& route : compiled.consumers) {
      const uint32_t to = route.to_op;
      if (to >= assignment_.size()) continue;
      if (paused_[to] != 0 || assignment_[to] != worker_id_) {
        Dispatch(to, route.to_port, out, work.create_time);
      } else {
        stack.push_back({to, out, work.create_time});
      }
    }
  }
}

void Worker::ShipTo(uint32_t peer_id, uint32_t op, uint32_t port,
                    uint32_t count, double create_time) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) {
    counters_.ship_failures += 1;
    counters_.lost_tuples += count;
    telemetry_.Count("cluster.ship_failures", 1);
    telemetry_.Count("cluster.tuples_lost", count);
    return;
  }
  Peer& peer = it->second;
  const double now = Now();
  auto fail = [&] {
    peer.conn.Close();
    peer.down_until = now + options_.peer_retry_cooldown;
    counters_.ship_failures += 1;
    counters_.lost_tuples += count;
    telemetry_.Count("cluster.ship_failures", 1);
    telemetry_.Count("cluster.tuples_lost", count);
  };
  if (peer.down_until > now) {
    counters_.ship_failures += 1;
    counters_.lost_tuples += count;
    telemetry_.Count("cluster.ship_failures", 1);
    telemetry_.Count("cluster.tuples_lost", count);
    return;
  }
  if (!peer.conn.valid()) {
    auto conn = FrameConn::DialLoopback(peer.data_port, kDataTimeout);
    if (!conn.ok()) {
      fail();
      return;
    }
    peer.conn = std::move(conn.value());
    peer.conn.set_metrics(&frame_metrics_);
  }
  TupleBatchMsg batch;
  batch.to_op = op;
  batch.to_port = port;
  batch.count = count;
  batch.from_worker = worker_id_;
  batch.create_time = create_time;
  batch.send_time_us = telemetry_.NowMicros();
  if (!peer.conn.Send(MsgType::kTuples, batch.Encode()).ok()) {
    fail();
    return;
  }
  counters_.shipped += count;
  telemetry_.Count("cluster.tuples_shipped", count);
}

void Worker::FlushPausedBuffers() {
  std::vector<BufferedBatch> buffered;
  buffered.swap(paused_buffers_);
  for (const BufferedBatch& batch : buffered) {
    Dispatch(batch.op, batch.port, batch.count, batch.create_time);
  }
}

void Worker::GenerateSources(double now, double dt) {
  if (!have_plan_ || dt <= 0.0) return;
  const double horizon = std::min(now, start_.duration);
  const double effective_dt = std::min(dt, std::max(0.0, horizon - (now - dt)));
  if (effective_dt <= 0.0) return;
  for (size_t s = 0; s < start_.rates.size(); ++s) {
    if (s >= source_owner_.size() || source_owner_[s] != worker_id_) continue;
    if (s >= deployment_.input_routes.size()) continue;
    gen_carry_[s] += start_.rates[s] * effective_dt;
    const uint32_t n = static_cast<uint32_t>(std::floor(gen_carry_[s]));
    gen_carry_[s] -= n;
    if (n == 0) continue;
    counters_.generated += n;
    telemetry_.Count("cluster.tuples_generated", n);
    for (const sim::Route& route : deployment_.input_routes[s]) {
      Dispatch(route.to_op, route.to_port, n, now);
    }
  }
}

void Worker::SendHeartbeat(double now) {
  HeartbeatMsg hb;
  hb.worker_id = worker_id_;
  hb.seq = ++heartbeat_seq_;
  hb.uptime_seconds = now;
  hb.plan_version = plan_version_;
  hb.queue_depth = paused_buffers_.size();
  hb.counters = counters_;
  for (size_t j = 0; j < assignment_.size(); ++j) {
    if (assignment_[j] != worker_id_ || op_processed_[j] == 0) continue;
    hb.loads.push_back({static_cast<uint32_t>(j), op_processed_[j],
                        op_busy_[j]});
  }
  // A failed heartbeat send means the coordinator is gone; the control
  // read in the event loop will surface the error and exit the worker.
  (void)control_.Send(MsgType::kHeartbeat, hb.Encode());
  telemetry_.Count("cluster.heartbeats_sent", 1);
  SendStatsReport();
}

void Worker::SendStatsReport() {
  const telemetry::MetricsSnapshot snap = telemetry_.Snapshot();
  StatsReportMsg report;
  report.worker_id = worker_id_;
  for (const auto& [name, value] : snap.counters) {
    auto it = reported_counters_.find(name);
    if (it != reported_counters_.end() && it->second == value) continue;
    reported_counters_[name] = value;
    report.counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    auto it = reported_gauges_.find(name);
    if (it != reported_gauges_.end() && it->second == value) continue;
    reported_gauges_[name] = value;
    report.gauges.emplace_back(name, value);
  }
  for (const auto& [name, h] : snap.histograms) {
    auto it = reported_hist_counts_.find(name);
    if (it != reported_hist_counts_.end() && it->second == h.count) continue;
    reported_hist_counts_[name] = h.count;
    StatsReportMsg::HistogramState state;
    state.name = name;
    state.count = h.count;
    state.sum = h.sum;
    state.min = h.min;
    state.max = h.max;
    state.buckets = h.buckets;
    report.histograms.push_back(std::move(state));
  }
  if (report.counters.empty() && report.gauges.empty() &&
      report.histograms.empty()) {
    return;  // Nothing changed since the last report.
  }
  (void)control_.Send(MsgType::kStatsReport, report.Encode());
  telemetry_.Count("cluster.stats_reports_sent", 1);
}

void Worker::InstallClockSync(const ClockSyncMsg& sync) {
  for (const ClockSyncMsg::Entry& e : sync.entries) {
    if (e.worker_id >= clock_offset_us_.size()) {
      clock_offset_us_.resize(e.worker_id + 1, 0.0);
      have_offset_.resize(e.worker_id + 1, 0);
    }
    clock_offset_us_[e.worker_id] = e.offset_us;
    have_offset_[e.worker_id] = 1;
    if (e.worker_id == worker_id_) {
      telemetry_.SetGauge("cluster.clock_offset_us", e.offset_us);
      telemetry_.SetGauge("cluster.rtt_us", e.rtt_us);
    }
  }
  telemetry_.Count("cluster.clock_syncs", 1);
}

Status Worker::HandleFreeze(const FreezeMsg& freeze) {
  ROD_TRACE_SPAN(&telemetry_, "cluster", "freeze.snapshot");
  // Freeze the rings at (approximately) the coordinator-chosen instant;
  // the snapshot happens inside BeginIncident, so the report below can
  // take its time.
  flight_recorder_.BeginIncident(freeze.kind, freeze.detail);
  flight_recorder_.Note("freeze ordered by coordinator (incident " +
                        std::to_string(freeze.incident_id) + ")");
  const uint32_t id = worker_id_;
  const uint64_t version = plan_version_;
  const double uptime = Now();
  const size_t queued = paused_buffers_.size();
  flight_recorder_.CompleteIncident([&](telemetry::JsonWriter& w) {
    w.BeginObjectInline();
    w.Key("worker_id").Uint(id);
    w.Key("name").String(options_.name);
    w.Key("plan_version").Uint(version);
    w.Key("uptime_seconds").Double(uptime);
    w.Key("queue_depth").Uint(queued);
    w.EndObject();
  });
  telemetry_.Count("cluster.freezes", 1);

  const std::vector<std::string> incidents = flight_recorder_.IncidentJsons();
  if (incidents.empty()) return Status::OK();
  FrozenReportMsg reply;
  reply.incident_id = freeze.incident_id;
  reply.worker_id = worker_id_;
  reply.incident_json = incidents.back();
  // The wire string cap bounds one field at 1 MiB; a trace-heavy
  // incident beyond it degrades to a stub rather than a send failure.
  if (reply.incident_json.size() >= (1u << 20)) {
    reply.incident_json =
        "{\"truncated\": true, \"bytes\": " +
        std::to_string(incidents.back().size()) + "}";
  }
  return control_.Send(MsgType::kFrozenReport, reply.Encode());
}

void Worker::StartHttpPlane() {
  telemetry::Telemetry* tel = &telemetry_;
  telemetry::FlightRecorder* rec = &flight_recorder_;
  http_.Handle("/metrics", [tel](std::string_view) {
    std::ostringstream body;
    telemetry::WritePrometheusText(tel->Snapshot(), body);
    return telemetry::HttpServer::Response{
        200, telemetry::kPrometheusContentType, body.str()};
  });
  http_.Handle("/metrics.json", [tel](std::string_view) {
    std::ostringstream body;
    tel->WriteMetricsJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/flightrecorder", [rec](std::string_view) {
    std::ostringstream body;
    rec->WriteJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/healthz", [](std::string_view) {
    return telemetry::HttpServer::Response{200, "text/plain; charset=utf-8",
                                           "ok\n"};
  });
  const std::atomic<bool>* ready = &ready_;
  http_.Handle("/readyz", [ready](std::string_view) {
    return ready->load()
               ? telemetry::HttpServer::Response{200,
                                                 "text/plain; charset=utf-8",
                                                 "ready\n"}
               : telemetry::HttpServer::Response{503,
                                                 "text/plain; charset=utf-8",
                                                 "no plan installed\n"};
  });
  std::string error;
  if (http_.Start(options_.http_port, &error)) {
    http_port_ = http_.port();
  }
}

}  // namespace rod::cluster
