#include "cluster/worker.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "telemetry/exposition.h"

namespace rod::cluster {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Socket timeout on the control connection: a coordinator that wedges
/// mid-frame surfaces as kUnavailable instead of hanging the worker.
constexpr double kControlTimeout = 30.0;

/// Data-plane send/dial timeout: a peer that stops draining is treated
/// as down (loss is counted) rather than stalling the event loop.
constexpr double kDataTimeout = 2.0;

/// Bound on batches buffered against paused operators; beyond it the
/// oldest buffered batch is dropped and counted lost (a migration fence
/// must not grow memory without bound if a resume never comes).
constexpr size_t kMaxPausedBatches = 65536;

}  // namespace

Worker::Worker(WorkerOptions options) : options_(std::move(options)) {
  if (options_.name.empty()) {
    options_.name = "worker-" + std::to_string(::getpid());
  }
}

Worker::~Worker() { http_.Stop(); }

Status RunWorker(const WorkerOptions& options) {
  Worker worker(options);
  return worker.Run();
}

void Worker::RequestStop() { stop_pipe_.Notify(); }

double Worker::Now() const {
  return started_ ? MonotonicSeconds() - run_epoch_ : 0.0;
}

Status Worker::Run() {
  std::string error;
  if (!stop_pipe_.Open(&error)) {
    return Status::Internal("self-pipe: " + error);
  }
  ROD_RETURN_IF_ERROR(Connect());
  const Status result = EventLoop();
  http_.Stop();
  return result;
}

Status Worker::Connect() {
  ROD_RETURN_IF_ERROR(data_listener_.Listen(options_.data_port));
  if (options_.serve_http) StartHttpPlane();

  // The coordinator may come up after its workers; retry the dial until
  // the connect timeout elapses.
  const double deadline = MonotonicSeconds() + options_.connect_timeout;
  for (;;) {
    auto conn = FrameConn::DialLoopback(options_.coordinator_port,
                                        kControlTimeout);
    if (conn.ok()) {
      control_ = std::move(conn.value());
      break;
    }
    if (MonotonicSeconds() >= deadline) return conn.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  HelloMsg hello;
  hello.data_port = data_listener_.port();
  hello.http_port = http_port_;
  hello.capacity = options_.capacity;
  hello.name = options_.name;
  ROD_RETURN_IF_ERROR(control_.Send(MsgType::kHello, hello.Encode()));

  Frame frame;
  ROD_RETURN_IF_ERROR(control_.Recv(&frame));
  if (frame.type != MsgType::kWelcome) {
    return Status::InvalidArgument(
        std::string("expected welcome, got ") + MsgTypeName(frame.type));
  }
  auto welcome = WelcomeMsg::Decode(frame.payload);
  if (!welcome.ok()) return welcome.status();
  worker_id_ = welcome->worker_id;
  num_workers_ = welcome->num_workers;
  heartbeat_interval_ = welcome->heartbeat_interval;
  return Status::OK();
}

Status Worker::EventLoop() {
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_.read_fd(), POLLIN, 0});
    fds.push_back({control_.fd(), POLLIN, 0});
    fds.push_back({data_listener_.fd(), POLLIN, 0});
    const size_t inbound_base = fds.size();
    for (const FrameConn& conn : inbound_) {
      fds.push_back({conn.fd(), POLLIN, 0});
    }

    int timeout_ms = -1;
    if (started_) {
      double next = next_heartbeat_;
      if (generating_) next = std::min(next, next_tick_);
      const double wait = next - Now();
      timeout_ms = wait <= 0.0
                       ? 0
                       : static_cast<int>(std::ceil(wait * 1000.0));
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("poll failed");
    }

    if (fds[0].revents != 0) return Status::OK();  // RequestStop().

    if (fds[1].revents != 0) {
      Frame frame;
      const Status recv = control_.Recv(&frame);
      if (!recv.ok()) return recv;  // Coordinator gone or corrupt stream.
      if (frame.type == MsgType::kShutdown) return Status::OK();
      ROD_RETURN_IF_ERROR(HandleControlFrame(frame));
    }

    if (fds[2].revents != 0) {
      auto conn = data_listener_.Accept(kDataTimeout);
      if (conn.ok()) inbound_.push_back(std::move(conn.value()));
    }

    // Drain readable peers; dead ones are compacted out afterwards.
    std::vector<size_t> dead;
    for (size_t i = inbound_base; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const size_t idx = i - inbound_base;
      Frame frame;
      const Status recv = inbound_[idx].Recv(&frame);
      if (!recv.ok()) {
        dead.push_back(idx);
        continue;
      }
      HandleDataFrame(frame);
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      inbound_.erase(inbound_.begin() + static_cast<ptrdiff_t>(*it));
    }

    // Timers.
    if (started_) {
      const double now = Now();
      if (generating_ && now >= next_tick_) {
        const double dt = now - last_gen_time_;
        GenerateSources(now, dt);
        last_gen_time_ = now;
        next_tick_ = now + start_.tick_seconds;
        if (now >= start_.duration) generating_ = false;
      }
      if (now >= next_heartbeat_) {
        SendHeartbeat(now);
        next_heartbeat_ = now + heartbeat_interval_;
      }
    }
  }
}

Status Worker::HandleControlFrame(const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPlan: {
      auto plan = PlanMsg::Decode(frame.payload);
      if (!plan.ok()) return plan.status();
      return InstallPlan(*plan);
    }
    case MsgType::kStart: {
      auto start = StartMsg::Decode(frame.payload);
      if (!start.ok()) return start.status();
      start_ = *start;
      started_ = true;
      generating_ = start_.duration > 0.0;
      run_epoch_ = MonotonicSeconds();
      last_gen_time_ = 0.0;
      next_tick_ = start_.tick_seconds;
      next_heartbeat_ = 0.0;  // First heartbeat right away.
      gen_carry_.assign(start_.rates.size(), 0.0);
      rng_.Reseed(start_.seed + worker_id_);
      return Status::OK();
    }
    case MsgType::kPause: {
      auto pause = PauseMsg::Decode(frame.payload);
      if (!pause.ok()) return pause.status();
      for (uint32_t op : pause->ops) {
        if (op < paused_.size()) paused_[op] = 1;
      }
      telemetry_.Count("cluster.pauses", 1);
      // Single-threaded loop: nothing is in flight here, so paused ops
      // are already drained — the ack is the drain confirmation.
      PlanAckMsg ack{pause->plan_version, worker_id_};
      return control_.Send(MsgType::kPauseAck, ack.Encode());
    }
    case MsgType::kPlanDiff: {
      auto diff = PlanDiffMsg::Decode(frame.payload);
      if (!diff.ok()) return diff.status();
      ApplyPlanDiff(*diff);
      PlanAckMsg ack{diff->version, worker_id_};
      return control_.Send(MsgType::kPlanAck, ack.Encode());
    }
    case MsgType::kResume: {
      std::fill(paused_.begin(), paused_.end(), 0);
      FlushPausedBuffers();
      telemetry_.Count("cluster.resumes", 1);
      return Status::OK();
    }
    case MsgType::kFinish: {
      generating_ = false;
      FinalStatsMsg stats{worker_id_, counters_};
      return control_.Send(MsgType::kFinalStats, stats.Encode());
    }
    default:
      return Status::InvalidArgument(
          std::string("unexpected control frame: ") +
          MsgTypeName(frame.type));
  }
}

Status Worker::InstallPlan(const PlanMsg& plan) {
  place::SystemSpec system{Vector(plan.capacities)};
  std::vector<size_t> assignment(plan.assignment.begin(),
                                 plan.assignment.end());
  place::Placement placement(plan.capacities.size(), assignment);
  auto deployment = sim::CompileDeployment(plan.graph, placement, system);
  if (!deployment.ok()) return deployment.status();

  graph_ = plan.graph;
  deployment_ = std::move(deployment.value());
  assignment_ = std::move(assignment);
  source_owner_ = plan.source_owner;
  plan_version_ = plan.version;
  have_plan_ = true;

  const size_t num_ops = graph_.num_operators();
  paused_.assign(num_ops, 0);
  paused_buffers_.clear();
  emit_carry_.assign(num_ops, 0.0);
  op_processed_.assign(num_ops, 0);
  op_busy_.assign(num_ops, 0.0);

  for (const WorkerEndpoint& e : plan.endpoints) {
    if (e.worker_id == worker_id_) continue;
    Peer& peer = peers_[e.worker_id];
    if (peer.data_port != e.data_port) {
      peer.conn.Close();
      peer.data_port = e.data_port;
      peer.down_until = -1.0;
    }
  }

  size_t hosted = 0;
  for (size_t node : assignment_) hosted += node == worker_id_ ? 1 : 0;

  // Register the cluster.* families at zero so every worker's /metrics
  // exposes them from the first scrape.
  for (const char* name :
       {"cluster.tuples_generated", "cluster.tuples_processed",
        "cluster.tuples_emitted", "cluster.tuples_delivered",
        "cluster.tuples_shipped", "cluster.tuples_received",
        "cluster.tuples_lost", "cluster.ship_failures",
        "cluster.batches_received", "cluster.heartbeats_sent",
        "cluster.plan_installs", "cluster.operator_moves",
        "cluster.pauses", "cluster.resumes"}) {
    telemetry_.Count(name, 0);
  }
  telemetry_.Count("cluster.plan_installs", 1);
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  telemetry_.SetGauge("cluster.hosted_operators",
                      static_cast<double>(hosted));
  telemetry_.SetGauge("cluster.worker_id", static_cast<double>(worker_id_));
  ready_.store(true);

  PlanAckMsg ack{plan.version, worker_id_};
  return control_.Send(MsgType::kPlanAck, ack.Encode());
}

void Worker::ApplyPlanDiff(const PlanDiffMsg& diff) {
  size_t moved = 0;
  for (const OperatorMove& move : diff.moves) {
    if (move.op >= assignment_.size()) continue;
    assignment_[move.op] = move.to_worker;
    ++moved;
  }
  ROD_CHECK_OK(sim::ReassignOperators(deployment_, assignment_).status());
  plan_version_ = diff.version;
  size_t hosted = 0;
  for (size_t node : assignment_) hosted += node == worker_id_ ? 1 : 0;
  telemetry_.Count("cluster.operator_moves", moved);
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  telemetry_.SetGauge("cluster.hosted_operators",
                      static_cast<double>(hosted));
}

void Worker::HandleDataFrame(const Frame& frame) {
  if (frame.type != MsgType::kTuples || !have_plan_) return;
  auto batch = TupleBatchMsg::Decode(frame.payload);
  if (!batch.ok()) return;  // Corrupt batch: drop (CRC already vetted).
  counters_.received += batch->count;
  telemetry_.Count("cluster.tuples_received", batch->count);
  telemetry_.Count("cluster.batches_received", 1);
  Dispatch(batch->to_op, batch->to_port, batch->count, batch->create_time);
}

void Worker::Dispatch(uint32_t op, uint32_t port, uint32_t count,
                      double create_time) {
  if (count == 0 || op >= assignment_.size()) return;
  if (paused_[op] != 0) {
    if (paused_buffers_.size() >= kMaxPausedBatches) {
      counters_.lost_tuples += paused_buffers_.front().count;
      paused_buffers_.erase(paused_buffers_.begin());
    }
    paused_buffers_.push_back({op, port, count, create_time});
    counters_.paused_buffered += count;
    return;
  }
  if (assignment_[op] == worker_id_) {
    ProcessLocal(op, count, create_time);
  } else {
    ShipTo(static_cast<uint32_t>(assignment_[op]), op, port, count,
           create_time);
  }
}

void Worker::ProcessLocal(uint32_t op, uint32_t count, double create_time) {
  struct Work {
    uint32_t op;
    uint32_t count;
    double create_time;
  };
  std::vector<Work> stack{{op, count, create_time}};
  while (!stack.empty()) {
    const Work work = stack.back();
    stack.pop_back();
    const sim::CompiledOp& compiled = deployment_.ops[work.op];

    counters_.processed += work.count;
    op_processed_[work.op] += work.count;
    const double busy = compiled.cost * work.count;
    op_busy_[work.op] += busy;
    counters_.busy_seconds += busy;
    telemetry_.Count("cluster.tuples_processed", work.count);

    // Fractional emission carry keeps long-run output rates equal to
    // count * selectivity without per-tuple randomness.
    emit_carry_[work.op] +=
        static_cast<double>(work.count) * compiled.selectivity;
    const uint32_t out =
        static_cast<uint32_t>(std::floor(emit_carry_[work.op]));
    emit_carry_[work.op] -= out;
    if (out == 0) continue;
    counters_.emitted += out;
    telemetry_.Count("cluster.tuples_emitted", out);

    if (compiled.consumers.empty()) {
      counters_.delivered += out;
      const double latency = std::max(0.0, Now() - work.create_time);
      counters_.latency_sum += latency * out;
      counters_.latency_max = std::max(counters_.latency_max, latency);
      counters_.latency_count += out;
      telemetry_.Count("cluster.tuples_delivered", out);
      continue;
    }
    for (const sim::Route& route : compiled.consumers) {
      const uint32_t to = route.to_op;
      if (to >= assignment_.size()) continue;
      if (paused_[to] != 0 || assignment_[to] != worker_id_) {
        Dispatch(to, route.to_port, out, work.create_time);
      } else {
        stack.push_back({to, out, work.create_time});
      }
    }
  }
}

void Worker::ShipTo(uint32_t peer_id, uint32_t op, uint32_t port,
                    uint32_t count, double create_time) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) {
    counters_.ship_failures += 1;
    counters_.lost_tuples += count;
    telemetry_.Count("cluster.ship_failures", 1);
    telemetry_.Count("cluster.tuples_lost", count);
    return;
  }
  Peer& peer = it->second;
  const double now = Now();
  auto fail = [&] {
    peer.conn.Close();
    peer.down_until = now + options_.peer_retry_cooldown;
    counters_.ship_failures += 1;
    counters_.lost_tuples += count;
    telemetry_.Count("cluster.ship_failures", 1);
    telemetry_.Count("cluster.tuples_lost", count);
  };
  if (peer.down_until > now) {
    counters_.ship_failures += 1;
    counters_.lost_tuples += count;
    telemetry_.Count("cluster.ship_failures", 1);
    telemetry_.Count("cluster.tuples_lost", count);
    return;
  }
  if (!peer.conn.valid()) {
    auto conn = FrameConn::DialLoopback(peer.data_port, kDataTimeout);
    if (!conn.ok()) {
      fail();
      return;
    }
    peer.conn = std::move(conn.value());
  }
  TupleBatchMsg batch;
  batch.to_op = op;
  batch.to_port = port;
  batch.count = count;
  batch.from_worker = worker_id_;
  batch.create_time = create_time;
  if (!peer.conn.Send(MsgType::kTuples, batch.Encode()).ok()) {
    fail();
    return;
  }
  counters_.shipped += count;
  telemetry_.Count("cluster.tuples_shipped", count);
}

void Worker::FlushPausedBuffers() {
  std::vector<BufferedBatch> buffered;
  buffered.swap(paused_buffers_);
  for (const BufferedBatch& batch : buffered) {
    Dispatch(batch.op, batch.port, batch.count, batch.create_time);
  }
}

void Worker::GenerateSources(double now, double dt) {
  if (!have_plan_ || dt <= 0.0) return;
  const double horizon = std::min(now, start_.duration);
  const double effective_dt = std::min(dt, std::max(0.0, horizon - (now - dt)));
  if (effective_dt <= 0.0) return;
  for (size_t s = 0; s < start_.rates.size(); ++s) {
    if (s >= source_owner_.size() || source_owner_[s] != worker_id_) continue;
    if (s >= deployment_.input_routes.size()) continue;
    gen_carry_[s] += start_.rates[s] * effective_dt;
    const uint32_t n = static_cast<uint32_t>(std::floor(gen_carry_[s]));
    gen_carry_[s] -= n;
    if (n == 0) continue;
    counters_.generated += n;
    telemetry_.Count("cluster.tuples_generated", n);
    for (const sim::Route& route : deployment_.input_routes[s]) {
      Dispatch(route.to_op, route.to_port, n, now);
    }
  }
}

void Worker::SendHeartbeat(double now) {
  HeartbeatMsg hb;
  hb.worker_id = worker_id_;
  hb.seq = ++heartbeat_seq_;
  hb.uptime_seconds = now;
  hb.plan_version = plan_version_;
  hb.queue_depth = paused_buffers_.size();
  hb.counters = counters_;
  for (size_t j = 0; j < assignment_.size(); ++j) {
    if (assignment_[j] != worker_id_ || op_processed_[j] == 0) continue;
    hb.loads.push_back({static_cast<uint32_t>(j), op_processed_[j],
                        op_busy_[j]});
  }
  // A failed heartbeat send means the coordinator is gone; the control
  // read in the event loop will surface the error and exit the worker.
  (void)control_.Send(MsgType::kHeartbeat, hb.Encode());
  telemetry_.Count("cluster.heartbeats_sent", 1);
}

void Worker::StartHttpPlane() {
  telemetry::Telemetry* tel = &telemetry_;
  telemetry::FlightRecorder* rec = &flight_recorder_;
  http_.Handle("/metrics", [tel](std::string_view) {
    std::ostringstream body;
    telemetry::WritePrometheusText(tel->Snapshot(), body);
    return telemetry::HttpServer::Response{
        200, telemetry::kPrometheusContentType, body.str()};
  });
  http_.Handle("/metrics.json", [tel](std::string_view) {
    std::ostringstream body;
    tel->WriteMetricsJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/flightrecorder", [rec](std::string_view) {
    std::ostringstream body;
    rec->WriteJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/healthz", [](std::string_view) {
    return telemetry::HttpServer::Response{200, "text/plain; charset=utf-8",
                                           "ok\n"};
  });
  const std::atomic<bool>* ready = &ready_;
  http_.Handle("/readyz", [ready](std::string_view) {
    return ready->load()
               ? telemetry::HttpServer::Response{200,
                                                 "text/plain; charset=utf-8",
                                                 "ready\n"}
               : telemetry::HttpServer::Response{503,
                                                 "text/plain; charset=utf-8",
                                                 "no plan installed\n"};
  });
  std::string error;
  if (http_.Start(options_.http_port, &error)) {
    http_port_ = http_.port();
  }
}

}  // namespace rod::cluster
