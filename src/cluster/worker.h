// Copyright (c) the ROD reproduction authors.
//
// The cluster worker process: hosts the operator partition assigned to it
// by the coordinator, executes tuple batches through the compiled routing
// tables (the same CompileDeployment / ReassignOperators machinery the
// in-process engine runs on), ships cross-node batches to peer workers
// over the framed transport, generates its share of the source streams,
// sends periodic heartbeats with per-operator load reports, and serves
// the per-process observability plane (/metrics, /healthz, flight
// recorder) so every process in a real deployment is scrapeable.
//
// Concurrency model: one poll()-based event loop owns every socket and
// all execution state — control connection, data listener, peer
// connections, timers (heartbeat, source tick, finish deadline) — so no
// locks guard the routing tables; the HTTP plane runs on its own thread
// and only touches the (thread-safe) telemetry registry. A pause request
// is therefore trivially a drain barrier: when the loop picks kPause off
// the control socket, no batch is in flight inside this process, so the
// PauseAck it sends back *is* the drain confirmation.

#ifndef ROD_CLUSTER_WORKER_H_
#define ROD_CLUSTER_WORKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/net.h"
#include "common/random.h"
#include "common/status.h"
#include "runtime/deployment.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/http_server.h"
#include "telemetry/telemetry.h"

namespace rod::cluster {

struct WorkerOptions {
  /// Coordinator control port on 127.0.0.1 (required).
  uint16_t coordinator_port = 0;

  /// Data-plane listen port for peer tuple batches (0: ephemeral).
  uint16_t data_port = 0;

  /// Observability plane port (0: ephemeral); serve_http gates it.
  uint16_t http_port = 0;
  bool serve_http = true;

  /// Advertised CPU capacity (CPU-seconds per second, paper §2.1).
  double capacity = 1.0;

  /// Diagnostic label; defaults to "worker-<pid>".
  std::string name;

  /// Give up dialing the coordinator after this long (startup only).
  double connect_timeout = 10.0;

  /// Peer ship failures park the peer for this long before redialing, so
  /// a dead worker costs one failed dial per cooldown, not per batch.
  double peer_retry_cooldown = 0.25;

  /// When set, the worker dumps its Chrome trace here after the event
  /// loop exits, stamped with its name, worker id, and last
  /// coordinator-distributed clock offset so tools/rod_trace_merge can
  /// rebase it onto the coordinator clock.
  std::string trace_path;
};

/// One worker process's lifetime: construct, Run() until the coordinator
/// orders shutdown (or the control connection dies), destruct.
class Worker {
 public:
  explicit Worker(WorkerOptions options);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Connects, registers, then serves the event loop. Returns OK after a
  /// clean kShutdown; kUnavailable when the coordinator went away.
  Status Run();

  /// Thread-safe: asks the event loop to exit (used by in-process tests;
  /// real deployments stop via kShutdown or a signal).
  void RequestStop();

  /// Introspection (valid after Run() returned, or racily during).
  uint32_t worker_id() const { return worker_id_; }
  uint16_t http_port() const { return http_port_; }
  const WorkerCounters& counters() const { return counters_; }

 private:
  struct BufferedBatch {
    uint32_t op = 0;
    uint32_t port = 0;
    uint32_t count = 0;
    double create_time = 0.0;
  };

  /// A peer worker's data-plane connection state.
  struct Peer {
    FrameConn conn;
    uint16_t data_port = 0;
    double down_until = -1.0;  ///< Run-clock time before which we skip
                               ///< redial attempts (after a failure).
  };

  Status Connect();
  Status EventLoop();
  double Now() const;  ///< Seconds since kStart (0 before).

  Status HandleControlFrame(const Frame& frame);
  Status InstallPlan(const PlanMsg& plan);
  void ApplyPlanDiff(const PlanDiffMsg& diff);
  void HandleDataFrame(const Frame& frame);

  /// Routes `count` tuples into operator `op` at `port`: buffers when the
  /// operator is paused, executes locally when this worker hosts it,
  /// ships to the hosting peer otherwise.
  void Dispatch(uint32_t op, uint32_t port, uint32_t count,
                double create_time);
  void ProcessLocal(uint32_t op, uint32_t count, double create_time);
  void ShipTo(uint32_t peer_id, uint32_t op, uint32_t port, uint32_t count,
              double create_time);
  void FlushPausedBuffers();

  void GenerateSources(double now, double dt);
  void SendHeartbeat(double now);
  /// Sends the metric-registry delta since the last report (piggybacked
  /// on the heartbeat cadence) for the coordinator's federated plane.
  void SendStatsReport();
  /// Freezes the flight recorder at the coordinator-ordered instant and
  /// replies with the rendered incident (kFrozenReport).
  Status HandleFreeze(const FreezeMsg& freeze);
  void InstallClockSync(const ClockSyncMsg& sync);
  void DumpTrace() const;
  void StartHttpPlane();

  WorkerOptions options_;

  // Protocol state.
  FrameConn control_;
  FrameListener data_listener_;
  std::vector<FrameConn> inbound_;  ///< Accepted peer data connections.
  std::map<uint32_t, Peer> peers_;  ///< Outbound, keyed by worker id.
  net::SelfPipe stop_pipe_;
  uint32_t worker_id_ = 0;
  uint32_t num_workers_ = 0;
  double heartbeat_interval_ = 0.5;
  uint64_t heartbeat_seq_ = 0;

  // Deployment state (event-loop thread only).
  bool have_plan_ = false;
  uint64_t plan_version_ = 0;
  query::QueryGraph graph_;
  sim::Deployment deployment_;
  std::vector<size_t> assignment_;     ///< Current op -> worker id.
  std::vector<uint32_t> source_owner_; ///< stream -> generating worker.
  std::vector<char> paused_;           ///< Per-operator migration fence.
  std::vector<BufferedBatch> paused_buffers_;
  std::vector<double> emit_carry_;     ///< Fractional emission per op.

  // Workload state.
  bool started_ = false;
  bool generating_ = false;
  StartMsg start_;
  std::vector<double> gen_carry_;      ///< Fractional arrivals per stream.
  double run_epoch_ = 0.0;             ///< steady-clock seconds at kStart.
  double last_gen_time_ = 0.0;         ///< Run-clock time of the last tick.
  double next_heartbeat_ = 0.0;
  double next_tick_ = 0.0;
  Rng rng_{1};

  // Accounting.
  WorkerCounters counters_;
  std::vector<uint64_t> op_processed_;
  std::vector<double> op_busy_;

  // Cluster clock view (event-loop thread only): the latest
  // coordinator-distributed offsets per worker id, in microseconds on
  // each worker's telemetry clock (worker + offset = coordinator).
  std::vector<double> clock_offset_us_;
  std::vector<char> have_offset_;

  // Last-reported registry state, for kStatsReport deltas (values are
  // cumulative; only changed families are resent).
  std::map<std::string, uint64_t> reported_counters_;
  std::map<std::string, double> reported_gauges_;
  std::map<std::string, uint64_t> reported_hist_counts_;

  // Observability plane.
  std::atomic<bool> ready_{false};  ///< Plan installed (gates /readyz).
  telemetry::Telemetry telemetry_;
  telemetry::FlightRecorder flight_recorder_{&telemetry_};
  telemetry::HttpServer http_;
  uint16_t http_port_ = 0;
  FrameMetrics frame_metrics_{&telemetry_};
  telemetry::Histogram ship_latency_;
};

/// Convenience for tools and forked test children: construct + Run.
Status RunWorker(const WorkerOptions& options);

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_WORKER_H_
