// Copyright (c) the ROD reproduction authors.
//
// NTP-style clock-offset estimation between the coordinator and one
// worker. Every process keeps its own observability clock (microseconds
// on Telemetry's steady clock, epoch = process start), so two workers'
// timestamps are mutually uninterpretable until rebased. The coordinator
// probes each worker with kPing/kPong four-timestamp exchanges:
//
//   t1  coordinator clock at ping send
//   t2  worker clock at ping receive
//   t3  worker clock at pong send
//   t4  coordinator clock at pong receive
//
//   offset = ((t1 - t2) + (t4 - t3)) / 2     (worker + offset = coordinator)
//   rtt    = (t4 - t1) - (t3 - t2)
//
// (This is the NTP midpoint with the sign flipped: NTP's theta corrects
// the *client* toward the server; here the coordinator is the client and
// the distributed convention rebases *worker* timestamps toward it.)
//
// The midpoint estimate is exact when the two path delays are equal; its
// error is bounded by half the delay asymmetry, which is itself bounded
// by rtt / 2. The estimator therefore keeps a sliding window of recent
// samples and answers with the minimum-RTT sample's offset — the sample
// least inflated by queueing jitter, per the standard NTP argument.

#ifndef ROD_CLUSTER_CLOCK_SYNC_H_
#define ROD_CLUSTER_CLOCK_SYNC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rod::cluster {

/// One four-timestamp probe exchange, all values in microseconds on the
/// clocks described above.
struct ClockSample {
  double t1_us = 0.0;
  double t2_us = 0.0;
  double t3_us = 0.0;
  double t4_us = 0.0;
};

/// Sliding-window, minimum-RTT-filtered offset estimator for one peer.
/// Not thread-safe; the coordinator owns one per worker on its control
/// thread.
class ClockSyncEstimator {
 public:
  /// `window` caps how many recent samples the minimum-RTT filter scans;
  /// older samples age out so a persistent offset drift is still tracked.
  explicit ClockSyncEstimator(size_t window = 16);

  /// Feeds one probe exchange. Samples with a non-positive RTT (clock
  /// retreat, crossed timestamps) are rejected and do not change the
  /// estimate.
  void AddSample(const ClockSample& sample);

  /// True once at least one valid sample was accepted.
  bool has_estimate() const { return !window_.empty(); }

  /// Offset of the minimum-RTT sample in the window, in microseconds:
  /// worker_clock + offset_us() = coordinator_clock. 0 before the first
  /// valid sample.
  double offset_us() const;

  /// RTT of that same minimum-RTT sample, in microseconds. 0 before the
  /// first valid sample.
  double rtt_us() const;

  /// Worst-case bound on the current estimate's error: half the best
  /// observed RTT (delay asymmetry cannot exceed the total delay).
  double error_bound_us() const { return rtt_us() / 2.0; }

  /// Total samples accepted (not capped by the window).
  size_t samples_accepted() const { return accepted_; }

  /// Total samples rejected as invalid.
  size_t samples_rejected() const { return rejected_; }

 private:
  struct Estimate {
    double offset_us = 0.0;
    double rtt_us = 0.0;
  };

  /// Index of the minimum-RTT entry in `window_`; window_ is non-empty.
  size_t BestIndex() const;

  size_t capacity_;
  std::vector<Estimate> window_;  ///< Ring; next_ points at the oldest.
  size_t next_ = 0;
  size_t accepted_ = 0;
  size_t rejected_ = 0;
};

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_CLOCK_SYNC_H_
