#include "cluster/clock_sync.h"

#include <cmath>

namespace rod::cluster {

ClockSyncEstimator::ClockSyncEstimator(size_t window)
    : capacity_(window == 0 ? 1 : window) {
  window_.reserve(capacity_);
}

void ClockSyncEstimator::AddSample(const ClockSample& sample) {
  const double rtt =
      (sample.t4_us - sample.t1_us) - (sample.t3_us - sample.t2_us);
  if (!std::isfinite(rtt) || rtt <= 0.0) {
    ++rejected_;
    return;
  }
  const double offset =
      ((sample.t1_us - sample.t2_us) + (sample.t4_us - sample.t3_us)) / 2.0;
  if (!std::isfinite(offset)) {
    ++rejected_;
    return;
  }
  ++accepted_;
  if (window_.size() < capacity_) {
    window_.push_back({offset, rtt});
    return;
  }
  window_[next_] = {offset, rtt};
  next_ = (next_ + 1) % capacity_;
}

size_t ClockSyncEstimator::BestIndex() const {
  size_t best = 0;
  for (size_t i = 1; i < window_.size(); ++i) {
    if (window_[i].rtt_us < window_[best].rtt_us) best = i;
  }
  return best;
}

double ClockSyncEstimator::offset_us() const {
  if (window_.empty()) return 0.0;
  return window_[BestIndex()].offset_us;
}

double ClockSyncEstimator::rtt_us() const {
  if (window_.empty()) return 0.0;
  return window_[BestIndex()].rtt_us;
}

}  // namespace rod::cluster
