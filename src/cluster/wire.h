// Copyright (c) the ROD reproduction authors.
//
// Payload serialization for the cluster protocol: a little-endian
// bounds-checked reader/writer pair plus one struct per message type
// (frame.h owns the framing; this file owns what is inside each frame).
// The deployment plan ships the whole query graph, so a worker process
// needs no out-of-band configuration: everything it executes arrives
// from the coordinator over the wire.

#ifndef ROD_CLUSTER_WIRE_H_
#define ROD_CLUSTER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/query_graph.h"

namespace rod::cluster {

/// Little-endian append-only payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLe(v, 2); }
  void U32(uint32_t v) { AppendLe(v, 4); }
  void U64(uint64_t v) { AppendLe(v, 8); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void AppendLe(uint64_t v, int bytes);

  std::string out_;
};

/// Bounds-checked little-endian reader over one payload. Any under-read
/// latches a failure; callers check `status()` once after decoding
/// instead of after every field.
class WireReader {
 public:
  explicit WireReader(std::string_view in) : in_(in) {}

  uint8_t U8();
  uint16_t U16() { return static_cast<uint16_t>(ReadLe(2)); }
  uint32_t U32() { return static_cast<uint32_t>(ReadLe(4)); }
  uint64_t U64() { return ReadLe(8); }
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();

  /// True while every read so far stayed in bounds.
  bool ok() const { return !failed_; }

  /// All bytes consumed and no read failed.
  bool AtEnd() const { return ok() && pos_ == in_.size(); }

  /// OK, or kInvalidArgument naming the first out-of-bounds read.
  Status status() const;

 private:
  uint64_t ReadLe(int bytes);

  std::string_view in_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// ---------------------------------------------------------------------------
// Message payloads. Each struct has Encode() and a static Decode that
// rejects truncated, oversized, or trailing-garbage payloads with
// kInvalidArgument.

/// worker -> coordinator registration.
struct HelloMsg {
  uint16_t data_port = 0;  ///< Where this worker accepts kTuples peers.
  uint16_t http_port = 0;  ///< Its observability plane (0: not serving).
  double capacity = 1.0;   ///< CPU-seconds of processing per second.
  std::string name;        ///< Diagnostic label (e.g. "worker-pid-1234").

  std::string Encode() const;
  static Result<HelloMsg> Decode(std::string_view payload);
};

/// coordinator -> worker registration reply.
struct WelcomeMsg {
  uint32_t worker_id = 0;        ///< This worker's node index.
  uint32_t num_workers = 0;      ///< Cluster size being assembled.
  double heartbeat_interval = 0.5;
  double heartbeat_timeout = 2.0;

  std::string Encode() const;
  static Result<WelcomeMsg> Decode(std::string_view payload);
};

/// One worker's data-plane endpoint, shipped inside the plan so peers
/// can dial each other without any local configuration.
struct WorkerEndpoint {
  uint32_t worker_id = 0;
  uint16_t data_port = 0;
};

/// coordinator -> worker: the full deployment. Shipping the graph keeps
/// workers configuration-free; shipping the assignment + endpoints gives
/// every worker the same routing view the coordinator planned.
struct PlanMsg {
  uint64_t version = 1;                  ///< Monotone per reassignment.
  query::QueryGraph graph;
  std::vector<uint32_t> assignment;      ///< operator -> worker id.
  std::vector<double> capacities;        ///< Per worker id.
  std::vector<WorkerEndpoint> endpoints; ///< One per live worker.
  std::vector<uint32_t> source_owner;    ///< input stream -> generating
                                         ///< worker id.

  std::string Encode() const;
  static Result<PlanMsg> Decode(std::string_view payload);
};

/// worker -> coordinator: plan (or diff) version installed.
struct PlanAckMsg {
  uint64_t version = 0;
  uint32_t worker_id = 0;

  std::string Encode() const;
  static Result<PlanAckMsg> Decode(std::string_view payload);
};

/// coordinator -> worker: begin generating/processing the workload.
struct StartMsg {
  double duration = 0.0;        ///< Seconds of source generation.
  double tick_seconds = 0.05;   ///< Source emission granularity.
  uint64_t seed = 1;            ///< Base seed for worker-local RNG.
  std::vector<double> rates;    ///< Tuples/sec per input stream.

  std::string Encode() const;
  static Result<StartMsg> Decode(std::string_view payload);
};

/// End-of-run / heartbeat counter block, all cumulative since kStart.
struct WorkerCounters {
  uint64_t generated = 0;        ///< Source tuples this worker emitted.
  uint64_t processed = 0;        ///< Tuples run through hosted operators.
  uint64_t emitted = 0;          ///< Tuples produced by hosted operators.
  uint64_t delivered = 0;        ///< Sink outputs (reached applications).
  uint64_t shipped = 0;          ///< Tuples sent to peer workers.
  uint64_t received = 0;         ///< Tuples received from peer workers.
  uint64_t ship_failures = 0;    ///< Batches that failed to reach a peer.
  uint64_t lost_tuples = 0;      ///< Tuples in failed ships (kUnavailable).
  uint64_t paused_buffered = 0;  ///< Tuples buffered against paused ops.
  double busy_seconds = 0.0;     ///< Modeled CPU-seconds consumed.
  double latency_sum = 0.0;      ///< Sum of sink latencies (seconds).
  double latency_max = 0.0;
  uint64_t latency_count = 0;

  void EncodeInto(WireWriter& w) const;
  static WorkerCounters DecodeFrom(WireReader& r);
};

/// worker -> coordinator liveness + load report.
struct HeartbeatMsg {
  uint32_t worker_id = 0;
  uint64_t seq = 0;
  double uptime_seconds = 0.0;   ///< Since this worker's kStart.
  uint64_t plan_version = 0;     ///< Routing version it executes.
  size_t queue_depth = 0;        ///< Batches waiting in its loop.
  WorkerCounters counters;
  /// Per hosted operator: cumulative tuples processed and modeled busy
  /// CPU-seconds — the coordinator's live load estimate per operator.
  struct OpLoad {
    uint32_t op = 0;
    uint64_t processed = 0;
    double busy_seconds = 0.0;
  };
  std::vector<OpLoad> loads;

  std::string Encode() const;
  static Result<HeartbeatMsg> Decode(std::string_view payload);
};

/// worker -> worker: one batch of `count` tuples for operator `to_op`,
/// entering at input port `to_port`. Tuples are modeled (count + origin
/// timestamp), matching the simulator's rate-based semantics; the wire
/// cost of a real payload is modeled by `bytes_padding` in benchmarks.
struct TupleBatchMsg {
  uint32_t to_op = 0;
  uint32_t to_port = 0;
  uint32_t count = 0;
  uint32_t from_worker = 0;
  double create_time = 0.0;  ///< Batch origin time on the run clock.
  /// Send instant on the sender's telemetry clock (microseconds). The
  /// receiver rebases it with the coordinator-distributed clock offsets
  /// (kClockSync) to measure end-to-end ship latency; 0 means unstamped.
  double send_time_us = 0.0;

  std::string Encode() const;
  static Result<TupleBatchMsg> Decode(std::string_view payload);
};

/// coordinator -> worker: pause the listed operators (migration fence).
struct PauseMsg {
  uint64_t plan_version = 0;  ///< The diff these pauses fence.
  std::vector<uint32_t> ops;

  std::string Encode() const;
  static Result<PauseMsg> Decode(std::string_view payload);
};

/// One operator move of a plan diff.
struct OperatorMove {
  uint32_t op = 0;
  uint32_t from_worker = 0;
  uint32_t to_worker = 0;
};

/// coordinator -> worker: incremental reassignment (the plan-diff step of
/// pause -> drain -> reassign -> resume).
struct PlanDiffMsg {
  uint64_t version = 0;
  std::vector<OperatorMove> moves;

  std::string Encode() const;
  static Result<PlanDiffMsg> Decode(std::string_view payload);
};

/// worker -> coordinator final counters (same block as heartbeats).
struct FinalStatsMsg {
  uint32_t worker_id = 0;
  WorkerCounters counters;

  std::string Encode() const;
  static Result<FinalStatsMsg> Decode(std::string_view payload);
};

/// coordinator -> worker clock-sync probe. `t1_us` is the coordinator's
/// telemetry clock at send; the worker echoes it back untouched.
struct PingMsg {
  uint64_t seq = 0;
  double t1_us = 0.0;

  std::string Encode() const;
  static Result<PingMsg> Decode(std::string_view payload);
};

/// worker -> coordinator probe echo. `t2_us`/`t3_us` are the worker's
/// telemetry clock at receive/reply; the coordinator stamps t4 on receipt
/// and feeds (t1, t2, t3, t4) to its ClockSyncEstimator.
struct PongMsg {
  uint64_t seq = 0;
  uint32_t worker_id = 0;
  double t1_us = 0.0;
  double t2_us = 0.0;
  double t3_us = 0.0;

  std::string Encode() const;
  static Result<PongMsg> Decode(std::string_view payload);
};

/// worker -> coordinator: the delta of this worker's metric registry
/// since its previous report (piggybacked on the heartbeat cadence).
/// Values are cumulative — the coordinator merges by overwrite, so a
/// lost report self-heals on the next one.
struct StatsReportMsg {
  struct HistogramState {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /// Log-scale (upper_bound, count) pairs, cumulative counts not
    /// required: plain per-bucket tallies, matching HistogramSnapshot.
    std::vector<std::pair<double, uint64_t>> buckets;
  };

  uint32_t worker_id = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramState> histograms;

  std::string Encode() const;
  static Result<StatsReportMsg> Decode(std::string_view payload);
};

/// coordinator -> worker: the latest per-worker clock offsets, in
/// coordinator-clock terms (worker_time_us + offset_us = coordinator
/// time). Workers use their own and their peers' offsets to rebase
/// TupleBatchMsg::send_time_us into one shared timebase.
struct ClockSyncMsg {
  struct Entry {
    uint32_t worker_id = 0;
    double offset_us = 0.0;
    double rtt_us = 0.0;
  };
  std::vector<Entry> entries;

  std::string Encode() const;
  static Result<ClockSyncMsg> Decode(std::string_view payload);
};

/// coordinator -> worker: freeze your observability rings now. Sent on
/// failure detection so every survivor snapshots at (approximately) the
/// same aligned instant.
struct FreezeMsg {
  uint64_t incident_id = 0;
  std::string kind;    ///< e.g. "worker_failure".
  std::string detail;  ///< Human-readable cause.

  std::string Encode() const;
  static Result<FreezeMsg> Decode(std::string_view payload);
};

/// worker -> coordinator: the frozen flight-recorder incident, rendered
/// as a self-contained JSON object, to embed in the coordinator's
/// cluster-wide incident report.
struct FrozenReportMsg {
  uint64_t incident_id = 0;
  uint32_t worker_id = 0;
  std::string incident_json;

  std::string Encode() const;
  static Result<FrozenReportMsg> Decode(std::string_view payload);
};

// Serialization of a query graph (inside PlanMsg; exposed for tests).
void EncodeQueryGraph(const query::QueryGraph& graph, WireWriter& w);
Result<query::QueryGraph> DecodeQueryGraph(WireReader& r);

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_WIRE_H_
