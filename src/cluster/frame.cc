#include "cluster/frame.h"

#include <cerrno>
#include <cstring>

#include "common/net.h"
#include "trace/store/format.h"

namespace rod::cluster {

namespace {

using trace::store::Crc32;

void StoreU16(char* out, uint16_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
}

void StoreU32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t LoadU32(const std::byte* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(std::to_integer<uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

std::span<const std::byte> AsBytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// "peer gone" vs "local error" from the failing read/write's errno (net
/// helpers preserve it; clean EOF sets it to 0).
Status TransportError(const char* what) {
  std::string msg = what;
  if (errno == 0) {
    msg += ": connection closed by peer";
  } else {
    msg += ": ";
    msg += std::strerror(errno);
  }
  return Status::Unavailable(std::move(msg));
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kWelcome:
      return "welcome";
    case MsgType::kPlan:
      return "plan";
    case MsgType::kPlanAck:
      return "plan_ack";
    case MsgType::kStart:
      return "start";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kTuples:
      return "tuples";
    case MsgType::kPause:
      return "pause";
    case MsgType::kPauseAck:
      return "pause_ack";
    case MsgType::kPlanDiff:
      return "plan_diff";
    case MsgType::kResume:
      return "resume";
    case MsgType::kFinish:
      return "finish";
    case MsgType::kFinalStats:
      return "final_stats";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kPing:
      return "ping";
    case MsgType::kPong:
      return "pong";
    case MsgType::kStatsReport:
      return "stats_report";
    case MsgType::kClockSync:
      return "clock_sync";
    case MsgType::kFreeze:
      return "freeze";
    case MsgType::kFrozenReport:
      return "frozen_report";
  }
  return "unknown";
}

std::string EncodeFrame(MsgType type, std::string_view payload) {
  std::string out(kFrameHeaderBytes + payload.size(), '\0');
  StoreU32(out.data(), kFrameMagic);
  out[4] = static_cast<char>(kFrameVersion);
  out[5] = static_cast<char>(type);
  StoreU16(out.data() + 6, 0);  // flags, reserved
  StoreU32(out.data() + 8, static_cast<uint32_t>(payload.size()));
  StoreU32(out.data() + 12, Crc32(AsBytes(payload)));
  StoreU32(out.data() + 16,
           Crc32({reinterpret_cast<const std::byte*>(out.data()), 16}));
  std::memcpy(out.data() + kFrameHeaderBytes, payload.data(), payload.size());
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::span<const std::byte> bytes,
                                      uint32_t max_payload) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header: need " +
                                   std::to_string(kFrameHeaderBytes) +
                                   " bytes, got " +
                                   std::to_string(bytes.size()));
  }
  const uint32_t stored_header_crc = LoadU32(bytes.data() + 16);
  if (Crc32(bytes.first(16)) != stored_header_crc) {
    return Status::DataLoss("frame header CRC mismatch");
  }
  const uint32_t magic = LoadU32(bytes.data());
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("frame magic mismatch (not a cluster "
                                   "frame stream)");
  }
  const uint8_t version = std::to_integer<uint8_t>(bytes[4]);
  if (version != kFrameVersion) {
    return Status::InvalidArgument("unsupported frame version " +
                                   std::to_string(version));
  }
  const uint8_t type_byte = std::to_integer<uint8_t>(bytes[5]);
  if (type_byte < static_cast<uint8_t>(MsgType::kHello) ||
      type_byte > kMaxMsgType) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type_byte));
  }
  FrameHeader header;
  header.type = static_cast<MsgType>(type_byte);
  header.payload_len = LoadU32(bytes.data() + 8);
  header.payload_crc = LoadU32(bytes.data() + 12);
  if (header.payload_len > max_payload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(header.payload_len) +
        " bytes exceeds the cap of " + std::to_string(max_payload));
  }
  return header;
}

Status ValidateFramePayload(const FrameHeader& header,
                            std::string_view payload) {
  if (payload.size() != header.payload_len) {
    return Status::InvalidArgument("frame payload length mismatch");
  }
  if (Crc32(AsBytes(payload)) != header.payload_crc) {
    return Status::DataLoss("frame payload CRC mismatch (" +
                            std::string(MsgTypeName(header.type)) + ")");
  }
  return Status::OK();
}

Status WriteFrame(int fd, MsgType type, std::string_view payload) {
  const std::string frame = EncodeFrame(type, payload);
  errno = 0;
  if (!net::WriteAll(fd, frame.data(), frame.size())) {
    return TransportError("write frame");
  }
  return Status::OK();
}

Status ReadFrame(int fd, Frame* out, uint32_t max_payload) {
  std::byte header_bytes[kFrameHeaderBytes];
  errno = 0;
  if (!net::ReadExactly(fd, header_bytes, sizeof(header_bytes))) {
    return TransportError("read frame header");
  }
  auto header = DecodeFrameHeader(header_bytes, max_payload);
  if (!header.ok()) return header.status();

  std::string payload(header->payload_len, '\0');
  errno = 0;
  if (header->payload_len > 0 &&
      !net::ReadExactly(fd, payload.data(), payload.size())) {
    return TransportError("read frame payload");
  }
  ROD_RETURN_IF_ERROR(ValidateFramePayload(*header, payload));
  out->type = header->type;
  out->payload = std::move(payload);
  return Status::OK();
}

}  // namespace rod::cluster
