#include "cluster/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "telemetry/exposition.h"
#include "telemetry/json_writer.h"

namespace rod::cluster {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AddCounters(WorkerCounters& into, const WorkerCounters& from) {
  into.generated += from.generated;
  into.processed += from.processed;
  into.emitted += from.emitted;
  into.delivered += from.delivered;
  into.shipped += from.shipped;
  into.received += from.received;
  into.ship_failures += from.ship_failures;
  into.lost_tuples += from.lost_tuples;
  into.paused_buffered += from.paused_buffered;
  into.busy_seconds += from.busy_seconds;
  into.latency_sum += from.latency_sum;
  into.latency_max = std::max(into.latency_max, from.latency_max);
  into.latency_count += from.latency_count;
}

void WriteCountersJson(const WorkerCounters& c, telemetry::JsonWriter& w) {
  w.BeginObjectInline();
  w.Key("generated").Uint(c.generated);
  w.Key("processed").Uint(c.processed);
  w.Key("emitted").Uint(c.emitted);
  w.Key("delivered").Uint(c.delivered);
  w.Key("shipped").Uint(c.shipped);
  w.Key("received").Uint(c.received);
  w.Key("ship_failures").Uint(c.ship_failures);
  w.Key("lost_tuples").Uint(c.lost_tuples);
  w.Key("paused_buffered").Uint(c.paused_buffered);
  w.Key("busy_seconds").Double(c.busy_seconds);
  w.Key("latency_mean")
      .Double(c.latency_count > 0
                  ? c.latency_sum / static_cast<double>(c.latency_count)
                  : 0.0);
  w.Key("latency_max").Double(c.latency_max);
  w.EndObject();
}

}  // namespace

Coordinator::Coordinator(query::QueryGraph graph, CoordinatorOptions options)
    : graph_(std::move(graph)), options_(std::move(options)) {
  // Register the coordinator's cluster.* families at zero so /metrics
  // exposes the full set from the first scrape.
  for (const char* name :
       {"cluster.workers_registered", "cluster.heartbeats_received",
        "cluster.failures_detected", "cluster.plan_ships",
        "cluster.plan_diffs", "cluster.operator_moves",
        "cluster.final_stats_collected"}) {
    telemetry_.Count(name, 0);
  }
  telemetry_.SetGauge("cluster.workers_alive", 0.0);
  telemetry_.SetGauge("cluster.plan_version", 0.0);
}

Coordinator::~Coordinator() { http_.Stop(); }

void Coordinator::RequestStop() { stop_pipe_.Notify(); }

double Coordinator::Now() const {
  return started_ ? MonotonicSeconds() - run_epoch_ : 0.0;
}

Status Coordinator::Listen() {
  if (listener_.listening()) return Status::OK();
  if (options_.expected_workers == 0) {
    return Status::InvalidArgument("expected_workers must be > 0");
  }
  std::string error;
  if (!stop_pipe_.open() && !stop_pipe_.Open(&error)) {
    return Status::Internal("self-pipe: " + error);
  }
  ROD_RETURN_IF_ERROR(listener_.Listen(options_.control_port));
  if (options_.serve_http) StartHttpPlane();
  return Status::OK();
}

Status Coordinator::Run() {
  ROD_RETURN_IF_ERROR(Listen());
  ROD_RETURN_IF_ERROR(AcceptRegistrations());
  ROD_RETURN_IF_ERROR(BuildAndShipPlan());
  ROD_RETURN_IF_ERROR(StartRun());
  ROD_RETURN_IF_ERROR(MonitorLoop());
  return Finish();
}

Status Coordinator::AcceptRegistrations() {
  const double deadline = MonotonicSeconds() + options_.register_timeout;
  while (workers_.size() < options_.expected_workers) {
    const double wait = deadline - MonotonicSeconds();
    if (wait <= 0.0) {
      return Status::Unavailable(
          "only " + std::to_string(workers_.size()) + " of " +
          std::to_string(options_.expected_workers) +
          " workers registered before the deadline");
    }
    pollfd fds[2] = {{stop_pipe_.read_fd(), POLLIN, 0},
                     {listener_.fd(), POLLIN, 0}};
    const int ready =
        ::poll(fds, 2, static_cast<int>(std::ceil(wait * 1000.0)));
    if (ready < 0 && errno != EINTR) return Status::Internal("poll failed");
    if (ready <= 0) continue;
    if (fds[0].revents != 0) {
      return Status::Unavailable("stopped during registration");
    }
    if (fds[1].revents == 0) continue;

    auto conn = listener_.Accept(options_.ack_timeout);
    if (!conn.ok()) continue;
    Frame frame;
    if (!conn->Recv(&frame).ok() || frame.type != MsgType::kHello) continue;
    auto hello = HelloMsg::Decode(frame.payload);
    if (!hello.ok()) continue;

    WorkerState state;
    state.conn = std::move(conn.value());
    state.data_port = hello->data_port;
    state.http_port = hello->http_port;
    state.capacity = hello->capacity;
    state.name = hello->name;

    WelcomeMsg welcome;
    welcome.worker_id = static_cast<uint32_t>(workers_.size());
    welcome.num_workers = static_cast<uint32_t>(options_.expected_workers);
    welcome.heartbeat_interval = options_.heartbeat_interval;
    welcome.heartbeat_timeout = options_.heartbeat_timeout;
    if (!state.conn.Send(MsgType::kWelcome, welcome.Encode()).ok()) continue;

    workers_.push_back(std::move(state));
    telemetry_.Count("cluster.workers_registered", 1);
    telemetry_.SetGauge("cluster.workers_alive",
                        static_cast<double>(workers_.size()));
  }
  report_.num_workers = workers_.size();
  return Status::OK();
}

Status Coordinator::BuildAndShipPlan() {
  auto model = query::BuildLinearizedLoadModel(graph_);
  if (!model.ok()) return model.status();
  model_ = std::make_unique<query::LoadModel>(std::move(model.value()));

  system_.capacities.clear();
  for (const WorkerState& worker : workers_) {
    system_.capacities.push_back(worker.capacity);
  }

  auto placement = place::RodPlace(*model_, system_, options_.rod, &graph_);
  if (!placement.ok()) return placement.status();
  assignment_ = placement->assignment();

  auto deployment = sim::CompileDeployment(graph_, *placement, system_);
  if (!deployment.ok()) return deployment.status();
  deployment_ = std::move(deployment.value());

  // Each input stream is generated by the worker hosting its first
  // consumer, so source batches enter the dataflow without a hop.
  source_owner_.assign(graph_.num_input_streams(), 0);
  for (size_t s = 0; s < deployment_.input_routes.size(); ++s) {
    if (deployment_.input_routes[s].empty()) continue;
    const uint32_t op = deployment_.input_routes[s][0].to_op;
    source_owner_[s] = static_cast<uint32_t>(assignment_[op]);
  }

  // The supervisor that will repair worker failures: the same ControlAgent
  // the in-process engine consults, driven here off missed heartbeats.
  sim::Supervisor::Options sup = options_.supervisor;
  sup.detection_delay = options_.heartbeat_timeout;
  sup.telemetry = &telemetry_;
  sup.flight_recorder = &flight_recorder_;
  supervisor_ = std::make_unique<sim::Supervisor>(*model_, std::move(sup));

  // Ship the plan and clock first-send -> last-ack.
  plan_version_ = 1;
  PlanMsg plan;
  plan.version = plan_version_;
  plan.graph = graph_;
  plan.assignment.assign(assignment_.begin(), assignment_.end());
  plan.capacities = system_.capacities;
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    plan.endpoints.push_back({i, workers_[i].data_port});
  }
  plan.source_owner = source_owner_;
  const std::string payload = plan.Encode();

  const double ship_begin = MonotonicSeconds();
  for (WorkerState& worker : workers_) {
    ROD_RETURN_IF_ERROR(worker.conn.Send(MsgType::kPlan, payload));
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    Frame frame;
    ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPlanAck, &frame));
    auto ack = PlanAckMsg::Decode(frame.payload);
    if (!ack.ok()) return ack.status();
    workers_[i].plan_version = ack->version;
  }
  report_.plan_ship_seconds = MonotonicSeconds() - ship_begin;
  report_.plan_version = plan_version_;
  telemetry_.Count("cluster.plan_ships", 1);
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  return Status::OK();
}

Status Coordinator::StartRun() {
  StartMsg start;
  start.duration = options_.duration;
  start.tick_seconds = options_.tick_seconds;
  start.seed = options_.seed;
  start.rates = options_.rates;
  start.rates.resize(graph_.num_input_streams(), options_.default_rate);
  const std::string payload = start.Encode();
  for (WorkerState& worker : workers_) {
    ROD_RETURN_IF_ERROR(worker.conn.Send(MsgType::kStart, payload));
  }
  started_ = true;
  run_epoch_ = MonotonicSeconds();
  for (WorkerState& worker : workers_) worker.last_heartbeat = 0.0;
  return Status::OK();
}

Status Coordinator::MonitorLoop() {
  const double finish_at = options_.duration + options_.finish_grace;
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_.read_fd(), POLLIN, 0});
    std::vector<uint32_t> polled;  // Worker id per fds[1+k].
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].alive && workers_[i].conn_ok) {
        fds.push_back({workers_[i].conn.fd(), POLLIN, 0});
        polled.push_back(i);
      }
    }

    double wait = finish_at - Now();
    if (wait <= 0.0) return Status::OK();
    // Wake at least every half heartbeat interval to check deadlines.
    wait = std::min(wait, options_.heartbeat_interval * 0.5);
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(std::ceil(wait * 1000.0)));
    if (ready < 0 && errno != EINTR) return Status::Internal("poll failed");
    if (ready > 0) {
      if (fds[0].revents != 0) return Status::OK();  // RequestStop().
      for (size_t k = 0; k < polled.size(); ++k) {
        if (fds[1 + k].revents == 0) continue;
        const uint32_t i = polled[k];
        Frame frame;
        if (!workers_[i].conn.Recv(&frame).ok()) {
          // EOF/reset: the control channel is gone. The worker is
          // declared failed by the heartbeat deadline below, keeping
          // detection semantics uniform (missed heartbeats).
          workers_[i].conn_ok = false;
          workers_[i].conn.Close();
          continue;
        }
        if (frame.type == MsgType::kHeartbeat) {
          auto hb = HeartbeatMsg::Decode(frame.payload);
          if (hb.ok()) HandleHeartbeat(*hb);
        }
      }
    }

    const double now = Now();
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      if (now - workers_[i].last_heartbeat > options_.heartbeat_timeout) {
        HandleWorkerFailure(i, now);
      }
    }
    if (retry_at_ >= 0.0 && now >= retry_at_) {
      const uint32_t node = retry_node_;
      retry_at_ = -1.0;
      HandleWorkerFailure(node, now);
    }
  }
}

void Coordinator::HandleHeartbeat(const HeartbeatMsg& hb) {
  if (hb.worker_id >= workers_.size()) return;
  WorkerState& worker = workers_[hb.worker_id];
  worker.last_heartbeat = Now();
  worker.plan_version = hb.plan_version;
  worker.counters = hb.counters;
  telemetry_.Count("cluster.heartbeats_received", 1);
}

void Coordinator::HandleWorkerFailure(uint32_t failed, double now) {
  WorkerState& worker = workers_[failed];
  const bool first_detection = worker.alive;
  if (first_detection) {
    worker.alive = false;
    worker.conn_ok = false;
    worker.conn.Close();
    telemetry_.Count("cluster.failures_detected", 1);
    size_t alive = 0;
    for (const WorkerState& w : workers_) alive += w.alive ? 1 : 0;
    telemetry_.SetGauge("cluster.workers_alive",
                        static_cast<double>(alive));
  }

  if (!report_.had_incident) {
    // The run's first incident: freeze pre-incident state and start the
    // engine-schema report. The true crash instant is unobservable from
    // outside the dead process; the last proof of life bounds it.
    report_.had_incident = true;
    report_.incident.crash_time = worker.last_heartbeat;
    report_.incident.failed_node = failed;
    flight_recorder_.BeginIncident(
        "cluster.worker_failure",
        worker.name + " missed heartbeats for " +
            std::to_string(options_.heartbeat_timeout) + "s");
  }
  if (report_.incident.failed_node == failed &&
      report_.incident.detect_time < 0.0) {
    report_.incident.detect_time = now;
  }
  flight_recorder_.Note("failure detected: worker " +
                        std::to_string(failed) + " (" + worker.name + ")");

  std::vector<bool> node_up;
  node_up.reserve(workers_.size());
  for (const WorkerState& w : workers_) node_up.push_back(w.alive);

  auto update =
      supervisor_->OnFailureDetected(now, failed, node_up, deployment_);
  if (!update.has_value()) {
    const double delay = supervisor_->RepairRetryDelay();
    if (delay > 0.0) {
      retry_at_ = now + delay;
      retry_node_ = failed;
      flight_recorder_.Note("repair failed; retrying in " +
                            std::to_string(delay) + "s");
    } else {
      flight_recorder_.Note("repair abandoned: " +
                            supervisor_->last_status().ToString());
    }
    return;
  }
  const Status applied = ExecutePlanDiff(*update, now);
  if (!applied.ok()) {
    flight_recorder_.Note("plan diff failed: " + applied.ToString());
    return;
  }
  if (report_.incident.failed_node == failed) {
    report_.incident.plan_applied_time = Now();
    report_.incident.recovered = true;
    report_.incident.recovery_time =
        report_.incident.plan_applied_time - report_.incident.crash_time;
  }
}

Status Coordinator::ExecutePlanDiff(const sim::PlanUpdate& update,
                                    double now) {
  (void)now;
  std::vector<OperatorMove> moves;
  for (size_t j = 0; j < update.assignment.size(); ++j) {
    if (j < assignment_.size() && update.assignment[j] != assignment_[j]) {
      moves.push_back({static_cast<uint32_t>(j),
                       static_cast<uint32_t>(assignment_[j]),
                       static_cast<uint32_t>(update.assignment[j])});
    }
  }
  if (moves.empty()) return Status::OK();
  ++plan_version_;

  // Pause -> drain -> reassign -> resume against every live worker.
  PauseMsg pause;
  pause.plan_version = plan_version_;
  for (const OperatorMove& move : moves) pause.ops.push_back(move.op);
  const std::string pause_payload = pause.Encode();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    ROD_RETURN_IF_ERROR(
        workers_[i].conn.Send(MsgType::kPause, pause_payload));
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    Frame frame;
    ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPauseAck, &frame));
  }
  flight_recorder_.Note("paused " + std::to_string(moves.size()) +
                        " operators; drain confirmed");

  PlanDiffMsg diff;
  diff.version = plan_version_;
  diff.moves = moves;
  const std::string diff_payload = diff.Encode();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    ROD_RETURN_IF_ERROR(
        workers_[i].conn.Send(MsgType::kPlanDiff, diff_payload));
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    Frame frame;
    ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPlanAck, &frame));
    auto ack = PlanAckMsg::Decode(frame.payload);
    if (ack.ok()) workers_[i].plan_version = ack->version;
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    ROD_RETURN_IF_ERROR(workers_[i].conn.Send(MsgType::kResume, ""));
  }

  assignment_ = update.assignment;
  ROD_RETURN_IF_ERROR(
      sim::ReassignOperators(deployment_, assignment_).status());
  report_.plan_version = plan_version_;
  report_.incident.operators_moved += moves.size();
  telemetry_.Count("cluster.plan_diffs", 1);
  telemetry_.Count("cluster.operator_moves", moves.size());
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  flight_recorder_.Note("plan v" + std::to_string(plan_version_) +
                        " live: " + std::to_string(moves.size()) +
                        " operators re-homed");
  return Status::OK();
}

Status Coordinator::AwaitFrame(uint32_t worker, MsgType want, Frame* out) {
  WorkerState& state = workers_[worker];
  for (;;) {
    const Status recv = state.conn.Recv(out);
    if (!recv.ok()) {
      state.conn_ok = false;
      state.conn.Close();
      return recv;
    }
    if (out->type == want) return Status::OK();
    // Workers heartbeat on their own cadence; absorb anything that
    // interleaves with the protocol step we are waiting on.
    if (out->type == MsgType::kHeartbeat) {
      auto hb = HeartbeatMsg::Decode(out->payload);
      if (hb.ok()) HandleHeartbeat(*hb);
    }
  }
}

Status Coordinator::Finish() {
  // Collect final stats from the survivors, then release them.
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    WorkerState& worker = workers_[i];
    if (!worker.alive || !worker.conn_ok) continue;
    if (!worker.conn.Send(MsgType::kFinish, "").ok()) continue;
    Frame frame;
    if (!AwaitFrame(i, MsgType::kFinalStats, &frame).ok()) continue;
    auto stats = FinalStatsMsg::Decode(frame.payload);
    if (!stats.ok()) continue;
    worker.counters = stats->counters;
    worker.have_final = true;
    telemetry_.Count("cluster.final_stats_collected", 1);
  }
  for (WorkerState& worker : workers_) {
    if (worker.alive && worker.conn_ok) {
      (void)worker.conn.Send(MsgType::kShutdown, "");
    }
    worker.conn.Close();
  }
  report_.run_seconds = Now();

  report_.totals = WorkerCounters{};
  report_.workers.clear();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    const WorkerState& worker = workers_[i];
    AddCounters(report_.totals, worker.counters);
    report_.workers.push_back({i, worker.name, worker.alive,
                               worker.have_final, worker.counters});
  }

  if (report_.had_incident) {
    // Loss breakdown, cluster flavor: ship failures toward a dead peer
    // are network loss (what the dead process held internally is not
    // observable from outside it, so lost_queued/lost_inflight stay 0).
    // Availability approximates the engine's accepted-fraction as
    // generated work net of losses over generated work.
    sim::IncidentReport& incident = report_.incident;
    incident.lost_network = report_.totals.lost_tuples;
    incident.lost_tuples = incident.lost_queued + incident.lost_inflight +
                           incident.lost_network +
                           incident.rejected_inputs;
    const double offered = static_cast<double>(report_.totals.generated);
    incident.availability =
        offered > 0.0
            ? std::clamp(1.0 - static_cast<double>(incident.lost_tuples) /
                                   offered,
                         0.0, 1.0)
            : 1.0;
    flight_recorder_.CompleteIncident([this](telemetry::JsonWriter& w) {
      sim::WriteIncidentReportJson(report_.incident, w);
    });
  }
  return Status::OK();
}

void Coordinator::WriteReportJson(std::ostream& out) const {
  telemetry::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema").String("rod.cluster_report.v1");
  w.Key("num_workers").Uint(report_.num_workers);
  w.Key("plan_version").Uint(report_.plan_version);
  w.Key("plan_ship_seconds").Double(report_.plan_ship_seconds);
  w.Key("run_seconds").Double(report_.run_seconds);
  w.Key("totals");
  WriteCountersJson(report_.totals, w);
  w.Key("workers").BeginArray();
  for (const ClusterReport::WorkerSummary& worker : report_.workers) {
    w.BeginObjectInline();
    w.Key("worker_id").Uint(worker.worker_id);
    w.Key("name").String(worker.name);
    w.Key("alive").Bool(worker.alive);
    w.Key("final_stats").Bool(worker.final_stats);
    w.Key("counters");
    WriteCountersJson(worker.counters, w);
    w.EndObject();
  }
  w.EndArray();
  if (report_.had_incident) {
    w.Key("incident");
    sim::WriteIncidentReportJson(report_.incident, w);
  } else {
    w.Key("incident").Null();
  }
  w.EndObject();
}

void Coordinator::StartHttpPlane() {
  telemetry::Telemetry* tel = &telemetry_;
  telemetry::FlightRecorder* rec = &flight_recorder_;
  http_.Handle("/metrics", [tel](std::string_view) {
    std::ostringstream body;
    telemetry::WritePrometheusText(tel->Snapshot(), body);
    return telemetry::HttpServer::Response{
        200, telemetry::kPrometheusContentType, body.str()};
  });
  http_.Handle("/metrics.json", [tel](std::string_view) {
    std::ostringstream body;
    tel->WriteMetricsJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/flightrecorder", [rec](std::string_view) {
    std::ostringstream body;
    rec->WriteJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/healthz", [](std::string_view) {
    return telemetry::HttpServer::Response{200, "text/plain; charset=utf-8",
                                           "ok\n"};
  });
  std::string error;
  if (http_.Start(options_.http_port, &error)) {
    http_port_ = http_.port();
  }
}

}  // namespace rod::cluster
