#include "cluster/coordinator.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "telemetry/exposition.h"
#include "telemetry/json_writer.h"

namespace rod::cluster {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AddCounters(WorkerCounters& into, const WorkerCounters& from) {
  into.generated += from.generated;
  into.processed += from.processed;
  into.emitted += from.emitted;
  into.delivered += from.delivered;
  into.shipped += from.shipped;
  into.received += from.received;
  into.ship_failures += from.ship_failures;
  into.lost_tuples += from.lost_tuples;
  into.paused_buffered += from.paused_buffered;
  into.busy_seconds += from.busy_seconds;
  into.latency_sum += from.latency_sum;
  into.latency_max = std::max(into.latency_max, from.latency_max);
  into.latency_count += from.latency_count;
}

void WriteCountersJson(const WorkerCounters& c, telemetry::JsonWriter& w) {
  w.BeginObjectInline();
  w.Key("generated").Uint(c.generated);
  w.Key("processed").Uint(c.processed);
  w.Key("emitted").Uint(c.emitted);
  w.Key("delivered").Uint(c.delivered);
  w.Key("shipped").Uint(c.shipped);
  w.Key("received").Uint(c.received);
  w.Key("ship_failures").Uint(c.ship_failures);
  w.Key("lost_tuples").Uint(c.lost_tuples);
  w.Key("paused_buffered").Uint(c.paused_buffered);
  w.Key("busy_seconds").Double(c.busy_seconds);
  w.Key("latency_mean")
      .Double(c.latency_count > 0
                  ? c.latency_sum / static_cast<double>(c.latency_count)
                  : 0.0);
  w.Key("latency_max").Double(c.latency_max);
  w.EndObject();
}

void WritePhasesJson(const ClusterReport::IncidentPhases& p,
                     telemetry::JsonWriter& w) {
  w.BeginObjectInline();
  w.Key("valid").Bool(p.valid);
  w.Key("detect_seconds").Double(p.detect_seconds);
  w.Key("pause_drain_seconds").Double(p.pause_drain_seconds);
  w.Key("reassign_seconds").Double(p.reassign_seconds);
  w.Key("resume_seconds").Double(p.resume_seconds);
  w.EndObject();
}

void WriteShipLatencyJson(const ClusterReport::ShipLatency& s,
                          telemetry::JsonWriter& w) {
  w.BeginObjectInline();
  w.Key("count").Uint(s.count);
  w.Key("mean_us").Double(s.mean_us);
  w.Key("p50_us").Double(s.p50_us);
  w.Key("p99_us").Double(s.p99_us);
  w.Key("max_us").Double(s.max_us);
  w.EndObject();
}

}  // namespace

Coordinator::Coordinator(query::QueryGraph graph, CoordinatorOptions options)
    : graph_(std::move(graph)), options_(std::move(options)) {
  // Register the coordinator's cluster.* families at zero so /metrics
  // exposes the full set from the first scrape.
  for (const char* name :
       {"cluster.workers_registered", "cluster.heartbeats_received",
        "cluster.failures_detected", "cluster.plan_ships",
        "cluster.plan_diffs", "cluster.operator_moves",
        "cluster.final_stats_collected", "cluster.clock_syncs_sent",
        "cluster.stats_reports_received", "cluster.freezes_broadcast",
        "cluster.frozen_reports_received", "cluster.unexpected_frames"}) {
    telemetry_.Count(name, 0);
  }
  telemetry_.SetGauge("cluster.workers_alive", 0.0);
  telemetry_.SetGauge("cluster.plan_version", 0.0);
}

Coordinator::~Coordinator() { http_.Stop(); }

void Coordinator::RequestStop() { stop_pipe_.Notify(); }

double Coordinator::Now() const {
  return started_ ? MonotonicSeconds() - run_epoch_ : 0.0;
}

Status Coordinator::Listen() {
  if (listener_.listening()) return Status::OK();
  if (options_.expected_workers == 0) {
    return Status::InvalidArgument("expected_workers must be > 0");
  }
  std::string error;
  if (!stop_pipe_.open() && !stop_pipe_.Open(&error)) {
    return Status::Internal("self-pipe: " + error);
  }
  ROD_RETURN_IF_ERROR(listener_.Listen(options_.control_port));
  listener_.set_metrics(&frame_metrics_);
  if (options_.serve_http) StartHttpPlane();
  return Status::OK();
}

Status Coordinator::Run() {
  ROD_RETURN_IF_ERROR(Listen());
  ROD_RETURN_IF_ERROR(AcceptRegistrations());
  ROD_RETURN_IF_ERROR(BuildAndShipPlan());
  ROD_RETURN_IF_ERROR(SyncClocks(options_.clock_sync_rounds));
  ROD_RETURN_IF_ERROR(StartRun());
  ROD_RETURN_IF_ERROR(MonitorLoop());
  const Status finished = Finish();
  if (!options_.trace_path.empty()) DumpTrace();
  return finished;
}

Status Coordinator::AcceptRegistrations() {
  const double deadline = MonotonicSeconds() + options_.register_timeout;
  while (workers_.size() < options_.expected_workers) {
    const double wait = deadline - MonotonicSeconds();
    if (wait <= 0.0) {
      return Status::Unavailable(
          "only " + std::to_string(workers_.size()) + " of " +
          std::to_string(options_.expected_workers) +
          " workers registered before the deadline");
    }
    pollfd fds[2] = {{stop_pipe_.read_fd(), POLLIN, 0},
                     {listener_.fd(), POLLIN, 0}};
    const int ready =
        ::poll(fds, 2, static_cast<int>(std::ceil(wait * 1000.0)));
    if (ready < 0 && errno != EINTR) return Status::Internal("poll failed");
    if (ready <= 0) continue;
    if (fds[0].revents != 0) {
      return Status::Unavailable("stopped during registration");
    }
    if (fds[1].revents == 0) continue;

    auto conn = listener_.Accept(options_.ack_timeout);
    if (!conn.ok()) continue;
    Frame frame;
    if (!conn->Recv(&frame).ok() || frame.type != MsgType::kHello) continue;
    auto hello = HelloMsg::Decode(frame.payload);
    if (!hello.ok()) continue;

    WorkerState state;
    state.conn = std::move(conn.value());
    state.data_port = hello->data_port;
    state.http_port = hello->http_port;
    state.capacity = hello->capacity;
    state.name = hello->name;

    WelcomeMsg welcome;
    welcome.worker_id = static_cast<uint32_t>(workers_.size());
    welcome.num_workers = static_cast<uint32_t>(options_.expected_workers);
    welcome.heartbeat_interval = options_.heartbeat_interval;
    welcome.heartbeat_timeout = options_.heartbeat_timeout;
    if (!state.conn.Send(MsgType::kWelcome, welcome.Encode()).ok()) continue;

    workers_.push_back(std::move(state));
    telemetry_.Count("cluster.workers_registered", 1);
    telemetry_.SetGauge("cluster.workers_alive",
                        static_cast<double>(workers_.size()));
  }
  report_.num_workers = workers_.size();

  clock_sync_.assign(workers_.size(), ClockSyncEstimator());
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    obs_.resize(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      obs_[i].name = workers_[i].name;
      obs_[i].http_port = workers_[i].http_port;
    }
  }
  return Status::OK();
}

Status Coordinator::BuildAndShipPlan() {
  auto model = query::BuildLinearizedLoadModel(graph_);
  if (!model.ok()) return model.status();
  model_ = std::make_unique<query::LoadModel>(std::move(model.value()));

  system_.capacities.clear();
  for (const WorkerState& worker : workers_) {
    system_.capacities.push_back(worker.capacity);
  }

  auto placement = place::RodPlace(*model_, system_, options_.rod, &graph_);
  if (!placement.ok()) return placement.status();
  assignment_ = placement->assignment();

  auto deployment = sim::CompileDeployment(graph_, *placement, system_);
  if (!deployment.ok()) return deployment.status();
  deployment_ = std::move(deployment.value());

  // Each input stream is generated by the worker hosting its first
  // consumer, so source batches enter the dataflow without a hop.
  source_owner_.assign(graph_.num_input_streams(), 0);
  for (size_t s = 0; s < deployment_.input_routes.size(); ++s) {
    if (deployment_.input_routes[s].empty()) continue;
    const uint32_t op = deployment_.input_routes[s][0].to_op;
    source_owner_[s] = static_cast<uint32_t>(assignment_[op]);
  }

  // The supervisor that will repair worker failures: the same ControlAgent
  // the in-process engine consults, driven here off missed heartbeats.
  sim::Supervisor::Options sup = options_.supervisor;
  sup.detection_delay = options_.heartbeat_timeout;
  sup.telemetry = &telemetry_;
  sup.flight_recorder = &flight_recorder_;
  supervisor_ = std::make_unique<sim::Supervisor>(*model_, std::move(sup));

  // Ship the plan and clock first-send -> last-ack.
  plan_version_ = 1;
  PlanMsg plan;
  plan.version = plan_version_;
  plan.graph = graph_;
  plan.assignment.assign(assignment_.begin(), assignment_.end());
  plan.capacities = system_.capacities;
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    plan.endpoints.push_back({i, workers_[i].data_port});
  }
  plan.source_owner = source_owner_;
  const std::string payload = plan.Encode();

  const double ship_begin = MonotonicSeconds();
  for (WorkerState& worker : workers_) {
    ROD_RETURN_IF_ERROR(worker.conn.Send(MsgType::kPlan, payload));
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    Frame frame;
    ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPlanAck, &frame));
    auto ack = PlanAckMsg::Decode(frame.payload);
    if (!ack.ok()) return ack.status();
    workers_[i].plan_version = ack->version;
  }
  report_.plan_ship_seconds = MonotonicSeconds() - ship_begin;
  report_.plan_version = plan_version_;
  telemetry_.Count("cluster.plan_ships", 1);
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  plan_version_pub_.store(plan_version_, std::memory_order_release);
  ready_.store(true, std::memory_order_release);
  return Status::OK();
}

Status Coordinator::SyncClocks(size_t rounds) {
  ROD_TRACE_SPAN(&telemetry_, "cluster", "clock.sync");
  for (size_t round = 0; round < rounds; ++round) {
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive || !workers_[i].conn_ok) continue;
      PingMsg ping;
      ping.seq = ++ping_seq_;
      ping.t1_us = telemetry_.NowMicros();
      ROD_RETURN_IF_ERROR(
          workers_[i].conn.Send(MsgType::kPing, ping.Encode()));
      Frame frame;
      ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPong, &frame));
      const double t4 = telemetry_.NowMicros();
      auto pong = PongMsg::Decode(frame.payload);
      if (!pong.ok()) return pong.status();
      clock_sync_[i].AddSample({pong->t1_us, pong->t2_us, pong->t3_us, t4});
      PublishClockEstimate(i);
    }
  }
  BroadcastClockSync();
  return Status::OK();
}

void Coordinator::SendPings(double now) {
  next_ping_ = now + std::max(0.05, options_.clock_sync_interval);
  if (clock_dirty_) BroadcastClockSync();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    WorkerState& worker = workers_[i];
    if (!worker.alive || !worker.conn_ok) continue;
    PingMsg ping;
    ping.seq = ++ping_seq_;
    ping.t1_us = telemetry_.NowMicros();
    if (!worker.conn.Send(MsgType::kPing, ping.Encode()).ok()) {
      // The heartbeat deadline declares the failure; just stop polling.
      worker.conn_ok = false;
      worker.conn.Close();
    }
  }
}

void Coordinator::HandlePong(uint32_t worker, const PongMsg& pong) {
  const double t4 = telemetry_.NowMicros();
  if (worker >= clock_sync_.size()) return;
  clock_sync_[worker].AddSample({pong.t1_us, pong.t2_us, pong.t3_us, t4});
  PublishClockEstimate(worker);
}

void Coordinator::PublishClockEstimate(uint32_t i) {
  if (i >= clock_sync_.size() || !clock_sync_[i].has_estimate()) return;
  const double offset = clock_sync_[i].offset_us();
  const double rtt = clock_sync_[i].rtt_us();
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    if (i < obs_.size()) {
      WorkerObs& o = obs_[i];
      if (!o.clock_synced || o.clock_offset_us != offset ||
          o.clock_rtt_us != rtt) {
        clock_dirty_ = true;
      }
      o.clock_synced = true;
      o.clock_offset_us = offset;
      o.clock_rtt_us = rtt;
    }
  }
  const std::string suffix = ".w" + std::to_string(i);
  telemetry_.SetGauge("cluster.clock_offset_us" + suffix, offset);
  telemetry_.SetGauge("cluster.rtt_us" + suffix, rtt);
}

void Coordinator::BroadcastClockSync() {
  ClockSyncMsg msg;
  for (uint32_t i = 0; i < clock_sync_.size(); ++i) {
    if (!clock_sync_[i].has_estimate()) continue;
    msg.entries.push_back(
        {i, clock_sync_[i].offset_us(), clock_sync_[i].rtt_us()});
  }
  if (msg.entries.empty()) return;
  const std::string payload = msg.Encode();
  for (WorkerState& worker : workers_) {
    if (!worker.alive || !worker.conn_ok) continue;
    if (!worker.conn.Send(MsgType::kClockSync, payload).ok()) {
      worker.conn_ok = false;
      worker.conn.Close();
    }
  }
  clock_dirty_ = false;
  telemetry_.Count("cluster.clock_syncs_sent", 1);
}

Status Coordinator::StartRun() {
  StartMsg start;
  start.duration = options_.duration;
  start.tick_seconds = options_.tick_seconds;
  start.seed = options_.seed;
  start.rates = options_.rates;
  start.rates.resize(graph_.num_input_streams(), options_.default_rate);
  const std::string payload = start.Encode();
  for (WorkerState& worker : workers_) {
    ROD_RETURN_IF_ERROR(worker.conn.Send(MsgType::kStart, payload));
  }
  started_ = true;
  run_epoch_ = MonotonicSeconds();
  for (WorkerState& worker : workers_) worker.last_heartbeat = 0.0;
  next_ping_ = std::max(0.05, options_.clock_sync_interval);
  return Status::OK();
}

Status Coordinator::MonitorLoop() {
  const double finish_at = options_.duration + options_.finish_grace;
  for (;;) {
    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_.read_fd(), POLLIN, 0});
    std::vector<uint32_t> polled;  // Worker id per fds[1+k].
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (workers_[i].alive && workers_[i].conn_ok) {
        fds.push_back({workers_[i].conn.fd(), POLLIN, 0});
        polled.push_back(i);
      }
    }

    double wait = finish_at - Now();
    if (wait <= 0.0) return Status::OK();
    // Wake at least every half heartbeat interval to check deadlines.
    wait = std::min(wait, options_.heartbeat_interval * 0.5);
    const int ready = ::poll(fds.data(), fds.size(),
                             static_cast<int>(std::ceil(wait * 1000.0)));
    if (ready < 0 && errno != EINTR) return Status::Internal("poll failed");
    if (ready > 0) {
      if (fds[0].revents != 0) return Status::OK();  // RequestStop().
      for (size_t k = 0; k < polled.size(); ++k) {
        if (fds[1 + k].revents == 0) continue;
        const uint32_t i = polled[k];
        Frame frame;
        if (!workers_[i].conn.Recv(&frame).ok()) {
          // EOF/reset: the control channel is gone. The worker is
          // declared failed by the heartbeat deadline below, keeping
          // detection semantics uniform (missed heartbeats).
          workers_[i].conn_ok = false;
          workers_[i].conn.Close();
          continue;
        }
        HandleAsyncFrame(i, frame);
      }
    }

    const double now = Now();
    if (now >= next_ping_) SendPings(now);
    for (uint32_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      if (now - workers_[i].last_heartbeat > options_.heartbeat_timeout) {
        HandleWorkerFailure(i, now);
      }
    }
    if (retry_at_ >= 0.0 && now >= retry_at_) {
      const uint32_t node = retry_node_;
      retry_at_ = -1.0;
      HandleWorkerFailure(node, now);
    }
  }
}

void Coordinator::HandleHeartbeat(const HeartbeatMsg& hb) {
  if (hb.worker_id >= workers_.size()) return;
  WorkerState& worker = workers_[hb.worker_id];
  worker.last_heartbeat = Now();
  worker.plan_version = hb.plan_version;
  worker.counters = hb.counters;
  telemetry_.Count("cluster.heartbeats_received", 1);

  // Surface the per-operator load report as live coordinator gauges
  // (each operator is hosted by exactly one worker, so plain op-keyed
  // names cannot collide across workers).
  for (const HeartbeatMsg::OpLoad& load : hb.loads) {
    const std::string op = std::to_string(load.op);
    telemetry_.SetGauge("cluster.op_processed." + op,
                        static_cast<double>(load.processed));
    telemetry_.SetGauge("cluster.op_busy_seconds." + op, load.busy_seconds);
  }

  std::lock_guard<std::mutex> lock(obs_mu_);
  if (hb.worker_id < obs_.size()) {
    WorkerObs& o = obs_[hb.worker_id];
    o.plan_version = hb.plan_version;
    o.last_seen_us = telemetry_.NowMicros();
    o.queue_depth = hb.queue_depth;
    o.counters = hb.counters;
    o.loads = hb.loads;
  }
}

void Coordinator::HandleStatsReport(const StatsReportMsg& report) {
  telemetry_.Count("cluster.stats_reports_received", 1);
  std::lock_guard<std::mutex> lock(obs_mu_);
  if (report.worker_id >= obs_.size()) return;
  WorkerObs& o = obs_[report.worker_id];
  // Values are cumulative, so overwrite-merge reconstructs the worker's
  // registry; a lost delta self-heals on the next report of the family.
  for (const auto& [name, value] : report.counters) {
    o.merged.counters[name] = value;
  }
  for (const auto& [name, value] : report.gauges) {
    o.merged.gauges[name] = value;
  }
  for (const StatsReportMsg::HistogramState& h : report.histograms) {
    telemetry::HistogramSnapshot snap;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    snap.buckets = h.buckets;
    o.merged.histograms[h.name] = std::move(snap);
  }
  o.have_stats = true;
}

void Coordinator::HandleFrozenReport(const FrozenReportMsg& report) {
  telemetry_.Count("cluster.frozen_reports_received", 1);
  if (report.incident_json.empty()) return;
  const auto [it, inserted] =
      frozen_reports_.emplace(report.worker_id, report.incident_json);
  (void)it;
  if (!inserted) return;
  report_.frozen_workers.push_back(report.worker_id);
  flight_recorder_.Note("frozen snapshot received from worker " +
                        std::to_string(report.worker_id));
}

void Coordinator::HandleAsyncFrame(uint32_t worker, const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHeartbeat: {
      auto hb = HeartbeatMsg::Decode(frame.payload);
      if (hb.ok()) HandleHeartbeat(*hb);
      break;
    }
    case MsgType::kPong: {
      auto pong = PongMsg::Decode(frame.payload);
      if (pong.ok()) HandlePong(worker, *pong);
      break;
    }
    case MsgType::kStatsReport: {
      auto report = StatsReportMsg::Decode(frame.payload);
      if (report.ok()) HandleStatsReport(*report);
      break;
    }
    case MsgType::kFrozenReport: {
      auto report = FrozenReportMsg::Decode(frame.payload);
      if (report.ok()) HandleFrozenReport(*report);
      break;
    }
    default:
      telemetry_.Count("cluster.unexpected_frames", 1);
      break;
  }
}

void Coordinator::BroadcastFreeze(uint64_t incident_id,
                                  const std::string& kind,
                                  const std::string& detail) {
  FreezeMsg freeze;
  freeze.incident_id = incident_id;
  freeze.kind = kind;
  freeze.detail = detail;
  const std::string payload = freeze.Encode();
  for (WorkerState& worker : workers_) {
    if (!worker.alive || !worker.conn_ok) continue;
    (void)worker.conn.Send(MsgType::kFreeze, payload);
  }
  telemetry_.Count("cluster.freezes_broadcast", 1);
}

void Coordinator::HandleWorkerFailure(uint32_t failed, double now) {
  WorkerState& worker = workers_[failed];
  const bool first_detection = worker.alive;
  if (first_detection) {
    worker.alive = false;
    worker.conn_ok = false;
    worker.conn.Close();
    telemetry_.Count("cluster.failures_detected", 1);
    size_t alive = 0;
    for (const WorkerState& w : workers_) alive += w.alive ? 1 : 0;
    telemetry_.SetGauge("cluster.workers_alive",
                        static_cast<double>(alive));
    std::lock_guard<std::mutex> lock(obs_mu_);
    if (failed < obs_.size()) obs_[failed].alive = false;
  }

  if (!report_.had_incident) {
    // The run's first incident: freeze pre-incident state and start the
    // engine-schema report. The true crash instant is unobservable from
    // outside the dead process; the last proof of life bounds it.
    report_.had_incident = true;
    report_.incident.crash_time = worker.last_heartbeat;
    report_.incident.failed_node = failed;
    const std::string detail = worker.name + " missed heartbeats for " +
                               std::to_string(options_.heartbeat_timeout) +
                               "s";
    flight_recorder_.BeginIncident("cluster.worker_failure", detail);
    // Order every survivor to freeze its own rings at (about) this same
    // aligned instant; their kFrozenReport replies land in the incident
    // report's worker_snapshots.
    BroadcastFreeze(++incident_id_, "cluster.worker_failure", detail);
  }
  if (report_.incident.failed_node == failed &&
      report_.incident.detect_time < 0.0) {
    report_.incident.detect_time = now;
    report_.phases.detect_seconds = now - report_.incident.crash_time;
  }
  flight_recorder_.Note("failure detected: worker " +
                        std::to_string(failed) + " (" + worker.name + ")");

  std::vector<bool> node_up;
  node_up.reserve(workers_.size());
  for (const WorkerState& w : workers_) node_up.push_back(w.alive);

  auto update =
      supervisor_->OnFailureDetected(now, failed, node_up, deployment_);
  if (!update.has_value()) {
    const double delay = supervisor_->RepairRetryDelay();
    if (delay > 0.0) {
      retry_at_ = now + delay;
      retry_node_ = failed;
      flight_recorder_.Note("repair failed; retrying in " +
                            std::to_string(delay) + "s");
    } else {
      flight_recorder_.Note("repair abandoned: " +
                            supervisor_->last_status().ToString());
    }
    return;
  }
  const Status applied = ExecutePlanDiff(*update, now);
  if (!applied.ok()) {
    flight_recorder_.Note("plan diff failed: " + applied.ToString());
    return;
  }
  if (report_.incident.failed_node == failed) {
    report_.incident.plan_applied_time = Now();
    report_.incident.recovered = true;
    report_.incident.recovery_time =
        report_.incident.plan_applied_time - report_.incident.crash_time;
  }
}

Status Coordinator::ExecutePlanDiff(const sim::PlanUpdate& update,
                                    double now) {
  (void)now;
  std::vector<OperatorMove> moves;
  for (size_t j = 0; j < update.assignment.size(); ++j) {
    if (j < assignment_.size() && update.assignment[j] != assignment_[j]) {
      moves.push_back({static_cast<uint32_t>(j),
                       static_cast<uint32_t>(assignment_[j]),
                       static_cast<uint32_t>(update.assignment[j])});
    }
  }
  if (moves.empty()) return Status::OK();
  ++plan_version_;
  ROD_TRACE_SPAN(&telemetry_, "cluster", "repair");

  // Pause -> drain -> reassign -> resume against every live worker.
  const double pause_begin = MonotonicSeconds();
  PauseMsg pause;
  pause.plan_version = plan_version_;
  for (const OperatorMove& move : moves) pause.ops.push_back(move.op);
  const std::string pause_payload = pause.Encode();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    ROD_RETURN_IF_ERROR(
        workers_[i].conn.Send(MsgType::kPause, pause_payload));
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    Frame frame;
    ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPauseAck, &frame));
  }
  const double drained = MonotonicSeconds();
  flight_recorder_.Note("paused " + std::to_string(moves.size()) +
                        " operators; drain confirmed");

  PlanDiffMsg diff;
  diff.version = plan_version_;
  diff.moves = moves;
  const std::string diff_payload = diff.Encode();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    ROD_RETURN_IF_ERROR(
        workers_[i].conn.Send(MsgType::kPlanDiff, diff_payload));
  }
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    Frame frame;
    ROD_RETURN_IF_ERROR(AwaitFrame(i, MsgType::kPlanAck, &frame));
    auto ack = PlanAckMsg::Decode(frame.payload);
    if (ack.ok()) workers_[i].plan_version = ack->version;
  }
  const double reassigned = MonotonicSeconds();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].alive || !workers_[i].conn_ok) continue;
    ROD_RETURN_IF_ERROR(workers_[i].conn.Send(MsgType::kResume, ""));
  }
  const double resumed = MonotonicSeconds();

  report_.phases.valid = true;
  report_.phases.pause_drain_seconds = drained - pause_begin;
  report_.phases.reassign_seconds = reassigned - drained;
  report_.phases.resume_seconds = resumed - reassigned;
  telemetry_.SetGauge("cluster.repair_pause_drain_seconds",
                      report_.phases.pause_drain_seconds);
  telemetry_.SetGauge("cluster.repair_reassign_seconds",
                      report_.phases.reassign_seconds);
  telemetry_.SetGauge("cluster.repair_resume_seconds",
                      report_.phases.resume_seconds);

  assignment_ = update.assignment;
  ROD_RETURN_IF_ERROR(
      sim::ReassignOperators(deployment_, assignment_).status());
  report_.plan_version = plan_version_;
  report_.incident.operators_moved += moves.size();
  telemetry_.Count("cluster.plan_diffs", 1);
  telemetry_.Count("cluster.operator_moves", moves.size());
  telemetry_.SetGauge("cluster.plan_version",
                      static_cast<double>(plan_version_));
  plan_version_pub_.store(plan_version_, std::memory_order_release);
  flight_recorder_.Note("plan v" + std::to_string(plan_version_) +
                        " live: " + std::to_string(moves.size()) +
                        " operators re-homed");
  return Status::OK();
}

Status Coordinator::AwaitFrame(uint32_t worker, MsgType want, Frame* out) {
  WorkerState& state = workers_[worker];
  for (;;) {
    const Status recv = state.conn.Recv(out);
    if (!recv.ok()) {
      state.conn_ok = false;
      state.conn.Close();
      return recv;
    }
    if (out->type == want) return Status::OK();
    // Workers heartbeat, pong, and report stats on their own cadence;
    // absorb anything that interleaves with the protocol step we are
    // waiting on.
    HandleAsyncFrame(worker, *out);
  }
}

Status Coordinator::Finish() {
  // Collect final stats from the survivors, then release them.
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    WorkerState& worker = workers_[i];
    if (!worker.alive || !worker.conn_ok) continue;
    if (!worker.conn.Send(MsgType::kFinish, "").ok()) continue;
    Frame frame;
    if (!AwaitFrame(i, MsgType::kFinalStats, &frame).ok()) continue;
    auto stats = FinalStatsMsg::Decode(frame.payload);
    if (!stats.ok()) continue;
    worker.counters = stats->counters;
    worker.have_final = true;
    telemetry_.Count("cluster.final_stats_collected", 1);
  }
  for (WorkerState& worker : workers_) {
    if (worker.alive && worker.conn_ok) {
      (void)worker.conn.Send(MsgType::kShutdown, "");
    }
    worker.conn.Close();
  }
  report_.run_seconds = Now();

  report_.totals = WorkerCounters{};
  report_.workers.clear();
  for (uint32_t i = 0; i < workers_.size(); ++i) {
    const WorkerState& worker = workers_[i];
    AddCounters(report_.totals, worker.counters);
    ClusterReport::WorkerSummary summary;
    summary.worker_id = i;
    summary.name = worker.name;
    summary.alive = worker.alive;
    summary.final_stats = worker.have_final;
    summary.counters = worker.counters;
    if (i < clock_sync_.size() && clock_sync_[i].has_estimate()) {
      summary.clock_synced = true;
      summary.clock_offset_us = clock_sync_[i].offset_us();
      summary.clock_rtt_us = clock_sync_[i].rtt_us();
    }
    report_.workers.push_back(std::move(summary));
  }

  // Cluster-wide inter-worker ship latency: every worker records its
  // offset-corrected receive-side histogram and federates it via
  // kStatsReport; merging the per-worker snapshots gives the cluster
  // distribution on the coordinator clock.
  telemetry::HistogramSnapshot ship;
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    for (const WorkerObs& o : obs_) {
      const auto it = o.merged.histograms.find("cluster.ship_latency_us");
      if (it != o.merged.histograms.end()) {
        telemetry::MergeHistogramInto(ship, it->second);
      }
    }
  }
  report_.ship_latency.count = ship.count;
  report_.ship_latency.mean_us = ship.mean();
  report_.ship_latency.p50_us = ship.Quantile(0.5);
  report_.ship_latency.p99_us = ship.Quantile(0.99);
  report_.ship_latency.max_us = ship.count > 0 ? ship.max : 0.0;
  std::sort(report_.frozen_workers.begin(), report_.frozen_workers.end());

  if (report_.had_incident) {
    // Loss breakdown, cluster flavor: ship failures toward a dead peer
    // are network loss (what the dead process held internally is not
    // observable from outside it, so lost_queued/lost_inflight stay 0).
    // Availability approximates the engine's accepted-fraction as
    // generated work net of losses over generated work.
    sim::IncidentReport& incident = report_.incident;
    incident.lost_network = report_.totals.lost_tuples;
    incident.lost_tuples = incident.lost_queued + incident.lost_inflight +
                           incident.lost_network +
                           incident.rejected_inputs;
    const double offered = static_cast<double>(report_.totals.generated);
    incident.availability =
        offered > 0.0
            ? std::clamp(1.0 - static_cast<double>(incident.lost_tuples) /
                                   offered,
                         0.0, 1.0)
            : 1.0;
    // The cluster-wide incident report: the engine-schema incident plus
    // the repair's per-phase durations and the survivors' frozen
    // flight-recorder snapshots (collected via kFreeze/kFrozenReport),
    // so one artifact holds every process's view of the failure.
    flight_recorder_.CompleteIncident([this](telemetry::JsonWriter& w) {
      w.BeginObjectInline();
      w.Key("incident");
      sim::WriteIncidentReportJson(report_.incident, w);
      w.Key("phases");
      WritePhasesJson(report_.phases, w);
      w.Key("worker_snapshots").BeginArray();
      for (const auto& [id, json] : frozen_reports_) {
        w.BeginObjectInline();
        w.Key("worker_id").Uint(id);
        w.Key("incident");
        w.Raw(json);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    });
  }
  return Status::OK();
}

void Coordinator::WriteReportJson(std::ostream& out) const {
  telemetry::JsonWriter w(out);
  w.BeginObject();
  w.Key("schema").String("rod.cluster_report.v1");
  w.Key("num_workers").Uint(report_.num_workers);
  w.Key("plan_version").Uint(report_.plan_version);
  w.Key("plan_ship_seconds").Double(report_.plan_ship_seconds);
  w.Key("run_seconds").Double(report_.run_seconds);
  w.Key("totals");
  WriteCountersJson(report_.totals, w);
  w.Key("workers").BeginArray();
  for (const ClusterReport::WorkerSummary& worker : report_.workers) {
    w.BeginObjectInline();
    w.Key("worker_id").Uint(worker.worker_id);
    w.Key("name").String(worker.name);
    w.Key("alive").Bool(worker.alive);
    w.Key("final_stats").Bool(worker.final_stats);
    w.Key("counters");
    WriteCountersJson(worker.counters, w);
    w.Key("clock").BeginObjectInline();
    w.Key("synced").Bool(worker.clock_synced);
    w.Key("offset_us").Double(worker.clock_offset_us);
    w.Key("rtt_us").Double(worker.clock_rtt_us);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("ship_latency");
  WriteShipLatencyJson(report_.ship_latency, w);
  w.Key("frozen_workers").BeginArray();
  for (uint32_t id : report_.frozen_workers) w.Uint(id);
  w.EndArray();
  if (report_.had_incident) {
    w.Key("incident");
    sim::WriteIncidentReportJson(report_.incident, w);
    w.Key("phases");
    WritePhasesJson(report_.phases, w);
  } else {
    w.Key("incident").Null();
    w.Key("phases").Null();
  }
  w.EndObject();
}

std::string Coordinator::RenderFederatedMetrics() const {
  // The coordinator's own registry unlabeled, then every worker's
  // last-reported registry labeled {worker, name}, with the coordinator-
  // side liveness/clock/skew view injected as gauges so the federated
  // plane is self-contained even for a worker that never reported stats.
  std::vector<telemetry::FederatedInstance> instances;
  instances.push_back({{}, telemetry_.Snapshot()});
  const uint64_t plan_pub = plan_version_pub_.load(std::memory_order_acquire);
  const double now_us = telemetry_.NowMicros();
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    for (size_t i = 0; i < obs_.size(); ++i) {
      const WorkerObs& o = obs_[i];
      telemetry::FederatedInstance inst;
      inst.labels["worker"] = std::to_string(i);
      inst.labels["name"] = o.name;
      inst.snapshot = o.merged;
      inst.snapshot.gauges["cluster.up"] = o.alive ? 1.0 : 0.0;
      inst.snapshot.gauges["cluster.plan_version_skew"] =
          static_cast<double>(plan_pub) - static_cast<double>(o.plan_version);
      if (o.last_seen_us >= 0.0) {
        inst.snapshot.gauges["cluster.heartbeat_age_seconds"] =
            (now_us - o.last_seen_us) / 1e6;
      }
      if (o.clock_synced) {
        inst.snapshot.gauges["cluster.clock_offset_us"] = o.clock_offset_us;
        inst.snapshot.gauges["cluster.rtt_us"] = o.clock_rtt_us;
      }
      instances.push_back(std::move(inst));
    }
  }
  std::ostringstream body;
  telemetry::WriteFederatedPrometheusText(instances, body);
  return body.str();
}

void Coordinator::WriteClusterSummaryJson(std::ostream& out) const {
  telemetry::JsonWriter w(out);
  const uint64_t plan_pub = plan_version_pub_.load(std::memory_order_acquire);
  const double now_us = telemetry_.NowMicros();
  w.BeginObject();
  w.Key("schema").String("rod.cluster_summary.v1");
  w.Key("ready").Bool(ready_.load(std::memory_order_acquire));
  w.Key("plan_version").Uint(plan_pub);
  w.Key("workers").BeginArray();
  {
    std::lock_guard<std::mutex> lock(obs_mu_);
    for (size_t i = 0; i < obs_.size(); ++i) {
      const WorkerObs& o = obs_[i];
      w.BeginObject();
      w.Key("worker_id").Uint(i);
      w.Key("name").String(o.name);
      w.Key("alive").Bool(o.alive);
      w.Key("http_port").Uint(o.http_port);
      w.Key("plan_version").Uint(o.plan_version);
      w.Key("plan_version_skew")
          .Int(static_cast<int64_t>(plan_pub) -
               static_cast<int64_t>(o.plan_version));
      w.Key("heartbeat_age_seconds");
      if (o.last_seen_us >= 0.0) {
        w.Double((now_us - o.last_seen_us) / 1e6);
      } else {
        w.Null();
      }
      w.Key("queue_depth").Uint(o.queue_depth);
      w.Key("clock").BeginObjectInline();
      w.Key("synced").Bool(o.clock_synced);
      w.Key("offset_us").Double(o.clock_offset_us);
      w.Key("rtt_us").Double(o.clock_rtt_us);
      w.EndObject();
      w.Key("counters");
      WriteCountersJson(o.counters, w);
      w.Key("loads").BeginArray();
      for (const HeartbeatMsg::OpLoad& load : o.loads) {
        w.BeginObjectInline();
        w.Key("op").Uint(load.op);
        w.Key("processed").Uint(load.processed);
        w.Key("busy_seconds").Double(load.busy_seconds);
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
}

void Coordinator::DumpTrace() const {
  std::ofstream out(options_.trace_path);
  if (!out) return;
  telemetry::ChromeTraceProcess process;
  process.pid = 1;  // Workers dump as pid worker_id + 2.
  process.name = "coordinator";
  process.metadata["clock_offset_us"] = 0.0;  // The reference clock.
  telemetry_.WriteChromeTrace(out, process);
}

void Coordinator::StartHttpPlane() {
  telemetry::Telemetry* tel = &telemetry_;
  telemetry::FlightRecorder* rec = &flight_recorder_;
  // `this` outlives http_: the destructor stops the server before any
  // member these handlers touch is destroyed.
  http_.Handle("/metrics", [this](std::string_view) {
    return telemetry::HttpServer::Response{
        200, telemetry::kPrometheusContentType, RenderFederatedMetrics()};
  });
  http_.Handle("/cluster.json", [this](std::string_view) {
    std::ostringstream body;
    WriteClusterSummaryJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/readyz", [this](std::string_view) {
    const bool ready = ready_.load(std::memory_order_acquire);
    return telemetry::HttpServer::Response{
        ready ? 200 : 503, "text/plain; charset=utf-8",
        ready ? "ok\n" : "starting\n"};
  });
  http_.Handle("/metrics.json", [tel](std::string_view) {
    std::ostringstream body;
    tel->WriteMetricsJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/flightrecorder", [rec](std::string_view) {
    std::ostringstream body;
    rec->WriteJson(body);
    return telemetry::HttpServer::Response{200, "application/json",
                                           body.str()};
  });
  http_.Handle("/healthz", [](std::string_view) {
    return telemetry::HttpServer::Response{200, "text/plain; charset=utf-8",
                                           "ok\n"};
  });
  std::string error;
  if (http_.Start(options_.http_port, &error)) {
    http_port_ = http_.port();
  }
}

}  // namespace rod::cluster
