// Copyright (c) the ROD reproduction authors.
//
// The cluster coordinator process: accepts worker registrations, runs ROD
// placement over the registered workers' advertised capacities, ships the
// serialized plan, starts the workload, monitors liveness off heartbeats,
// and — when a worker dies — drives the *existing* sim::Supervisor
// (behind its ControlAgent interface, exactly as the in-process engine
// does) to compute an incremental repair, then executes it as a plan-diff
// protocol against the survivors: pause the moved operators, collect
// drain acks, ship the diff, collect install acks, resume. The first
// failure of a run is captured as a sim::IncidentReport (detection delay,
// repair latency, loss breakdown) inside the coordinator's flight
// recorder, mirroring the simulated chaos pipeline with real processes.

#ifndef ROD_CLUSTER_COORDINATOR_H_
#define ROD_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/net.h"
#include "common/status.h"
#include "placement/rod.h"
#include "query/load_model.h"
#include "query/query_graph.h"
#include "runtime/deployment.h"
#include "runtime/engine.h"
#include "runtime/supervisor.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/http_server.h"
#include "telemetry/telemetry.h"

namespace rod::cluster {

struct CoordinatorOptions {
  /// Control port on 127.0.0.1 (0: ephemeral — see Coordinator::port()).
  uint16_t control_port = 0;

  /// Workers to wait for before planning (required, > 0).
  size_t expected_workers = 0;

  /// Give up if fewer than expected_workers register within this long.
  double register_timeout = 30.0;

  /// Per-protocol-step ack wait (plan ship, pause drain, diff install).
  double ack_timeout = 10.0;

  /// Liveness: workers heartbeat every `heartbeat_interval`; a worker
  /// whose last heartbeat is older than `heartbeat_timeout` is declared
  /// failed (this is the failure detector's detection delay).
  double heartbeat_interval = 0.25;
  double heartbeat_timeout = 1.0;

  /// Workload: seconds of source generation, emission granularity, base
  /// RNG seed, and per-input-stream rates (resized to the graph's input
  /// count, missing entries filled with `default_rate`).
  double duration = 2.0;
  double tick_seconds = 0.05;
  uint64_t seed = 1;
  std::vector<double> rates;
  double default_rate = 200.0;

  /// Extra wall time after generation ends before finish/shutdown, so
  /// in-flight batches drain.
  double finish_grace = 0.5;

  /// Initial placement knobs (ROD over the registered capacities).
  place::RodOptions rod;

  /// Repair knobs forwarded to the sim::Supervisor (detection_delay is
  /// overwritten with `heartbeat_timeout`; telemetry/flight_recorder are
  /// wired to the coordinator's own plane).
  sim::Supervisor::Options supervisor;

  /// Observability plane for the coordinator process itself.
  bool serve_http = false;
  uint16_t http_port = 0;
};

/// End-of-run summary: aggregate counters, the shipped plan's history,
/// and the first incident (when a worker died mid-run).
struct ClusterReport {
  size_t num_workers = 0;
  uint64_t plan_version = 0;

  /// First kPlan send to last kPlanAck received (seconds).
  double plan_ship_seconds = 0.0;

  /// kStart broadcast to final-stats collection (seconds).
  double run_seconds = 0.0;

  WorkerCounters totals;  ///< Sum over all workers (last known state
                          ///< for workers that died).
  struct WorkerSummary {
    uint32_t worker_id = 0;
    std::string name;
    bool alive = true;
    bool final_stats = false;  ///< Counters are end-of-run, not last HB.
    WorkerCounters counters;
  };
  std::vector<WorkerSummary> workers;

  bool had_incident = false;
  sim::IncidentReport incident;  ///< First worker failure, engine schema.
};

/// One coordinator lifetime: Listen() (optional, for tests that need the
/// port before spawning workers), then Run() through registration,
/// placement, the monitored run, and shutdown.
class Coordinator {
 public:
  Coordinator(query::QueryGraph graph, CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the control listener; port() is valid afterwards. Run() calls
  /// this implicitly when not already listening.
  Status Listen();
  uint16_t port() const { return listener_.port(); }

  /// Full lifecycle; returns after shutdown. The report survives Run().
  Status Run();

  /// Thread-safe: asks the run loop to wind down at the next poll tick.
  void RequestStop();

  const ClusterReport& report() const { return report_; }

  /// Writes the end-of-run report ({"schema": "rod.cluster_report.v1"}).
  void WriteReportJson(std::ostream& out) const;

  /// The coordinator's incident artifacts (CI uploads this).
  const telemetry::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }
  telemetry::Telemetry& telemetry() { return telemetry_; }
  uint16_t http_port() const { return http_port_; }

 private:
  struct WorkerState {
    FrameConn conn;
    uint16_t data_port = 0;
    uint16_t http_port = 0;
    double capacity = 1.0;
    std::string name;
    bool alive = true;
    bool conn_ok = true;        ///< Control channel still readable.
    double last_heartbeat = 0.0;
    uint64_t plan_version = 0;
    WorkerCounters counters;    ///< Latest heartbeat's block.
    bool have_final = false;
  };

  double Now() const;  ///< Seconds since kStart (0 before).

  Status AcceptRegistrations();
  Status BuildAndShipPlan();
  Status StartRun();
  Status MonitorLoop();
  void HandleHeartbeat(const HeartbeatMsg& hb);
  void HandleWorkerFailure(uint32_t failed, double now);
  Status ExecutePlanDiff(const sim::PlanUpdate& update, double now);
  /// Reads frames from `worker` until `want` (absorbing heartbeats);
  /// kUnavailable if the worker dies first.
  Status AwaitFrame(uint32_t worker, MsgType want, Frame* out);
  Status Finish();
  void StartHttpPlane();

  query::QueryGraph graph_;
  CoordinatorOptions options_;

  FrameListener listener_;
  net::SelfPipe stop_pipe_;
  std::vector<WorkerState> workers_;

  // Planning state.
  std::unique_ptr<query::LoadModel> model_;
  std::unique_ptr<sim::Supervisor> supervisor_;
  place::SystemSpec system_;
  sim::Deployment deployment_;
  std::vector<size_t> assignment_;
  std::vector<uint32_t> source_owner_;
  uint64_t plan_version_ = 0;

  // Run state.
  bool started_ = false;
  double run_epoch_ = 0.0;
  double retry_at_ = -1.0;      ///< Pending repair retry (run clock).
  uint32_t retry_node_ = 0;

  ClusterReport report_;

  // Observability plane.
  telemetry::Telemetry telemetry_;
  telemetry::FlightRecorder flight_recorder_{&telemetry_};
  telemetry::HttpServer http_;
  uint16_t http_port_ = 0;
};

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_COORDINATOR_H_
