// Copyright (c) the ROD reproduction authors.
//
// The cluster coordinator process: accepts worker registrations, runs ROD
// placement over the registered workers' advertised capacities, ships the
// serialized plan, starts the workload, monitors liveness off heartbeats,
// and — when a worker dies — drives the *existing* sim::Supervisor
// (behind its ControlAgent interface, exactly as the in-process engine
// does) to compute an incremental repair, then executes it as a plan-diff
// protocol against the survivors: pause the moved operators, collect
// drain acks, ship the diff, collect install acks, resume. The first
// failure of a run is captured as a sim::IncidentReport (detection delay,
// repair latency, loss breakdown) inside the coordinator's flight
// recorder, mirroring the simulated chaos pipeline with real processes.

#ifndef ROD_CLUSTER_COORDINATOR_H_
#define ROD_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "cluster/clock_sync.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "common/net.h"
#include "common/status.h"
#include "placement/rod.h"
#include "query/load_model.h"
#include "query/query_graph.h"
#include "runtime/deployment.h"
#include "runtime/engine.h"
#include "runtime/supervisor.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/http_server.h"
#include "telemetry/telemetry.h"

namespace rod::cluster {

struct CoordinatorOptions {
  /// Control port on 127.0.0.1 (0: ephemeral — see Coordinator::port()).
  uint16_t control_port = 0;

  /// Workers to wait for before planning (required, > 0).
  size_t expected_workers = 0;

  /// Give up if fewer than expected_workers register within this long.
  double register_timeout = 30.0;

  /// Per-protocol-step ack wait (plan ship, pause drain, diff install).
  double ack_timeout = 10.0;

  /// Liveness: workers heartbeat every `heartbeat_interval`; a worker
  /// whose last heartbeat is older than `heartbeat_timeout` is declared
  /// failed (this is the failure detector's detection delay).
  double heartbeat_interval = 0.25;
  double heartbeat_timeout = 1.0;

  /// Workload: seconds of source generation, emission granularity, base
  /// RNG seed, and per-input-stream rates (resized to the graph's input
  /// count, missing entries filled with `default_rate`).
  double duration = 2.0;
  double tick_seconds = 0.05;
  uint64_t seed = 1;
  std::vector<double> rates;
  double default_rate = 200.0;

  /// Extra wall time after generation ends before finish/shutdown, so
  /// in-flight batches drain.
  double finish_grace = 0.5;

  /// Initial placement knobs (ROD over the registered capacities).
  place::RodOptions rod;

  /// Repair knobs forwarded to the sim::Supervisor (detection_delay is
  /// overwritten with `heartbeat_timeout`; telemetry/flight_recorder are
  /// wired to the coordinator's own plane).
  sim::Supervisor::Options supervisor;

  /// Observability plane for the coordinator process itself.
  bool serve_http = false;
  uint16_t http_port = 0;

  /// Clock alignment: the coordinator probes every worker with
  /// `clock_sync_rounds` blocking kPing exchanges after the plan ships
  /// (so offsets exist from the first batch), then keeps re-probing
  /// every `clock_sync_interval` seconds during the run.
  size_t clock_sync_rounds = 4;
  double clock_sync_interval = 1.0;

  /// When set, the coordinator dumps its Chrome trace here at the end
  /// of Run() (pid 1, offset 0 — the reference clock rod_trace_merge
  /// rebases everything else onto).
  std::string trace_path;
};

/// End-of-run summary: aggregate counters, the shipped plan's history,
/// and the first incident (when a worker died mid-run).
struct ClusterReport {
  size_t num_workers = 0;
  uint64_t plan_version = 0;

  /// First kPlan send to last kPlanAck received (seconds).
  double plan_ship_seconds = 0.0;

  /// kStart broadcast to final-stats collection (seconds).
  double run_seconds = 0.0;

  WorkerCounters totals;  ///< Sum over all workers (last known state
                          ///< for workers that died).
  struct WorkerSummary {
    uint32_t worker_id = 0;
    std::string name;
    bool alive = true;
    bool final_stats = false;  ///< Counters are end-of-run, not last HB.
    WorkerCounters counters;
    /// Final clock estimate (worker + offset = coordinator clock).
    bool clock_synced = false;
    double clock_offset_us = 0.0;
    double clock_rtt_us = 0.0;
  };
  std::vector<WorkerSummary> workers;

  /// End-to-end inter-worker ship latency, merged over every worker's
  /// offset-corrected `cluster.ship_latency_us` histogram (federated
  /// via kStatsReport). Microseconds on the coordinator clock.
  struct ShipLatency {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };
  ShipLatency ship_latency;

  /// Per-phase durations of the incident's pause -> drain -> reassign ->
  /// resume repair (seconds; valid only after an incident's plan diff).
  struct IncidentPhases {
    bool valid = false;
    double detect_seconds = 0.0;       ///< Last proof of life -> detection.
    double pause_drain_seconds = 0.0;  ///< Pause sends -> last drain ack.
    double reassign_seconds = 0.0;     ///< Diff sends -> last install ack.
    double resume_seconds = 0.0;       ///< Resume broadcast duration.
  };
  IncidentPhases phases;

  /// Workers whose frozen flight-recorder snapshots (kFrozenReport)
  /// arrived before the end of the run.
  std::vector<uint32_t> frozen_workers;

  bool had_incident = false;
  sim::IncidentReport incident;  ///< First worker failure, engine schema.
};

/// One coordinator lifetime: Listen() (optional, for tests that need the
/// port before spawning workers), then Run() through registration,
/// placement, the monitored run, and shutdown.
class Coordinator {
 public:
  Coordinator(query::QueryGraph graph, CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds the control listener; port() is valid afterwards. Run() calls
  /// this implicitly when not already listening.
  Status Listen();
  uint16_t port() const { return listener_.port(); }

  /// Full lifecycle; returns after shutdown. The report survives Run().
  Status Run();

  /// Thread-safe: asks the run loop to wind down at the next poll tick.
  void RequestStop();

  const ClusterReport& report() const { return report_; }

  /// Writes the end-of-run report ({"schema": "rod.cluster_report.v1"}).
  void WriteReportJson(std::ostream& out) const;

  /// The coordinator's incident artifacts (CI uploads this).
  const telemetry::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }
  telemetry::Telemetry& telemetry() { return telemetry_; }
  uint16_t http_port() const { return http_port_; }

 private:
  struct WorkerState {
    FrameConn conn;
    uint16_t data_port = 0;
    uint16_t http_port = 0;
    double capacity = 1.0;
    std::string name;
    bool alive = true;
    bool conn_ok = true;        ///< Control channel still readable.
    double last_heartbeat = 0.0;
    uint64_t plan_version = 0;
    WorkerCounters counters;    ///< Latest heartbeat's block.
    bool have_final = false;
  };

  /// Everything the federated observability plane knows about one
  /// worker. Written by the control thread, read by the HTTP thread;
  /// guarded by obs_mu_ (the control path touches it briefly per
  /// heartbeat/stats frame, never while blocked on a socket).
  struct WorkerObs {
    std::string name;
    uint16_t http_port = 0;
    bool alive = true;
    uint64_t plan_version = 0;
    double last_seen_us = -1.0;  ///< Coordinator telemetry clock.
    size_t queue_depth = 0;
    WorkerCounters counters;
    std::vector<HeartbeatMsg::OpLoad> loads;
    /// Latest clock estimate (worker + offset = coordinator clock).
    bool clock_synced = false;
    double clock_offset_us = 0.0;
    double clock_rtt_us = 0.0;
    /// Merged kStatsReport deltas: the worker's metric registry as the
    /// coordinator last saw it (values are cumulative, so overwrite-
    /// merge per family reconstructs the full remote snapshot).
    telemetry::MetricsSnapshot merged;
    bool have_stats = false;
  };

  double Now() const;  ///< Seconds since kStart (0 before).

  Status AcceptRegistrations();
  Status BuildAndShipPlan();
  Status StartRun();
  Status MonitorLoop();
  void HandleHeartbeat(const HeartbeatMsg& hb);
  void HandleWorkerFailure(uint32_t failed, double now);
  Status ExecutePlanDiff(const sim::PlanUpdate& update, double now);
  /// Reads frames from `worker` until `want` (absorbing heartbeats,
  /// pongs, stats reports, and frozen reports via HandleAsyncFrame);
  /// kUnavailable if the worker dies first.
  Status AwaitFrame(uint32_t worker, MsgType want, Frame* out);
  Status Finish();
  void StartHttpPlane();

  /// Dispatches frames that may arrive at any point of the protocol
  /// (heartbeat / pong / stats report / frozen report); unknown types
  /// are counted and dropped.
  void HandleAsyncFrame(uint32_t worker, const Frame& frame);
  void HandlePong(uint32_t worker, const PongMsg& pong);
  void HandleStatsReport(const StatsReportMsg& report);
  void HandleFrozenReport(const FrozenReportMsg& report);

  /// Blocking initial alignment: `rounds` kPing/kPong exchanges per
  /// worker, then one kClockSync broadcast of the estimates.
  Status SyncClocks(size_t rounds);
  /// Non-blocking steady-state probes from MonitorLoop (pongs return
  /// through the poll loop); re-broadcasts estimates when they moved.
  void SendPings(double now);
  void BroadcastClockSync();
  /// Copies worker `i`'s estimator state into obs_ and the coordinator
  /// gauges (cluster.clock_offset_us.w<i> / cluster.rtt_us.w<i>).
  void PublishClockEstimate(uint32_t i);

  /// Orders every live worker to freeze its flight recorder at (about)
  /// the same aligned instant; replies arrive as kFrozenReport.
  void BroadcastFreeze(uint64_t incident_id, const std::string& kind,
                       const std::string& detail);

  /// Federated plane renderers (HTTP thread; lock obs_mu_ inside).
  std::string RenderFederatedMetrics() const;
  void WriteClusterSummaryJson(std::ostream& out) const;
  void DumpTrace() const;

  query::QueryGraph graph_;
  CoordinatorOptions options_;

  FrameListener listener_;
  net::SelfPipe stop_pipe_;
  std::vector<WorkerState> workers_;

  // Planning state.
  std::unique_ptr<query::LoadModel> model_;
  std::unique_ptr<sim::Supervisor> supervisor_;
  place::SystemSpec system_;
  sim::Deployment deployment_;
  std::vector<size_t> assignment_;
  std::vector<uint32_t> source_owner_;
  uint64_t plan_version_ = 0;

  // Run state.
  bool started_ = false;
  double run_epoch_ = 0.0;
  double retry_at_ = -1.0;      ///< Pending repair retry (run clock).
  uint32_t retry_node_ = 0;

  // Clock alignment state (control thread only).
  std::vector<ClockSyncEstimator> clock_sync_;
  uint64_t ping_seq_ = 0;
  double next_ping_ = 0.0;      ///< Run clock; 0 = ping immediately.
  bool clock_dirty_ = false;    ///< Estimates moved since last broadcast.

  // Distributed flight recorder state (control thread only).
  uint64_t incident_id_ = 0;    ///< Last broadcast freeze, 0 = none.
  std::map<uint32_t, std::string> frozen_reports_;  ///< worker -> JSON.

  ClusterReport report_;

  // Federated observability store (control thread writes, HTTP thread
  // reads; see WorkerObs).
  mutable std::mutex obs_mu_;
  std::vector<WorkerObs> obs_;
  std::atomic<uint64_t> plan_version_pub_{0};  ///< For the HTTP thread.
  std::atomic<bool> ready_{false};  ///< Plan shipped (gates /readyz).

  // Observability plane.
  telemetry::Telemetry telemetry_;
  telemetry::FlightRecorder flight_recorder_{&telemetry_};
  telemetry::HttpServer http_;
  uint16_t http_port_ = 0;
  FrameMetrics frame_metrics_{&telemetry_};
};

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_COORDINATOR_H_
