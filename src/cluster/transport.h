// Copyright (c) the ROD reproduction authors.
//
// Connection-level transport for the cluster: a move-only framed TCP
// connection (FrameConn) and a listener (FrameListener), grown from the
// dependency-free socket layer shared with the telemetry HTTP server
// (common/net). Blocking I/O with per-socket timeouts; the worker and
// coordinator event loops multiplex connections with poll() over the
// exposed fds and only call Recv() on a readable connection, so the
// blocking reads never stall the loop beyond one frame.

#ifndef ROD_CLUSTER_TRANSPORT_H_
#define ROD_CLUSTER_TRANSPORT_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <utility>

#include "cluster/frame.h"
#include "common/status.h"
#include "telemetry/telemetry.h"

namespace rod::cluster {

/// Per-frame-type traffic counters: four families per message type
/// (frames and bytes, each direction), all registered at zero so the
/// full protocol surface is visible on /metrics before any traffic
/// flows. One instance is shared by every FrameConn of a process (the
/// counters are thread-safe); bytes include the 20-byte frame header.
class FrameMetrics {
 public:
  FrameMetrics() = default;

  /// Registers all families ("cluster.frame.tx.<type>", ".tx_bytes.",
  /// ".rx.", ".rx_bytes.") in `telemetry`'s registry at zero.
  explicit FrameMetrics(telemetry::Telemetry* telemetry);

  void RecordTx(MsgType type, size_t frame_bytes) const;
  void RecordRx(MsgType type, size_t frame_bytes) const;

 private:
  struct PerType {
    telemetry::Counter tx;
    telemetry::Counter tx_bytes;
    telemetry::Counter rx;
    telemetry::Counter rx_bytes;
  };

  /// Indexed by raw MsgType byte; slot 0 unused.
  std::array<PerType, kMaxMsgType + 1> per_type_{};
};

/// A connected, framed, blocking TCP stream. Owns the fd.
class FrameConn {
 public:
  FrameConn() = default;
  /// Takes ownership of a connected `fd`.
  explicit FrameConn(int fd) : fd_(fd) {}
  ~FrameConn() { Close(); }

  FrameConn(FrameConn&& other) noexcept
      : fd_(other.fd_), metrics_(other.metrics_) {
    other.fd_ = -1;
    other.metrics_ = nullptr;
  }
  FrameConn& operator=(FrameConn&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      metrics_ = other.metrics_;
      other.fd_ = -1;
      other.metrics_ = nullptr;
    }
    return *this;
  }
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  /// Connects to 127.0.0.1:`port`. `timeout_seconds` > 0 arms both socket
  /// timeouts so a wedged peer surfaces as kUnavailable instead of a
  /// hang. Returns kUnavailable when the peer refuses.
  static Result<FrameConn> DialLoopback(uint16_t port,
                                        double timeout_seconds = 0.0);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Attaches per-frame-type traffic counters; `metrics` must outlive
  /// this connection (nullptr detaches).
  void set_metrics(const FrameMetrics* metrics) { metrics_ = metrics; }

  /// Writes one frame; kUnavailable when the peer is gone.
  Status Send(MsgType type, std::string_view payload) const {
    if (!valid()) return Status::FailedPrecondition("connection closed");
    Status s = WriteFrame(fd_, type, payload);
    if (s.ok() && metrics_ != nullptr) {
      metrics_->RecordTx(type, kFrameHeaderBytes + payload.size());
    }
    return s;
  }

  /// Reads one frame (blocking up to the socket timeout). Error codes as
  /// ReadFrame; on any error the connection should be Closed.
  Status Recv(Frame* out) const {
    if (!valid()) return Status::FailedPrecondition("connection closed");
    Status s = ReadFrame(fd_, out);
    if (s.ok() && metrics_ != nullptr) {
      metrics_->RecordRx(out->type, kFrameHeaderBytes + out->payload.size());
    }
    return s;
  }

  void Close();

 private:
  int fd_ = -1;
  const FrameMetrics* metrics_ = nullptr;
};

/// A loopback TCP listener producing FrameConns.
class FrameListener {
 public:
  FrameListener() = default;
  ~FrameListener() { Close(); }

  FrameListener(FrameListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_), metrics_(other.metrics_) {
    other.fd_ = -1;
    other.port_ = 0;
    other.metrics_ = nullptr;
  }
  FrameListener& operator=(FrameListener&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      port_ = other.port_;
      metrics_ = other.metrics_;
      other.fd_ = -1;
      other.port_ = 0;
      other.metrics_ = nullptr;
    }
    return *this;
  }
  FrameListener(const FrameListener&) = delete;
  FrameListener& operator=(const FrameListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0: ephemeral, see port()).
  Status Listen(uint16_t port);

  /// Accepts one connection (blocking; poll the fd first in event loops).
  /// `timeout_seconds` > 0 arms the accepted socket's timeouts.
  Result<FrameConn> Accept(double timeout_seconds = 0.0) const;

  bool listening() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

  /// Traffic counters stamped onto every subsequently accepted
  /// connection; `metrics` must outlive them (nullptr detaches).
  void set_metrics(const FrameMetrics* metrics) { metrics_ = metrics; }

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  const FrameMetrics* metrics_ = nullptr;
};

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_TRANSPORT_H_
