#include "cluster/transport.h"

#include <string>

#include "common/net.h"

namespace rod::cluster {

Result<FrameConn> FrameConn::DialLoopback(uint16_t port,
                                          double timeout_seconds) {
  std::string error;
  const int fd = net::ConnectLoopback(port, &error);
  if (fd < 0) {
    return Status::Unavailable("dial 127.0.0.1:" + std::to_string(port) +
                               ": " + error);
  }
  if (timeout_seconds > 0.0) net::SetSocketTimeouts(fd, timeout_seconds);
  return FrameConn(fd);
}

void FrameConn::Close() { net::CloseFd(&fd_); }

Status FrameListener::Listen(uint16_t port) {
  if (listening()) return Status::FailedPrecondition("already listening");
  std::string error;
  fd_ = net::ListenLoopback(port, &error);
  if (fd_ < 0) {
    return Status::Unavailable("listen 127.0.0.1:" + std::to_string(port) +
                               ": " + error);
  }
  port_ = net::BoundPort(fd_);
  return Status::OK();
}

Result<FrameConn> FrameListener::Accept(double timeout_seconds) const {
  if (!listening()) return Status::FailedPrecondition("not listening");
  const int client = net::AcceptConnection(fd_);
  if (client < 0) return Status::Unavailable("accept failed");
  if (timeout_seconds > 0.0) net::SetSocketTimeouts(client, timeout_seconds);
  return FrameConn(client);
}

void FrameListener::Close() {
  net::CloseFd(&fd_);
  port_ = 0;
}

}  // namespace rod::cluster
