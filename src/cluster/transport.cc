#include "cluster/transport.h"

#include <string>

#include "common/net.h"

namespace rod::cluster {

FrameMetrics::FrameMetrics(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) return;
  for (uint8_t t = 1; t <= kMaxMsgType; ++t) {
    const char* name = MsgTypeName(static_cast<MsgType>(t));
    const std::string base = std::string("cluster.frame.");
    per_type_[t].tx = telemetry->counter(base + "tx." + name);
    per_type_[t].tx_bytes = telemetry->counter(base + "tx_bytes." + name);
    per_type_[t].rx = telemetry->counter(base + "rx." + name);
    per_type_[t].rx_bytes = telemetry->counter(base + "rx_bytes." + name);
  }
}

void FrameMetrics::RecordTx(MsgType type, size_t frame_bytes) const {
  const uint8_t t = static_cast<uint8_t>(type);
  if (t == 0 || t > kMaxMsgType) return;
  telemetry::Counter frames = per_type_[t].tx;
  telemetry::Counter bytes = per_type_[t].tx_bytes;
  frames.Add(1);
  bytes.Add(frame_bytes);
}

void FrameMetrics::RecordRx(MsgType type, size_t frame_bytes) const {
  const uint8_t t = static_cast<uint8_t>(type);
  if (t == 0 || t > kMaxMsgType) return;
  telemetry::Counter frames = per_type_[t].rx;
  telemetry::Counter bytes = per_type_[t].rx_bytes;
  frames.Add(1);
  bytes.Add(frame_bytes);
}

Result<FrameConn> FrameConn::DialLoopback(uint16_t port,
                                          double timeout_seconds) {
  std::string error;
  const int fd = net::ConnectLoopback(port, &error);
  if (fd < 0) {
    return Status::Unavailable("dial 127.0.0.1:" + std::to_string(port) +
                               ": " + error);
  }
  if (timeout_seconds > 0.0) net::SetSocketTimeouts(fd, timeout_seconds);
  return FrameConn(fd);
}

void FrameConn::Close() { net::CloseFd(&fd_); }

Status FrameListener::Listen(uint16_t port) {
  if (listening()) return Status::FailedPrecondition("already listening");
  std::string error;
  fd_ = net::ListenLoopback(port, &error);
  if (fd_ < 0) {
    return Status::Unavailable("listen 127.0.0.1:" + std::to_string(port) +
                               ": " + error);
  }
  port_ = net::BoundPort(fd_);
  return Status::OK();
}

Result<FrameConn> FrameListener::Accept(double timeout_seconds) const {
  if (!listening()) return Status::FailedPrecondition("not listening");
  const int client = net::AcceptConnection(fd_);
  if (client < 0) return Status::Unavailable("accept failed");
  if (timeout_seconds > 0.0) net::SetSocketTimeouts(client, timeout_seconds);
  FrameConn conn(client);
  conn.set_metrics(metrics_);
  return conn;
}

void FrameListener::Close() {
  net::CloseFd(&fd_);
  port_ = 0;
}

}  // namespace rod::cluster
