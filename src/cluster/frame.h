// Copyright (c) the ROD reproduction authors.
//
// The cluster wire format's framing layer: every message between cluster
// processes (worker <-> coordinator control, worker <-> worker tuple
// shipping) travels as one length-prefixed frame with a CRC'd fixed-size
// header and a CRC'd payload, so a half-written frame, a corrupted byte,
// or a protocol-version skew is detected at the receiver and mapped to a
// distinct Status code instead of silently desynchronizing the stream.
//
// Frame layout (all integers little-endian, matching the trace store):
//
//   offset  size  field
//        0     4  magic "RODC" (0x43444F52 as LE u32 of the bytes)
//        4     1  version (kFrameVersion)
//        5     1  message type (MsgType)
//        6     2  flags (reserved, written 0, ignored on read)
//        8     4  payload length in bytes
//       12     4  CRC-32 of the payload bytes
//       16     4  CRC-32 of header bytes [0, 16)
//
// Error mapping (see common/status.h):
//   kUnavailable      peer gone: EOF, reset, or timeout mid-frame
//   kInvalidArgument  bad magic / unsupported version / unknown type /
//                     payload length over the cap (protocol skew)
//   kDataLoss         header or payload CRC mismatch (corruption)

#ifndef ROD_CLUSTER_FRAME_H_
#define ROD_CLUSTER_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rod::cluster {

/// Every message type spoken by the cluster protocol, one byte on the
/// wire. Control-plane types flow worker <-> coordinator; kTuples flows
/// worker <-> worker on the data plane.
enum class MsgType : uint8_t {
  kHello = 1,      ///< worker -> coordinator: registration.
  kWelcome = 2,    ///< coordinator -> worker: assigned worker id + timing.
  kPlan = 3,       ///< coordinator -> worker: full deployment plan.
  kPlanAck = 4,    ///< worker -> coordinator: plan installed.
  kStart = 5,      ///< coordinator -> worker: begin the workload.
  kHeartbeat = 6,  ///< worker -> coordinator: liveness + load report.
  kTuples = 7,     ///< worker -> worker: one tuple batch for an operator.
  kPause = 8,      ///< coordinator -> worker: pause moved operators.
  kPauseAck = 9,   ///< worker -> coordinator: paused and drained.
  kPlanDiff = 10,  ///< coordinator -> worker: operator moves to apply.
  kResume = 11,    ///< coordinator -> worker: resume after a plan diff.
  kFinish = 12,    ///< coordinator -> worker: stop sources, drain, report.
  kFinalStats = 13,///< worker -> coordinator: end-of-run counters.
  kShutdown = 14,  ///< coordinator -> worker: exit.
  kPing = 15,      ///< coordinator -> worker: clock-sync probe (t1).
  kPong = 16,      ///< worker -> coordinator: probe echo (t1, t2, t3).
  kStatsReport = 17,  ///< worker -> coordinator: metric-snapshot delta.
  kClockSync = 18,    ///< coordinator -> worker: per-worker clock offsets.
  kFreeze = 19,       ///< coordinator -> worker: snapshot your rings now.
  kFrozenReport = 20, ///< worker -> coordinator: frozen incident artifact.
};

/// Last valid MsgType byte (frame decoding rejects anything above it).
inline constexpr uint8_t kMaxMsgType =
    static_cast<uint8_t>(MsgType::kFrozenReport);

/// Canonical lower-case name of `type` ("hello", "tuples", ...);
/// "unknown" for out-of-range bytes.
const char* MsgTypeName(MsgType type);

inline constexpr uint32_t kFrameMagic = 0x43444F52u;  // "RODC" (LE bytes).
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;

/// Default cap on one frame's payload. Control messages are tiny; the
/// largest legitimate frame is a shipped plan or tuple batch, both well
/// under a mebibyte. The cap bounds the receiver's allocation when a
/// corrupt or hostile length field slips past the magic check.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;

/// A decoded frame header.
struct FrameHeader {
  MsgType type = MsgType::kHello;
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
};

/// One received message.
struct Frame {
  MsgType type = MsgType::kHello;
  std::string payload;
};

/// Encodes a complete frame (header + payload) ready to write.
std::string EncodeFrame(MsgType type, std::string_view payload);

/// Decodes and validates the 20-byte header in `bytes` (which must be at
/// least kFrameHeaderBytes long). `max_payload` caps the accepted length.
Result<FrameHeader> DecodeFrameHeader(std::span<const std::byte> bytes,
                                      uint32_t max_payload = kMaxFramePayload);

/// Verifies `payload` against the header's length and CRC.
Status ValidateFramePayload(const FrameHeader& header,
                            std::string_view payload);

/// Writes one frame to `fd` (blocking, retrying short writes). Returns
/// kUnavailable when the peer is gone.
Status WriteFrame(int fd, MsgType type, std::string_view payload);

/// Reads one frame from `fd` (blocking). Returns kUnavailable on EOF /
/// reset / timeout, kInvalidArgument on protocol skew, kDataLoss on CRC
/// mismatch; on any error the stream position is unspecified and the
/// connection should be dropped.
Status ReadFrame(int fd, Frame* out,
                 uint32_t max_payload = kMaxFramePayload);

}  // namespace rod::cluster

#endif  // ROD_CLUSTER_FRAME_H_
