#include "cluster/wire.h"

#include <bit>
#include <cstring>

namespace rod::cluster {

namespace {

/// Per-message cap on repeated-field counts: far above any legitimate
/// cluster (the simulator's biggest graphs are a few hundred operators)
/// and small enough that a corrupt count cannot drive a giant resize.
constexpr uint32_t kMaxWireCount = 1u << 20;

Status FinishDecode(const WireReader& r, const char* what) {
  if (!r.ok()) return r.status();
  if (!r.AtEnd()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": trailing bytes after payload");
  }
  return Status::OK();
}

}  // namespace

void WireWriter::AppendLe(uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

uint8_t WireReader::U8() {
  if (failed_ || pos_ + 1 > in_.size()) {
    failed_ = true;
    return 0;
  }
  return static_cast<uint8_t>(in_[pos_++]);
}

uint64_t WireReader::ReadLe(int bytes) {
  if (failed_ || pos_ + static_cast<size_t>(bytes) > in_.size()) {
    failed_ = true;
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in_[pos_ + i]))
         << (8 * i);
  }
  pos_ += static_cast<size_t>(bytes);
  return v;
}

double WireReader::F64() { return std::bit_cast<double>(U64()); }

std::string WireReader::Str() {
  const uint32_t len = U32();
  if (failed_ || len > kMaxWireCount || pos_ + len > in_.size()) {
    failed_ = true;
    return {};
  }
  std::string s(in_.substr(pos_, len));
  pos_ += len;
  return s;
}

Status WireReader::status() const {
  if (!failed_) return Status::OK();
  return Status::InvalidArgument("payload truncated or field out of bounds");
}

// ---------------------------------------------------------------------------

std::string HelloMsg::Encode() const {
  WireWriter w;
  w.U16(data_port);
  w.U16(http_port);
  w.F64(capacity);
  w.Str(name);
  return w.Take();
}

Result<HelloMsg> HelloMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  HelloMsg m;
  m.data_port = r.U16();
  m.http_port = r.U16();
  m.capacity = r.F64();
  m.name = r.Str();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "hello"));
  return m;
}

std::string WelcomeMsg::Encode() const {
  WireWriter w;
  w.U32(worker_id);
  w.U32(num_workers);
  w.F64(heartbeat_interval);
  w.F64(heartbeat_timeout);
  return w.Take();
}

Result<WelcomeMsg> WelcomeMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  WelcomeMsg m;
  m.worker_id = r.U32();
  m.num_workers = r.U32();
  m.heartbeat_interval = r.F64();
  m.heartbeat_timeout = r.F64();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "welcome"));
  return m;
}

void EncodeQueryGraph(const query::QueryGraph& graph, WireWriter& w) {
  w.U32(static_cast<uint32_t>(graph.num_input_streams()));
  for (size_t k = 0; k < graph.num_input_streams(); ++k) {
    w.Str(graph.input_name(k));
  }
  w.U32(static_cast<uint32_t>(graph.num_operators()));
  for (size_t j = 0; j < graph.num_operators(); ++j) {
    const query::OperatorSpec& spec = graph.spec(j);
    w.Str(spec.name);
    w.U8(static_cast<uint8_t>(spec.kind));
    w.F64(spec.cost);
    w.F64(spec.selectivity);
    w.F64(spec.window);
    w.Bool(spec.variable_selectivity);
    w.F64(spec.qos_weight);
    const auto& arcs = graph.inputs_of(j);
    w.U32(static_cast<uint32_t>(arcs.size()));
    for (const query::Arc& arc : arcs) {
      w.U8(arc.from.kind == query::StreamRef::Kind::kInput ? 0 : 1);
      w.U32(static_cast<uint32_t>(arc.from.index));
      w.F64(arc.comm_cost);
    }
  }
}

Result<query::QueryGraph> DecodeQueryGraph(WireReader& r) {
  query::QueryGraph graph;
  const uint32_t num_inputs = r.U32();
  if (!r.ok() || num_inputs > kMaxWireCount) {
    return Status::InvalidArgument("graph: bad input-stream count");
  }
  for (uint32_t k = 0; k < num_inputs; ++k) {
    graph.AddInputStream(r.Str());
    if (!r.ok()) return r.status();
  }
  const uint32_t num_ops = r.U32();
  if (!r.ok() || num_ops > kMaxWireCount) {
    return Status::InvalidArgument("graph: bad operator count");
  }
  for (uint32_t j = 0; j < num_ops; ++j) {
    query::OperatorSpec spec;
    spec.name = r.Str();
    const uint8_t kind = r.U8();
    if (kind > static_cast<uint8_t>(query::OperatorKind::kJoin)) {
      return Status::InvalidArgument("graph: unknown operator kind");
    }
    spec.kind = static_cast<query::OperatorKind>(kind);
    spec.cost = r.F64();
    spec.selectivity = r.F64();
    spec.window = r.F64();
    spec.variable_selectivity = r.Bool();
    spec.qos_weight = r.F64();
    const uint32_t num_arcs = r.U32();
    if (!r.ok() || num_arcs > kMaxWireCount) {
      return Status::InvalidArgument("graph: bad arc count");
    }
    std::vector<query::StreamRef> inputs;
    std::vector<double> comm_costs;
    inputs.reserve(num_arcs);
    comm_costs.reserve(num_arcs);
    for (uint32_t a = 0; a < num_arcs; ++a) {
      const uint8_t ref_kind = r.U8();
      const uint32_t index = r.U32();
      const double comm = r.F64();
      inputs.push_back(ref_kind == 0
                           ? query::StreamRef::Input(index)
                           : query::StreamRef::Op(index));
      comm_costs.push_back(comm);
    }
    if (!r.ok()) return r.status();
    auto added = graph.AddOperator(spec, inputs, comm_costs);
    if (!added.ok()) return added.status();
  }
  return graph;
}

std::string PlanMsg::Encode() const {
  WireWriter w;
  w.U64(version);
  EncodeQueryGraph(graph, w);
  w.U32(static_cast<uint32_t>(assignment.size()));
  for (uint32_t node : assignment) w.U32(node);
  w.U32(static_cast<uint32_t>(capacities.size()));
  for (double c : capacities) w.F64(c);
  w.U32(static_cast<uint32_t>(endpoints.size()));
  for (const WorkerEndpoint& e : endpoints) {
    w.U32(e.worker_id);
    w.U16(e.data_port);
  }
  w.U32(static_cast<uint32_t>(source_owner.size()));
  for (uint32_t owner : source_owner) w.U32(owner);
  return w.Take();
}

Result<PlanMsg> PlanMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  PlanMsg m;
  m.version = r.U64();
  auto graph = DecodeQueryGraph(r);
  if (!graph.ok()) return graph.status();
  m.graph = std::move(graph.value());
  const uint32_t num_assign = r.U32();
  if (!r.ok() || num_assign > kMaxWireCount) {
    return Status::InvalidArgument("plan: bad assignment count");
  }
  m.assignment.resize(num_assign);
  for (uint32_t& node : m.assignment) node = r.U32();
  const uint32_t num_caps = r.U32();
  if (!r.ok() || num_caps > kMaxWireCount) {
    return Status::InvalidArgument("plan: bad capacity count");
  }
  m.capacities.resize(num_caps);
  for (double& c : m.capacities) c = r.F64();
  const uint32_t num_eps = r.U32();
  if (!r.ok() || num_eps > kMaxWireCount) {
    return Status::InvalidArgument("plan: bad endpoint count");
  }
  m.endpoints.resize(num_eps);
  for (WorkerEndpoint& e : m.endpoints) {
    e.worker_id = r.U32();
    e.data_port = r.U16();
  }
  const uint32_t num_sources = r.U32();
  if (!r.ok() || num_sources > kMaxWireCount) {
    return Status::InvalidArgument("plan: bad source-owner count");
  }
  m.source_owner.resize(num_sources);
  for (uint32_t& owner : m.source_owner) owner = r.U32();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "plan"));
  if (m.assignment.size() != m.graph.num_operators()) {
    return Status::InvalidArgument("plan: assignment size != operators");
  }
  if (m.source_owner.size() != m.graph.num_input_streams()) {
    return Status::InvalidArgument("plan: source owners != input streams");
  }
  return m;
}

std::string PlanAckMsg::Encode() const {
  WireWriter w;
  w.U64(version);
  w.U32(worker_id);
  return w.Take();
}

Result<PlanAckMsg> PlanAckMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  PlanAckMsg m;
  m.version = r.U64();
  m.worker_id = r.U32();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "plan_ack"));
  return m;
}

std::string StartMsg::Encode() const {
  WireWriter w;
  w.F64(duration);
  w.F64(tick_seconds);
  w.U64(seed);
  w.U32(static_cast<uint32_t>(rates.size()));
  for (double rate : rates) w.F64(rate);
  return w.Take();
}

Result<StartMsg> StartMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  StartMsg m;
  m.duration = r.F64();
  m.tick_seconds = r.F64();
  m.seed = r.U64();
  const uint32_t num_rates = r.U32();
  if (!r.ok() || num_rates > kMaxWireCount) {
    return Status::InvalidArgument("start: bad rate count");
  }
  m.rates.resize(num_rates);
  for (double& rate : m.rates) rate = r.F64();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "start"));
  return m;
}

void WorkerCounters::EncodeInto(WireWriter& w) const {
  w.U64(generated);
  w.U64(processed);
  w.U64(emitted);
  w.U64(delivered);
  w.U64(shipped);
  w.U64(received);
  w.U64(ship_failures);
  w.U64(lost_tuples);
  w.U64(paused_buffered);
  w.F64(busy_seconds);
  w.F64(latency_sum);
  w.F64(latency_max);
  w.U64(latency_count);
}

WorkerCounters WorkerCounters::DecodeFrom(WireReader& r) {
  WorkerCounters c;
  c.generated = r.U64();
  c.processed = r.U64();
  c.emitted = r.U64();
  c.delivered = r.U64();
  c.shipped = r.U64();
  c.received = r.U64();
  c.ship_failures = r.U64();
  c.lost_tuples = r.U64();
  c.paused_buffered = r.U64();
  c.busy_seconds = r.F64();
  c.latency_sum = r.F64();
  c.latency_max = r.F64();
  c.latency_count = r.U64();
  return c;
}

std::string HeartbeatMsg::Encode() const {
  WireWriter w;
  w.U32(worker_id);
  w.U64(seq);
  w.F64(uptime_seconds);
  w.U64(plan_version);
  w.U64(static_cast<uint64_t>(queue_depth));
  counters.EncodeInto(w);
  w.U32(static_cast<uint32_t>(loads.size()));
  for (const OpLoad& load : loads) {
    w.U32(load.op);
    w.U64(load.processed);
    w.F64(load.busy_seconds);
  }
  return w.Take();
}

Result<HeartbeatMsg> HeartbeatMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  HeartbeatMsg m;
  m.worker_id = r.U32();
  m.seq = r.U64();
  m.uptime_seconds = r.F64();
  m.plan_version = r.U64();
  m.queue_depth = static_cast<size_t>(r.U64());
  m.counters = WorkerCounters::DecodeFrom(r);
  const uint32_t num_loads = r.U32();
  if (!r.ok() || num_loads > kMaxWireCount) {
    return Status::InvalidArgument("heartbeat: bad load count");
  }
  m.loads.resize(num_loads);
  for (OpLoad& load : m.loads) {
    load.op = r.U32();
    load.processed = r.U64();
    load.busy_seconds = r.F64();
  }
  ROD_RETURN_IF_ERROR(FinishDecode(r, "heartbeat"));
  return m;
}

std::string TupleBatchMsg::Encode() const {
  WireWriter w;
  w.U32(to_op);
  w.U32(to_port);
  w.U32(count);
  w.U32(from_worker);
  w.F64(create_time);
  w.F64(send_time_us);
  return w.Take();
}

Result<TupleBatchMsg> TupleBatchMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  TupleBatchMsg m;
  m.to_op = r.U32();
  m.to_port = r.U32();
  m.count = r.U32();
  m.from_worker = r.U32();
  m.create_time = r.F64();
  m.send_time_us = r.F64();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "tuples"));
  return m;
}

std::string PauseMsg::Encode() const {
  WireWriter w;
  w.U64(plan_version);
  w.U32(static_cast<uint32_t>(ops.size()));
  for (uint32_t op : ops) w.U32(op);
  return w.Take();
}

Result<PauseMsg> PauseMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  PauseMsg m;
  m.plan_version = r.U64();
  const uint32_t num_ops = r.U32();
  if (!r.ok() || num_ops > kMaxWireCount) {
    return Status::InvalidArgument("pause: bad op count");
  }
  m.ops.resize(num_ops);
  for (uint32_t& op : m.ops) op = r.U32();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "pause"));
  return m;
}

std::string PlanDiffMsg::Encode() const {
  WireWriter w;
  w.U64(version);
  w.U32(static_cast<uint32_t>(moves.size()));
  for (const OperatorMove& move : moves) {
    w.U32(move.op);
    w.U32(move.from_worker);
    w.U32(move.to_worker);
  }
  return w.Take();
}

Result<PlanDiffMsg> PlanDiffMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  PlanDiffMsg m;
  m.version = r.U64();
  const uint32_t num_moves = r.U32();
  if (!r.ok() || num_moves > kMaxWireCount) {
    return Status::InvalidArgument("plan_diff: bad move count");
  }
  m.moves.resize(num_moves);
  for (OperatorMove& move : m.moves) {
    move.op = r.U32();
    move.from_worker = r.U32();
    move.to_worker = r.U32();
  }
  ROD_RETURN_IF_ERROR(FinishDecode(r, "plan_diff"));
  return m;
}

std::string PingMsg::Encode() const {
  WireWriter w;
  w.U64(seq);
  w.F64(t1_us);
  return w.Take();
}

Result<PingMsg> PingMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  PingMsg m;
  m.seq = r.U64();
  m.t1_us = r.F64();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "ping"));
  return m;
}

std::string PongMsg::Encode() const {
  WireWriter w;
  w.U64(seq);
  w.U32(worker_id);
  w.F64(t1_us);
  w.F64(t2_us);
  w.F64(t3_us);
  return w.Take();
}

Result<PongMsg> PongMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  PongMsg m;
  m.seq = r.U64();
  m.worker_id = r.U32();
  m.t1_us = r.F64();
  m.t2_us = r.F64();
  m.t3_us = r.F64();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "pong"));
  return m;
}

std::string StatsReportMsg::Encode() const {
  WireWriter w;
  w.U32(worker_id);
  w.U32(static_cast<uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    w.Str(name);
    w.U64(value);
  }
  w.U32(static_cast<uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    w.Str(name);
    w.F64(value);
  }
  w.U32(static_cast<uint32_t>(histograms.size()));
  for (const HistogramState& h : histograms) {
    w.Str(h.name);
    w.U64(h.count);
    w.F64(h.sum);
    w.F64(h.min);
    w.F64(h.max);
    w.U32(static_cast<uint32_t>(h.buckets.size()));
    for (const auto& [bound, n] : h.buckets) {
      w.F64(bound);
      w.U64(n);
    }
  }
  return w.Take();
}

Result<StatsReportMsg> StatsReportMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  StatsReportMsg m;
  m.worker_id = r.U32();
  const uint32_t num_counters = r.U32();
  if (!r.ok() || num_counters > kMaxWireCount) {
    return Status::InvalidArgument("stats_report: bad counter count");
  }
  m.counters.resize(num_counters);
  for (auto& [name, value] : m.counters) {
    name = r.Str();
    value = r.U64();
  }
  const uint32_t num_gauges = r.U32();
  if (!r.ok() || num_gauges > kMaxWireCount) {
    return Status::InvalidArgument("stats_report: bad gauge count");
  }
  m.gauges.resize(num_gauges);
  for (auto& [name, value] : m.gauges) {
    name = r.Str();
    value = r.F64();
  }
  const uint32_t num_hists = r.U32();
  if (!r.ok() || num_hists > kMaxWireCount) {
    return Status::InvalidArgument("stats_report: bad histogram count");
  }
  m.histograms.resize(num_hists);
  for (HistogramState& h : m.histograms) {
    h.name = r.Str();
    h.count = r.U64();
    h.sum = r.F64();
    h.min = r.F64();
    h.max = r.F64();
    const uint32_t num_buckets = r.U32();
    if (!r.ok() || num_buckets > kMaxWireCount) {
      return Status::InvalidArgument("stats_report: bad bucket count");
    }
    h.buckets.resize(num_buckets);
    for (auto& [bound, n] : h.buckets) {
      bound = r.F64();
      n = r.U64();
    }
  }
  ROD_RETURN_IF_ERROR(FinishDecode(r, "stats_report"));
  return m;
}

std::string ClockSyncMsg::Encode() const {
  WireWriter w;
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.U32(e.worker_id);
    w.F64(e.offset_us);
    w.F64(e.rtt_us);
  }
  return w.Take();
}

Result<ClockSyncMsg> ClockSyncMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  ClockSyncMsg m;
  const uint32_t num_entries = r.U32();
  if (!r.ok() || num_entries > kMaxWireCount) {
    return Status::InvalidArgument("clock_sync: bad entry count");
  }
  m.entries.resize(num_entries);
  for (Entry& e : m.entries) {
    e.worker_id = r.U32();
    e.offset_us = r.F64();
    e.rtt_us = r.F64();
  }
  ROD_RETURN_IF_ERROR(FinishDecode(r, "clock_sync"));
  return m;
}

std::string FreezeMsg::Encode() const {
  WireWriter w;
  w.U64(incident_id);
  w.Str(kind);
  w.Str(detail);
  return w.Take();
}

Result<FreezeMsg> FreezeMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  FreezeMsg m;
  m.incident_id = r.U64();
  m.kind = r.Str();
  m.detail = r.Str();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "freeze"));
  return m;
}

std::string FrozenReportMsg::Encode() const {
  WireWriter w;
  w.U64(incident_id);
  w.U32(worker_id);
  w.Str(incident_json);
  return w.Take();
}

Result<FrozenReportMsg> FrozenReportMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  FrozenReportMsg m;
  m.incident_id = r.U64();
  m.worker_id = r.U32();
  m.incident_json = r.Str();
  ROD_RETURN_IF_ERROR(FinishDecode(r, "frozen_report"));
  return m;
}

std::string FinalStatsMsg::Encode() const {
  WireWriter w;
  w.U32(worker_id);
  counters.EncodeInto(w);
  return w.Take();
}

Result<FinalStatsMsg> FinalStatsMsg::Decode(std::string_view payload) {
  WireReader r(payload);
  FinalStatsMsg m;
  m.worker_id = r.U32();
  m.counters = WorkerCounters::DecodeFrom(r);
  ROD_RETURN_IF_ERROR(FinishDecode(r, "final_stats"));
  return m;
}

}  // namespace rod::cluster
