// Copyright (c) the ROD reproduction authors.
//
// Graphviz (DOT) export of query graphs, optionally colored by a
// placement — render with `dot -Tpng graph.dot -o graph.png` to see what
// ROD did to a dataflow.

#ifndef ROD_QUERY_GRAPHVIZ_H_
#define ROD_QUERY_GRAPHVIZ_H_

#include <string>
#include <vector>

#include "query/query_graph.h"

namespace rod::query {

/// Renders `graph` as a DOT digraph. Input streams appear as boxes,
/// operators as ellipses labeled with kind/cost/selectivity, arcs with a
/// nonzero communication cost carry an edge label. When
/// `node_assignment` is provided (operator id -> node id), operators are
/// filled with a per-node color and grouped into node clusters.
std::string ToGraphviz(const QueryGraph& graph,
                       const std::vector<size_t>* node_assignment = nullptr);

}  // namespace rod::query

#endif  // ROD_QUERY_GRAPHVIZ_H_
