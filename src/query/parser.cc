#include "query/parser.h"

#include <fstream>
#include <map>
#include <sstream>

namespace rod::query {

namespace {

Status ParseError(size_t line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 message);
}

/// Splits on whitespace.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

/// Splits "a,b,c" on commas (no empty fields allowed by callers).
std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(cur);
  return parts;
}

Result<double> ParseDouble(const std::string& s, size_t line,
                           const std::string& what) {
  try {
    size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size()) {
      return ParseError(line, "trailing characters in " + what);
    }
    return v;
  } catch (const std::exception&) {
    return ParseError(line, "malformed number in " + what + ": '" + s + "'");
  }
}

Result<OperatorKind> ParseKind(const std::string& s, size_t line) {
  static const std::map<std::string, OperatorKind> kKinds = {
      {"filter", OperatorKind::kFilter},     {"map", OperatorKind::kMap},
      {"union", OperatorKind::kUnion},       {"aggregate", OperatorKind::kAggregate},
      {"delay", OperatorKind::kDelay},       {"join", OperatorKind::kJoin},
  };
  auto it = kKinds.find(s);
  if (it == kKinds.end()) {
    return ParseError(line, "unknown operator kind '" + s + "'");
  }
  return it->second;
}

}  // namespace

Result<QueryGraph> ParseQueryGraph(const std::string& text) {
  QueryGraph graph;
  std::map<std::string, InputStreamId> inputs_by_name;
  std::map<std::string, OperatorId> ops_by_name;

  std::istringstream is(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) continue;

    if (tokens[0] == "input") {
      if (tokens.size() != 2) {
        return ParseError(line_no, "expected: input <name>");
      }
      const std::string& name = tokens[1];
      if (inputs_by_name.count(name) || ops_by_name.count(name)) {
        return ParseError(line_no, "duplicate name '" + name + "'");
      }
      inputs_by_name[name] = graph.AddInputStream(name);
      continue;
    }

    if (tokens[0] != "op") {
      return ParseError(line_no, "expected 'input' or 'op', got '" +
                                     tokens[0] + "'");
    }
    if (tokens.size() < 4) {
      return ParseError(line_no,
                        "expected: op <name> <kind> key=value... inputs=...");
    }
    OperatorSpec spec;
    spec.name = tokens[1];
    if (inputs_by_name.count(spec.name) || ops_by_name.count(spec.name)) {
      return ParseError(line_no, "duplicate name '" + spec.name + "'");
    }
    auto kind = ParseKind(tokens[2], line_no);
    if (!kind.ok()) return kind.status();
    spec.kind = *kind;

    std::vector<StreamRef> input_refs;
    std::vector<double> comm_costs;
    bool saw_cost = false, saw_inputs = false;

    for (size_t t = 3; t < tokens.size(); ++t) {
      const std::string& token = tokens[t];
      if (token == "varsel") {
        spec.variable_selectivity = true;
        continue;
      }
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        return ParseError(line_no, "expected key=value, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "cost") {
        auto v = ParseDouble(value, line_no, "cost");
        if (!v.ok()) return v.status();
        spec.cost = *v;
        saw_cost = true;
      } else if (key == "sel") {
        auto v = ParseDouble(value, line_no, "sel");
        if (!v.ok()) return v.status();
        spec.selectivity = *v;
      } else if (key == "window") {
        auto v = ParseDouble(value, line_no, "window");
        if (!v.ok()) return v.status();
        spec.window = *v;
      } else if (key == "inputs") {
        for (const std::string& name : SplitCommas(value)) {
          if (auto op_it = ops_by_name.find(name); op_it != ops_by_name.end()) {
            input_refs.push_back(StreamRef::Op(op_it->second));
          } else if (auto in_it = inputs_by_name.find(name);
                     in_it != inputs_by_name.end()) {
            input_refs.push_back(StreamRef::Input(in_it->second));
          } else {
            return ParseError(line_no, "unknown input '" + name + "'");
          }
        }
        saw_inputs = true;
      } else if (key == "comm") {
        for (const std::string& part : SplitCommas(value)) {
          auto v = ParseDouble(part, line_no, "comm");
          if (!v.ok()) return v.status();
          comm_costs.push_back(*v);
        }
      } else {
        return ParseError(line_no, "unknown key '" + key + "'");
      }
    }
    if (!saw_cost) return ParseError(line_no, "missing cost=");
    if (!saw_inputs) return ParseError(line_no, "missing inputs=");
    if (comm_costs.empty()) comm_costs.assign(input_refs.size(), 0.0);
    if (comm_costs.size() != input_refs.size()) {
      return ParseError(line_no, "comm= must list one cost per input");
    }
    auto id = graph.AddOperator(spec, input_refs, comm_costs);
    if (!id.ok()) {
      return ParseError(line_no, id.status().message());
    }
    ops_by_name[spec.name] = *id;
  }

  ROD_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

Result<QueryGraph> LoadQueryGraphFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseQueryGraph(buffer.str());
}

std::string SerializeQueryGraph(const QueryGraph& graph) {
  std::ostringstream os;
  os.precision(17);
  for (InputStreamId k = 0; k < graph.num_input_streams(); ++k) {
    os << "input " << graph.input_name(k) << "\n";
  }
  for (OperatorId j = 0; j < graph.num_operators(); ++j) {
    const OperatorSpec& spec = graph.spec(j);
    os << "op " << spec.name << " " << OperatorKindName(spec.kind)
       << " cost=" << spec.cost;
    if (spec.selectivity != 1.0) os << " sel=" << spec.selectivity;
    if (spec.window != 0.0) os << " window=" << spec.window;
    if (spec.variable_selectivity) os << " varsel";
    os << " inputs=";
    const auto& arcs = graph.inputs_of(j);
    bool any_comm = false;
    for (size_t a = 0; a < arcs.size(); ++a) {
      if (a > 0) os << ",";
      const StreamRef& ref = arcs[a].from;
      os << (ref.kind == StreamRef::Kind::kInput
                 ? graph.input_name(ref.index)
                 : graph.spec(ref.index).name);
      any_comm |= arcs[a].comm_cost != 0.0;
    }
    if (any_comm) {
      os << " comm=";
      for (size_t a = 0; a < arcs.size(); ++a) {
        if (a > 0) os << ",";
        os << arcs[a].comm_cost;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rod::query
