// Copyright (c) the ROD reproduction authors.
//
// Workload graph generators. `GenerateRandomTrees` reproduces the paper's
// §7.1 experimental graphs: one operator tree rooted at each system input,
// 1–3 downstream operators per tree node, tunable-cost delay operators with
// the paper's cost and selectivity distributions. The two application
// builders construct the domain workloads the paper's introduction
// motivates (network traffic monitoring; financial compliance).

#ifndef ROD_QUERY_GRAPH_GEN_H_
#define ROD_QUERY_GRAPH_GEN_H_

#include <cstddef>

#include "common/random.h"
#include "query/query_graph.h"

namespace rod::query {

/// Parameters for the §7.1 random operator-tree generator.
struct GraphGenOptions {
  /// Number of system input streams (= number of trees), the paper's `d`.
  size_t num_input_streams = 5;

  /// Operators per tree — §7.1 keeps this equal across trees "because the
  /// maximum achievable feasible set size is determined by how well the
  /// weight of each input stream can be balanced".
  size_t ops_per_tree = 20;

  /// Each tree node spawns U{min_children..max_children} downstream
  /// operators (paper: 1–3, equal probability).
  int min_children = 1;
  int max_children = 3;

  /// Per-tuple cost bounds in CPU-seconds; the paper's delay operators use
  /// 0.1 ms – 10 ms.
  double min_cost = 0.1e-3;
  double max_cost = 10e-3;

  /// Fraction of operators pinned to selectivity 1 (paper: one half); the
  /// rest draw selectivity from U[min_selectivity, max_selectivity].
  double frac_selectivity_one = 0.5;
  double min_selectivity = 0.5;
  double max_selectivity = 1.0;
};

/// Generates a random forest of operator trees per §7.1. All operators are
/// kDelay (tunable cost & selectivity). Deterministic given `rng`'s state.
QueryGraph GenerateRandomTrees(const GraphGenOptions& options, Rng& rng);

/// Parameters for the aggregation-heavy traffic-monitoring workload.
struct TrafficMonitoringOptions {
  /// Number of monitored links; each contributes one input stream (packet
  /// headers from that link).
  size_t num_links = 3;

  /// Aggregation windows (seconds) computed per link (e.g. 1 s, 10 s
  /// byte/packet counts). Each window spawns a filter→map→aggregate chain.
  std::vector<double> windows = {1.0, 10.0, 60.0};

  /// Per-tuple cost scale in CPU-seconds.
  double base_cost = 0.5e-3;

  /// When true, adds a cross-link union + aggregate "top talkers" rollup.
  bool include_global_rollup = true;
};

/// Builds the aggregation-heavy network traffic monitoring graph used by
/// the latency experiments (stands in for the paper's monitoring queries).
QueryGraph BuildTrafficMonitoringGraph(const TrafficMonitoringOptions& options);

/// Parameters for the financial-compliance workload (§7.3.1 discussion: "a
/// real-time proof-of-concept compliance application we built for 3
/// compliance rules required 25 operators" — wide graphs of related queries
/// with common subexpressions).
struct ComplianceOptions {
  size_t num_feeds = 2;       ///< Market data feeds (input streams).
  size_t num_rules = 12;      ///< Compliance rules; ~8 operators each.
  double base_cost = 0.2e-3;  ///< Per-tuple cost scale in CPU-seconds.
};

/// Builds a wide compliance-checking graph: shared normalization
/// subexpressions per feed fanning out into per-rule filter/aggregate
/// chains joined back by unions into per-rule alert sinks.
QueryGraph BuildComplianceGraph(const ComplianceOptions& options);

}  // namespace rod::query

#endif  // ROD_QUERY_GRAPH_GEN_H_
