#include "query/operator.h"

namespace rod::query {

const char* OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kFilter:
      return "filter";
    case OperatorKind::kMap:
      return "map";
    case OperatorKind::kUnion:
      return "union";
    case OperatorKind::kAggregate:
      return "aggregate";
    case OperatorKind::kDelay:
      return "delay";
    case OperatorKind::kJoin:
      return "join";
  }
  return "unknown";
}

bool IsLinearKind(OperatorKind kind) { return kind != OperatorKind::kJoin; }

Status OperatorSpec::Validate() const {
  if (cost < 0.0) {
    return Status::InvalidArgument("operator '" + name + "': negative cost");
  }
  if (selectivity < 0.0) {
    return Status::InvalidArgument("operator '" + name +
                                   "': negative selectivity");
  }
  if (kind == OperatorKind::kJoin) {
    if (window <= 0.0) {
      return Status::InvalidArgument("join '" + name +
                                     "': window must be positive");
    }
    if (selectivity <= 0.0) {
      // Linearization rewrites the join load as (cost/selectivity) * r_out
      // (paper §6.2), which requires a strictly positive selectivity.
      return Status::InvalidArgument(
          "join '" + name + "': selectivity must be strictly positive");
    }
  } else if (window != 0.0) {
    return Status::InvalidArgument("operator '" + name +
                                   "': window is only valid for joins");
  }
  if (qos_weight < 0.0) {
    return Status::InvalidArgument("operator '" + name +
                                   "': negative qos_weight");
  }
  if (kind == OperatorKind::kFilter && selectivity > 1.0) {
    return Status::InvalidArgument("filter '" + name +
                                   "': selectivity must be <= 1");
  }
  return Status::OK();
}

}  // namespace rod::query
