// Copyright (c) the ROD reproduction authors.
//
// Continuous-query operator descriptors. An operator is the minimum task
// allocation unit (paper §2.1): what the placement layer needs to know about
// it is its per-tuple CPU cost and its selectivity, from which the load
// model derives the load-coefficient matrix L^o.

#ifndef ROD_QUERY_OPERATOR_H_
#define ROD_QUERY_OPERATOR_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace rod::query {

/// Dense identifier of an operator within its QueryGraph (0-based).
using OperatorId = size_t;

/// Dense identifier of a system input stream within its QueryGraph.
using InputStreamId = size_t;

/// Operator families. The distinction that matters to the load model is
/// linear (load is a linear function of input rates, assuming stable
/// selectivity: filter/map/union/aggregate/delay) versus nonlinear
/// (time-window join: load ∝ product of its two input rates; paper §6.2).
enum class OperatorKind {
  kFilter,     ///< Drops tuples; selectivity in [0,1], one input.
  kMap,        ///< Per-tuple transform; selectivity 1, one input.
  kUnion,      ///< Merges streams; one output tuple per input tuple, >=1 inputs.
  kAggregate,  ///< Windowed aggregate; selectivity models 1/window, one input.
  kDelay,      ///< The paper's tunable-cost synthetic operator (§7.1), one input.
  kJoin,       ///< Time-window join; exactly two inputs, nonlinear load.
};

/// Returns the lower-case kind name ("filter", "join", ...).
const char* OperatorKindName(OperatorKind kind);

/// True for kinds whose load is linear in their input rates (given constant
/// selectivity); false for kJoin.
bool IsLinearKind(OperatorKind kind);

/// Immutable description of one operator.
///
/// Units: `cost` is CPU-seconds consumed per input tuple (per *tuple pair*
/// for joins), so that a node with capacity C_i = 1.0 provides one
/// CPU-second of processing per second of wall time. `selectivity` is the
/// output-rate / input-rate ratio (output per tuple pair for joins).
struct OperatorSpec {
  std::string name;
  OperatorKind kind = OperatorKind::kMap;

  /// CPU-seconds per input tuple (joins: per tuple pair probed).
  double cost = 0.0;

  /// Output rate divided by input rate (joins: per pair; unions: applied to
  /// the merged input rate, normally 1).
  double selectivity = 1.0;

  /// Join window length in seconds (kJoin only). The number of pairs probed
  /// per unit time is `window * r_left * r_right` (paper Example 3).
  double window = 0.0;

  /// When true, the operator's selectivity is treated as rate-dependent /
  /// unstable, so its *output* rate becomes a fresh variable during
  /// linearization (paper Example 3, operator o1). `selectivity` is still
  /// used as the nominal value when concrete rates are evaluated.
  bool variable_selectivity = false;

  /// Relative application value of tuples processed by this operator,
  /// used by QoS-aware load shedding (semantic drop, Borealis §"QoS"):
  /// under overflow the runtime prefers to drop tuples headed through
  /// low-weight operators. Must be >= 0; the default treats all paths as
  /// equally valuable.
  double qos_weight = 1.0;

  /// Validates ranges (non-negative cost, selectivity, window; join
  /// constraints). Returns OK when the spec is internally consistent.
  Status Validate() const;
};

}  // namespace rod::query

#endif  // ROD_QUERY_OPERATOR_H_
