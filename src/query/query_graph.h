// Copyright (c) the ROD reproduction authors.
//
// The dataflow query graph: an acyclic network of operators fed by system
// input streams (paper Figure 1). Graphs are built incrementally; an
// operator's inputs must already exist when it is added, so the graph is a
// DAG by construction and insertion order is a topological order.

#ifndef ROD_QUERY_QUERY_GRAPH_H_
#define ROD_QUERY_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/operator.h"

namespace rod::query {

/// Where a stream consumed by an operator comes from: either a system input
/// stream (external source) or the output of an upstream operator.
struct StreamRef {
  enum class Kind { kInput, kOperator };

  Kind kind = Kind::kInput;
  size_t index = 0;  ///< InputStreamId or OperatorId, depending on `kind`.

  /// The external input stream `k`.
  static StreamRef Input(InputStreamId k) { return {Kind::kInput, k}; }
  /// The output of operator `j`.
  static StreamRef Op(OperatorId j) { return {Kind::kOperator, j}; }

  bool operator==(const StreamRef&) const = default;
};

/// A directed dataflow arc `from -> to_op` with an optional per-tuple
/// communication CPU cost (paper §6.3); the cost is paid on both endpoints
/// when the arc crosses nodes.
struct Arc {
  StreamRef from;
  OperatorId to_op = 0;
  double comm_cost = 0.0;  ///< CPU-seconds per tuple transferred.
};

/// An acyclic continuous-query network.
///
/// Usage:
/// ```
/// QueryGraph g;
/// auto s = g.AddInputStream("packets");
/// auto f = g.AddOperator({.name = "f", .kind = OperatorKind::kFilter,
///                         .cost = 1e-4, .selectivity = 0.5},
///                        {StreamRef::Input(s)});
/// ```
/// Operators keep their insertion index as id; that index order is a valid
/// topological order of the DAG.
class QueryGraph {
 public:
  /// Registers a new external input stream and returns its id.
  InputStreamId AddInputStream(std::string name);

  /// Adds an operator consuming `inputs`. Fails if the spec is invalid, if
  /// any referenced stream does not exist yet, if the input arity does not
  /// match the operator kind (joins: exactly 2; other kinds: exactly 1
  /// except unions: >= 1), or if an input is duplicated.
  Result<OperatorId> AddOperator(const OperatorSpec& spec,
                                 const std::vector<StreamRef>& inputs);

  /// As above, with explicit per-arc communication costs (one per input;
  /// paper §6.3). `comm_costs` must have the same size as `inputs`.
  Result<OperatorId> AddOperator(const OperatorSpec& spec,
                                 const std::vector<StreamRef>& inputs,
                                 const std::vector<double>& comm_costs);

  size_t num_operators() const { return specs_.size(); }
  size_t num_input_streams() const { return input_names_.size(); }

  const OperatorSpec& spec(OperatorId j) const { return specs_.at(j); }
  const std::string& input_name(InputStreamId k) const {
    return input_names_.at(k);
  }

  /// Arcs feeding operator `j`, in the order they were declared.
  const std::vector<Arc>& inputs_of(OperatorId j) const {
    return inputs_.at(j);
  }

  /// Operators consuming the output of operator `j`.
  const std::vector<OperatorId>& consumers_of(OperatorId j) const {
    return op_consumers_.at(j);
  }

  /// Operators consuming input stream `k` directly.
  const std::vector<OperatorId>& consumers_of_input(InputStreamId k) const {
    return input_consumers_.at(k);
  }

  /// Operators whose output feeds no other operator (results go to
  /// applications).
  std::vector<OperatorId> Sinks() const;

  /// True iff the graph contains at least one operator whose load is not a
  /// linear function of the system input rates (a join, or an operator with
  /// `variable_selectivity`); such graphs require linearization (§6.2).
  bool RequiresLinearization() const;

  /// Structural sanity check: every input stream feeds at least one
  /// operator and the graph is non-empty.
  Status Validate() const;

 private:
  Result<OperatorId> AddOperatorInternal(const OperatorSpec& spec,
                                         const std::vector<StreamRef>& inputs,
                                         const std::vector<double>& comm_costs);

  std::vector<std::string> input_names_;
  std::vector<OperatorSpec> specs_;
  std::vector<std::vector<Arc>> inputs_;  ///< per-operator input arcs
  std::vector<std::vector<OperatorId>> op_consumers_;
  std::vector<std::vector<OperatorId>> input_consumers_;
};

}  // namespace rod::query

#endif  // ROD_QUERY_QUERY_GRAPH_H_
