#include "query/graphviz.h"

#include <sstream>

namespace rod::query {

namespace {

/// A colorblind-friendly cycling palette for node clusters.
const char* NodeColor(size_t node) {
  static const char* kPalette[] = {"#a6cee3", "#b2df8a", "#fdbf6f",
                                   "#cab2d6", "#fb9a99", "#ffff99",
                                   "#1f78b4", "#33a02c"};
  return kPalette[node % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

/// Escapes double quotes for DOT string literals.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToGraphviz(const QueryGraph& graph,
                       const std::vector<size_t>* node_assignment) {
  std::ostringstream os;
  os << "digraph query {\n  rankdir=LR;\n  node [fontsize=10];\n";

  for (InputStreamId k = 0; k < graph.num_input_streams(); ++k) {
    os << "  in" << k << " [shape=box, style=bold, label=\""
       << Escape(graph.input_name(k)) << "\"];\n";
  }

  // Group operators by node when a placement is given.
  if (node_assignment != nullptr &&
      node_assignment->size() == graph.num_operators()) {
    size_t num_nodes = 0;
    for (size_t node : *node_assignment) {
      num_nodes = std::max(num_nodes, node + 1);
    }
    for (size_t i = 0; i < num_nodes; ++i) {
      os << "  subgraph cluster_node" << i << " {\n    label=\"node " << i
         << "\";\n    style=filled;\n    color=\"" << NodeColor(i)
         << "\";\n";
      for (OperatorId j = 0; j < graph.num_operators(); ++j) {
        if ((*node_assignment)[j] == i) os << "    op" << j << ";\n";
      }
      os << "  }\n";
    }
  }

  for (OperatorId j = 0; j < graph.num_operators(); ++j) {
    const OperatorSpec& spec = graph.spec(j);
    os << "  op" << j << " [label=\"" << Escape(spec.name) << "\\n"
       << OperatorKindName(spec.kind) << " c=" << spec.cost;
    if (spec.selectivity != 1.0) os << " s=" << spec.selectivity;
    if (spec.window != 0.0) os << " w=" << spec.window;
    os << "\"];\n";
  }

  for (OperatorId j = 0; j < graph.num_operators(); ++j) {
    for (const Arc& arc : graph.inputs_of(j)) {
      if (arc.from.kind == StreamRef::Kind::kInput) {
        os << "  in" << arc.from.index;
      } else {
        os << "  op" << arc.from.index;
      }
      os << " -> op" << j;
      if (arc.comm_cost > 0.0) {
        os << " [label=\"comm=" << arc.comm_cost << "\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rod::query
