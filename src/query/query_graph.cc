#include "query/query_graph.h"

#include <algorithm>

namespace rod::query {

InputStreamId QueryGraph::AddInputStream(std::string name) {
  input_names_.push_back(std::move(name));
  input_consumers_.emplace_back();
  return input_names_.size() - 1;
}

Result<OperatorId> QueryGraph::AddOperator(const OperatorSpec& spec,
                                           const std::vector<StreamRef>& inputs) {
  return AddOperatorInternal(spec, inputs,
                             std::vector<double>(inputs.size(), 0.0));
}

Result<OperatorId> QueryGraph::AddOperator(const OperatorSpec& spec,
                                           const std::vector<StreamRef>& inputs,
                                           const std::vector<double>& comm_costs) {
  if (comm_costs.size() != inputs.size()) {
    return Status::InvalidArgument("operator '" + spec.name +
                                   "': comm_costs size mismatch");
  }
  return AddOperatorInternal(spec, inputs, comm_costs);
}

Result<OperatorId> QueryGraph::AddOperatorInternal(
    const OperatorSpec& spec, const std::vector<StreamRef>& inputs,
    const std::vector<double>& comm_costs) {
  ROD_RETURN_IF_ERROR(spec.Validate());

  // Arity rules per kind.
  const size_t arity = inputs.size();
  switch (spec.kind) {
    case OperatorKind::kJoin:
      if (arity != 2) {
        return Status::InvalidArgument("join '" + spec.name +
                                       "' requires exactly 2 inputs");
      }
      break;
    case OperatorKind::kUnion:
      if (arity < 1) {
        return Status::InvalidArgument("union '" + spec.name +
                                       "' requires at least 1 input");
      }
      break;
    default:
      if (arity != 1) {
        return Status::InvalidArgument("operator '" + spec.name +
                                       "' requires exactly 1 input");
      }
  }

  // Referenced streams must already exist (this is what guarantees
  // acyclicity), and must not repeat.
  for (size_t i = 0; i < inputs.size(); ++i) {
    const StreamRef& ref = inputs[i];
    if (ref.kind == StreamRef::Kind::kInput) {
      if (ref.index >= input_names_.size()) {
        return Status::NotFound("operator '" + spec.name +
                                "' references unknown input stream");
      }
    } else {
      if (ref.index >= specs_.size()) {
        return Status::NotFound("operator '" + spec.name +
                                "' references unknown upstream operator");
      }
    }
    if (comm_costs[i] < 0.0) {
      return Status::InvalidArgument("operator '" + spec.name +
                                     "': negative communication cost");
    }
    for (size_t l = 0; l < i; ++l) {
      if (inputs[l] == ref) {
        return Status::InvalidArgument("operator '" + spec.name +
                                       "': duplicate input stream");
      }
    }
  }

  const OperatorId id = specs_.size();
  specs_.push_back(spec);
  inputs_.emplace_back();
  op_consumers_.emplace_back();
  for (size_t i = 0; i < inputs.size(); ++i) {
    inputs_[id].push_back(Arc{inputs[i], id, comm_costs[i]});
    if (inputs[i].kind == StreamRef::Kind::kInput) {
      input_consumers_[inputs[i].index].push_back(id);
    } else {
      op_consumers_[inputs[i].index].push_back(id);
    }
  }
  return id;
}

std::vector<OperatorId> QueryGraph::Sinks() const {
  std::vector<OperatorId> out;
  for (OperatorId j = 0; j < specs_.size(); ++j) {
    if (op_consumers_[j].empty()) out.push_back(j);
  }
  return out;
}

bool QueryGraph::RequiresLinearization() const {
  return std::any_of(specs_.begin(), specs_.end(), [](const OperatorSpec& s) {
    return !IsLinearKind(s.kind) || s.variable_selectivity;
  });
}

Status QueryGraph::Validate() const {
  if (specs_.empty()) {
    return Status::FailedPrecondition("query graph has no operators");
  }
  if (input_names_.empty()) {
    return Status::FailedPrecondition("query graph has no input streams");
  }
  for (InputStreamId k = 0; k < input_names_.size(); ++k) {
    if (input_consumers_[k].empty()) {
      return Status::FailedPrecondition("input stream '" + input_names_[k] +
                                        "' feeds no operator");
    }
  }
  return Status::OK();
}

}  // namespace rod::query
