#include "query/linearize.h"

#include <cassert>

#include "query/load_model.h"

namespace rod::query {

std::vector<OperatorId> PlanAuxVariables(const QueryGraph& graph) {
  std::vector<OperatorId> aux;
  for (OperatorId j = 0; j < graph.num_operators(); ++j) {
    const OperatorSpec& s = graph.spec(j);
    if (!IsLinearKind(s.kind) || s.variable_selectivity) aux.push_back(j);
  }
  return aux;
}

// Shared builder behind BuildLoadModel / BuildLinearizedLoadModel.
//
// Walks the operators in id order (a topological order), carrying for each
// operator a coefficient vector expressing its output rate over the extended
// variable set. Linear operators propagate coefficients; auxiliary
// operators (joins, variable-selectivity) emit the unit vector of their own
// auxiliary variable and, for joins, charge load (cost/selectivity) on that
// variable — the paper's Example 3 rewrite load(o5) = (c5/s5) * r4.
Result<LoadModel> BuildLoadModelImpl(const QueryGraph& graph,
                                     bool allow_linearization) {
  ROD_RETURN_IF_ERROR(graph.Validate());

  const std::vector<OperatorId> aux_ops = PlanAuxVariables(graph);
  if (!aux_ops.empty() && !allow_linearization) {
    return Status::Internal(
        "BuildLoadModelImpl called with aux operators but linearization "
        "disabled");  // guarded by BuildLoadModel
  }

  const size_t d = graph.num_input_streams();
  const size_t m = graph.num_operators();
  const size_t num_vars = d + aux_ops.size();

  LoadModel model;
  model.num_system_inputs_ = d;
  model.variables_.reserve(num_vars);
  for (size_t k = 0; k < d; ++k) {
    model.variables_.push_back({VariableInfo::Kind::kSystemInput, k});
  }
  // Auxiliary variable index for each operator, or SIZE_MAX if none.
  std::vector<size_t> aux_var_of(m, SIZE_MAX);
  for (OperatorId j : aux_ops) {
    aux_var_of[j] = model.variables_.size();
    model.variables_.push_back({VariableInfo::Kind::kAuxOutput, j});
  }

  model.op_coeffs_ = Matrix(m, num_vars);
  model.out_rate_coeffs_ = Matrix(m, num_vars);

  for (OperatorId j = 0; j < m; ++j) {
    const OperatorSpec& spec = graph.spec(j);
    const std::vector<Arc>& arcs = graph.inputs_of(j);

    // Merged input-rate coefficients (sum over this operator's inputs).
    Vector in_coeff(num_vars, 0.0);
    for (const Arc& arc : arcs) {
      if (arc.from.kind == StreamRef::Kind::kInput) {
        in_coeff[arc.from.index] += 1.0;
      } else {
        auto up = model.out_rate_coeffs_.Row(arc.from.index);
        for (size_t v = 0; v < num_vars; ++v) in_coeff[v] += up[v];
      }
    }

    if (spec.kind == OperatorKind::kJoin) {
      // load = cost * window * r_l * r_r = (cost/selectivity) * r_out,
      // with r_out = selectivity * window * r_l * r_r the aux variable.
      const size_t v = aux_var_of[j];
      assert(v != SIZE_MAX);
      model.op_coeffs_(j, v) = spec.cost / spec.selectivity;
      model.out_rate_coeffs_(j, v) = 1.0;
    } else {
      // Linear load: cost per tuple on the merged input rate.
      for (size_t v = 0; v < num_vars; ++v) {
        model.op_coeffs_(j, v) = spec.cost * in_coeff[v];
      }
      if (spec.variable_selectivity) {
        const size_t v = aux_var_of[j];
        assert(v != SIZE_MAX);
        model.out_rate_coeffs_(j, v) = 1.0;
      } else {
        for (size_t v = 0; v < num_vars; ++v) {
          model.out_rate_coeffs_(j, v) = spec.selectivity * in_coeff[v];
        }
      }
    }

    // Evaluation info for concrete-rate propagation.
    LoadModel::EvalOp ev;
    ev.is_join = spec.kind == OperatorKind::kJoin;
    ev.cost = spec.cost;
    ev.selectivity = spec.selectivity;
    ev.window = spec.window;
    for (const Arc& arc : arcs) ev.inputs.push_back(arc.from);
    model.eval_ops_.push_back(std::move(ev));
  }

  model.total_coeffs_.assign(num_vars, 0.0);
  for (size_t v = 0; v < num_vars; ++v) {
    model.total_coeffs_[v] = model.op_coeffs_.ColSum(v);
  }
  return model;
}

}  // namespace rod::query
