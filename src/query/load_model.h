// Copyright (c) the ROD reproduction authors.
//
// The linear load model (paper §2.2): every operator's load expressed as a
// linear function of a set of rate variables. For graphs of linear operators
// the variables are exactly the system input stream rates; graphs containing
// joins or unstable-selectivity operators are first *linearized* (paper
// §6.2) by promoting certain intermediate stream rates to fresh variables.

#ifndef ROD_QUERY_LOAD_MODEL_H_
#define ROD_QUERY_LOAD_MODEL_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "query/query_graph.h"

namespace rod::query {

/// What one column (rate variable) of the load model represents.
struct VariableInfo {
  enum class Kind {
    kSystemInput,  ///< The rate of external input stream `index`.
    kAuxOutput,    ///< The output rate of operator `index`, promoted to a
                   ///< variable by linearization (join outputs and
                   ///< variable-selectivity outputs).
  };

  Kind kind = Kind::kSystemInput;
  size_t index = 0;

  bool operator==(const VariableInfo&) const = default;
};

/// A fully linear view of a query graph's CPU load.
///
/// Rows of `op_coeffs()` are the paper's `l^o_j` vectors: operator `j`
/// consumes `Dot(op_coeffs().Row(j), x)` CPU-seconds per second when the
/// rate-variable vector is `x`. For a purely linear graph `x` is the system
/// input rate vector `R`; otherwise `x = ExtendRates(R)` appends the
/// concrete values of the auxiliary variables at `R`.
class LoadModel {
 public:
  /// Number of operators `m` (rows of L^o).
  size_t num_operators() const { return op_coeffs_.rows(); }
  /// Total number of rate variables `D` (columns of L^o).
  size_t num_vars() const { return op_coeffs_.cols(); }
  /// Number of physical system input streams `d` (<= num_vars()).
  size_t num_system_inputs() const { return num_system_inputs_; }
  /// True iff linearization added auxiliary variables.
  bool has_aux_vars() const { return num_vars() > num_system_inputs_; }

  /// The operator load-coefficient matrix L^o (m x D).
  const Matrix& op_coeffs() const { return op_coeffs_; }

  /// Output-rate coefficients (m x D): row `j` expresses the rate of
  /// operator `j`'s output stream in the extended variables.
  const Matrix& out_rate_coeffs() const { return out_rate_coeffs_; }

  /// Column sums of L^o — the paper's `l_k`, the total load coefficient of
  /// each variable across all operators.
  const Vector& total_coeffs() const { return total_coeffs_; }

  /// Meaning of each variable, size num_vars(); the first
  /// num_system_inputs() entries are the system inputs in order.
  const std::vector<VariableInfo>& variables() const { return variables_; }

  /// Maps a physical rate point `R` (size num_system_inputs()) to the
  /// extended variable vector `x` (size num_vars()) by propagating rates
  /// through the graph: linear operators emit `selectivity * sum(inputs)`,
  /// joins emit `selectivity * window * r_left * r_right`.
  Vector ExtendRates(std::span<const double> system_rates) const;

  /// Exact per-operator loads at physical rates `R`, computed directly from
  /// the graph semantics (not via coefficients). For linear graphs this
  /// equals `op_coeffs() * R`; for linearized graphs it equals
  /// `op_coeffs() * ExtendRates(R)` — both identities are exercised by the
  /// property tests.
  Vector OperatorLoadsAt(std::span<const double> system_rates) const;

 private:
  friend Result<LoadModel> BuildLoadModelImpl(const QueryGraph& graph,
                                              bool allow_linearization);

  /// Per-operator info retained for concrete-rate propagation.
  struct EvalOp {
    bool is_join = false;
    double cost = 0.0;
    double selectivity = 1.0;
    double window = 0.0;
    std::vector<StreamRef> inputs;
  };

  size_t num_system_inputs_ = 0;
  Matrix op_coeffs_;
  Matrix out_rate_coeffs_;
  Vector total_coeffs_;
  std::vector<VariableInfo> variables_;
  std::vector<EvalOp> eval_ops_;
};

/// Builds the load model of a purely linear graph. Fails with
/// FailedPrecondition if the graph contains joins or variable-selectivity
/// operators (use BuildLinearizedLoadModel for those).
Result<LoadModel> BuildLoadModel(const QueryGraph& graph);

/// Builds the load model of any graph, introducing one auxiliary variable
/// per join and per variable-selectivity operator (paper §6.2's "linear
/// cut"). For an already linear graph this is identical to BuildLoadModel.
Result<LoadModel> BuildLinearizedLoadModel(const QueryGraph& graph);

}  // namespace rod::query

#endif  // ROD_QUERY_LOAD_MODEL_H_
