// Copyright (c) the ROD reproduction authors.
//
// Linearization internals (paper §6.2). The public entry points live in
// load_model.h (BuildLoadModel / BuildLinearizedLoadModel); this header
// exposes the variable-planning step for tests and diagnostics.

#ifndef ROD_QUERY_LINEARIZE_H_
#define ROD_QUERY_LINEARIZE_H_

#include <vector>

#include "query/load_model.h"
#include "query/query_graph.h"

namespace rod::query {

/// Returns the operators whose output rate must become an auxiliary
/// variable for the graph's load model to be linear: every join and every
/// operator flagged `variable_selectivity`, in topological (id) order. The
/// paper's goal of "as few additional variables as possible" (§6.2) is met
/// because these are exactly the points where linearity is broken.
std::vector<OperatorId> PlanAuxVariables(const QueryGraph& graph);

}  // namespace rod::query

#endif  // ROD_QUERY_LINEARIZE_H_
