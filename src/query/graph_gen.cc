#include "query/graph_gen.h"

#include <cassert>
#include <deque>
#include <string>

namespace rod::query {

namespace {

/// Draws a delay-operator spec with the §7.1 cost/selectivity distribution.
OperatorSpec RandomDelaySpec(const GraphGenOptions& options, Rng& rng,
                             std::string name) {
  OperatorSpec spec;
  spec.name = std::move(name);
  spec.kind = OperatorKind::kDelay;
  spec.cost = rng.Uniform(options.min_cost, options.max_cost);
  spec.selectivity =
      rng.Bernoulli(options.frac_selectivity_one)
          ? 1.0
          : rng.Uniform(options.min_selectivity, options.max_selectivity);
  return spec;
}

}  // namespace

QueryGraph GenerateRandomTrees(const GraphGenOptions& options, Rng& rng) {
  assert(options.num_input_streams > 0);
  assert(options.ops_per_tree > 0);
  assert(options.min_children >= 1 &&
         options.min_children <= options.max_children);

  QueryGraph g;
  for (size_t k = 0; k < options.num_input_streams; ++k) {
    const InputStreamId input = g.AddInputStream("I" + std::to_string(k));

    // Grow one tree rooted at this input, breadth-first: pop a frontier
    // stream, attach U{1..3} children, push the children, until the tree
    // has ops_per_tree operators.
    size_t created = 0;
    std::deque<StreamRef> frontier;
    frontier.push_back(StreamRef::Input(input));
    while (created < options.ops_per_tree) {
      assert(!frontier.empty());
      const StreamRef parent = frontier.front();
      frontier.pop_front();
      const int children = static_cast<int>(
          rng.UniformInt(options.min_children, options.max_children));
      for (int c = 0; c < children && created < options.ops_per_tree; ++c) {
        const std::string name =
            "t" + std::to_string(k) + "_o" + std::to_string(created);
        auto id = g.AddOperator(RandomDelaySpec(options, rng, name), {parent});
        ROD_CHECK_OK(id.status());
        frontier.push_back(StreamRef::Op(*id));
        ++created;
      }
    }
  }
  return g;
}

QueryGraph BuildTrafficMonitoringGraph(const TrafficMonitoringOptions& options) {
  assert(options.num_links > 0);
  assert(!options.windows.empty());

  QueryGraph g;
  std::vector<StreamRef> rollup_feeds;
  for (size_t link = 0; link < options.num_links; ++link) {
    const std::string prefix = "link" + std::to_string(link);
    const InputStreamId input = g.AddInputStream(prefix + "_pkts");

    // Protocol demultiplex: header-parse map feeding per-protocol filters.
    auto parse = g.AddOperator(
        {.name = prefix + "_parse",
         .kind = OperatorKind::kMap,
         .cost = options.base_cost,
         .selectivity = 1.0},
        {StreamRef::Input(input)});
    ROD_CHECK_OK(parse.status());

    const struct {
      const char* proto;
      double share;
    } kProtos[] = {{"tcp", 0.6}, {"udp", 0.3}, {"icmp", 0.1}};
    for (const auto& p : kProtos) {
      auto filter = g.AddOperator(
          {.name = prefix + "_" + p.proto,
           .kind = OperatorKind::kFilter,
           .cost = 0.4 * options.base_cost,
           .selectivity = p.share},
          {StreamRef::Op(*parse)});
      ROD_CHECK_OK(filter.status());

      // Per-window aggregation chains (byte / packet counts).
      for (size_t w = 0; w < options.windows.size(); ++w) {
        auto keyed = g.AddOperator(
            {.name = prefix + "_" + p.proto + "_key" + std::to_string(w),
             .kind = OperatorKind::kMap,
             .cost = 0.3 * options.base_cost,
             .selectivity = 1.0},
            {StreamRef::Op(*filter)});
        ROD_CHECK_OK(keyed.status());
        auto agg = g.AddOperator(
            {.name = prefix + "_" + p.proto + "_agg" + std::to_string(w),
             .kind = OperatorKind::kAggregate,
             .cost = 0.8 * options.base_cost,
             // One output tuple per window close: the coarser the window,
             // the lower the selectivity.
             .selectivity = 1.0 / (1.0 + options.windows[w])},
            {StreamRef::Op(*keyed)});
        ROD_CHECK_OK(agg.status());
        if (options.include_global_rollup && w == 0) {
          rollup_feeds.push_back(StreamRef::Op(*agg));
        }
      }
    }
  }

  if (options.include_global_rollup && !rollup_feeds.empty()) {
    auto merge = g.AddOperator({.name = "rollup_union",
                                .kind = OperatorKind::kUnion,
                                .cost = 0.2 * options.base_cost,
                                .selectivity = 1.0},
                               rollup_feeds);
    ROD_CHECK_OK(merge.status());
    auto top = g.AddOperator({.name = "top_talkers",
                              .kind = OperatorKind::kAggregate,
                              .cost = 1.5 * options.base_cost,
                              .selectivity = 0.2},
                             {StreamRef::Op(*merge)});
    ROD_CHECK_OK(top.status());
  }
  return g;
}

QueryGraph BuildComplianceGraph(const ComplianceOptions& options) {
  assert(options.num_feeds > 0 && options.num_rules > 0);

  QueryGraph g;
  // Shared per-feed normalization subexpression (common subexpression the
  // rules fan out from; §7.3.1's "related queries with common
  // sub-expressions, so query graphs tend to get very wide").
  std::vector<StreamRef> normalized;
  for (size_t f = 0; f < options.num_feeds; ++f) {
    const std::string prefix = "feed" + std::to_string(f);
    const InputStreamId input = g.AddInputStream(prefix);
    auto decode = g.AddOperator({.name = prefix + "_decode",
                                 .kind = OperatorKind::kMap,
                                 .cost = options.base_cost,
                                 .selectivity = 1.0},
                                {StreamRef::Input(input)});
    ROD_CHECK_OK(decode.status());
    auto dedup = g.AddOperator({.name = prefix + "_dedup",
                                .kind = OperatorKind::kFilter,
                                .cost = 0.5 * options.base_cost,
                                .selectivity = 0.95},
                               {StreamRef::Op(*decode)});
    ROD_CHECK_OK(dedup.status());
    normalized.push_back(StreamRef::Op(*dedup));
  }

  // Per-rule chains: symbol filter -> enrich -> windowed aggregate ->
  // threshold filter; rules alternate across feeds, and every fourth rule
  // unions both feeds first (cross-market rule).
  for (size_t r = 0; r < options.num_rules; ++r) {
    const std::string prefix = "rule" + std::to_string(r);
    StreamRef source = normalized[r % normalized.size()];
    if (r % 4 == 3 && normalized.size() > 1) {
      auto u = g.AddOperator({.name = prefix + "_xmkt",
                              .kind = OperatorKind::kUnion,
                              .cost = 0.2 * options.base_cost,
                              .selectivity = 1.0},
                             normalized);
      ROD_CHECK_OK(u.status());
      source = StreamRef::Op(*u);
    }
    auto select = g.AddOperator(
        {.name = prefix + "_select",
         .kind = OperatorKind::kFilter,
         .cost = 0.4 * options.base_cost,
         // Rules watch progressively narrower symbol sets.
         .selectivity = 0.1 + 0.8 / static_cast<double>(r + 1)},
        {source});
    ROD_CHECK_OK(select.status());
    auto enrich = g.AddOperator({.name = prefix + "_enrich",
                                 .kind = OperatorKind::kMap,
                                 .cost = 1.2 * options.base_cost,
                                 .selectivity = 1.0},
                                {StreamRef::Op(*select)});
    ROD_CHECK_OK(enrich.status());
    auto window = g.AddOperator({.name = prefix + "_window",
                                 .kind = OperatorKind::kAggregate,
                                 .cost = 0.9 * options.base_cost,
                                 .selectivity = 0.3},
                                {StreamRef::Op(*enrich)});
    ROD_CHECK_OK(window.status());
    auto alert = g.AddOperator({.name = prefix + "_alert",
                                .kind = OperatorKind::kFilter,
                                .cost = 0.3 * options.base_cost,
                                .selectivity = 0.05},
                               {StreamRef::Op(*window)});
    ROD_CHECK_OK(alert.status());
  }
  return g;
}

}  // namespace rod::query
