#include "query/load_model.h"

namespace rod::query {

// Defined in linearize.cc.
Result<LoadModel> BuildLoadModelImpl(const QueryGraph& graph,
                                     bool allow_linearization);

Result<LoadModel> BuildLoadModel(const QueryGraph& graph) {
  if (graph.RequiresLinearization()) {
    return Status::FailedPrecondition(
        "graph contains nonlinear operators (joins or variable selectivity); "
        "use BuildLinearizedLoadModel");
  }
  return BuildLoadModelImpl(graph, /*allow_linearization=*/false);
}

Result<LoadModel> BuildLinearizedLoadModel(const QueryGraph& graph) {
  return BuildLoadModelImpl(graph, /*allow_linearization=*/true);
}

Vector LoadModel::ExtendRates(std::span<const double> system_rates) const {
  assert(system_rates.size() == num_system_inputs_);
  // Propagate concrete rates through the graph in operator order (a valid
  // topological order by construction of QueryGraph).
  std::vector<double> op_out(eval_ops_.size(), 0.0);
  auto rate_of = [&](const StreamRef& ref) {
    return ref.kind == StreamRef::Kind::kInput ? system_rates[ref.index]
                                               : op_out[ref.index];
  };
  for (size_t j = 0; j < eval_ops_.size(); ++j) {
    const EvalOp& op = eval_ops_[j];
    if (op.is_join) {
      op_out[j] = op.selectivity * op.window * rate_of(op.inputs[0]) *
                  rate_of(op.inputs[1]);
    } else {
      double in = 0.0;
      for (const StreamRef& ref : op.inputs) in += rate_of(ref);
      op_out[j] = op.selectivity * in;
    }
  }
  Vector x(num_vars(), 0.0);
  for (size_t v = 0; v < variables_.size(); ++v) {
    x[v] = variables_[v].kind == VariableInfo::Kind::kSystemInput
               ? system_rates[variables_[v].index]
               : op_out[variables_[v].index];
  }
  return x;
}

Vector LoadModel::OperatorLoadsAt(std::span<const double> system_rates) const {
  assert(system_rates.size() == num_system_inputs_);
  std::vector<double> op_out(eval_ops_.size(), 0.0);
  auto rate_of = [&](const StreamRef& ref) {
    return ref.kind == StreamRef::Kind::kInput ? system_rates[ref.index]
                                               : op_out[ref.index];
  };
  Vector loads(eval_ops_.size(), 0.0);
  for (size_t j = 0; j < eval_ops_.size(); ++j) {
    const EvalOp& op = eval_ops_[j];
    if (op.is_join) {
      const double pairs =
          op.window * rate_of(op.inputs[0]) * rate_of(op.inputs[1]);
      loads[j] = op.cost * pairs;
      op_out[j] = op.selectivity * pairs;
    } else {
      double in = 0.0;
      for (const StreamRef& ref : op.inputs) in += rate_of(ref);
      loads[j] = op.cost * in;
      op_out[j] = op.selectivity * in;
    }
  }
  return loads;
}

}  // namespace rod::query
