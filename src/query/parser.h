// Copyright (c) the ROD reproduction authors.
//
// A plain-text query-graph description format, so deployments can be
// placed without writing C++. Line oriented; '#' starts a comment.
//
//   input <name>
//   op <name> <kind> cost=<v> [sel=<v>] [window=<v>] [varsel]
//      inputs=<name>[,<name>...] [comm=<v>[,<v>...]]
//
// Kinds: filter, map, union, aggregate, delay, join. `inputs` entries name
// previously declared input streams or operators (operators shadow input
// streams on name collision, matching declaration order requirements).
// `comm` gives the per-tuple communication CPU cost of each input arc.
//
// Example:
//   input packets
//   op parse map cost=4e-3 inputs=packets
//   op heavy filter cost=9e-3 sel=0.5 inputs=parse comm=1e-4

#ifndef ROD_QUERY_PARSER_H_
#define ROD_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/query_graph.h"

namespace rod::query {

/// Parses a textual graph description. Errors carry the line number.
Result<QueryGraph> ParseQueryGraph(const std::string& text);

/// Reads and parses a description file.
Result<QueryGraph> LoadQueryGraphFile(const std::string& path);

/// Serializes `graph` back into the textual format (round-trips through
/// ParseQueryGraph up to comment/whitespace differences).
std::string SerializeQueryGraph(const QueryGraph& graph);

}  // namespace rod::query

#endif  // ROD_QUERY_PARSER_H_
