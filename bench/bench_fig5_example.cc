// Experiment E2 — paper Table 2 and Figures 5-6: the worked Example 2.
// Builds the Figure 4 query graph (costs 4, 6, 9, 4; selectivities 1, -,
// 0.5, -), evaluates the three allocation plans of Table 2 plus ROD's own
// plan on two equal nodes, and prints each plan's node load coefficient
// matrix, weight matrix, exact feasible-set geometry, and ratio to the
// ideal feasible set.

#include <iostream>

#include "bench_util.h"
#include "geometry/ascii_plot.h"
#include "geometry/hyperplane.h"
#include "geometry/polygon2d.h"

namespace {

using rod::Matrix;
using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::Placement;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;
using rod::query::OperatorKind;
using rod::query::QueryGraph;
using rod::query::StreamRef;

QueryGraph Figure4Graph() {
  QueryGraph g;
  const auto i1 = g.AddInputStream("I1");
  const auto i2 = g.AddInputStream("I2");
  auto o1 = g.AddOperator(
      {.name = "o1", .kind = OperatorKind::kMap, .cost = 4.0},
      {StreamRef::Input(i1)});
  auto o2 = g.AddOperator(
      {.name = "o2", .kind = OperatorKind::kMap, .cost = 6.0},
      {StreamRef::Op(*o1)});
  auto o3 = g.AddOperator({.name = "o3",
                           .kind = OperatorKind::kFilter,
                           .cost = 9.0,
                           .selectivity = 0.5},
                          {StreamRef::Input(i2)});
  auto o4 = g.AddOperator(
      {.name = "o4", .kind = OperatorKind::kMap, .cost = 4.0},
      {StreamRef::Op(*o3)});
  (void)o2;
  (void)o4;
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E2 (Table 2, Figures 5-6): Example 2\n";
  const QueryGraph g = Figure4Graph();
  auto model = rod::query::BuildLoadModel(g);
  if (!model.ok()) {
    std::cerr << "model: " << model.status().ToString() << "\n";
    return 1;
  }
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const PlacementEvaluator eval(*model, system);

  rod::bench::Banner("Operator load coefficient matrix L^o (paper Table 2)");
  std::cout << model->op_coeffs().ToString() << "\n"
            << "total coefficients l = (" << Fmt(model->total_coeffs()[0], 1)
            << ", " << Fmt(model->total_coeffs()[1], 1) << ")\n";

  auto ideal = eval.IdealVolume();
  rod::bench::Banner("Ideal feasible set (Theorem 1)");
  std::cout << "V(F*) = C_T^d / (d! l_1 l_2) = " << Fmt(*ideal, 6)
            << "  (C_T = 2, d = 2)\n";

  struct PlanCase {
    const char* name;
    Placement plan;
  };
  auto rod_plan = rod::place::RodPlace(*model, system);
  const std::vector<PlanCase> plans = {
      {"(a) {o1,o2}|{o3,o4}", Placement(2, {0, 0, 1, 1})},
      {"(b) {o1,o3}|{o2,o4}", Placement(2, {0, 1, 0, 1})},
      {"(c) {o1,o4}|{o2,o3}", Placement(2, {0, 1, 1, 0})},
      {"ROD", *rod_plan},
  };

  rod::bench::Banner("Plans of Table 2 + ROD (Figures 5-6 feasible sets)");
  Table table({"plan", "L^n row1", "L^n row2", "w row1", "w row2",
               "min plane dist", "exact V(F)/V(F*)"});
  for (const PlanCase& pc : plans) {
    const Matrix ln = pc.plan.NodeCoeffs(model->op_coeffs());
    auto w = eval.WeightMatrix(pc.plan);
    auto exact = rod::geom::ExactRatioToIdeal2D(*w);
    table.AddRow(
        {pc.name,
         "(" + Fmt(ln(0, 0), 1) + "," + Fmt(ln(0, 1), 1) + ")",
         "(" + Fmt(ln(1, 0), 1) + "," + Fmt(ln(1, 1), 1) + ")",
         "(" + Fmt((*w)(0, 0), 2) + "," + Fmt((*w)(0, 1), 2) + ")",
         "(" + Fmt((*w)(1, 0), 2) + "," + Fmt((*w)(1, 1), 2) + ")",
         Fmt(*eval.MinPlaneDistance(pc.plan)), Fmt(*exact)});
  }
  table.Print();

  rod::bench::Banner("Feasible polygon vertices (normalized space)");
  for (const PlanCase& pc : plans) {
    auto w = eval.WeightMatrix(pc.plan);
    auto poly = rod::geom::FeasiblePolygon(*w);
    std::cout << "  " << pc.name << ": ";
    for (const auto& p : *poly) {
      std::cout << "(" << Fmt(p.x, 3) << "," << Fmt(p.y, 3) << ") ";
    }
    std::cout << "\n";
  }

  rod::bench::Banner("Figure 5 rendered (plan (a) vs ROD)");
  for (const char* name : {"(a) {o1,o2}|{o3,o4}", "ROD"}) {
    for (const PlanCase& pc : plans) {
      if (std::string(pc.name) != name) continue;
      auto w = eval.WeightMatrix(pc.plan);
      auto plot = rod::geom::RenderFeasibleSet2D(*w);
      std::cout << "\n" << pc.name << ":\n" << *plot;
    }
  }
  std::cout << "\nExpected shape (Figure 5): the three fixed plans differ\n"
               "widely; none reaches the ideal (Figure 6); ROD attains the\n"
               "maximum-ratio split, separating both streams across nodes.\n";
  return 0;
}
