// Experiment E0 (reconstructed; the paper's §7.1 measurement procedure) —
// statistics-driven placement: "To measure the operator costs and
// selectivities in the prototype implementation, we randomly distribute
// the operators and run the system for a sufficiently long time to gather
// stable statistics." This bench runs the full loop: trial run ->
// calibrated specs -> ROD on the measured model -> quality judged under
// the *true* model, across trial lengths (statistics quality).

#include <iostream>

#include "bench_util.h"
#include "runtime/calibrate.h"

namespace {

using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E0 (§7.1): statistics-driven model "
               "calibration\n"
            << "3 streams x 8 ops, 3 nodes; random trial placement at "
               "constant rates; ROD on measured vs declared specs\n";

  rod::query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 8;
  gen.min_cost = 0.5e-3;
  gen.max_cost = 3e-3;
  rod::Rng graph_rng(0xe0ca1);
  const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, graph_rng);
  auto true_model = rod::query::BuildLoadModel(g);
  if (!true_model.ok()) {
    std::cerr << true_model.status().ToString() << "\n";
    return 1;
  }
  const SystemSpec system = SystemSpec::Homogeneous(3);
  const PlacementEvaluator eval(*true_model, system);
  rod::geom::VolumeOptions vol;
  vol.num_samples = 16384;

  auto plan_true = rod::place::RodPlace(*true_model, system);
  const double r_true = *eval.RatioToIdeal(*plan_true, vol);

  rod::bench::Banner("placement quality vs trial-run length");
  Table table({"trial secs", "mean |cost err|", "mean |sel err|",
               "ROD(measured) ratio", "vs ROD(true)"});
  for (double duration : {5.0, 20.0, 60.0, 180.0}) {
    auto calibrated = rod::sim::CalibrateWithTrialRun(
        g, system, Vector(3, 60.0), duration, 0xca11 + static_cast<uint64_t>(duration));
    if (!calibrated.ok()) {
      std::cerr << calibrated.status().ToString() << "\n";
      return 1;
    }
    double cost_err = 0.0, sel_err = 0.0;
    for (rod::query::OperatorId j = 0; j < g.num_operators(); ++j) {
      cost_err += std::abs(calibrated->spec(j).cost - g.spec(j).cost) /
                  g.spec(j).cost;
      sel_err += std::abs(calibrated->spec(j).selectivity -
                          g.spec(j).selectivity);
    }
    cost_err /= static_cast<double>(g.num_operators());
    sel_err /= static_cast<double>(g.num_operators());

    auto est_model = rod::query::BuildLoadModel(*calibrated);
    if (!est_model.ok()) {
      std::cerr << est_model.status().ToString() << "\n";
      return 1;
    }
    auto plan_est = rod::place::RodPlace(*est_model, system);
    const double r_est = *eval.RatioToIdeal(*plan_est, vol);
    table.AddRow({Fmt(duration, 0), Fmt(cost_err, 4), Fmt(sel_err, 4),
                  Fmt(r_est), Fmt(r_true > 0 ? r_est / r_true : 0)});
  }
  table.Print();
  std::cout << "\nROD(true-model) ratio: " << Fmt(r_true)
            << "\nExpected shape: spec errors shrink with trial length;\n"
               "already at tens of seconds the measured model places\n"
               "within a few percent of the true-model ROD (the paper\n"
               "gathers statistics the same way before every experiment).\n";
  return 0;
}
