// Micro-benchmark M1: ROD placement runtime scaling in the number of
// operators m, nodes n, and input streams d. ROD is O(m n D) per run plus
// the O(m log m) sort — static placement must be cheap enough to rerun on
// every provisioning change.

#include <benchmark/benchmark.h>

#include "bench_micro_main.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace {

using rod::place::SystemSpec;

void BM_RodPlace(benchmark::State& state) {
  const size_t total_ops = static_cast<size_t>(state.range(0));
  const size_t nodes = static_cast<size_t>(state.range(1));
  const size_t dims = static_cast<size_t>(state.range(2));

  rod::query::GraphGenOptions gen;
  gen.num_input_streams = dims;
  gen.ops_per_tree = std::max<size_t>(1, total_ops / dims);
  rod::Rng rng(42);
  const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
  auto model = rod::query::BuildLoadModel(g);
  if (!model.ok()) {
    state.SkipWithError(model.status().ToString().c_str());
    return;
  }
  const SystemSpec system = SystemSpec::Homogeneous(nodes);

  for (auto _ : state) {
    auto plan = rod::place::RodPlace(*model, system);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.num_operators()));
  state.counters["ops"] = static_cast<double>(g.num_operators());
}

void BM_RodPlaceLowerBound(benchmark::State& state) {
  const size_t dims = 5;
  rod::query::GraphGenOptions gen;
  gen.num_input_streams = dims;
  gen.ops_per_tree = 40;
  rod::Rng rng(43);
  const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
  auto model = rod::query::BuildLoadModel(g);
  const SystemSpec system = SystemSpec::Homogeneous(8);
  rod::place::RodOptions options;
  options.lower_bound.assign(dims, 0.01);

  for (auto _ : state) {
    auto plan = rod::place::RodPlace(*model, system, options);
    benchmark::DoNotOptimize(plan);
  }
}

void BM_BuildLoadModel(benchmark::State& state) {
  rod::query::GraphGenOptions gen;
  gen.num_input_streams = 5;
  gen.ops_per_tree = static_cast<size_t>(state.range(0)) / 5;
  rod::Rng rng(44);
  const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
  for (auto _ : state) {
    auto model = rod::query::BuildLoadModel(g);
    benchmark::DoNotOptimize(model);
  }
}

}  // namespace

// Scale m with n = 8, d = 5.
BENCHMARK(BM_RodPlace)
    ->Args({100, 8, 5})
    ->Args({400, 8, 5})
    ->Args({1600, 8, 5})
    ->Args({6400, 8, 5});
// Scale n with m = 400, d = 5.
BENCHMARK(BM_RodPlace)->Args({400, 2, 5})->Args({400, 16, 5})->Args({400, 64, 5});
// Scale d with m = 400, n = 8.
BENCHMARK(BM_RodPlace)->Args({400, 8, 2})->Args({400, 8, 8})->Args({400, 8, 16});
BENCHMARK(BM_RodPlaceLowerBound);
BENCHMARK(BM_BuildLoadModel)->Arg(100)->Arg(1000)->Arg(10000);

ROD_MICRO_BENCH_MAIN()
