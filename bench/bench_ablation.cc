// Ablation bench (DESIGN.md §6) — quantifies each design choice inside
// ROD: phase-1 operator ordering (descending-norm vs unsorted vs
// ascending), the heuristic composition (combined Class I/II logic vs
// MMAD-only vs MMPD-only), and the Class I tie-break rule. Averaged over
// several random graphs at paper scale.

#include <iostream>

#include "bench_util.h"

namespace {

using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::RodOptions;
using rod::place::SystemSpec;

struct Variant {
  std::string name;
  RodOptions options;
  bool needs_graph = false;
};

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- ablation of ROD's design choices\n"
            << "5 streams x 20 ops, 5 nodes, 8 random graphs, QMC 2^13\n";

  std::vector<Variant> variants;
  {
    Variant v{"ROD (paper)", {}, false};
    variants.push_back(v);
  }
  {
    Variant v{"unsorted ops", {}, false};
    v.options.sort_operators = false;
    variants.push_back(v);
  }
  {
    Variant v{"ascending ops", {}, false};
    v.options.sort_ascending = true;
    variants.push_back(v);
  }
  {
    Variant v{"MMAD only", {}, false};
    v.options.mode = RodOptions::Mode::kMmadOnly;
    variants.push_back(v);
  }
  {
    Variant v{"MMPD only", {}, false};
    v.options.mode = RodOptions::Mode::kMmpdOnly;
    variants.push_back(v);
  }
  {
    Variant v{"tie-break random", {}, false};
    v.options.tie_break = RodOptions::ClassITieBreak::kRandom;
    variants.push_back(v);
  }
  {
    Variant v{"tie-break first", {}, false};
    v.options.tie_break = RodOptions::ClassITieBreak::kFirst;
    variants.push_back(v);
  }
  {
    Variant v{"tie-break min-max-weight", {}, false};
    v.options.tie_break = RodOptions::ClassITieBreak::kMinMaxWeight;
    variants.push_back(v);
  }
  {
    Variant v{"tie-break min-cross-arcs", {}, true};
    v.options.tie_break = RodOptions::ClassITieBreak::kMinCrossArcs;
    variants.push_back(v);
  }

  std::vector<rod::RunningStats> ratio_stats(variants.size());
  std::vector<rod::RunningStats> arcs_stats(variants.size());

  rod::geom::VolumeOptions vol;
  vol.num_samples = 8192;
  const SystemSpec system = SystemSpec::Homogeneous(5);

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    rod::query::GraphGenOptions gen;
    gen.num_input_streams = 5;
    gen.ops_per_tree = 20;
    rod::Rng rng(0xab1a + seed);
    const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
    auto model = rod::query::BuildLoadModel(g);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    const PlacementEvaluator eval(*model, system);
    for (size_t v = 0; v < variants.size(); ++v) {
      auto plan = rod::place::RodPlace(*model, system, variants[v].options,
                                       variants[v].needs_graph ? &g : nullptr);
      if (!plan.ok()) {
        std::cerr << variants[v].name << ": " << plan.status().ToString()
                  << "\n";
        return 1;
      }
      ratio_stats[v].Add(*eval.RatioToIdeal(*plan, vol));
      arcs_stats[v].Add(static_cast<double>(plan->CountCrossNodeArcs(g)));
    }
  }

  rod::bench::Banner("Ablation: mean feasible ratio and inter-node arcs");
  Table table({"variant", "mean V(F)/V(F*)", "min", "vs paper ROD",
               "mean cross arcs"});
  const double reference = ratio_stats[0].mean();
  for (size_t v = 0; v < variants.size(); ++v) {
    table.AddRow({variants[v].name, Fmt(ratio_stats[v].mean()),
                  Fmt(ratio_stats[v].min()),
                  Fmt(ratio_stats[v].mean() / reference),
                  Fmt(arcs_stats[v].mean(), 1)});
  }
  table.Print();

  std::cout
      << "\nExpected shape: the paper's configuration at or near the top.\n"
         "Descending-norm ordering beats unsorted/ascending (placing heavy\n"
         "operators late deviates from ideal, §5.1). MMPD-only trails the\n"
         "combined rule; MMAD-only trails where stream-weight combinations\n"
         "create bottlenecks (§4.2's Figure 8 argument). min-cross-arcs\n"
         "trades a sliver of ratio for far fewer inter-node streams.\n";
  return 0;
}
