// Experiment E3 — paper Figure 9: "Relationship between r and the feasible
// set size." Draws 1000 random node load-coefficient matrices (10 nodes,
// 3 input streams, as the paper states), computes each matrix's minimum
// plane distance ratio r/r* and QMC feasible-set ratio, and prints the
// binned envelope (min / mean / max per bin) plus the hypersphere-volume
// lower bound curve.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"

namespace {

using rod::Matrix;
using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;

/// Volume of the nonnegative-orthant part of the d-ball of radius r,
/// relative to the unit simplex volume 1/d!: the paper's "constant times
/// r^d" lower-bound curve ([22]).
double SphereBoundRatio(double r, size_t d) {
  // V_ball(d, r) = pi^{d/2} r^d / Gamma(d/2 + 1); orthant share 2^-d;
  // simplex volume 1/d!.
  const double dd = static_cast<double>(d);
  const double ball = std::pow(M_PI, dd / 2.0) * std::pow(r, dd) /
                      std::tgamma(dd / 2.0 + 1.0);
  const double orthant = ball / std::pow(2.0, dd);
  const double simplex = 1.0 / std::tgamma(dd + 1.0);
  return std::min(1.0, orthant / simplex);
}

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E3 (Figure 9): r vs feasible-set size\n";
  constexpr size_t kNodes = 10;
  constexpr size_t kDims = 3;
  constexpr int kMatrices = 1000;

  const Vector capacities(kNodes, 1.0);
  const double r_star = rod::geom::IdealPlaneDistance(kDims);

  struct Sample {
    double r_ratio;
    double feasible_ratio;
  };
  std::vector<Sample> samples;
  samples.reserve(kMatrices);

  rod::Rng rng(0xf19);
  rod::geom::VolumeOptions vol;
  vol.num_samples = 8192;
  for (int it = 0; it < kMatrices; ++it) {
    // Random nonnegative node coefficients; normalize columns so each
    // stream's total is preserved (constraint (1) of Theorem 1).
    Matrix node_coeffs(kNodes, kDims);
    for (size_t i = 0; i < kNodes; ++i) {
      for (size_t k = 0; k < kDims; ++k) {
        node_coeffs(i, k) = rng.NextDouble();
      }
    }
    Vector total(kDims, 0.0);
    for (size_t k = 0; k < kDims; ++k) total[k] = node_coeffs.ColSum(k);
    auto w = rod::geom::ComputeWeightMatrix(node_coeffs, total, capacities);
    if (!w.ok()) continue;
    const double r = rod::geom::MinPlaneDistance(*w);
    const double ratio = rod::geom::FeasibleSet(*w).RatioToIdeal(vol);
    samples.push_back({r / r_star, ratio});
  }

  rod::bench::Banner("Figure 9 scatter, binned by r/r* (n=10, d=3, 1000 "
                     "random load matrices)");
  Table table({"r/r* bin", "count", "min ratio", "mean ratio", "max ratio",
               "sphere bound"});
  constexpr int kBins = 10;
  for (int b = 0; b < kBins; ++b) {
    const double lo = static_cast<double>(b) / kBins;
    const double hi = static_cast<double>(b + 1) / kBins;
    rod::RunningStats stats;
    for (const Sample& s : samples) {
      if (s.r_ratio >= lo && s.r_ratio < hi) stats.Add(s.feasible_ratio);
    }
    if (stats.count() == 0) continue;
    const double mid_r = (lo + hi) / 2.0 * r_star;
    table.AddRow({Fmt(lo, 1) + "-" + Fmt(hi, 1),
                  std::to_string(stats.count()), Fmt(stats.min()),
                  Fmt(stats.mean()), Fmt(stats.max()),
                  Fmt(SphereBoundRatio(mid_r, kDims))});
  }
  table.Print();

  // Trend check the paper reads off the figure: both envelope bounds of
  // the ratio increase with r/r*.
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.r_ratio < b.r_ratio;
            });
  rod::RunningStats low_half, high_half;
  for (size_t i = 0; i < samples.size(); ++i) {
    (i < samples.size() / 2 ? low_half : high_half)
        .Add(samples[i].feasible_ratio);
  }
  std::cout << "\nmean feasible ratio, lower half of r/r*: "
            << Fmt(low_half.mean()) << "; upper half: "
            << Fmt(high_half.mean()) << "\n"
            << "Expected shape: upper >> lower (monotone trend of Fig. 9);\n"
               "the min column dominates the hypersphere lower bound.\n";
  return 0;
}
