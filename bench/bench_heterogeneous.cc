// Experiment A2 (ours; the paper's §7.1 "Unless otherwise stated, we
// assume the system has homogeneous nodes" implies the heterogeneous case
// matters) — resiliency on clusters with unequal CPU capacities. ROD's
// weight normalization divides by each node's capacity share C_i/C_T, so
// it should hold its feasible ratio as skew grows while count-based and
// load-count-blind baselines degrade.

#include <iostream>

#include "bench_util.h"

namespace {

using rod::Vector;
using rod::bench::AlgorithmNames;
using rod::bench::AlgorithmSuite;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- A2: heterogeneous node capacities\n"
            << "5 streams x 20 ops, 5 nodes, total capacity fixed at 5.0, "
               "10 trials per baseline\n";

  struct Cluster {
    std::string name;
    Vector capacities;
  };
  const std::vector<Cluster> clusters = {
      {"homogeneous 1:1:1:1:1", Vector{1.0, 1.0, 1.0, 1.0, 1.0}},
      {"mild skew 1.5:1.25:1:0.75:0.5", Vector{1.5, 1.25, 1.0, 0.75, 0.5}},
      {"strong skew 2.5:1:0.75:0.5:0.25", Vector{2.5, 1.0, 0.75, 0.5, 0.25}},
  };

  rod::geom::VolumeOptions vol;
  vol.num_samples = 8192;
  constexpr int kGraphs = 4;
  constexpr int kTrials = 10;

  for (const Cluster& cluster : clusters) {
    std::vector<rod::RunningStats> per_alg(AlgorithmNames().size());
    for (int gi = 0; gi < kGraphs; ++gi) {
      rod::query::GraphGenOptions gen;
      gen.num_input_streams = 5;
      gen.ops_per_tree = 20;
      rod::Rng graph_rng(0xa2000 + gi);
      const rod::query::QueryGraph g =
          rod::query::GenerateRandomTrees(gen, graph_rng);
      auto model = rod::query::BuildLoadModel(g);
      if (!model.ok()) {
        std::cerr << model.status().ToString() << "\n";
        return 1;
      }
      const SystemSpec system{cluster.capacities};
      const PlacementEvaluator eval(*model, system);
      const AlgorithmSuite suite{g, *model, system};
      for (size_t a = 0; a < AlgorithmNames().size(); ++a) {
        rod::Rng trial_rng(0x417 + gi * 31 + a);
        const int trials = AlgorithmNames()[a] == "ROD" ? 1 : kTrials;
        for (int t = 0; t < trials; ++t) {
          auto plan = suite.Run(AlgorithmNames()[a], trial_rng);
          if (!plan.ok()) {
            std::cerr << plan.status().ToString() << "\n";
            return 1;
          }
          per_alg[a].Add(*eval.RatioToIdeal(*plan, vol));
        }
      }
    }
    rod::bench::Banner(cluster.name);
    Table table({"algorithm", "mean V(F)/V(F*)", "min", "vs ROD"});
    const double rod_mean = per_alg[0].mean();
    for (size_t a = 0; a < AlgorithmNames().size(); ++a) {
      table.AddRow({AlgorithmNames()[a], Fmt(per_alg[a].mean()),
                    Fmt(per_alg[a].min()),
                    Fmt(rod_mean > 0 ? per_alg[a].mean() / rod_mean : 0)});
    }
    table.Print();
  }

  std::cout
      << "\nExpected shape: the ideal feasible set depends only on total\n"
         "capacity (Theorem 1), so ROD's ratio should barely move with\n"
         "skew (its weights normalize by C_i/C_T). Random's equal operator\n"
         "counts ignore capacity and fall hardest; LLF normalizes by\n"
         "capacity and degrades less.\n";
  return 0;
}
