// Copyright (c) the ROD reproduction authors.
//
// Shared console-table rendering and experiment plumbing for the
// per-figure benchmark binaries.

#ifndef ROD_BENCH_BENCH_UTIL_H_
#define ROD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "placement/baselines.h"
#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::bench {

/// Fixed-width console table: set a header once, stream rows, print.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row; cells are already formatted strings.
  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with per-column widths and a separator under the header.
  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], cells[c].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < width.size(); ++c) {
        os << "  " << std::setw(static_cast<int>(width[c]))
           << (c < cells.size() ? cells[c] : "");
      }
      os << "\n";
    };
    print_row(header_);
    size_t total = 2;
    for (size_t w : width) total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into a std::string.
inline std::string Fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Section banner for experiment output.
inline void Banner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

/// The five §7.2 algorithms by name, applied uniformly: ROD plus the four
/// baselines (each baseline gets fresh random rates / series per trial, as
/// §7.3.1 prescribes).
struct AlgorithmSuite {
  const query::QueryGraph& graph;
  const query::LoadModel& model;
  const place::SystemSpec& system;

  /// Runs algorithm `name` ("ROD", "Correlation", "LLF", "Random",
  /// "Connected") with per-trial randomness from `rng`. Returns the plan.
  Result<place::Placement> Run(const std::string& name, Rng& rng) const {
    if (name == "ROD") {
      return place::RodPlace(model, system);
    }
    if (name == "Random") {
      return place::RandomPlace(model, system, rng);
    }
    if (name == "LLF") {
      return place::LargestLoadFirstPlace(model, system, RandomRates(rng));
    }
    if (name == "Connected") {
      return place::ConnectedLoadBalancePlace(model, graph, system,
                                              RandomRates(rng));
    }
    if (name == "Correlation") {
      // Random stream-rate time series (§7.3.1).
      const size_t horizon = 64;
      Matrix series(horizon, model.num_system_inputs());
      for (size_t t = 0; t < horizon; ++t) {
        for (size_t k = 0; k < series.cols(); ++k) {
          series(t, k) = rng.Uniform(0.01, 1.0);
        }
      }
      return place::CorrelationBasedPlace(model, system, series);
    }
    return Status::InvalidArgument("unknown algorithm: " + name);
  }

  Vector RandomRates(Rng& rng) const {
    Vector rates(model.num_system_inputs());
    for (double& r : rates) r = rng.Uniform(0.01, 1.0);
    return rates;
  }
};

/// The algorithm roster in the paper's Figure 14 legend order.
inline const std::vector<std::string>& AlgorithmNames() {
  static const std::vector<std::string> kNames = {
      "ROD", "Correlation", "LLF", "Random", "Connected"};
  return kNames;
}

}  // namespace rod::bench

#endif  // ROD_BENCH_BENCH_UTIL_H_
