// Copyright (c) the ROD reproduction authors.
//
// Shared console-table rendering and experiment plumbing for the
// per-figure benchmark binaries.

#ifndef ROD_BENCH_BENCH_UTIL_H_
#define ROD_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "geometry/simd_kernel.h"
#include "placement/baselines.h"
#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "telemetry/aggregator.h"
#include "telemetry/exposition.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/http_server.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace rod::bench {

/// The standard CLI flags every bench binary accepts (the google-benchmark
/// micro benches strip these before handing the rest to the benchmark
/// library's own parser):
///   --json=PATH           machine-readable JSON. For most benches this is
///                         the telemetry metrics snapshot; the two perf
///                         benches write their results baseline here
///                         instead (bench_engine_perf embeds the snapshot
///                         under a "telemetry" key).
///   --trace=PATH          Chrome trace_event JSON of the run, loadable in
///                         chrome://tracing / Perfetto.
///   --serve=PORT          serve the live observability plane on
///                         127.0.0.1:PORT while the bench runs (0 picks an
///                         ephemeral port, printed at startup): /metrics
///                         (Prometheus), /metrics.json, /aggregator,
///                         /flightrecorder, /healthz, /readyz. See
///                         docs/OBSERVABILITY.md.
///   --flightrecorder=PATH write the incident flight-recorder artifact
///                         (rod.flight_recorder.v1 JSON) at exit.
/// Everything else lands in `rest` for the binary's own parser.
struct BenchFlags {
  std::string json_path;
  std::string trace_path;
  std::string flightrecorder_path;
  bool serve = false;
  uint16_t serve_port = 0;
  std::vector<std::string> rest;
};

inline BenchFlags ParseBenchFlags(int argc, char** argv) {
  BenchFlags f;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--json=", 0) == 0) {
      f.json_path = arg.substr(7);
    } else if (arg.rfind("--trace=", 0) == 0) {
      f.trace_path = arg.substr(8);
    } else if (arg.rfind("--flightrecorder=", 0) == 0) {
      f.flightrecorder_path = arg.substr(17);
    } else if (arg.rfind("--serve=", 0) == 0) {
      f.serve = true;
      f.serve_port = static_cast<uint16_t>(std::stoul(arg.substr(8)));
    } else {
      f.rest.push_back(arg);
    }
  }
  return f;
}

/// Comma-separated positive thread counts ("1,2,4,8").
inline std::vector<size_t> ParseThreadList(const std::string& spec) {
  std::vector<size_t> threads;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const unsigned long v = std::stoul(item);
    if (v > 0) threads.push_back(v);
  }
  return threads;
}

/// The compiler that built this binary, e.g. "gcc 12.2.0".
inline std::string CompilerVersion() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// The optimization/codegen flags the build applied to the bench binary
/// and the library it links (injected by bench/CMakeLists.txt).
inline const char* BenchCxxFlags() {
#ifdef ROD_BENCH_CXX_FLAGS
  return ROD_BENCH_CXX_FLAGS;
#else
  return "";
#endif
}

/// Stamps build/runtime provenance into a bench JSON: without the
/// compiler, flags, and the SIMD ISA the runtime dispatcher actually
/// selected, two baseline files cannot be compared meaningfully. Written
/// as a "metadata" object by every bench baseline writer (schemas in
/// docs/BENCH_ENGINE.md and docs/BENCH_VOLUME.md).
inline void WriteBuildMetadata(telemetry::JsonWriter& w) {
  w.Key("metadata").BeginObjectInline();
  w.Key("compiler").String(CompilerVersion());
  w.Key("cxx_flags").String(BenchCxxFlags());
  w.Key("simd_isa").String(geom::ActiveSimdIsa());
  w.EndObject();
}

/// The high-water gauges the Aggregator re-arms after every sample (see
/// Gauge::Max): peak thread-pool queue depth, peak event-queue size, and
/// the engine's peak per-node tuple-queue depth.
inline std::vector<std::string> HighWaterGauges() {
  return {"pool.queue_depth_high_water", "event_queue.size_high_water",
          "node.queue_depth_high_water"};
}

/// RAII telemetry wiring for a bench binary: when --json / --trace /
/// --serve / --flightrecorder asked for output, owns a Telemetry,
/// attaches it to the shared thread pool for the binary's lifetime, and
/// exports the requested files on destruction. The bench passes
/// `telemetry()` (and `flight_recorder()`) into SimulationOptions /
/// SweepOptions / Supervisor::Options wherever it builds them; the null
/// return when no flag was given keeps every instrumented path on its
/// telemetry-off branch. File export happens after the bench's parallel
/// work has finished (ParallelFor and the sweep entry points block until
/// every chunk completes), satisfying the exporters' quiescence
/// requirement; the live endpoints use the concurrent-safe accessors
/// (Snapshot / SnapshotTrace / Window / WriteJson), so scraping mid-run
/// is fine.
///
/// With --serve the session runs the full plane: an Aggregator sampling
/// once a second (resetting the high-water gauges) and an HttpServer on
/// 127.0.0.1 with /metrics, /metrics.json, /aggregator, /flightrecorder,
/// /healthz, and /readyz. /healthz answers 200 as long as the process
/// serves; /readyz answers 503 until set_ready(true) (benches flip it
/// after setup so a scraper can tell "warming up" from "measuring").
class TelemetrySession {
 public:
  /// `owns_json`: export the metrics snapshot to --json (the default).
  /// The perf benches pass false — their results baseline owns that path.
  explicit TelemetrySession(const BenchFlags& flags, bool owns_json = true)
      : json_path_(owns_json ? flags.json_path : std::string()),
        trace_path_(flags.trace_path),
        flightrecorder_path_(flags.flightrecorder_path) {
    const bool plane = flags.serve || !flightrecorder_path_.empty();
    if (json_path_.empty() && trace_path_.empty() && !plane) return;
    telemetry_ = std::make_unique<telemetry::Telemetry>();
    ThreadPool::Shared().set_telemetry(telemetry_.get());
    if (!plane) return;

    telemetry::AggregatorOptions agg;
    agg.reset_gauges = HighWaterGauges();
    aggregator_ =
        std::make_unique<telemetry::Aggregator>(telemetry_.get(), agg);
    aggregator_->Start();
    recorder_ = std::make_unique<telemetry::FlightRecorder>(
        telemetry_.get(), aggregator_.get());
    if (flags.serve) StartServer(flags.serve_port);
  }
  ~TelemetrySession() { Finish(); }
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Null when no telemetry output was requested.
  telemetry::Telemetry* telemetry() { return telemetry_.get(); }

  /// Null unless --serve / --flightrecorder was given.
  telemetry::FlightRecorder* flight_recorder() { return recorder_.get(); }
  telemetry::Aggregator* aggregator() { return aggregator_.get(); }

  /// The live plane's bound port; 0 when not serving.
  uint16_t serve_port() const {
    return server_ != nullptr ? server_->port() : 0;
  }

  /// Flips /readyz between 503 (false) and 200 (true).
  void set_ready(bool ready) { ready_.store(ready); }

  /// Stops the live plane, detaches the pool, and writes the exports.
  /// Idempotent.
  void Finish() {
    if (telemetry_ == nullptr || finished_) return;
    finished_ = true;
    if (server_ != nullptr) server_->Stop();
    if (aggregator_ != nullptr) aggregator_->Stop();
    ThreadPool::Shared().set_telemetry(nullptr);
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      telemetry_->WriteChromeTrace(out);
      std::cout << "wrote " << trace_path_ << " (chrome trace)\n";
    }
    if (!json_path_.empty()) {
      std::ofstream out(json_path_);
      telemetry_->WriteMetricsJson(out);
      std::cout << "wrote " << json_path_ << " (metrics snapshot)\n";
    }
    if (!flightrecorder_path_.empty() && recorder_ != nullptr) {
      std::ofstream out(flightrecorder_path_);
      recorder_->WriteJson(out);
      std::cout << "wrote " << flightrecorder_path_ << " (flight recorder, "
                << recorder_->incident_count() << " incidents)\n";
    }
  }

 private:
  void StartServer(uint16_t port) {
    server_ = std::make_unique<telemetry::HttpServer>();
    telemetry::Telemetry* tel = telemetry_.get();
    telemetry::Aggregator* agg = aggregator_.get();
    telemetry::FlightRecorder* rec = recorder_.get();
    server_->Handle("/metrics", [tel](std::string_view) {
      std::ostringstream body;
      telemetry::WritePrometheusText(tel->Snapshot(), body);
      return telemetry::HttpServer::Response{
          200, telemetry::kPrometheusContentType, body.str()};
    });
    server_->Handle("/metrics.json", [tel](std::string_view) {
      std::ostringstream body;
      tel->WriteMetricsJson(body);
      return telemetry::HttpServer::Response{200, "application/json",
                                             body.str()};
    });
    server_->Handle("/aggregator", [agg](std::string_view) {
      std::ostringstream body;
      agg->WriteWindowJson(body);
      return telemetry::HttpServer::Response{200, "application/json",
                                             body.str()};
    });
    server_->Handle("/flightrecorder", [rec](std::string_view) {
      std::ostringstream body;
      rec->WriteJson(body);
      return telemetry::HttpServer::Response{200, "application/json",
                                             body.str()};
    });
    server_->Handle("/healthz", [](std::string_view) {
      return telemetry::HttpServer::Response{
          200, "text/plain; charset=utf-8", "ok\n"};
    });
    const std::atomic<bool>* ready = &ready_;
    server_->Handle("/readyz", [ready](std::string_view) {
      return ready->load()
                 ? telemetry::HttpServer::Response{
                       200, "text/plain; charset=utf-8", "ready\n"}
                 : telemetry::HttpServer::Response{
                       503, "text/plain; charset=utf-8", "warming up\n"};
    });
    std::string error;
    if (!server_->Start(port, &error)) {
      std::cerr << "observability plane failed to start: " << error << "\n";
      server_.reset();
      return;
    }
    std::cout << "observability plane on http://127.0.0.1:" << server_->port()
              << " (/metrics /metrics.json /aggregator /flightrecorder"
              << " /healthz /readyz)\n";
  }

  std::string json_path_;
  std::string trace_path_;
  std::string flightrecorder_path_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::unique_ptr<telemetry::Aggregator> aggregator_;
  std::unique_ptr<telemetry::FlightRecorder> recorder_;
  std::unique_ptr<telemetry::HttpServer> server_;
  std::atomic<bool> ready_{false};
  bool finished_ = false;
};

/// Fixed-width console table: set a header once, stream rows, print.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends one row; cells are already formatted strings.
  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with per-column widths and a separator under the header.
  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < cells.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], cells[c].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (size_t c = 0; c < width.size(); ++c) {
        os << "  " << std::setw(static_cast<int>(width[c]))
           << (c < cells.size() ? cells[c] : "");
      }
      os << "\n";
    };
    print_row(header_);
    size_t total = 2;
    for (size_t w : width) total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting into a std::string.
inline std::string Fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Section banner for experiment output.
inline void Banner(const std::string& title) {
  std::cout << "\n== " << title << " ==\n";
}

/// The five §7.2 algorithms by name, applied uniformly: ROD plus the four
/// baselines (each baseline gets fresh random rates / series per trial, as
/// §7.3.1 prescribes).
struct AlgorithmSuite {
  const query::QueryGraph& graph;
  const query::LoadModel& model;
  const place::SystemSpec& system;

  /// Runs algorithm `name` ("ROD", "Correlation", "LLF", "Random",
  /// "Connected") with per-trial randomness from `rng`. Returns the plan.
  Result<place::Placement> Run(const std::string& name, Rng& rng) const {
    if (name == "ROD") {
      return place::RodPlace(model, system);
    }
    if (name == "Random") {
      return place::RandomPlace(model, system, rng);
    }
    if (name == "LLF") {
      return place::LargestLoadFirstPlace(model, system, RandomRates(rng));
    }
    if (name == "Connected") {
      return place::ConnectedLoadBalancePlace(model, graph, system,
                                              RandomRates(rng));
    }
    if (name == "Correlation") {
      // Random stream-rate time series (§7.3.1).
      const size_t horizon = 64;
      Matrix series(horizon, model.num_system_inputs());
      for (size_t t = 0; t < horizon; ++t) {
        for (size_t k = 0; k < series.cols(); ++k) {
          series(t, k) = rng.Uniform(0.01, 1.0);
        }
      }
      return place::CorrelationBasedPlace(model, system, series);
    }
    return Status::InvalidArgument("unknown algorithm: " + name);
  }

  Vector RandomRates(Rng& rng) const {
    Vector rates(model.num_system_inputs());
    for (double& r : rates) r = rng.Uniform(0.01, 1.0);
    return rates;
  }
};

/// The algorithm roster in the paper's Figure 14 legend order.
inline const std::vector<std::string>& AlgorithmNames() {
  static const std::vector<std::string> kNames = {
      "ROD", "Correlation", "LLF", "Random", "Connected"};
  return kNames;
}

}  // namespace rod::bench

#endif  // ROD_BENCH_BENCH_UTIL_H_
