// Experiment E8 (reconstructed; see DESIGN.md) — the §6.1 general
// lower-bound extension: when the input rates are known never to fall
// below a point B, plans should maximize the feasible region *above* B.
// Compares plain ROD against lower-bound-aware ROD on the share of the
// ideal region above B that each keeps feasible, for increasingly
// aggressive bounds and several dimensionalities.

#include <iostream>

#include "bench_util.h"
#include "geometry/ascii_plot.h"
#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"

namespace {

using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E8 (§6.1): resilient placement with "
               "known rate lower bounds\n"
            << "bound B puts the stated fraction of C_T's headroom on "
               "stream 0 only (skewed floor)\n";

  rod::geom::VolumeOptions vol;
  vol.num_samples = 16384;

  for (size_t dims : {2u, 3u, 5u}) {
    rod::query::GraphGenOptions gen;
    gen.num_input_streams = dims;
    gen.ops_per_tree = 12;
    rod::Rng rng(0xe8000 + dims);
    const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
    auto model = rod::query::BuildLoadModel(g);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    const SystemSpec system = SystemSpec::Homogeneous(3);
    const PlacementEvaluator eval(*model, system);
    const double ct = system.TotalCapacity();

    rod::bench::Banner("d = " + std::to_string(dims) +
                       ": feasible share of the region above B");
    Table table({"floor frac", "plain ROD", "ROD-B", "gain",
                 "r_B plain", "r_B bound-aware"});
    for (double frac : {0.0, 0.2, 0.4, 0.6}) {
      // The floor loads stream 0 with `frac` of the total capacity.
      rod::place::RodOptions bopts;
      bopts.lower_bound.assign(dims, 0.0);
      bopts.lower_bound[0] = frac * ct / model->total_coeffs()[0];

      auto plain = rod::place::RodPlace(*model, system);
      auto bounded = rod::place::RodPlace(*model, system, bopts);
      if (!plain.ok() || !bounded.ok()) {
        std::cerr << "placement failed\n";
        return 1;
      }
      const Vector norm_b = rod::geom::NormalizePoint(
          bopts.lower_bound, model->total_coeffs(), ct);

      auto w_plain = eval.WeightMatrix(*plain);
      auto w_bound = eval.WeightMatrix(*bounded);
      const double ratio_plain =
          *rod::geom::FeasibleSet(*w_plain).RatioToIdealAbove(norm_b, vol);
      const double ratio_bound =
          *rod::geom::FeasibleSet(*w_bound).RatioToIdealAbove(norm_b, vol);
      table.AddRow(
          {Fmt(frac, 1), Fmt(ratio_plain), Fmt(ratio_bound),
           Fmt(ratio_plain > 0 ? ratio_bound / ratio_plain : 1.0, 2) + "x",
           Fmt(rod::geom::MinPlaneDistanceFrom(*w_plain, norm_b)),
           Fmt(rod::geom::MinPlaneDistanceFrom(*w_bound, norm_b))});
    }
    table.Print();
  }

  // Paper Figure 12 rendered: the d = 2 feasible set with the floor B
  // marked; the bound-aware plan pushes its nearest hyperplane away from
  // B rather than from the origin.
  {
    rod::query::GraphGenOptions gen;
    gen.num_input_streams = 2;
    gen.ops_per_tree = 12;
    rod::Rng rng(0xe8002);
    const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
    auto model = rod::query::BuildLoadModel(g);
    const SystemSpec system = SystemSpec::Homogeneous(3);
    const PlacementEvaluator eval(*model, system);
    rod::place::RodOptions bopts;
    bopts.lower_bound = {0.6 * system.TotalCapacity() /
                             model->total_coeffs()[0],
                         0.0};
    auto bounded = rod::place::RodPlace(*model, system, bopts);
    const Vector norm_b = rod::geom::NormalizePoint(
        bopts.lower_bound, model->total_coeffs(), system.TotalCapacity());
    auto w = eval.WeightMatrix(*bounded);
    auto plot = rod::geom::RenderFeasibleSet2D(*w, {}, &norm_b);
    rod::bench::Banner(
        "Figure 12 rendered: bound-aware feasible set, floor marked 'B'");
    std::cout << *plot;
  }

  std::cout
      << "\nExpected shape: at frac = 0 the variants coincide; as the\n"
         "floor grows, bound-aware ROD holds a larger feasible share of\n"
         "the remaining region (gain >= 1) and a larger distance from B\n"
         "to its nearest node hyperplane.\n";
  return 0;
}
