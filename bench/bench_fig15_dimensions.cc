// Experiment E5 — paper Figure 15: relative performance when the number of
// input streams (dimensions) varies. Fixed operators per tree, d = 2..7;
// reports each baseline's feasible-set ratio relative to ROD, averaged
// over 10 trials ("as additional inputs are used, the relative performance
// of ROD gets increasingly better").

#include <iostream>

#include "bench_util.h"

namespace {

using rod::bench::AlgorithmNames;
using rod::bench::AlgorithmSuite;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E5 (Figure 15): varying the number of "
               "inputs\n"
            << "20 operators per tree, 5 homogeneous nodes, 10 trials per "
               "baseline\n";
  constexpr size_t kOpsPerTree = 20;
  constexpr size_t kNodes = 5;
  constexpr int kTrials = 10;

  std::vector<std::string> header = {"d"};
  for (size_t a = 1; a < AlgorithmNames().size(); ++a) {
    header.push_back(AlgorithmNames()[a] + "/ROD");
  }
  Table table(header);

  constexpr int kGraphs = 4;
  for (size_t dims = 2; dims <= 7; ++dims) {
    std::vector<rod::RunningStats> rel(AlgorithmNames().size());
    for (int gi = 0; gi < kGraphs; ++gi) {
      rod::query::GraphGenOptions gen;
      gen.num_input_streams = dims;
      gen.ops_per_tree = kOpsPerTree;
      rod::Rng graph_rng(0xf15000 + dims * 17 + gi);
      const rod::query::QueryGraph g =
          rod::query::GenerateRandomTrees(gen, graph_rng);
      auto model = rod::query::BuildLoadModel(g);
      if (!model.ok()) {
        std::cerr << model.status().ToString() << "\n";
        return 1;
      }
      const SystemSpec system = SystemSpec::Homogeneous(kNodes);
      const PlacementEvaluator eval(*model, system);
      const AlgorithmSuite suite{g, *model, system};

      rod::geom::VolumeOptions vol;
      // Halton degrades slowly with dimension; keep samples generous.
      vol.num_samples = 16384;

      auto rod_plan = suite.Run("ROD", graph_rng);
      const double rod_ratio = *eval.RatioToIdeal(*rod_plan, vol);
      if (rod_ratio <= 0) continue;

      for (size_t a = 1; a < AlgorithmNames().size(); ++a) {
        rod::Rng trial_rng(0x515 + dims * 31 + a * 7 + gi);
        rod::RunningStats stats;
        for (int t = 0; t < kTrials; ++t) {
          auto plan = suite.Run(AlgorithmNames()[a], trial_rng);
          stats.Add(*eval.RatioToIdeal(*plan, vol));
        }
        rel[a].Add(stats.mean() / rod_ratio);
      }
    }
    std::vector<std::string> cells = {std::to_string(dims)};
    for (size_t a = 1; a < AlgorithmNames().size(); ++a) {
      cells.push_back(Fmt(rel[a].mean()));
    }
    table.AddRow(std::move(cells));
  }

  rod::bench::Banner("Figure 15: feasible set size ratio (A / ROD) vs d");
  table.Print();
  std::cout
      << "\nExpected shape (paper Fig. 15): every baseline's ratio to ROD\n"
         "falls as d grows (roughly constant relative loss per added\n"
         "dimension: linear tails on the log axis); d = 2 sits above the\n"
         "tail trend because few operators per node limit all choices.\n";
  return 0;
}
